//! A minimal, offline stand-in for the `rand` crate.
//!
//! Provides [`rngs::StdRng`] (xoshiro256** seeded via splitmix64) and
//! the [`RngCore`], [`SeedableRng`], and [`Rng`] traits — the subset of
//! the real crate's API this workspace uses. Sequences are deterministic
//! per seed but differ from the real `rand`'s `StdRng` stream; all
//! in-repo consumers only rely on same-seed reproducibility.

/// Low-level uniform bit generation.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Seed material.
    type Seed;

    /// Builds a generator from full seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Bernoulli sample: `true` with probability `p` (clamped to
    /// `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 uniform mantissa bits, exactly like rand's f64 sampling.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Uniform sample from `range` (a `Range` or `RangeInclusive`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Debiased uniform draw from `[0, n)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Rejection zone keeps the draw unbiased.
    let zone = n.wrapping_neg() % n;
    loop {
        let v = rng.next_u64();
        if v >= zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64;
                if span == u64::MAX as $t as u64 && start == 0 {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits scaled onto the requested span.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256** seeded with
    /// splitmix64. Fast, 256-bit state, deterministic per seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4]; // xoshiro state must be nonzero
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let z: usize = rng.gen_range(0..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
