//! A minimal, offline stand-in for the `bytes` crate.
//!
//! Implements exactly the subset of the real crate's API that this
//! workspace uses: [`Bytes`] (a cheaply cloneable, immutable byte
//! buffer backed by `Arc<[u8]>`), [`BytesMut`] (a growable builder),
//! and the [`Buf`]/[`BufMut`] read/write traits. Semantics mirror the
//! real crate for the implemented surface — in particular `Bytes::clone`
//! is a reference-count bump, never a copy.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
///
/// Cloning bumps a reference count; the underlying storage is shared.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer (no allocation is shared, but clones remain O(1)).
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copies `slice` into a new buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes {
            data: Arc::from(slice),
        }
    }

    /// Wraps a static slice (copied once; clones are still O(1)).
    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(slice),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether two handles share the same underlying storage.
    pub fn ptr_eq(a: &Bytes, b: &Bytes) -> bool {
        Arc::ptr_eq(&a.data, &b.data)
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Bytes::from_static(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    // The iterator must own its items while the buffer may be shared,
    // so a Vec copy is unavoidable here.
    #[allow(clippy::unnecessary_to_owned)]
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer for building wire encodings.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    /// An empty builder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.vec.extend_from_slice(slice);
    }

    /// Freezes the builder into an immutable, cheaply cloneable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.vec),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

/// Write-side trait: append fixed-width integers and slices.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, slice: &[u8]);

    /// Appends `count` copies of `val`.
    fn put_bytes(&mut self, val: u8, count: usize) {
        for _ in 0..count {
            self.put_u8(val);
        }
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    fn put_u128_le(&mut self, v: u128) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.vec.extend_from_slice(slice);
    }

    fn put_bytes(&mut self, val: u8, count: usize) {
        self.vec.resize(self.vec.len() + count, val);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }

    fn put_bytes(&mut self, val: u8, count: usize) {
        self.resize(self.len() + count, val);
    }
}

/// Read-side trait: consume fixed-width integers from the front.
///
/// Like the real crate, the getters panic if the buffer is too short;
/// callers bound-check first.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `u128`.
    fn get_u128_le(&mut self) -> u128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        u128::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_clone_is_shared() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert!(Bytes::ptr_eq(&a, &b));
        assert_eq!(a, b);
    }

    #[test]
    fn round_trip_integers() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_u128_le(1 << 100);
        buf.put_slice(b"xyz");
        buf.put_bytes(0, 4);
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_u128_le(), 1 << 100);
        let mut three = [0u8; 3];
        r.copy_to_slice(&mut three);
        assert_eq!(&three, b"xyz");
        r.advance(4);
        assert_eq!(r.remaining(), 0);
    }
}
