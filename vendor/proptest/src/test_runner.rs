//! Deterministic test execution: per-case RNG and run configuration.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// How many random cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The per-case random source handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic RNG for case `case` of the property named `name`
    /// (same inputs every run, different stream per property).
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the property name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ ((case as u64) << 1 | 1)),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
