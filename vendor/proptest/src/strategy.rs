//! Strategies: composable random-value generators.

use crate::test_runner::TestRng;
use rand::{Rng, RngCore};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy (the result of [`Strategy::boxed`]).
pub struct BoxedStrategy<V> {
    inner: Box<dyn StrategyObj<V>>,
}

trait StrategyObj<V> {
    fn generate_obj(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_obj(rng)
    }
}

/// Weighted choice among same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds a union from `(weight, strategy)` pairs.
    pub fn new(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union {
            options,
            total_weight,
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (weight, strat) in &self.options {
            if pick < *weight as u64 {
                return strat.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("pick exceeds total weight")
    }
}

/// Size specifications accepted by `prop::collection::vec`.
pub trait SizeRange {
    /// Inclusive `(min, max)` element counts.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

/// `Vec` strategy (the result of `prop::collection::vec`).
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, (min, max): (usize, usize)) -> Self {
        VecStrategy { element, min, max }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.min..=self.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Option` strategy (the result of `prop::option::of`).
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> OptionStrategy<S> {
    pub(crate) fn new(inner: S) -> Self {
        OptionStrategy { inner }
    }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // `None` a quarter of the time, as in the real crate's default.
        if rng.next_u64().is_multiple_of(4) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
