//! A minimal, offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the real API this workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`/`boxed`, `any::<T>()`,
//! ranges and tuples as strategies, `prop::collection::vec`,
//! `prop::option::of`, and the `proptest!`, `prop_compose!`,
//! `prop_oneof!`, `prop_assert*!`, and `prop_assume!` macros.
//!
//! Inputs are generated from a deterministic per-case PRNG, so failures
//! reproduce across runs. There is no shrinking: a failing case reports
//! the assertion message from the offending inputs directly.

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Generator namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{SizeRange, Strategy, VecStrategy};

        /// A vector of `size` elements drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
            VecStrategy::new(element, size.bounds())
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::strategy::{OptionStrategy, Strategy};

        /// `None` roughly a quarter of the time, `Some(inner)` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy::new(inner)
        }
    }
}

/// Arbitrary-value strategies for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen_range(0.0f64..1.0)
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// An arbitrary value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// Runs one property as `cases` deterministic random trials.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg($cfg) $($rest)* }
    };
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident ($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let strat = ($($strat,)+);
                for case in 0..cfg.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let ($($pat,)+) = $crate::strategy::Strategy::generate(&strat, &mut rng);
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Defines a function returning a composed strategy.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident ($($outer:tt)*) ($($field:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(($($strat,)+), move |($($field,)+)| $body)
        }
    };
}

/// Uniform or weighted choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Asserts inside a property (no shrinking; plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}
