//! A minimal, offline stand-in for the `criterion` crate.
//!
//! Measures wall-clock time with `std::time::Instant` and prints
//! `name  time: [min median max]` (plus throughput when configured) in
//! a criterion-like format. No statistics beyond min/median/max, no
//! HTML reports, no CLI parsing — samples land on stdout and that's it.
//! Per-sample iteration counts are auto-calibrated so fast routines are
//! timed over many iterations and slow ones over few.

use std::fmt::Display;
use std::time::Instant;

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup cost. The stub times each routine
/// call individually, so the variants behave identically.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark's display name, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `routine`.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }

    /// Times `routine` only, rebuilding its input with `setup` outside
    /// the timed region each iteration.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut total: u128 = 0;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.elapsed_ns = total;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group sharing sample-size/throughput settings.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, self.sample_size, None, &mut f);
        self
    }
}

/// A set of related benchmarks reported under a common prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Enables derived throughput reporting for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.id);
        run_benchmark(&name, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Benchmarks `f` with no external input.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&name, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group (drop would do; kept for API compatibility).
    pub fn finish(self) {}
}

/// Calibrates the per-sample iteration count, takes `sample_size`
/// samples, and prints min/median/max per-iteration time.
fn run_benchmark(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Double the iteration count until one sample costs >= 2 ms, so
    // per-iteration noise stays small without making slow sims crawl.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0,
        };
        f(&mut b);
        if b.elapsed_ns >= 2_000_000 || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0,
        };
        f(&mut b);
        samples.push(b.elapsed_ns as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let max = samples[samples.len() - 1];

    print!(
        "{name:<48} time:   [{} {} {}]",
        fmt_time(min),
        fmt_time(median),
        fmt_time(max)
    );
    if let Some(tp) = throughput {
        let per_sec = |count: u64| count as f64 * 1e9 / median;
        match tp {
            Throughput::Bytes(n) => print!("  thrpt: {}/s", fmt_bytes(per_sec(n))),
            Throughput::Elements(n) => print!("  thrpt: {} elem/s", fmt_count(per_sec(n))),
        }
    }
    println!();
}

fn fmt_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_bytes(bps: f64) -> String {
    if bps < 1024.0 {
        format!("{bps:.1} B")
    } else if bps < 1024.0 * 1024.0 {
        format!("{:.2} KiB", bps / 1024.0)
    } else if bps < 1024.0 * 1024.0 * 1024.0 {
        format!("{:.2} MiB", bps / (1024.0 * 1024.0))
    } else {
        format!("{:.3} GiB", bps / (1024.0 * 1024.0 * 1024.0))
    }
}

fn fmt_count(per_sec: f64) -> String {
    if per_sec < 1e3 {
        format!("{per_sec:.1}")
    } else if per_sec < 1e6 {
        format!("{:.2}K", per_sec / 1e3)
    } else if per_sec < 1e9 {
        format!("{:.3}M", per_sec / 1e6)
    } else {
        format!("{:.3}G", per_sec / 1e9)
    }
}

/// Collects benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[allow(unused_must_use)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(3).throughput(Throughput::Bytes(64));
        g.bench_with_input(BenchmarkId::new("sum", 4), &[1u8, 2, 3, 4][..], |b, xs| {
            b.iter(|| xs.iter().map(|&x| x as u64).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter_batched(|| vec![x; 8], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn time_formatting_picks_units() {
        assert_eq!(fmt_time(12.0), "12.00 ns");
        assert_eq!(fmt_time(1_500.0), "1.50 µs");
        assert_eq!(fmt_time(2_000_000.0), "2.00 ms");
        assert_eq!(fmt_time(3.2e9), "3.200 s");
    }
}
