//! Wire-format stability: golden encodings pin the codec so accidental
//! format changes (which would desynchronise byte accounting and break
//! cross-version interop) fail loudly.

use bytes::Bytes;
use marlin_types::codec::{decode_message, encode_message};
use marlin_types::{
    Batch, Block, BlockId, Justify, Message, MsgBody, Phase, Qc, ReplicaId, Transaction, View,
};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn golden_message() -> Message {
    let g = Block::genesis();
    let qc = Qc::genesis(g.id());
    let tx = Transaction::new(7, 3, Bytes::from_static(b"op"), 42);
    let block = Block::new_normal(
        g.id(),
        g.view(),
        View(1),
        g.height().next(),
        Batch::new(vec![tx]),
        Justify::One(qc),
    );
    Message::new(
        ReplicaId(1),
        View(1),
        MsgBody::Proposal(marlin_types::Proposal {
            phase: Phase::Prepare,
            blocks: vec![block],
            justify: Justify::One(qc),
            vc_proof: Vec::new(),
        }),
    )
}

/// The golden bytes for [`golden_message`], captured from the v1 codec.
/// If this test fails because the format deliberately changed, bump the
/// codec version tags and refresh the constant.
const GOLDEN_HEX: &str =
    "010000000100000000000000000101010000000000000000000000000000000000000000000000\
000000000000000000000000000000000001000000000000000100000000000000010100000000\
000000000000000000000000000000000000000000000000000000000000000000000000000000\
000000000000000000000000000000000000000000000100000000000000000000000000000000\
000000000000000000000000000000000000000000000000000000000000000000000000000000\
000000000000000000000000000000000000000000000000000000000000000000000000000000\
0001000000070000000000000003000000020000002a000000000000006f700101000000000000\
000000000000000000000000000000000000000000000000000000000000000000000000000000\
000000000000000000000000000000000000000001000000000000000000000000000000000000\
000000000000000000000000000000000000000000000000000000000000000000000000000000\
000000000000000000000000000000000000000000000000000000000000000000000000000000\
00";

#[test]
fn golden_encoding_is_stable() {
    let msg = golden_message();
    let encoded = encode_message(&msg, false);
    let got = hex(&encoded);
    // Self-check first: decode must round-trip regardless.
    assert_eq!(decode_message(&encoded).unwrap(), msg);
    assert_eq!(
        got,
        GOLDEN_HEX.replace('\n', ""),
        "wire format changed — if intentional, bump the version tags and refresh GOLDEN_HEX"
    );
}

#[test]
fn wire_len_constants_are_stable() {
    // The byte-accounting building blocks the evaluation depends on.
    assert_eq!(Transaction::HEADER_LEN, 24);
    assert_eq!(marlin_crypto::SIGNATURE_LEN, 64);
    assert_eq!(marlin_crypto::THRESHOLD_SIG_LEN, 96);
    assert_eq!(marlin_types::BlockMeta::WIRE_LEN, 58);
    let qc = Qc::genesis(BlockId::GENESIS);
    assert_eq!(qc.wire_len(), 66 + 96);
    let g = Block::genesis();
    assert_eq!(g.header_wire_len(), 33 + 24 + 1);
    assert_eq!(g.wire_len(), g.header_wire_len() + 4);
    let fetch = Message::new(
        ReplicaId(0),
        View(0),
        MsgBody::FetchRequest { block: g.id() },
    );
    assert_eq!(fetch.wire_len(false), 45);
}

#[test]
fn heights_and_views_encode_little_endian() {
    let msg = Message::new(
        ReplicaId(0x0A0B0C0D),
        View(0x1122334455667788),
        MsgBody::FetchRequest {
            block: BlockId::GENESIS,
        },
    );
    let enc = encode_message(&msg, false);
    assert_eq!(&enc[0..4], &[0x0D, 0x0C, 0x0B, 0x0A]);
    assert_eq!(
        &enc[4..12],
        &[0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11]
    );
}
