//! Property-based tests: the rank rules form a total preorder consistent
//! with Figure 4, and the wire codec round-trips arbitrary messages at
//! exactly the modeled byte length.

use bytes::Bytes;
use marlin_crypto::{sha256, PartialSig, QcFormat, SignerBitmap};
use marlin_types::codec::{decode_message, encode_message};
use marlin_types::rank::{block_rank_gt, qc_rank_cmp};
use marlin_types::{
    Batch, Block, BlockId, BlockKind, BlockMeta, Decide, Height, Justify, Message, MsgBody, Phase,
    Proposal, Qc, QcSeed, ReplicaId, Transaction, VcCert, View, ViewChange, Vote,
};
use proptest::prelude::*;
use std::cmp::Ordering;

fn arb_phase() -> impl Strategy<Value = Phase> {
    prop_oneof![
        Just(Phase::PrePrepare),
        Just(Phase::Prepare),
        Just(Phase::PreCommit),
        Just(Phase::Commit),
    ]
}

fn arb_kind() -> impl Strategy<Value = BlockKind> {
    prop_oneof![Just(BlockKind::Normal), Just(BlockKind::Virtual)]
}

fn arb_digest() -> impl Strategy<Value = BlockId> {
    any::<u64>().prop_map(|x| BlockId::from_digest(sha256(&x.to_le_bytes())))
}

prop_compose! {
    fn arb_seed()(
        phase in arb_phase(),
        view in 0u64..50,
        block in arb_digest(),
        height in 0u64..100,
        block_view in 0u64..50,
        pview in 0u64..50,
        block_kind in arb_kind(),
    ) -> QcSeed {
        QcSeed {
            phase,
            view: View(view),
            block,
            height: Height(height),
            block_view: View(block_view),
            pview: View(pview),
            block_kind,
        }
    }
}

prop_compose! {
    fn arb_qc()(
        seed in arb_seed(),
        bits in any::<u128>(),
        agg in any::<u64>(),
        format in prop_oneof![Just(QcFormat::SigGroup), Just(QcFormat::Threshold)],
    ) -> Qc {
        let sig = marlin_crypto::CombinedSig::from_parts(
            format,
            SignerBitmap::from_bits(bits),
            sha256(&agg.to_le_bytes()),
        );
        Qc::new(seed, sig)
    }
}

prop_compose! {
    fn arb_meta()(
        id in arb_digest(),
        view in 0u64..20,
        height in 0u64..40,
        pview in 0u64..20,
        kind in arb_kind(),
        rank_boost in any::<bool>(),
    ) -> BlockMeta {
        BlockMeta { id, view: View(view), height: Height(height), pview: View(pview), kind, rank_boost }
    }
}

prop_compose! {
    fn arb_tx()(
        id in any::<u64>(),
        client in 0u32..64,
        len in 0usize..300,
        ts in any::<u64>(),
        fill in any::<u8>(),
    ) -> Transaction {
        Transaction::new(id, client, Bytes::from(vec![fill; len]), ts)
    }
}

fn arb_batch() -> impl Strategy<Value = Batch> {
    prop::collection::vec(arb_tx(), 0..8).prop_map(Batch::new)
}

fn arb_justify() -> BoxedStrategy<Justify> {
    prop_oneof![
        Just(Justify::None),
        arb_qc().prop_map(Justify::One),
        (arb_qc(), arb_qc()).prop_map(|(a, b)| Justify::Two(a, b)),
    ]
    .boxed()
}

prop_compose! {
    fn arb_block()(
        parent in prop::option::of(arb_digest()),
        pview in 0u64..20,
        view in 1u64..20,
        height in 1u64..40,
        payload in arb_batch(),
        justify in arb_justify(),
    ) -> Block {
        match parent {
            Some(p) => Block::new_normal(p, View(pview), View(view), Height(height), payload, justify),
            None => Block::new_virtual(View(pview), View(view), Height(height), payload, justify),
        }
    }
}

fn arb_parsig() -> impl Strategy<Value = PartialSig> {
    (0usize..100, any::<u64>())
        .prop_map(|(signer, x)| PartialSig::from_parts(signer, sha256(&x.to_le_bytes())))
}

fn arb_body() -> BoxedStrategy<MsgBody> {
    prop_oneof![
        // Proposal with 0..2 blocks and 0..4 VC certs.
        (
            arb_phase(),
            prop::collection::vec(arb_block(), 0..3),
            arb_justify(),
            prop::collection::vec((0u32..8, arb_qc(), any::<[u8; 64]>()), 0..4)
        )
            .prop_map(|(phase, blocks, justify, certs)| {
                let vc_proof = certs
                    .into_iter()
                    .map(|(from, high_qc, sig)| VcCert {
                        from: ReplicaId(from),
                        high_qc,
                        sig: marlin_crypto::Signature::from_bytes(sig),
                    })
                    .collect();
                MsgBody::Proposal(Proposal {
                    phase,
                    blocks,
                    justify,
                    vc_proof,
                })
            }),
        (arb_seed(), arb_parsig(), prop::option::of(arb_qc())).prop_map(
            |(seed, parsig, locked_qc)| MsgBody::Vote(Vote {
                seed,
                parsig,
                locked_qc
            })
        ),
        (
            arb_meta(),
            arb_justify(),
            arb_parsig(),
            prop::option::of(any::<[u8; 64]>())
        )
            .prop_map(|(last_voted, high_qc, parsig, cert)| {
                MsgBody::ViewChange(ViewChange {
                    last_voted,
                    high_qc,
                    parsig,
                    cert: cert.map(marlin_crypto::Signature::from_bytes),
                })
            }),
        arb_qc().prop_map(|qc| MsgBody::Decide(Decide { commit_qc: qc })),
        arb_digest().prop_map(|block| MsgBody::FetchRequest { block }),
        (arb_block(), prop::option::of(arb_digest())).prop_map(|(block, virtual_parent)| {
            MsgBody::FetchResponse {
                block,
                virtual_parent,
            }
        }),
    ]
    .boxed()
}

prop_compose! {
    fn arb_message()(
        from in 0u32..100,
        view in 0u64..50,
        body in arb_body(),
    ) -> Message {
        Message::new(ReplicaId(from), View(view), body)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Figure 4's rules form a total preorder: comparability is total
    /// (guaranteed by the Ordering return type), comparison is
    /// transitive, and swapping arguments flips the result.
    #[test]
    fn qc_rank_is_total_preorder(a in arb_qc(), b in arb_qc(), c in arb_qc()) {
        let ab = qc_rank_cmp(&a, &b);
        let ba = qc_rank_cmp(&b, &a);
        prop_assert_eq!(ab, ba.reverse());
        let bc = qc_rank_cmp(&b, &c);
        let ac = qc_rank_cmp(&a, &c);
        if ab == Ordering::Equal && bc == Ordering::Equal {
            prop_assert_eq!(ac, Ordering::Equal);
        }
        if (ab != Ordering::Less) && (bc != Ordering::Less) {
            prop_assert_ne!(ac, Ordering::Less);
        }
    }

    /// Rank agrees with Figure 4 rule by rule.
    #[test]
    fn qc_rank_matches_figure4(a in arb_qc(), b in arb_qc()) {
        let expected = if a.view() != b.view() {
            a.view().cmp(&b.view())
        } else {
            let (ha, hb) = (a.phase().is_high_class(), b.phase().is_high_class());
            if ha != hb {
                ha.cmp(&hb)
            } else if ha {
                a.height().cmp(&b.height())
            } else {
                Ordering::Equal
            }
        };
        prop_assert_eq!(qc_rank_cmp(&a, &b), expected);
    }

    /// Block rank is irreflexive and asymmetric (a strict partial order).
    #[test]
    fn block_rank_is_strict_partial_order(a in arb_meta(), b in arb_meta(), c in arb_meta()) {
        prop_assert!(!block_rank_gt(&a, &a));
        if block_rank_gt(&a, &b) {
            prop_assert!(!block_rank_gt(&b, &a));
        }
        if block_rank_gt(&a, &b) && block_rank_gt(&b, &c) {
            prop_assert!(block_rank_gt(&a, &c));
        }
    }

    /// Codec: decode(encode(m)) == m and the encoding length equals the
    /// modeled wire length, with and without the shadow optimisation.
    #[test]
    fn codec_round_trip(msg in arb_message(), shadow in any::<bool>()) {
        let encoded = encode_message(&msg, shadow);
        prop_assert_eq!(encoded.len(), msg.wire_len(shadow));
        let decoded = decode_message(&encoded).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    /// Truncating any encoding never panics and always errors.
    #[test]
    fn codec_rejects_truncation(msg in arb_message(), frac in 0.0f64..1.0) {
        let encoded = encode_message(&msg, false);
        let cut = ((encoded.len() as f64) * frac) as usize;
        if cut < encoded.len() {
            prop_assert!(decode_message(&encoded[..cut]).is_err());
        }
    }

    /// Block ids are deterministic and collision-free across distinct
    /// metadata within the generated domain.
    #[test]
    fn block_ids_deterministic(b in arb_block()) {
        let rebuilt = match b.parent_id() {
            Some(p) => Block::new_normal(p, b.pview(), b.view(), b.height(), b.payload().clone(), *b.justify()),
            None => Block::new_virtual(b.pview(), b.view(), b.height(), b.payload().clone(), *b.justify()),
        };
        prop_assert_eq!(rebuilt.id(), b.id());
    }
}
