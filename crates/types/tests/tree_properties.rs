//! Property tests for the block tree: random trees preserve the
//! extension/conflict algebra and the committed chain stays linear.

use marlin_types::{Batch, Block, BlockId, BlockStore, Height, Justify, Qc, View};
use proptest::prelude::*;

/// Builds a random tree: each new block picks a random existing parent.
fn build_tree(parent_choices: &[u8]) -> (BlockStore, Vec<Block>) {
    let mut store = BlockStore::new();
    let mut blocks = vec![store.genesis().clone()];
    for (i, &choice) in parent_choices.iter().enumerate() {
        let parent = &blocks[choice as usize % blocks.len()];
        let block = Block::new_normal(
            parent.id(),
            parent.view(),
            View(i as u64 + 1),
            parent.height().next(),
            Batch::empty(),
            Justify::One(Qc::genesis(parent.id())),
        );
        store.insert(block.clone());
        blocks.push(block);
    }
    (store, blocks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `is_extension` is reflexive, genesis-rooted, and antisymmetric
    /// for distinct blocks; `conflicts` is symmetric and irreflexive.
    #[test]
    fn extension_and_conflict_algebra(choices in prop::collection::vec(any::<u8>(), 1..24)) {
        let (store, blocks) = build_tree(&choices);
        for a in &blocks {
            prop_assert!(store.is_extension(&a.id(), &a.id()));
            prop_assert!(store.is_extension(&a.id(), &BlockId::GENESIS));
            prop_assert!(!store.conflicts(&a.id(), &a.id()));
        }
        for a in &blocks {
            for b in &blocks {
                if a.id() == b.id() {
                    continue;
                }
                let ab = store.is_extension(&a.id(), &b.id());
                let ba = store.is_extension(&b.id(), &a.id());
                prop_assert!(!(ab && ba), "two distinct blocks extend each other");
                prop_assert_eq!(store.conflicts(&a.id(), &b.id()), !(ab || ba));
                prop_assert_eq!(
                    store.conflicts(&a.id(), &b.id()),
                    store.conflicts(&b.id(), &a.id())
                );
            }
        }
    }

    /// Heights along any branch strictly decrease toward genesis.
    #[test]
    fn branch_heights_decrease(choices in prop::collection::vec(any::<u8>(), 1..24)) {
        let (store, blocks) = build_tree(&choices);
        for b in &blocks {
            let heights: Vec<u64> = store
                .branch(&b.id())
                .map(|id| store.get(&id).expect("in store").height().0)
                .collect();
            for w in heights.windows(2) {
                prop_assert_eq!(w[0], w[1] + 1, "branch heights must step by one");
            }
            prop_assert_eq!(*heights.last().expect("nonempty"), 0, "branch ends at genesis");
        }
    }

    /// Committing any block commits exactly its uncommitted ancestors,
    /// in order; committing a conflicting block afterwards fails.
    #[test]
    fn commit_is_linear(choices in prop::collection::vec(any::<u8>(), 2..24), pick in any::<u8>()) {
        let (mut store, blocks) = build_tree(&choices);
        let target = &blocks[1 + (pick as usize % (blocks.len() - 1))];
        let newly = store.commit(&target.id()).expect("commit succeeds");
        // Newly committed = the branch to genesis, minus genesis, oldest first.
        let mut expect: Vec<BlockId> = store.branch(&target.id()).collect();
        expect.reverse();
        let expect: Vec<BlockId> = expect.into_iter().filter(|id| *id != BlockId::GENESIS).collect();
        let got: Vec<BlockId> = newly.iter().map(Block::id).collect();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(store.last_committed(), target.id());

        // Any block conflicting with the committed tip cannot commit.
        for other in &blocks {
            if store.conflicts(&other.id(), &target.id()) {
                prop_assert!(store.commit(&other.id()).is_err());
            }
        }
    }

    /// Pruning never removes the committed tip or genesis, and retained
    /// blocks still resolve their committed ancestry.
    #[test]
    fn prune_preserves_committed_tip(
        choices in prop::collection::vec(any::<u8>(), 2..24),
        keep in 1usize..6,
        height in 0u64..12,
    ) {
        let (mut store, blocks) = build_tree(&choices);
        let tip = blocks.last().expect("nonempty");
        // Commit the deepest chain through the last block's branch.
        let deepest = store
            .branch(&tip.id())
            .last()
            .expect("branch nonempty");
        let _ = deepest;
        store.commit(&tip.id()).expect("tip commits");
        store.prune(Height(height), keep);
        prop_assert!(store.contains(&BlockId::GENESIS));
        prop_assert!(store.contains(&store.last_committed()));
        prop_assert_eq!(store.last_committed(), tip.id());
    }
}
