//! Property tests for the zero-copy fan-out invariants: batch clones
//! are refcount bumps, the shadow-block wire model matches the real
//! codec byte for byte, and decoding a shadow pair reconstructs a
//! shared payload allocation rather than two copies.

use bytes::Bytes;
use marlin_types::codec::{decode_message, encode_message};
use marlin_types::{
    Batch, Block, Height, Justify, Message, MsgBody, Phase, Proposal, Qc, ReplicaId, Transaction,
    View,
};
use proptest::prelude::*;

prop_compose! {
    fn arb_tx()(
        id in any::<u64>(),
        client in 0u32..64,
        len in 0usize..300,
        ts in any::<u64>(),
        fill in any::<u8>(),
    ) -> Transaction {
        Transaction::new(id, client, Bytes::from(vec![fill; len]), ts)
    }
}

fn arb_batch() -> impl Strategy<Value = Batch> {
    prop::collection::vec(arb_tx(), 0..8).prop_map(Batch::new)
}

/// A two-proposal PRE-PREPARE whose blocks carry the same payload — the
/// shape the shadow-block optimisation (Section IV-D) deduplicates.
fn shadow_proposal(payload: Batch, view: u64) -> Message {
    let g = Block::genesis();
    let b1 = Block::new_normal(
        g.id(),
        g.view(),
        View(view),
        g.height().next(),
        payload.clone(),
        Justify::One(Qc::genesis(g.id())),
    );
    let b2 = Block::new_virtual(
        g.view(),
        View(view),
        g.height().plus(2),
        payload,
        Justify::One(Qc::genesis(g.id())),
    );
    let prop = Proposal {
        phase: Phase::PrePrepare,
        blocks: vec![b1, b2],
        justify: Justify::None,
        vc_proof: Vec::new(),
    };
    Message::new(ReplicaId(0), View(view), MsgBody::Proposal(prop))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Cloning a batch shares the backing allocation (`Arc::ptr_eq`) —
    /// what makes per-recipient broadcast cost O(1) — and the clone is
    /// indistinguishable from the original.
    #[test]
    fn batch_clone_is_refcount_bump(batch in arb_batch()) {
        let clone = batch.clone();
        prop_assert!(batch.ptr_eq(&clone));
        prop_assert_eq!(&batch, &clone);
        prop_assert_eq!(batch.wire_len(), clone.wire_len());
        // And so does cloning a block built around it.
        let g = Block::genesis();
        let block = Block::new_normal(
            g.id(), g.view(), View(1), Height(1), batch, Justify::None,
        );
        prop_assert!(block.payload().ptr_eq(block.clone().payload()));
    }

    /// The modeled wire length of a shadow pair matches the codec's real
    /// encoding byte for byte, with the optimisation on and off, and the
    /// saving is exactly the second block's payload bytes.
    #[test]
    fn shadow_wire_model_matches_codec(payload in arb_batch(), view in 2u64..40) {
        let msg = shadow_proposal(payload, view);
        let with = encode_message(&msg, true);
        let without = encode_message(&msg, false);
        prop_assert_eq!(with.len(), msg.wire_len(true));
        prop_assert_eq!(without.len(), msg.wire_len(false));
        let MsgBody::Proposal(p) = &msg.body else { unreachable!() };
        let payload_bytes = p.blocks[1].wire_len() - p.blocks[1].header_wire_len();
        prop_assert_eq!(without.len() - with.len(), payload_bytes);
        prop_assert_eq!(&decode_message(&with).unwrap(), &msg);
        prop_assert_eq!(&decode_message(&without).unwrap(), &msg);
    }

    /// Decoding a deduplicated shadow pair reconstructs one shared
    /// payload allocation, not two copies.
    #[test]
    fn decoded_shadow_pair_shares_payload(payload in arb_batch(), view in 2u64..40) {
        let msg = shadow_proposal(payload, view);
        let decoded = decode_message(&encode_message(&msg, true)).unwrap();
        let MsgBody::Proposal(p) = &decoded.body else { unreachable!() };
        prop_assert!(p.blocks[0].payload().ptr_eq(p.blocks[1].payload()));
    }
}
