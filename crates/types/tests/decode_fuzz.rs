//! Decode-never-panics fuzzing: `decode_message` must treat its input
//! as hostile. Arbitrary byte strings, bit-flipped and truncated valid
//! frames, and hand-crafted length bombs must all return a clean
//! `DecodeError` — no panic, and no allocation sized beyond what the
//! received bytes can back ([`MAX_FRAME_LEN`] at the outside).

use bytes::Bytes;
use marlin_crypto::sha256;
use marlin_types::codec::{decode_message, encode_message, DecodeError, MAX_FRAME_LEN};
use marlin_types::{
    Batch, Block, BlockId, Height, Justify, Message, MsgBody, Phase, Proposal, ReplicaId,
    Transaction, View,
};
use proptest::prelude::*;

/// A small but structurally rich valid frame: a one-block proposal
/// carrying a three-transaction batch.
fn sample_frame() -> Vec<u8> {
    let txs = vec![
        Transaction::new(1, 7, Bytes::from_static(b"pay alice"), 10),
        Transaction::new(2, 7, Bytes::from_static(b"pay bob"), 20),
        Transaction::new(3, 9, Bytes::from_static(b""), 30),
    ];
    let block = Block::new_normal(
        BlockId::from_digest(sha256(b"parent")),
        View(1),
        View(2),
        Height(2),
        Batch::new(txs),
        Justify::None,
    );
    let msg = Message {
        from: ReplicaId(1),
        view: View(2),
        body: MsgBody::Proposal(Proposal {
            phase: Phase::Prepare,
            blocks: vec![block],
            justify: Justify::None,
            vc_proof: Vec::new(),
        }),
    };
    encode_message(&msg, false).to_vec()
}

/// Valid frames for each sync wire message: a populated snapshot
/// response (block + QC) and a two-block range response, plus the two
/// request shapes.
fn sync_frames() -> Vec<Vec<u8>> {
    let block = |h: u64| {
        Block::new_normal(
            BlockId::from_digest(sha256(b"parent")),
            View(1),
            View(2),
            Height(h),
            Batch::new(vec![Transaction::new(1, 7, Bytes::from_static(b"tx"), 10)]),
            Justify::None,
        )
    };
    let qc = marlin_types::Qc::genesis(block(4).id());
    let bodies = vec![
        MsgBody::SnapshotRequest,
        MsgBody::SnapshotResponse {
            snapshot: Some((block(4), qc)),
        },
        MsgBody::SnapshotResponse { snapshot: None },
        MsgBody::BlockRangeRequest {
            from_height: Height(3),
            to_height: Height(19),
        },
        MsgBody::BlockRangeResponse {
            from_height: Height(3),
            blocks: vec![block(3), block(4)],
        },
    ];
    bodies
        .into_iter()
        .map(|body| encode_message(&Message::new(ReplicaId(2), View(2), body), false).to_vec())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary garbage never panics.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_message(&bytes);
    }

    /// Corrupting any one byte of any sync-message frame never panics;
    /// truncating it anywhere never panics either.
    #[test]
    fn mangled_sync_frames_never_panic(
        which in 0usize..5,
        pos in any::<usize>(),
        bit in 0u8..8,
        cut in any::<usize>(),
    ) {
        let mut frame = sync_frames().swap_remove(which);
        let _ = decode_message(&frame[..cut % (frame.len() + 1)]);
        let pos = pos % frame.len();
        frame[pos] ^= 1 << bit;
        let _ = decode_message(&frame);
    }

    /// Corrupting any one byte of a valid frame never panics; flipped
    /// length prefixes must fail cleanly, not over-allocate.
    #[test]
    fn flipped_valid_frames_never_panic(pos in any::<usize>(), bit in 0u8..8) {
        let mut frame = sample_frame();
        let pos = pos % frame.len();
        frame[pos] ^= 1 << bit;
        let _ = decode_message(&frame);
    }

    /// Truncating a valid frame at any point never panics.
    #[test]
    fn truncated_valid_frames_never_panic(cut in any::<usize>()) {
        let frame = sample_frame();
        let _ = decode_message(&frame[..cut % (frame.len() + 1)]);
    }
}

#[test]
fn oversized_frame_rejected_before_decoding() {
    let bytes = vec![0u8; MAX_FRAME_LEN + 1];
    assert_eq!(
        decode_message(&bytes),
        Err(DecodeError::FieldTooLarge {
            what: "frame",
            len: MAX_FRAME_LEN + 1,
            max: MAX_FRAME_LEN,
        })
    );
}

/// A frame whose batch header claims `u32::MAX` transactions with no
/// bytes behind them: must be rejected by the count bound, not fed to
/// `Vec::with_capacity`.
#[test]
fn batch_count_bomb_rejected() {
    let mut frame = Vec::new();
    frame.extend_from_slice(&1u32.to_le_bytes()); // from
    frame.extend_from_slice(&2u64.to_le_bytes()); // view
    frame.push(5); // FetchResponse → block → batch
    frame.push(1); // ParentLink::Normal
    frame.extend_from_slice(&[0u8; 32]); // parent digest
    frame.extend_from_slice(&1u64.to_le_bytes()); // pview
    frame.extend_from_slice(&2u64.to_le_bytes()); // view
    frame.extend_from_slice(&2u64.to_le_bytes()); // height
    frame.push(0); // Justify::None
    frame.extend_from_slice(&u32::MAX.to_le_bytes()); // tx count bomb
    match decode_message(&frame) {
        Err(DecodeError::FieldTooLarge { what, len, .. }) => {
            assert_eq!(what, "Batch.count");
            assert_eq!(len, u32::MAX as usize);
        }
        other => panic!("expected FieldTooLarge, got {other:?}"),
    }
}

/// A proposal claiming a `u16::MAX`-certificate view-change proof with
/// an empty tail: rejected by the per-item lower bound.
#[test]
fn vc_proof_count_bomb_rejected() {
    let mut frame = Vec::new();
    frame.extend_from_slice(&1u32.to_le_bytes()); // from
    frame.extend_from_slice(&2u64.to_le_bytes()); // view
    frame.push(0); // Proposal
    frame.push(1); // Phase::Prepare
    frame.push(0); // zero blocks
    frame.push(0); // Justify::None
    frame.extend_from_slice(&u16::MAX.to_le_bytes()); // vc_proof bomb
    match decode_message(&frame) {
        Err(DecodeError::FieldTooLarge { what, len, .. }) => {
            assert_eq!(what, "Proposal.vc_proof");
            assert_eq!(len, u16::MAX as usize);
        }
        other => panic!("expected FieldTooLarge, got {other:?}"),
    }
}

/// A `BlockRangeResponse` claiming `u16::MAX` blocks with an empty
/// tail: the per-block minimum wire length must reject the count
/// before any allocation happens.
#[test]
fn block_range_count_bomb_rejected() {
    let mut frame = Vec::new();
    frame.extend_from_slice(&1u32.to_le_bytes()); // from
    frame.extend_from_slice(&2u64.to_le_bytes()); // view
    frame.push(11); // BlockRangeResponse
    frame.extend_from_slice(&3u64.to_le_bytes()); // from_height
    frame.extend_from_slice(&u16::MAX.to_le_bytes()); // block count bomb
    match decode_message(&frame) {
        Err(DecodeError::FieldTooLarge { what, len, .. }) => {
            assert_eq!(what, "BlockRangeResponse.blocks");
            assert_eq!(len, u16::MAX as usize);
        }
        other => panic!("expected FieldTooLarge, got {other:?}"),
    }
}

/// The bounds must not reject honest frames: the samples round-trip.
#[test]
fn sample_frame_still_round_trips() {
    let frame = sample_frame();
    let msg = decode_message(&frame).expect("valid frame decodes");
    assert_eq!(encode_message(&msg, false).to_vec(), frame);
    for frame in sync_frames() {
        let msg = decode_message(&frame).expect("valid sync frame decodes");
        assert_eq!(encode_message(&msg, false).to_vec(), frame);
    }
}
