//! Blocks — the paper's `b = [pl, pview, view, height, op, justify]`.

use crate::ids::{Height, View};
use crate::qc::{Phase, Qc, QcSeed};
use crate::transaction::Batch;
use marlin_crypto::{Digest, KeyStore, Sha256};
use std::fmt;

/// Identifies a block by the SHA-256 digest of its contents.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(Digest);

impl BlockId {
    /// The well-known id of the genesis block (the zero digest).
    pub const GENESIS: BlockId = BlockId(Digest::ZERO);

    /// Wraps a digest as a block id.
    pub fn from_digest(digest: Digest) -> Self {
        BlockId(digest)
    }

    /// The underlying digest.
    pub fn digest(&self) -> Digest {
        self.0
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b:{}", self.0.short())
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.short())
    }
}

/// Whether a block is a normal block or a *virtual* block (a view-change
/// placeholder whose parent link is ⊥; Section V-A).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BlockKind {
    /// An ordinary block with a concrete parent link.
    Normal,
    /// A view-change virtual block; its parent is discovered via the
    /// accompanying `prepareQC` (`vc`) during validation.
    Virtual,
}

/// A block's parent link (`pl`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ParentLink {
    /// Hash of the parent block.
    Hash(BlockId),
    /// `⊥` — used by virtual blocks (and the genesis block).
    Nil,
}

/// One or two quorum certificates justifying a block or message
/// (`justify` in the paper; "m.justify includes one or two QCs").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Justify {
    /// No certificate (genesis only).
    #[default]
    None,
    /// A single certificate.
    One(Qc),
    /// A `(qc, vc)` pair: a `pre-prepareQC` for a virtual block together
    /// with the `prepareQC` for the virtual block's parent.
    Two(Qc, Qc),
}

impl Justify {
    /// The primary certificate, if any.
    pub fn qc(&self) -> Option<&Qc> {
        match self {
            Justify::None => None,
            Justify::One(qc) | Justify::Two(qc, _) => Some(qc),
        }
    }

    /// The validating `prepareQC` of a `(qc, vc)` pair, if present.
    pub fn vc(&self) -> Option<&Qc> {
        match self {
            Justify::Two(_, vc) => Some(vc),
            _ => None,
        }
    }

    /// Iterates over all certificates carried.
    pub fn iter(&self) -> JustifyIter<'_> {
        JustifyIter {
            justify: self,
            next: 0,
        }
    }

    /// Verifies every carried certificate against `keys`.
    pub fn verify(&self, keys: &KeyStore) -> bool {
        self.iter().all(|qc| qc.verify(keys))
    }

    /// Total wire bytes of the carried certificates plus a 1-byte tag.
    pub fn wire_len(&self) -> usize {
        1 + self.iter().map(Qc::wire_len).sum::<usize>()
    }

    /// Total authenticators carried, under the paper's metric.
    pub fn authenticator_count(&self) -> usize {
        self.iter().map(Qc::authenticator_count).sum()
    }

    fn hash_into(&self, h: &mut Sha256) {
        match self {
            Justify::None => h.update(&[0u8]),
            Justify::One(qc) => {
                h.update(&[1u8]);
                h.update(qc.signing_bytes());
                h.update(qc.sig().agg().as_bytes());
            }
            Justify::Two(qc, vc) => {
                h.update(&[2u8]);
                for q in [qc, vc] {
                    h.update(q.signing_bytes());
                    h.update(q.sig().agg().as_bytes());
                }
            }
        }
    }
}

/// Iterator over the certificates in a [`Justify`].
#[derive(Clone, Debug)]
pub struct JustifyIter<'a> {
    justify: &'a Justify,
    next: u8,
}

impl<'a> Iterator for JustifyIter<'a> {
    type Item = &'a Qc;

    fn next(&mut self) -> Option<&'a Qc> {
        let item = match (self.justify, self.next) {
            (Justify::One(qc), 0) | (Justify::Two(qc, _), 0) => Some(qc),
            (Justify::Two(_, vc), 1) => Some(vc),
            _ => None,
        };
        if item.is_some() {
            self.next += 1;
        }
        item
    }
}

/// Compact block metadata carried in `VIEW-CHANGE` messages (the paper's
/// `m.block = lb`) and used for block-rank comparison without shipping
/// operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BlockMeta {
    /// The block's id.
    pub id: BlockId,
    /// The block's view.
    pub view: View,
    /// The block's height.
    pub height: Height,
    /// View of the block's parent.
    pub pview: View,
    /// Normal or virtual.
    pub kind: BlockKind,
    /// Whether the block's `justify` is a `prepareQC` formed in the
    /// block's own view — the condition under which block rank can
    /// exceed another same-view block's rank (Section V-A).
    pub rank_boost: bool,
}

impl BlockMeta {
    /// Metadata for the genesis block.
    pub fn genesis() -> Self {
        BlockMeta {
            id: BlockId::GENESIS,
            view: View::GENESIS,
            height: Height::GENESIS,
            pview: View::GENESIS,
            kind: BlockKind::Normal,
            rank_boost: false,
        }
    }

    /// Bytes this metadata occupies on the wire.
    pub const WIRE_LEN: usize = 32 + 8 + 8 + 8 + 1 + 1;
}

/// A block in the tree of blocks.
///
/// The id is computed once at construction from all content fields
/// (parent link, views, height, operations, justify).
///
/// # Example
///
/// ```
/// use marlin_types::{Batch, Block, Height, Justify, Qc, View, BlockId};
///
/// let genesis = Block::genesis();
/// let qc = Qc::genesis(genesis.id());
/// let child = Block::new_normal(
///     genesis.id(),
///     genesis.view(),
///     View(1),
///     genesis.height().next(),
///     Batch::empty(),
///     Justify::One(qc),
/// );
/// assert_eq!(child.height(), Height(1));
/// assert_ne!(child.id(), BlockId::GENESIS);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Block {
    parent: ParentLink,
    pview: View,
    view: View,
    height: Height,
    payload: Batch,
    justify: Justify,
    id: BlockId,
}

impl Block {
    /// The genesis block: view 0, height 0, empty payload, id
    /// [`BlockId::GENESIS`].
    pub fn genesis() -> Self {
        Block {
            parent: ParentLink::Nil,
            pview: View::GENESIS,
            view: View::GENESIS,
            height: Height::GENESIS,
            payload: Batch::empty(),
            justify: Justify::None,
            id: BlockId::GENESIS,
        }
    }

    /// Creates a normal block extending `parent`.
    pub fn new_normal(
        parent: BlockId,
        pview: View,
        view: View,
        height: Height,
        payload: Batch,
        justify: Justify,
    ) -> Self {
        Self::build(
            ParentLink::Hash(parent),
            pview,
            view,
            height,
            payload,
            justify,
        )
    }

    /// Creates a virtual block (parent link ⊥) for the view-change
    /// pre-prepare phase; its height is `qc.height + 2` per Case V1.
    pub fn new_virtual(
        pview: View,
        view: View,
        height: Height,
        payload: Batch,
        justify: Justify,
    ) -> Self {
        Self::build(ParentLink::Nil, pview, view, height, payload, justify)
    }

    fn build(
        parent: ParentLink,
        pview: View,
        view: View,
        height: Height,
        payload: Batch,
        justify: Justify,
    ) -> Self {
        let mut b = Block {
            parent,
            pview,
            view,
            height,
            payload,
            justify,
            id: BlockId::GENESIS,
        };
        b.id = b.compute_id();
        b
    }

    fn compute_id(&self) -> BlockId {
        let mut h = Sha256::new();
        h.update(b"marlin.block.v1");
        match self.parent {
            ParentLink::Hash(id) => {
                h.update(&[1u8]);
                h.update(id.digest().as_bytes());
            }
            ParentLink::Nil => h.update(&[0u8]),
        }
        h.update(&self.pview.0.to_le_bytes());
        h.update(&self.view.0.to_le_bytes());
        h.update(&self.height.0.to_le_bytes());
        h.update(&(self.payload.len() as u64).to_le_bytes());
        for tx in self.payload.iter() {
            h.update(&tx.id.to_le_bytes());
            h.update(&tx.client.to_le_bytes());
            h.update(&tx.payload);
        }
        self.justify.hash_into(&mut h);
        BlockId::from_digest(h.finalize())
    }

    /// The block's id.
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// The parent link `pl`.
    pub fn parent(&self) -> ParentLink {
        self.parent
    }

    /// Parent id, for normal blocks.
    pub fn parent_id(&self) -> Option<BlockId> {
        match self.parent {
            ParentLink::Hash(id) => Some(id),
            ParentLink::Nil => None,
        }
    }

    /// View of the parent block (`pview`).
    pub fn pview(&self) -> View {
        self.pview
    }

    /// View in which the block was proposed.
    pub fn view(&self) -> View {
        self.view
    }

    /// The block's height.
    pub fn height(&self) -> Height {
        self.height
    }

    /// The client operations `op`.
    pub fn payload(&self) -> &Batch {
        &self.payload
    }

    /// The quorum certificate(s) for the parent block.
    pub fn justify(&self) -> &Justify {
        &self.justify
    }

    /// Normal or virtual.
    pub fn kind(&self) -> BlockKind {
        if matches!(self.parent, ParentLink::Nil) && self.height != Height::GENESIS {
            BlockKind::Virtual
        } else {
            BlockKind::Normal
        }
    }

    /// Whether this block is virtual.
    pub fn is_virtual(&self) -> bool {
        self.kind() == BlockKind::Virtual
    }

    /// Whether this is the genesis block.
    pub fn is_genesis(&self) -> bool {
        self.id == BlockId::GENESIS
    }

    /// Compact metadata for view-change messages and rank comparison.
    pub fn meta(&self) -> BlockMeta {
        let rank_boost = match self.justify.qc() {
            Some(qc) => qc.phase() == Phase::Prepare && qc.view() == self.view,
            None => false,
        };
        BlockMeta {
            id: self.id,
            view: self.view,
            height: self.height,
            pview: self.pview,
            kind: self.kind(),
            rank_boost,
        }
    }

    /// The seed a vote for this block signs, in `phase` at `qc_view`.
    pub fn vote_seed(&self, phase: Phase, qc_view: View) -> QcSeed {
        QcSeed {
            phase,
            view: qc_view,
            block: self.id,
            height: self.height,
            block_view: self.view,
            pview: self.pview,
            block_kind: self.kind(),
        }
    }

    /// Wire bytes of the block, counting its full payload.
    pub fn wire_len(&self) -> usize {
        self.header_wire_len() + self.payload.wire_len()
    }

    /// Wire bytes excluding the payload — the size of a *shadow* block
    /// that references another proposal's operations (Section IV-D).
    pub fn header_wire_len(&self) -> usize {
        // parent(1+32) + pview(8) + view(8) + height(8) + justify
        33 + 24 + self.justify.wire_len()
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Block({} {:?} {:?} {:?} {} txs)",
            self.id,
            self.kind(),
            self.view,
            self.height,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::Transaction;
    use bytes::Bytes;

    fn child_of(parent: &Block, view: u64, payload: Batch) -> Block {
        Block::new_normal(
            parent.id(),
            parent.view(),
            View(view),
            parent.height().next(),
            payload,
            Justify::One(Qc::genesis(parent.id())),
        )
    }

    #[test]
    fn genesis_properties() {
        let g = Block::genesis();
        assert!(g.is_genesis());
        assert_eq!(g.kind(), BlockKind::Normal);
        assert_eq!(g.height(), Height::GENESIS);
        assert_eq!(g.parent_id(), None);
        assert!(!g.is_virtual());
    }

    #[test]
    fn id_binds_every_field() {
        let g = Block::genesis();
        let base = child_of(&g, 1, Batch::empty());
        let diff_view = child_of(&g, 2, Batch::empty());
        assert_ne!(base.id(), diff_view.id());

        let tx = Transaction::new(7, 0, Bytes::from_static(b"x"), 0);
        let diff_payload = child_of(&g, 1, Batch::new(vec![tx]));
        assert_ne!(base.id(), diff_payload.id());

        let diff_height = Block::new_normal(
            g.id(),
            g.view(),
            View(1),
            Height(5),
            Batch::empty(),
            Justify::One(Qc::genesis(g.id())),
        );
        assert_ne!(base.id(), diff_height.id());
    }

    #[test]
    fn id_is_deterministic() {
        let g = Block::genesis();
        assert_eq!(
            child_of(&g, 1, Batch::empty()).id(),
            child_of(&g, 1, Batch::empty()).id()
        );
    }

    #[test]
    fn id_excludes_submission_time() {
        let g = Block::genesis();
        let t1 = Transaction::new(7, 0, Bytes::from_static(b"x"), 100);
        let t2 = Transaction::new(7, 0, Bytes::from_static(b"x"), 999);
        assert_eq!(
            child_of(&g, 1, Batch::new(vec![t1])).id(),
            child_of(&g, 1, Batch::new(vec![t2])).id()
        );
    }

    #[test]
    fn virtual_block_kind() {
        let b = Block::new_virtual(View(1), View(2), Height(3), Batch::empty(), Justify::None);
        assert!(b.is_virtual());
        assert_eq!(b.kind(), BlockKind::Virtual);
        assert_eq!(b.parent_id(), None);
    }

    #[test]
    fn shadow_header_smaller_than_full_block() {
        let g = Block::genesis();
        let tx = Transaction::new(1, 0, Bytes::from(vec![0u8; 150]), 0);
        let b = child_of(&g, 1, Batch::new(vec![tx]));
        assert!(b.header_wire_len() < b.wire_len());
        assert_eq!(b.wire_len() - b.header_wire_len(), b.payload().wire_len());
    }

    #[test]
    fn meta_rank_boost_requires_same_view_prepare_justify() {
        let g = Block::genesis();
        // Justify is the genesis QC (view 0) but block is view 1: no boost.
        let b = child_of(&g, 1, Batch::empty());
        assert!(!b.meta().rank_boost);
    }

    #[test]
    fn justify_iteration() {
        let qc = Qc::genesis(BlockId::GENESIS);
        assert_eq!(Justify::None.iter().count(), 0);
        assert_eq!(Justify::One(qc).iter().count(), 1);
        assert_eq!(Justify::Two(qc, qc).iter().count(), 2);
        assert!(Justify::Two(qc, qc).vc().is_some());
        assert!(Justify::One(qc).vc().is_none());
    }

    #[test]
    fn vote_seed_reflects_block() {
        let g = Block::genesis();
        let b = child_of(&g, 3, Batch::empty());
        let seed = b.vote_seed(Phase::Prepare, View(3));
        assert_eq!(seed.block, b.id());
        assert_eq!(seed.height, b.height());
        assert_eq!(seed.block_view, View(3));
        assert_eq!(seed.block_kind, BlockKind::Normal);
    }
}
