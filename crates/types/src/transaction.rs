//! Client operations and batches.

use bytes::Bytes;
use std::fmt;

/// A client operation (`op` in the paper's block syntax).
///
/// The evaluation uses 150-byte transactions and replies, plus a "no-op"
/// configuration with empty payloads (Section VI). The payload is real
/// bytes so application state machines (e.g. the replicated KV example)
/// can interpret them, while the simulator uses [`Transaction::wire_len`]
/// for its bandwidth model.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Transaction {
    /// Unique transaction id (client id in the high bits, sequence in the
    /// low bits, by convention of the workload generator).
    pub id: u64,
    /// Submitting client.
    pub client: u32,
    /// Operation payload.
    pub payload: Bytes,
    /// Simulation time (ns) at which the client submitted the operation;
    /// used for end-to-end latency measurement. Not part of the signed
    /// content in a real system, carried here for bookkeeping.
    pub submitted_at_ns: u64,
}

impl Transaction {
    /// Fixed per-transaction wire overhead: id + client + length prefix
    /// + client timestamp.
    pub const HEADER_LEN: usize = 8 + 4 + 4 + 8;

    /// Creates a transaction.
    pub fn new(id: u64, client: u32, payload: Bytes, submitted_at_ns: u64) -> Self {
        Transaction { id, client, payload, submitted_at_ns }
    }

    /// A zero-payload transaction (the paper's "no-op request").
    pub fn no_op(id: u64, client: u32, submitted_at_ns: u64) -> Self {
        Transaction { id, client, payload: Bytes::new(), submitted_at_ns }
    }

    /// Bytes this transaction occupies on the wire.
    pub fn wire_len(&self) -> usize {
        Self::HEADER_LEN + self.payload.len()
    }
}

impl fmt::Debug for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tx(#{} c{} {}B)", self.id, self.client, self.payload.len())
    }
}

/// An ordered batch of transactions proposed in one block.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Batch {
    txs: Vec<Transaction>,
}

impl Batch {
    /// The empty batch (used by genesis and leader no-op proposals).
    pub fn empty() -> Self {
        Batch { txs: Vec::new() }
    }

    /// Wraps transactions into a batch.
    pub fn new(txs: Vec<Transaction>) -> Self {
        Batch { txs }
    }

    /// Number of transactions in the batch.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// Whether the batch holds no transactions.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Iterates over the batch's transactions.
    pub fn iter(&self) -> std::slice::Iter<'_, Transaction> {
        self.txs.iter()
    }

    /// Borrows the underlying transactions.
    pub fn transactions(&self) -> &[Transaction] {
        &self.txs
    }

    /// Total wire bytes of all transactions plus the count prefix.
    pub fn wire_len(&self) -> usize {
        4 + self.txs.iter().map(Transaction::wire_len).sum::<usize>()
    }
}

impl fmt::Debug for Batch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Batch({} txs, {}B)", self.txs.len(), self.wire_len())
    }
}

impl FromIterator<Transaction> for Batch {
    fn from_iter<I: IntoIterator<Item = Transaction>>(iter: I) -> Self {
        Batch { txs: iter.into_iter().collect() }
    }
}

impl Extend<Transaction> for Batch {
    fn extend<I: IntoIterator<Item = Transaction>>(&mut self, iter: I) {
        self.txs.extend(iter);
    }
}

impl IntoIterator for Batch {
    type Item = Transaction;
    type IntoIter = std::vec::IntoIter<Transaction>;

    fn into_iter(self) -> Self::IntoIter {
        self.txs.into_iter()
    }
}

impl<'a> IntoIterator for &'a Batch {
    type Item = &'a Transaction;
    type IntoIter = std::slice::Iter<'a, Transaction>;

    fn into_iter(self) -> Self::IntoIter {
        self.txs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(id: u64, len: usize) -> Transaction {
        Transaction::new(id, 0, Bytes::from(vec![0u8; len]), 0)
    }

    #[test]
    fn wire_len_accounts_header_and_payload() {
        let t = tx(1, 150);
        assert_eq!(t.wire_len(), Transaction::HEADER_LEN + 150);
        let noop = Transaction::no_op(2, 0, 0);
        assert_eq!(noop.wire_len(), Transaction::HEADER_LEN);
    }

    #[test]
    fn batch_wire_len_sums() {
        let b = Batch::new(vec![tx(1, 10), tx(2, 20)]);
        assert_eq!(b.wire_len(), 4 + 2 * Transaction::HEADER_LEN + 30);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert!(Batch::empty().is_empty());
    }

    #[test]
    fn batch_collects_and_extends() {
        let mut b: Batch = (0..3).map(|i| tx(i, 1)).collect();
        b.extend([tx(3, 1)]);
        assert_eq!(b.len(), 4);
        let ids: Vec<u64> = (&b).into_iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        let owned: Vec<Transaction> = b.into_iter().collect();
        assert_eq!(owned.len(), 4);
    }
}
