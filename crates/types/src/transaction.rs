//! Client operations and batches.

use bytes::Bytes;
use marlin_crypto::{Digest, Sha256};
use std::fmt;
use std::sync::Arc;

/// A client operation (`op` in the paper's block syntax).
///
/// The evaluation uses 150-byte transactions and replies, plus a "no-op"
/// configuration with empty payloads (Section VI). The payload is real
/// bytes so application state machines (e.g. the replicated KV example)
/// can interpret them, while the simulator uses [`Transaction::wire_len`]
/// for its bandwidth model.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Transaction {
    /// Unique transaction id (client id in the high bits, sequence in the
    /// low bits, by convention of the workload generator).
    pub id: u64,
    /// Submitting client.
    pub client: u32,
    /// Operation payload.
    pub payload: Bytes,
    /// Simulation time (ns) at which the client submitted the operation;
    /// used for end-to-end latency measurement. Not part of the signed
    /// content in a real system, carried here for bookkeeping.
    pub submitted_at_ns: u64,
}

impl Transaction {
    /// Fixed per-transaction wire overhead: id + client + length prefix
    /// + client timestamp.
    pub const HEADER_LEN: usize = 8 + 4 + 4 + 8;

    /// Sentinel client id for operations submitted *at* a replica (the
    /// runtime's load generator, an internal reconfiguration op): there
    /// is no client network round trip, so latency accounting must not
    /// add modeled client legs for them.
    pub const LOCAL_CLIENT: u32 = u32::MAX;

    /// Whether this operation was submitted locally at a replica (see
    /// [`Transaction::LOCAL_CLIENT`]).
    pub fn is_local(&self) -> bool {
        self.client == Self::LOCAL_CLIENT
    }

    /// Creates a transaction.
    pub fn new(id: u64, client: u32, payload: Bytes, submitted_at_ns: u64) -> Self {
        Transaction {
            id,
            client,
            payload,
            submitted_at_ns,
        }
    }

    /// A zero-payload transaction (the paper's "no-op request").
    pub fn no_op(id: u64, client: u32, submitted_at_ns: u64) -> Self {
        Transaction {
            id,
            client,
            payload: Bytes::new(),
            submitted_at_ns,
        }
    }

    /// Bytes this transaction occupies on the wire.
    pub fn wire_len(&self) -> usize {
        Self::HEADER_LEN + self.payload.len()
    }

    /// The client id packed into the high 32 bits of the transaction id
    /// (the workload-generator convention).
    pub fn client_of_id(&self) -> u32 {
        (self.id >> 32) as u32
    }

    /// The per-client sequence number packed into the low 32 bits of
    /// the transaction id.
    pub fn seq_of_id(&self) -> u32 {
        self.id as u32
    }

    /// The transaction's fee bid, by workload convention the first
    /// payload byte (zero for empty payloads). Fees are a lane-selection
    /// hint for the mempool, not signed content, so reusing a payload
    /// byte keeps the wire format and block ids untouched.
    pub fn fee(&self) -> u8 {
        self.payload.first().copied().unwrap_or(0)
    }
}

impl fmt::Debug for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tx(#{} c{} {}B)",
            self.id,
            self.client,
            self.payload.len()
        )
    }
}

/// Identifies a disseminated batch by the SHA-256 digest of its
/// transactions.
///
/// The digest covers exactly the per-transaction fields that
/// [`Block`](crate::Block) ids cover (`id`, `client`, `payload` — not
/// `submitted_at_ns`), so a batch fetched by digest reconstructs a
/// byte-identical block id on every replica regardless of when each
/// replica first saw the transactions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BatchId(Digest);

impl BatchId {
    /// Wraps a digest as a batch id.
    pub fn from_digest(digest: Digest) -> Self {
        BatchId(digest)
    }

    /// The underlying digest.
    pub fn digest(&self) -> Digest {
        self.0
    }
}

impl fmt::Debug for BatchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "batch:{}", self.0.short())
    }
}

impl fmt::Display for BatchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.short())
    }
}

/// An ordered batch of transactions proposed in one block.
///
/// Internally the transactions live behind an `Arc<[Transaction]>`, so
/// cloning a batch — which the simulator does once per broadcast
/// recipient, per phase — is a reference-count bump regardless of batch
/// size. The wire length is computed once at construction for the same
/// reason: the bandwidth model asks for it on every transmission.
///
/// Batches are immutable after construction; [`Batch::extend`] rebuilds
/// the backing allocation and is the one O(n) escape hatch.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Batch {
    txs: Arc<[Transaction]>,
    /// Memoized [`Batch::wire_len`] (count prefix + per-tx wire bytes).
    wire: usize,
}

impl Batch {
    /// The empty batch (used by genesis and leader no-op proposals).
    pub fn empty() -> Self {
        Batch {
            txs: Arc::from(Vec::new()),
            wire: 4,
        }
    }

    /// Wraps transactions into a batch.
    pub fn new(txs: Vec<Transaction>) -> Self {
        let wire = 4 + txs.iter().map(Transaction::wire_len).sum::<usize>();
        Batch {
            txs: Arc::from(txs),
            wire,
        }
    }

    /// Number of transactions in the batch.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// Whether the batch holds no transactions.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Iterates over the batch's transactions.
    pub fn iter(&self) -> std::slice::Iter<'_, Transaction> {
        self.txs.iter()
    }

    /// Borrows the underlying transactions.
    pub fn transactions(&self) -> &[Transaction] {
        &self.txs
    }

    /// Whether `self` and `other` share one backing allocation (i.e. one
    /// is a clone of the other). Clones made for fan-out must satisfy
    /// this — it is what makes them O(1).
    pub fn ptr_eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.txs, &other.txs)
    }

    /// Total wire bytes of all transactions plus the count prefix.
    pub fn wire_len(&self) -> usize {
        self.wire
    }

    /// Content digest for digest-addressed dissemination (see
    /// [`BatchId`] for what it covers and why).
    ///
    /// Each variable-length payload is hashed behind its own length
    /// prefix: without it, the byte boundary between one transaction's
    /// payload and the next transaction's fixed fields is ambiguous,
    /// and two distinct batches could collide on the same digest.
    pub fn digest(&self) -> BatchId {
        let mut h = Sha256::new();
        h.update(b"marlin.batch.v1");
        h.update(&(self.txs.len() as u64).to_le_bytes());
        for tx in self.txs.iter() {
            h.update(&tx.id.to_le_bytes());
            h.update(&tx.client.to_le_bytes());
            h.update(&(tx.payload.len() as u32).to_le_bytes());
            h.update(&tx.payload);
        }
        BatchId::from_digest(h.finalize())
    }
}

impl Default for Batch {
    fn default() -> Self {
        Batch::empty()
    }
}

impl fmt::Debug for Batch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Batch({} txs, {}B)", self.txs.len(), self.wire_len())
    }
}

impl FromIterator<Transaction> for Batch {
    fn from_iter<I: IntoIterator<Item = Transaction>>(iter: I) -> Self {
        Batch::new(iter.into_iter().collect())
    }
}

impl Extend<Transaction> for Batch {
    /// Rebuilds the backing allocation (copy-on-write): existing clones
    /// of this batch keep the old contents.
    fn extend<I: IntoIterator<Item = Transaction>>(&mut self, iter: I) {
        let mut txs = self.txs.to_vec();
        txs.extend(iter);
        *self = Batch::new(txs);
    }
}

impl IntoIterator for Batch {
    type Item = Transaction;
    type IntoIter = std::vec::IntoIter<Transaction>;

    // The iterator must own its items (`self` is consumed but the slice
    // may be shared), so a Vec is unavoidable; Transaction clones are
    // cheap — the payload is refcounted.
    #[allow(clippy::unnecessary_to_owned)]
    fn into_iter(self) -> Self::IntoIter {
        self.txs.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Batch {
    type Item = &'a Transaction;
    type IntoIter = std::slice::Iter<'a, Transaction>;

    fn into_iter(self) -> Self::IntoIter {
        self.txs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(id: u64, len: usize) -> Transaction {
        Transaction::new(id, 0, Bytes::from(vec![0u8; len]), 0)
    }

    #[test]
    fn wire_len_accounts_header_and_payload() {
        let t = tx(1, 150);
        assert_eq!(t.wire_len(), Transaction::HEADER_LEN + 150);
        let noop = Transaction::no_op(2, 0, 0);
        assert_eq!(noop.wire_len(), Transaction::HEADER_LEN);
    }

    #[test]
    fn batch_wire_len_sums() {
        let b = Batch::new(vec![tx(1, 10), tx(2, 20)]);
        assert_eq!(b.wire_len(), 4 + 2 * Transaction::HEADER_LEN + 30);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert!(Batch::empty().is_empty());
    }

    #[test]
    fn batch_clone_shares_backing_storage() {
        let b = Batch::new((0..1000).map(|i| tx(i, 150)).collect());
        let c = b.clone();
        assert!(b.ptr_eq(&c), "clone must be a refcount bump, not a copy");
        assert_eq!(b, c);
        // Extending one side rebuilds it and leaves the other untouched.
        let mut d = c.clone();
        d.extend([tx(1000, 1)]);
        assert!(!d.ptr_eq(&b));
        assert_eq!(b.len(), 1000);
        assert_eq!(d.len(), 1001);
    }

    #[test]
    fn batch_wire_len_is_memoized_consistently() {
        for sizes in [vec![], vec![0usize], vec![10, 20, 0, 150]] {
            let b: Batch = sizes
                .iter()
                .enumerate()
                .map(|(i, &len)| tx(i as u64, len))
                .collect();
            let recomputed = 4 + b.iter().map(Transaction::wire_len).sum::<usize>();
            assert_eq!(b.wire_len(), recomputed);
        }
    }

    #[test]
    fn digest_excludes_submission_time_but_binds_content() {
        let a = Batch::new(vec![
            Transaction::new(1, 0, Bytes::from_static(b"x"), 100),
            Transaction::new(2, 0, Bytes::from_static(b"y"), 200),
        ]);
        let b = Batch::new(vec![
            Transaction::new(1, 0, Bytes::from_static(b"x"), 999),
            Transaction::new(2, 0, Bytes::from_static(b"y"), 0),
        ]);
        assert_eq!(a.digest(), b.digest());
        let different_payload = Batch::new(vec![
            Transaction::new(1, 0, Bytes::from_static(b"z"), 100),
            Transaction::new(2, 0, Bytes::from_static(b"y"), 200),
        ]);
        assert_ne!(a.digest(), different_payload.digest());
        let different_order = Batch::new(vec![
            Transaction::new(2, 0, Bytes::from_static(b"y"), 200),
            Transaction::new(1, 0, Bytes::from_static(b"x"), 100),
        ]);
        assert_ne!(a.digest(), different_order.digest());
        assert_ne!(a.digest(), Batch::empty().digest());
    }

    #[test]
    fn digest_is_unambiguous_across_payload_boundaries() {
        // Two 2-tx batches whose concatenated (id | client | payload)
        // streams are byte-identical: `a` puts 0xAA at the end of tx 1's
        // payload, `b` shifts those bytes into tx 2's id/client/payload
        // fields. Without per-payload length prefixes they collide.
        let a = Batch::new(vec![
            Transaction::new(1, 0, Bytes::from_static(&[0xAA]), 0),
            Transaction::new(2, 0, Bytes::new(), 0),
        ]);
        let b = Batch::new(vec![
            Transaction::new(1, 0, Bytes::new(), 0),
            Transaction::new(0x02AA, 0, Bytes::from_static(&[0x00]), 0),
        ]);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn fee_is_first_payload_byte() {
        let t = Transaction::new(1, 0, Bytes::from_static(&[9, 1, 2]), 0);
        assert_eq!(t.fee(), 9);
        assert_eq!(Transaction::no_op(2, 0, 0).fee(), 0);
    }

    #[test]
    fn id_packing_accessors() {
        let t = Transaction::new((7u64 << 32) | 42, 7, Bytes::new(), 0);
        assert_eq!(t.client_of_id(), 7);
        assert_eq!(t.seq_of_id(), 42);
    }

    #[test]
    fn batch_collects_and_extends() {
        let mut b: Batch = (0..3).map(|i| tx(i, 1)).collect();
        b.extend([tx(3, 1)]);
        assert_eq!(b.len(), 4);
        let ids: Vec<u64> = (&b).into_iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        let owned: Vec<Transaction> = b.into_iter().collect();
        assert_eq!(owned.len(), 4);
    }
}
