//! The wire message format shared by Marlin and every baseline protocol
//! in this workspace.
//!
//! The paper's message `m` carries `m.view`, `m.type`, `m.block`,
//! `m.justify` (one or two QCs), and `m.parsig`. This module realizes
//! that shape as a tagged union, extended with the messages the baseline
//! protocols and the block-synchronisation layer need.

use crate::block::{Block, BlockId, BlockMeta, Justify};
use crate::ids::{Height, ReplicaId, View};
use crate::qc::{Phase, Qc, QcSeed};
use crate::transaction::{Batch, BatchId};
use marlin_crypto::{PartialSig, Sha256, Signature};
use std::fmt;

/// A protocol message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Message {
    /// Sender.
    pub from: ReplicaId,
    /// View in which the message was sent (`m.view`).
    pub view: View,
    /// The message body (`m.type` plus its fields).
    pub body: MsgBody,
}

impl Message {
    /// Creates a message.
    pub fn new(from: ReplicaId, view: View, body: MsgBody) -> Self {
        Message { from, view, body }
    }

    /// Bytes this message occupies on the wire. With `shadow` enabled,
    /// the second block of a two-proposal `PRE-PREPARE` is charged only
    /// its header (the shadow-block optimisation of Section IV-D).
    pub fn wire_len(&self, shadow: bool) -> usize {
        // from(4) + view(8) + body tag(1)
        13 + self.body.wire_len(shadow)
    }

    /// Authenticators this message carries, under the paper's metric
    /// (Section III): each partial signature or conventional signature is
    /// one authenticator; QCs count per their format.
    pub fn authenticator_count(&self) -> usize {
        self.body.authenticator_count()
    }
}

/// Message bodies.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MsgBody {
    /// Leader broadcast: a proposal for one or two blocks in some phase.
    Proposal(Proposal),
    /// Replica→leader vote carrying a partial signature.
    Vote(Vote),
    /// Replica→new-leader `VIEW-CHANGE`.
    ViewChange(ViewChange),
    /// Leader broadcast of a `commitQC`, triggering delivery.
    Decide(Decide),
    /// Request for a missing block (block synchronisation).
    FetchRequest {
        /// The block being requested.
        block: BlockId,
    },
    /// Response carrying a previously proposed block.
    FetchResponse {
        /// The requested block.
        block: Block,
        /// For virtual blocks: the responder's resolved parent id
        /// (virtual blocks carry no parent link of their own).
        virtual_parent: Option<BlockId>,
    },
    /// A recovering replica's broadcast: "my committed chain ends at
    /// `last_committed` — tell me what I missed." Peers answer with
    /// their latest `commitQC`; the fetch machinery then pulls any
    /// missing blocks.
    CatchUpRequest {
        /// Height of the requester's highest committed block.
        last_committed: Height,
    },
    /// Response to a catch-up request.
    CatchUpResponse {
        /// The responder's highest known `commitQC`, if any.
        commit_qc: Option<Qc>,
    },
    /// A cold-starting or deeply lagging replica's request for the
    /// responder's latest snapshot anchor.
    SnapshotRequest,
    /// Response to a snapshot request: a self-certifying anchor — a
    /// committed block together with the commit-phase QC that certifies
    /// exactly that block (`qc.block() == block.id()`), so the receiver
    /// can verify the anchor with one signature check and no chain
    /// context.
    SnapshotResponse {
        /// The responder's latest snapshot anchor, if it has one.
        snapshot: Option<(Block, Qc)>,
    },
    /// Request for a contiguous range of committed blocks,
    /// `[from_height, to_height]` inclusive (ranged block sync).
    BlockRangeRequest {
        /// First height requested.
        from_height: Height,
        /// Last height requested (inclusive).
        to_height: Height,
    },
    /// Response to a range request: the responder's committed blocks for
    /// the range, in ascending height order. May cover a prefix of the
    /// request if the responder has pruned or never held the rest.
    BlockRangeResponse {
        /// First height of the range this response answers (echoed from
        /// the request so the requester can match it to an outstanding
        /// chunk even when `blocks` is empty).
        from_height: Height,
        /// The blocks, ascending by height.
        blocks: Vec<Block>,
    },
    /// Pre-dissemination of a sealed mempool batch (Narwhal-style push):
    /// the sender streams the batch to every replica *before* any leader
    /// proposes it, taking payload bytes off the proposal critical path.
    PayloadPush {
        /// Content digest the batch is addressed by.
        digest: BatchId,
        /// The batch itself.
        batch: Batch,
    },
    /// Receiver→pusher acknowledgement that the batch is stored and
    /// resolvable; `n − f` acks make a digest safe to propose.
    PayloadAck {
        /// The acknowledged batch.
        digest: BatchId,
    },
    /// Request for a previously pushed batch the sender cannot resolve
    /// (fallback for replicas that missed the push).
    PayloadRequest {
        /// The missing batch.
        digest: BatchId,
    },
    /// Response to a payload request.
    PayloadResponse {
        /// The requested digest (echoed even when the batch is gone).
        digest: BatchId,
        /// The batch, if the responder still holds it.
        batch: Option<Batch>,
    },
    /// A leader's normal-case `PREPARE` proposal by reference: the block
    /// extends `justify`'s certified block and carries the payload
    /// addressed by `digest`, which receivers resolve from their payload
    /// store (or fetch by digest). Only Case N1 proposals — fully
    /// derivable from `(digest, justify, view)` — travel this way;
    /// view-change proposals always ship whole blocks.
    DigestProposal {
        /// Payload of the proposed block.
        digest: BatchId,
        /// The `highQC` the proposed block extends (`m.justify`).
        justify: Justify,
    },
}

impl MsgBody {
    fn wire_len(&self, shadow: bool) -> usize {
        match self {
            MsgBody::Proposal(p) => p.wire_len(shadow),
            MsgBody::Vote(v) => v.wire_len(),
            MsgBody::ViewChange(vc) => vc.wire_len(),
            MsgBody::Decide(d) => d.wire_len(),
            MsgBody::FetchRequest { .. } => 32,
            MsgBody::FetchResponse { block, .. } => block.wire_len() + 33,
            MsgBody::CatchUpRequest { .. } => 8,
            MsgBody::CatchUpResponse { commit_qc } => {
                1 + commit_qc.as_ref().map_or(0, Qc::wire_len)
            }
            MsgBody::SnapshotRequest => 0,
            MsgBody::SnapshotResponse { snapshot } => {
                1 + snapshot
                    .as_ref()
                    .map_or(0, |(b, qc)| b.wire_len() + qc.wire_len())
            }
            MsgBody::BlockRangeRequest { .. } => 16,
            MsgBody::BlockRangeResponse { blocks, .. } => {
                8 + 2 + blocks.iter().map(Block::wire_len).sum::<usize>()
            }
            MsgBody::PayloadPush { batch, .. } => 32 + batch.wire_len(),
            MsgBody::PayloadAck { .. } | MsgBody::PayloadRequest { .. } => 32,
            MsgBody::PayloadResponse { batch, .. } => {
                32 + 1 + batch.as_ref().map_or(0, Batch::wire_len)
            }
            MsgBody::DigestProposal { justify, .. } => 32 + justify.wire_len(),
        }
    }

    fn authenticator_count(&self) -> usize {
        match self {
            MsgBody::Proposal(p) => p.authenticator_count(),
            MsgBody::Vote(v) => v.authenticator_count(),
            MsgBody::ViewChange(vc) => vc.authenticator_count(),
            MsgBody::Decide(d) => d.commit_qc.authenticator_count(),
            MsgBody::FetchRequest { .. } => 0,
            MsgBody::FetchResponse { block, .. } => block.justify().authenticator_count(),
            MsgBody::CatchUpRequest { .. } => 0,
            MsgBody::CatchUpResponse { commit_qc } => {
                commit_qc.as_ref().map_or(0, Qc::authenticator_count)
            }
            MsgBody::SnapshotRequest => 0,
            MsgBody::SnapshotResponse { snapshot } => snapshot.as_ref().map_or(0, |(b, qc)| {
                b.justify().authenticator_count() + qc.authenticator_count()
            }),
            MsgBody::BlockRangeRequest { .. } => 0,
            MsgBody::BlockRangeResponse { blocks, .. } => blocks
                .iter()
                .map(|b| b.justify().authenticator_count())
                .sum(),
            MsgBody::PayloadPush { .. }
            | MsgBody::PayloadAck { .. }
            | MsgBody::PayloadRequest { .. }
            | MsgBody::PayloadResponse { .. } => 0,
            MsgBody::DigestProposal { justify, .. } => justify.authenticator_count(),
        }
    }
}

/// A leader's proposal broadcast.
///
/// * Normal-case `PREPARE`: one block, `justify` per Case N1/N2.
/// * Normal-case `COMMIT` (and HotStuff `PRE-COMMIT`/`COMMIT`): no block
///   payload — the certified block is identified by `justify`'s QC.
/// * View-change `PRE-PREPARE`: one block (Case V2) or two shadow blocks
///   (Cases V1/V3).
/// * Jolteon-style protocols attach their quadratic new-view proof in
///   `vc_proof`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Proposal {
    /// The phase this proposal drives.
    pub phase: Phase,
    /// Zero, one, or two proposed blocks.
    pub blocks: Vec<Block>,
    /// The justifying certificate(s) (`m.justify`).
    pub justify: Justify,
    /// Quadratic view-change proof (Jolteon/Fast-HotStuff baselines
    /// only; empty for Marlin and HotStuff).
    pub vc_proof: Vec<VcCert>,
}

impl Proposal {
    fn wire_len(&self, shadow: bool) -> usize {
        let mut len = 1 + 1; // phase + block count
        let dedup = shadow
            && self.blocks.len() == 2
            && self.blocks[0].payload() == self.blocks[1].payload();
        for (i, b) in self.blocks.iter().enumerate() {
            len += if dedup && i == 1 {
                b.header_wire_len()
            } else {
                b.wire_len()
            };
        }
        len += self.justify.wire_len();
        len += 2 + self.vc_proof.iter().map(VcCert::wire_len).sum::<usize>();
        len
    }

    fn authenticator_count(&self) -> usize {
        self.justify.authenticator_count()
            + self
                .blocks
                .iter()
                .map(|b| b.justify().authenticator_count())
                .sum::<usize>()
            + self
                .vc_proof
                .iter()
                .map(VcCert::authenticator_count)
                .sum::<usize>()
    }
}

/// A replica's vote: the seed it signed plus the partial signature.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Vote {
    /// The exact content the partial signature covers.
    pub seed: QcSeed,
    /// The vote share.
    pub parsig: PartialSig,
    /// Case R2 of the view change: the voter attaches its `lockedQC`
    /// (the `prepareQC` for the virtual block's parent).
    pub locked_qc: Option<Qc>,
}

impl Vote {
    fn wire_len(&self) -> usize {
        // seed: phase(1)+view(8)+block(32)+height(8)+block_view(8)
        //       +pview(8)+kind(1) = 66
        66 + PartialSig::WIRE_LEN + 1 + self.locked_qc.as_ref().map_or(0, Qc::wire_len)
    }

    fn authenticator_count(&self) -> usize {
        1 + self.locked_qc.as_ref().map_or(0, Qc::authenticator_count)
    }
}

/// A `VIEW-CHANGE` message: the replica's last voted block (as compact
/// metadata), its `highQC`, and a partial signature over the happy-path
/// prepare seed for the last voted block at the new view.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ViewChange {
    /// Metadata of the sender's last voted block `lb`.
    pub last_voted: BlockMeta,
    /// The sender's `highQC` (one QC, or a `(qc, vc)` pair).
    pub high_qc: Justify,
    /// Partial signature over [`ViewChange::happy_seed`] for the target
    /// view, enabling the happy-path `prepareQC`.
    pub parsig: PartialSig,
    /// Conventional signature over [`VcCert::signing_bytes`] — present
    /// only in Jolteon-style protocols whose leaders assemble quadratic
    /// view-change proofs from these certificates.
    pub cert: Option<Signature>,
}

impl ViewChange {
    /// The seed the view-change partial signature covers: a `PREPARE`
    /// certification of `last_voted` at `view`. If all `n − f`
    /// view-change messages agree on `last_voted`, the leader combines
    /// their partials into a `prepareQC` and skips the pre-prepare phase
    /// ("happy path", Section V-C).
    pub fn happy_seed(last_voted: &BlockMeta, view: View) -> QcSeed {
        QcSeed {
            phase: Phase::Prepare,
            view,
            block: last_voted.id,
            height: last_voted.height,
            block_view: last_voted.view,
            pview: last_voted.pview,
            block_kind: last_voted.kind,
        }
    }

    fn wire_len(&self) -> usize {
        BlockMeta::WIRE_LEN
            + self.high_qc.wire_len()
            + PartialSig::WIRE_LEN
            + 1
            + self.cert.map_or(0, |_| crate::message::SIGNATURE_WIRE_LEN)
    }

    fn authenticator_count(&self) -> usize {
        1 + self.high_qc.authenticator_count() + usize::from(self.cert.is_some())
    }
}

/// Wire length of a conventional signature inside a message.
pub(crate) const SIGNATURE_WIRE_LEN: usize = marlin_crypto::SIGNATURE_LEN;

/// Coarse classification of messages for per-category traffic
/// breakdowns (the paper's Section III complexity metrics) and
/// telemetry labels.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MsgClass {
    /// Leader proposal broadcasts, by phase.
    Proposal(Phase),
    /// Replica votes, by phase.
    Vote(Phase),
    /// `VIEW-CHANGE` / `NEW-VIEW` messages.
    ViewChange,
    /// `commitQC` dissemination.
    Decide,
    /// Block synchronisation traffic.
    Fetch,
    /// Crash-recovery catch-up traffic (`CATCH-UP` request/response,
    /// wire tags 6/7). Kept distinct from [`MsgClass::Fetch`] so
    /// recovery traffic can be excluded from protocol-cost measurement
    /// windows (Table I counts view-change messages, not the recovery
    /// of a crashed replica's state).
    CatchUp,
    /// Ranged block-sync and snapshot traffic (wire tags 8–11): how a
    /// deeply lagging or cold-starting replica rejoins. Like
    /// [`MsgClass::CatchUp`], this is recovery traffic and stays out of
    /// protocol-cost measurement windows.
    Sync,
    /// Batch pre-dissemination traffic (wire tags 12–15): payload
    /// push/ack and fetch-by-digest. Not recovery traffic — it is the
    /// steady-state payload plane — but kept out of the proposal class
    /// so leader-egress measurements see exactly what rides the
    /// proposal critical path. `DigestProposal` itself classifies as
    /// [`MsgClass::Proposal`]`(Prepare)`.
    Payload,
}

impl MsgClass {
    /// Classifies a message.
    pub fn of(msg: &Message) -> MsgClass {
        match &msg.body {
            MsgBody::Proposal(p) => MsgClass::Proposal(p.phase),
            MsgBody::Vote(v) => MsgClass::Vote(v.seed.phase),
            MsgBody::ViewChange(_) => MsgClass::ViewChange,
            MsgBody::Decide(_) => MsgClass::Decide,
            MsgBody::FetchRequest { .. } | MsgBody::FetchResponse { .. } => MsgClass::Fetch,
            MsgBody::CatchUpRequest { .. } | MsgBody::CatchUpResponse { .. } => MsgClass::CatchUp,
            MsgBody::SnapshotRequest
            | MsgBody::SnapshotResponse { .. }
            | MsgBody::BlockRangeRequest { .. }
            | MsgBody::BlockRangeResponse { .. } => MsgClass::Sync,
            MsgBody::PayloadPush { .. }
            | MsgBody::PayloadAck { .. }
            | MsgBody::PayloadRequest { .. }
            | MsgBody::PayloadResponse { .. } => MsgClass::Payload,
            MsgBody::DigestProposal { .. } => MsgClass::Proposal(Phase::Prepare),
        }
    }

    /// Whether this class belongs to the view-change protocol (used for
    /// the Table I measurement window).
    pub fn is_view_change(&self) -> bool {
        matches!(
            self,
            MsgClass::ViewChange
                | MsgClass::Proposal(Phase::PrePrepare)
                | MsgClass::Vote(Phase::PrePrepare)
        )
    }

    /// Whether this class is crash-recovery traffic, excluded from
    /// protocol-cost measurement windows.
    pub fn is_recovery(&self) -> bool {
        matches!(self, MsgClass::CatchUp | MsgClass::Sync)
    }
}

impl fmt::Display for MsgClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsgClass::Proposal(p) => write!(f, "proposal/{p:?}"),
            MsgClass::Vote(p) => write!(f, "vote/{p:?}"),
            MsgClass::ViewChange => write!(f, "view-change"),
            MsgClass::Decide => write!(f, "decide"),
            MsgClass::Fetch => write!(f, "fetch"),
            MsgClass::CatchUp => write!(f, "catch-up"),
            MsgClass::Sync => write!(f, "sync"),
            MsgClass::Payload => write!(f, "payload"),
        }
    }
}

/// A `commitQC` broadcast: receivers deliver the certified block and its
/// ancestors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Decide {
    /// The commit certificate.
    pub commit_qc: Qc,
}

impl Decide {
    fn wire_len(&self) -> usize {
        self.commit_qc.wire_len()
    }
}

/// One entry of a Jolteon/Fast-HotStuff-style quadratic view-change
/// proof: a conventionally signed statement of a replica's `highQC` for
/// the new view.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VcCert {
    /// The attesting replica.
    pub from: ReplicaId,
    /// Its claimed `highQC`.
    pub high_qc: Qc,
    /// Conventional signature over [`VcCert::signing_bytes`].
    pub sig: Signature,
}

impl VcCert {
    /// The byte string `sig` covers.
    pub fn signing_bytes(from: ReplicaId, view: View, high_qc: &Qc) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(b"marlin.vccert.v1");
        h.update(&from.0.to_le_bytes());
        h.update(&view.0.to_le_bytes());
        h.update(high_qc.signing_bytes());
        h.finalize().into_bytes()
    }

    fn wire_len(&self) -> usize {
        4 + self.high_qc.wire_len() + marlin_crypto::SIGNATURE_LEN
    }

    fn authenticator_count(&self) -> usize {
        1 + self.high_qc.authenticator_count()
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match &self.body {
            MsgBody::Proposal(p) => format!("Proposal({:?},{} blocks)", p.phase, p.blocks.len()),
            MsgBody::Vote(v) => format!("Vote({:?})", v.seed.phase),
            MsgBody::ViewChange(_) => "ViewChange".to_string(),
            MsgBody::Decide(_) => "Decide".to_string(),
            MsgBody::FetchRequest { .. } => "FetchRequest".to_string(),
            MsgBody::FetchResponse { .. } => "FetchResponse".to_string(),
            MsgBody::CatchUpRequest { last_committed } => {
                format!("CatchUpRequest(h{})", last_committed.0)
            }
            MsgBody::CatchUpResponse { .. } => "CatchUpResponse".to_string(),
            MsgBody::SnapshotRequest => "SnapshotRequest".to_string(),
            MsgBody::SnapshotResponse { snapshot } => {
                format!("SnapshotResponse(present={})", snapshot.is_some())
            }
            MsgBody::BlockRangeRequest {
                from_height,
                to_height,
            } => format!("BlockRangeRequest(h{}..h{})", from_height.0, to_height.0),
            MsgBody::BlockRangeResponse { blocks, .. } => {
                format!("BlockRangeResponse({} blocks)", blocks.len())
            }
            MsgBody::PayloadPush { digest, batch } => {
                format!("PayloadPush({digest},{} txs)", batch.len())
            }
            MsgBody::PayloadAck { digest } => format!("PayloadAck({digest})"),
            MsgBody::PayloadRequest { digest } => format!("PayloadRequest({digest})"),
            MsgBody::PayloadResponse { digest, batch } => {
                format!("PayloadResponse({digest},present={})", batch.is_some())
            }
            MsgBody::DigestProposal { digest, .. } => format!("DigestProposal({digest})"),
        };
        write!(f, "[{} {:?} {}]", self.from, self.view, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::{Batch, Transaction};
    use bytes::Bytes;

    fn block_with_payload(len: usize) -> Block {
        let g = Block::genesis();
        let tx = Transaction::new(1, 0, Bytes::from(vec![7u8; len]), 0);
        Block::new_normal(
            g.id(),
            g.view(),
            View(1),
            g.height().next(),
            Batch::new(vec![tx]),
            Justify::One(Qc::genesis(g.id())),
        )
    }

    fn shadow_pair(len: usize) -> (Block, Block) {
        let g = Block::genesis();
        let tx = Transaction::new(1, 0, Bytes::from(vec![7u8; len]), 0);
        let payload = Batch::new(vec![tx]);
        let b1 = Block::new_normal(
            g.id(),
            g.view(),
            View(2),
            g.height().next(),
            payload.clone(),
            Justify::One(Qc::genesis(g.id())),
        );
        let b2 = Block::new_virtual(
            g.view(),
            View(2),
            g.height().plus(2),
            payload,
            Justify::One(Qc::genesis(g.id())),
        );
        (b1, b2)
    }

    #[test]
    fn shadow_blocks_save_payload_bytes() {
        let (b1, b2) = shadow_pair(150);
        let payload_len = b1.payload().wire_len();
        let prop = Proposal {
            phase: Phase::PrePrepare,
            blocks: vec![b1, b2],
            justify: Justify::None,
            vc_proof: Vec::new(),
        };
        let msg = Message::new(ReplicaId(0), View(2), MsgBody::Proposal(prop));
        let with = msg.wire_len(true);
        let without = msg.wire_len(false);
        assert_eq!(without - with, payload_len);
    }

    #[test]
    fn shadow_does_not_apply_to_distinct_payloads() {
        let b1 = block_with_payload(100);
        let (_, b2) = shadow_pair(150);
        let prop = Proposal {
            phase: Phase::PrePrepare,
            blocks: vec![b1, b2],
            justify: Justify::None,
            vc_proof: Vec::new(),
        };
        let msg = Message::new(ReplicaId(0), View(2), MsgBody::Proposal(prop));
        assert_eq!(msg.wire_len(true), msg.wire_len(false));
    }

    #[test]
    fn vote_authenticators() {
        let g = Block::genesis();
        let keys = marlin_crypto::KeyStore::generate(4, 1, 1);
        let seed = g.vote_seed(Phase::Prepare, View(1));
        let vote = Vote {
            seed,
            parsig: keys.signer(0).sign_partial(&seed.signing_bytes()),
            locked_qc: None,
        };
        assert_eq!(vote.authenticator_count(), 1);
        let with_lock = Vote {
            locked_qc: Some(Qc::genesis(g.id())),
            ..vote
        };
        assert_eq!(with_lock.authenticator_count(), 1);
    }

    #[test]
    fn happy_seed_is_deterministic_across_replicas() {
        let meta = BlockMeta::genesis();
        let a = ViewChange::happy_seed(&meta, View(5));
        let b = ViewChange::happy_seed(&meta, View(5));
        assert_eq!(a.signing_bytes(), b.signing_bytes());
        assert_ne!(
            ViewChange::happy_seed(&meta, View(6)).signing_bytes(),
            a.signing_bytes()
        );
    }

    #[test]
    fn vc_cert_signing_bytes_bind_fields() {
        let qc = Qc::genesis(BlockId::GENESIS);
        let base = VcCert::signing_bytes(ReplicaId(1), View(2), &qc);
        assert_ne!(VcCert::signing_bytes(ReplicaId(2), View(2), &qc), base);
        assert_ne!(VcCert::signing_bytes(ReplicaId(1), View(3), &qc), base);
    }

    #[test]
    fn message_wire_len_includes_header() {
        let msg = Message::new(
            ReplicaId(3),
            View(9),
            MsgBody::FetchRequest {
                block: BlockId::GENESIS,
            },
        );
        assert_eq!(msg.wire_len(false), 13 + 32);
    }

    #[test]
    fn display_is_informative() {
        let msg = Message::new(
            ReplicaId(3),
            View(9),
            MsgBody::FetchRequest {
                block: BlockId::GENESIS,
            },
        );
        let s = msg.to_string();
        assert!(s.contains("p3") && s.contains("v9") && s.contains("FetchRequest"));
    }
}
