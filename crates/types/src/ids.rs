//! Protocol newtypes: views, heights, and replica identifiers.

use std::fmt;

/// A view number (`cview` / `b.view` in the paper).
///
/// Views increase monotonically; each view has a unique leader. The
/// genesis block carries view 0 and the protocol starts in view 1.
///
/// # Example
///
/// ```
/// use marlin_types::View;
///
/// let v = View(3);
/// assert_eq!(v.next(), View(4));
/// assert!(View(4) > v);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct View(pub u64);

impl View {
    /// The genesis view (0); real operation starts at view 1.
    pub const GENESIS: View = View(0);

    /// The view after this one.
    pub fn next(self) -> View {
        View(self.0 + 1)
    }

    /// `self - other`, saturating at zero.
    pub fn gap(self, other: View) -> u64 {
        self.0.saturating_sub(other.0)
    }
}

impl fmt::Debug for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for View {
    fn from(v: u64) -> Self {
        View(v)
    }
}

/// A block height: the number of blocks on the branch led by a block
/// (the genesis block has height 0).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Height(pub u64);

impl Height {
    /// The genesis height (0).
    pub const GENESIS: Height = Height(0);

    /// The height directly above.
    pub fn next(self) -> Height {
        Height(self.0 + 1)
    }

    /// The height two above (used by virtual blocks, which sit at
    /// `qc.height + 2`).
    pub fn plus(self, delta: u64) -> Height {
        Height(self.0 + delta)
    }

    /// The height directly below.
    ///
    /// # Panics
    ///
    /// Panics if called on height 0.
    pub fn prev(self) -> Height {
        assert!(self.0 > 0, "genesis has no predecessor height");
        Height(self.0 - 1)
    }
}

impl fmt::Debug for Height {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl fmt::Display for Height {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Height {
    fn from(h: u64) -> Self {
        Height(h)
    }
}

/// Identifies one of the `n` replicas, `p_0 .. p_{n-1}`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReplicaId(pub u32);

impl ReplicaId {
    /// The replica's index as a `usize`, e.g. for key-store lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The round-robin leader of `view` among `n` replicas.
    ///
    /// # Example
    ///
    /// ```
    /// use marlin_types::{ReplicaId, View};
    ///
    /// assert_eq!(ReplicaId::leader_of(View(1), 4), ReplicaId(1));
    /// assert_eq!(ReplicaId::leader_of(View(5), 4), ReplicaId(1));
    /// ```
    pub fn leader_of(view: View, n: usize) -> ReplicaId {
        ReplicaId((view.0 % n as u64) as u32)
    }
}

impl fmt::Debug for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ReplicaId {
    fn from(i: u32) -> Self {
        ReplicaId(i)
    }
}

impl From<usize> for ReplicaId {
    fn from(i: usize) -> Self {
        ReplicaId(i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_ordering_and_next() {
        assert!(View(2) < View(3));
        assert_eq!(View(2).next(), View(3));
        assert_eq!(View::GENESIS.next(), View(1));
        assert_eq!(View(7).gap(View(3)), 4);
        assert_eq!(View(3).gap(View(7)), 0);
    }

    #[test]
    fn height_arithmetic() {
        assert_eq!(Height(4).next(), Height(5));
        assert_eq!(Height(4).plus(2), Height(6));
        assert_eq!(Height(4).prev(), Height(3));
    }

    #[test]
    #[should_panic(expected = "no predecessor")]
    fn genesis_height_has_no_prev() {
        Height::GENESIS.prev();
    }

    #[test]
    fn leader_rotation_wraps() {
        for v in 0..20u64 {
            assert_eq!(ReplicaId::leader_of(View(v), 4).0 as u64, v % 4);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(View(9).to_string(), "9");
        assert_eq!(format!("{:?}", View(9)), "v9");
        assert_eq!(Height(2).to_string(), "2");
        assert_eq!(ReplicaId(1).to_string(), "p1");
    }
}
