//! Compact binary wire codec.
//!
//! Every encoding is the exact length reported by the corresponding
//! `wire_len` method — the network simulator's bandwidth model charges
//! `wire_len` bytes, and the round-trip property tests in this module
//! pin the two together. Combined signatures are padded to their modeled
//! format size (a real 96-byte BLS signature or `t × 64` bytes of ECDSA
//! signatures carry more entropy than our simulated aggregates, so the
//! encoder pads with zeros to keep byte counts faithful).

use crate::block::{Block, BlockId, BlockKind, BlockMeta, Justify, ParentLink};
use crate::ids::{Height, ReplicaId, View};
use crate::message::{Decide, Message, MsgBody, Proposal, VcCert, ViewChange, Vote};
use crate::qc::{Phase, Qc, QcSeed};
use crate::transaction::{Batch, BatchId, Transaction};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use marlin_crypto::{
    CombinedSig, Digest, PartialSig, QcFormat, Signature, SignerBitmap, SIGNATURE_LEN,
};
use std::fmt;

/// Hard ceiling on a single wire frame, checked before any decoding.
///
/// Bytes are untrusted: a malicious or corrupt peer controls every
/// length prefix, so no field may size an allocation beyond what the
/// received buffer can actually back. The ceiling comfortably fits the
/// paper's largest proposal (two 16k-transaction blocks at ~174 wire
/// bytes each is ~5.6 MiB un-shadowed) while bounding what one frame
/// can make a replica allocate.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Minimum wire bytes a serialized [`Block`] can occupy: parent tag +
/// digest (33), pview/view/height (24), justify tag (1), empty batch
/// count (4). Used to bound untrusted block counts before allocation.
const BLOCK_MIN_WIRE_LEN: usize = 33 + 24 + 1 + 4;

/// Errors produced by [`decode_message`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the value was complete.
    UnexpectedEnd,
    /// An enum tag byte had no meaning.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// Trailing bytes remained after the message.
    TrailingBytes(usize),
    /// A length prefix exceeded its bound (the frame ceiling, or more
    /// than the remaining buffer could possibly back). Raised *before*
    /// any allocation is sized from the untrusted value.
    FieldTooLarge {
        /// What was being decoded.
        what: &'static str,
        /// The claimed length/count.
        len: usize,
        /// The largest value the remaining input could support.
        max: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of buffer"),
            DecodeError::BadTag { what, tag } => write!(f, "invalid tag {tag} for {what}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            DecodeError::FieldTooLarge { what, len, max } => {
                write!(f, "{what} length {len} exceeds bound {max}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

type Result<T> = std::result::Result<T, DecodeError>;

/// Encodes a message into its wire form. With `shadow` enabled, the
/// second block of a two-block proposal sharing the first's payload is
/// serialized without its operations (the shadow-block optimisation).
pub fn encode_message(msg: &Message, shadow: bool) -> Bytes {
    let mut buf = BytesMut::with_capacity(msg.wire_len(shadow));
    put_message(&mut buf, msg, shadow);
    debug_assert_eq!(
        buf.len(),
        msg.wire_len(shadow),
        "wire_len mismatch for {msg}"
    );
    buf.freeze()
}

/// Decodes a message previously produced by [`encode_message`].
///
/// # Errors
///
/// Returns a [`DecodeError`] if the buffer is truncated, malformed,
/// oversized (see [`MAX_FRAME_LEN`]), or has trailing bytes. Never
/// panics and never allocates more than the input length can back, on
/// any byte string.
pub fn decode_message(bytes: &[u8]) -> Result<Message> {
    if bytes.len() > MAX_FRAME_LEN {
        return Err(DecodeError::FieldTooLarge {
            what: "frame",
            len: bytes.len(),
            max: MAX_FRAME_LEN,
        });
    }
    let mut buf = bytes;
    let msg = get_message(&mut buf)?;
    if !buf.is_empty() {
        return Err(DecodeError::TrailingBytes(buf.len()));
    }
    Ok(msg)
}

// ---------------------------------------------------------------- put --

fn put_message(buf: &mut BytesMut, msg: &Message, shadow: bool) {
    buf.put_u32_le(msg.from.0);
    buf.put_u64_le(msg.view.0);
    match &msg.body {
        MsgBody::Proposal(p) => {
            buf.put_u8(0);
            put_proposal(buf, p, shadow);
        }
        MsgBody::Vote(v) => {
            buf.put_u8(1);
            put_vote(buf, v);
        }
        MsgBody::ViewChange(vc) => {
            buf.put_u8(2);
            put_view_change(buf, vc);
        }
        MsgBody::Decide(d) => {
            buf.put_u8(3);
            put_qc(buf, &d.commit_qc);
        }
        MsgBody::FetchRequest { block } => {
            buf.put_u8(4);
            put_digest(buf, &block.digest());
        }
        MsgBody::FetchResponse {
            block,
            virtual_parent,
        } => {
            buf.put_u8(5);
            put_block(buf, block, true);
            match virtual_parent {
                Some(pid) => {
                    buf.put_u8(1);
                    put_digest(buf, &pid.digest());
                }
                None => {
                    buf.put_u8(0);
                    buf.put_slice(&[0u8; 32]);
                }
            }
        }
        MsgBody::CatchUpRequest { last_committed } => {
            buf.put_u8(6);
            buf.put_u64_le(last_committed.0);
        }
        MsgBody::CatchUpResponse { commit_qc } => {
            buf.put_u8(7);
            match commit_qc {
                None => buf.put_u8(0),
                Some(qc) => {
                    buf.put_u8(1);
                    put_qc(buf, qc);
                }
            }
        }
        MsgBody::SnapshotRequest => {
            buf.put_u8(8);
        }
        MsgBody::SnapshotResponse { snapshot } => {
            buf.put_u8(9);
            match snapshot {
                None => buf.put_u8(0),
                Some((block, qc)) => {
                    buf.put_u8(1);
                    put_block(buf, block, true);
                    put_qc(buf, qc);
                }
            }
        }
        MsgBody::BlockRangeRequest {
            from_height,
            to_height,
        } => {
            buf.put_u8(10);
            buf.put_u64_le(from_height.0);
            buf.put_u64_le(to_height.0);
        }
        MsgBody::BlockRangeResponse {
            from_height,
            blocks,
        } => {
            buf.put_u8(11);
            buf.put_u64_le(from_height.0);
            buf.put_u16_le(blocks.len() as u16);
            for b in blocks {
                put_block(buf, b, true);
            }
        }
        MsgBody::PayloadPush { digest, batch } => {
            buf.put_u8(12);
            put_digest(buf, &digest.digest());
            put_batch(buf, batch);
        }
        MsgBody::PayloadAck { digest } => {
            buf.put_u8(13);
            put_digest(buf, &digest.digest());
        }
        MsgBody::PayloadRequest { digest } => {
            buf.put_u8(14);
            put_digest(buf, &digest.digest());
        }
        MsgBody::PayloadResponse { digest, batch } => {
            buf.put_u8(15);
            put_digest(buf, &digest.digest());
            match batch {
                None => buf.put_u8(0),
                Some(b) => {
                    buf.put_u8(1);
                    put_batch(buf, b);
                }
            }
        }
        MsgBody::DigestProposal { digest, justify } => {
            buf.put_u8(16);
            put_digest(buf, &digest.digest());
            put_justify(buf, justify);
        }
    }
}

fn put_proposal(buf: &mut BytesMut, p: &Proposal, shadow: bool) {
    put_phase(buf, p.phase);
    let dedup = shadow && p.blocks.len() == 2 && p.blocks[0].payload() == p.blocks[1].payload();
    let count_byte = p.blocks.len() as u8 | if dedup { 0x80 } else { 0 };
    buf.put_u8(count_byte);
    for (i, b) in p.blocks.iter().enumerate() {
        put_block(buf, b, !(dedup && i == 1));
    }
    put_justify(buf, &p.justify);
    buf.put_u16_le(p.vc_proof.len() as u16);
    for cert in &p.vc_proof {
        buf.put_u32_le(cert.from.0);
        put_qc(buf, &cert.high_qc);
        buf.put_slice(&cert.sig.to_bytes());
    }
}

fn put_vote(buf: &mut BytesMut, v: &Vote) {
    put_seed(buf, &v.seed);
    put_parsig(buf, &v.parsig);
    match &v.locked_qc {
        None => buf.put_u8(0),
        Some(qc) => {
            buf.put_u8(1);
            put_qc(buf, qc);
        }
    }
}

fn put_view_change(buf: &mut BytesMut, vc: &ViewChange) {
    put_block_meta(buf, &vc.last_voted);
    put_justify(buf, &vc.high_qc);
    put_parsig(buf, &vc.parsig);
    match &vc.cert {
        None => buf.put_u8(0),
        Some(sig) => {
            buf.put_u8(1);
            buf.put_slice(&sig.to_bytes());
        }
    }
}

fn put_block(buf: &mut BytesMut, b: &Block, with_payload: bool) {
    match b.parent() {
        ParentLink::Hash(id) => {
            buf.put_u8(1);
            put_digest(buf, &id.digest());
        }
        ParentLink::Nil => {
            buf.put_u8(0);
            buf.put_slice(&[0u8; 32]);
        }
    }
    buf.put_u64_le(b.pview().0);
    buf.put_u64_le(b.view().0);
    buf.put_u64_le(b.height().0);
    put_justify(buf, b.justify());
    if with_payload {
        put_batch(buf, b.payload());
    }
}

fn put_batch(buf: &mut BytesMut, batch: &Batch) {
    buf.put_u32_le(batch.len() as u32);
    for tx in batch.iter() {
        buf.put_u64_le(tx.id);
        buf.put_u32_le(tx.client);
        buf.put_u32_le(tx.payload.len() as u32);
        buf.put_u64_le(tx.submitted_at_ns);
        buf.put_slice(&tx.payload);
    }
}

/// Serializes a [`BlockMeta`] (fixed [`BlockMeta::WIRE_LEN`] bytes).
/// Public so durable-state layers (e.g. the consensus safety journal)
/// can reuse the wire encoding for their record payloads.
pub fn put_block_meta(buf: &mut BytesMut, m: &BlockMeta) {
    put_digest(buf, &m.id.digest());
    buf.put_u64_le(m.view.0);
    buf.put_u64_le(m.height.0);
    buf.put_u64_le(m.pview.0);
    put_kind(buf, m.kind);
    buf.put_u8(m.rank_boost as u8);
}

/// Serializes a [`Justify`] (1 tag byte plus its QCs). Public for
/// durable-state record payloads.
pub fn put_justify(buf: &mut BytesMut, j: &Justify) {
    match j {
        Justify::None => buf.put_u8(0),
        Justify::One(qc) => {
            buf.put_u8(1);
            put_qc(buf, qc);
        }
        Justify::Two(qc, vc) => {
            buf.put_u8(2);
            put_qc(buf, qc);
            put_qc(buf, vc);
        }
    }
}

/// Serializes a [`Qc`] in its wire form ([`Qc::wire_len`] bytes).
/// Public for durable-state record payloads.
pub fn put_qc(buf: &mut BytesMut, qc: &Qc) {
    put_seed(buf, qc.seed());
    put_combined_sig(buf, qc.sig());
}

/// Serializes a full [`Block`] (payload included) in its wire form.
/// Public for durable-state record payloads (snapshot anchors).
pub fn put_block_full(buf: &mut BytesMut, b: &Block) {
    put_block(buf, b, true);
}

fn put_seed(buf: &mut BytesMut, s: &QcSeed) {
    put_phase(buf, s.phase);
    buf.put_u64_le(s.view.0);
    put_digest(buf, &s.block.digest());
    buf.put_u64_le(s.height.0);
    buf.put_u64_le(s.block_view.0);
    buf.put_u64_le(s.pview.0);
    put_kind(buf, s.block_kind);
}

fn put_combined_sig(buf: &mut BytesMut, sig: &CombinedSig) {
    let total = sig.wire_len();
    match sig.format() {
        QcFormat::SigGroup => buf.put_u8(0),
        QcFormat::Threshold => buf.put_u8(1),
    }
    buf.put_u128_le(sig.signers().to_bits());
    put_digest(buf, &sig.agg());
    // Pad to the modeled wire size of the real signature material.
    buf.put_bytes(0, total - CombinedSig::MIN_WIRE_LEN);
}

fn put_parsig(buf: &mut BytesMut, p: &PartialSig) {
    buf.put_u64_le(p.signer() as u64);
    put_digest(buf, &p.tag());
    // Pad the 32-byte tag to a conventional 64-byte signature.
    buf.put_bytes(0, PartialSig::WIRE_LEN - 8 - 32);
}

fn put_phase(buf: &mut BytesMut, p: Phase) {
    buf.put_u8(match p {
        Phase::PrePrepare => 0,
        Phase::Prepare => 1,
        Phase::PreCommit => 2,
        Phase::Commit => 3,
    });
}

fn put_kind(buf: &mut BytesMut, k: BlockKind) {
    buf.put_u8(match k {
        BlockKind::Normal => 0,
        BlockKind::Virtual => 1,
    });
}

fn put_digest(buf: &mut BytesMut, d: &Digest) {
    buf.put_slice(d.as_bytes());
}

// ---------------------------------------------------------------- get --

/// Validates an untrusted element count before it sizes an allocation:
/// each element occupies at least `min_item` wire bytes, so any count
/// whose minimum encoding exceeds the remaining buffer is a lie.
fn bounded_count(buf: &&[u8], count: usize, min_item: usize, what: &'static str) -> Result<usize> {
    let max = buf.len() / min_item.max(1);
    if count > max {
        return Err(DecodeError::FieldTooLarge {
            what,
            len: count,
            max,
        });
    }
    Ok(count)
}

fn need(buf: &&[u8], n: usize) -> Result<()> {
    if buf.len() < n {
        Err(DecodeError::UnexpectedEnd)
    } else {
        Ok(())
    }
}

fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

fn get_u16(buf: &mut &[u8]) -> Result<u16> {
    need(buf, 2)?;
    Ok(buf.get_u16_le())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32> {
    need(buf, 4)?;
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64> {
    need(buf, 8)?;
    Ok(buf.get_u64_le())
}

fn get_u128(buf: &mut &[u8]) -> Result<u128> {
    need(buf, 16)?;
    Ok(buf.get_u128_le())
}

fn get_digest(buf: &mut &[u8]) -> Result<Digest> {
    need(buf, 32)?;
    let mut bytes = [0u8; 32];
    buf.copy_to_slice(&mut bytes);
    Ok(Digest::from_bytes(bytes))
}

fn get_message(buf: &mut &[u8]) -> Result<Message> {
    let from = ReplicaId(get_u32(buf)?);
    let view = View(get_u64(buf)?);
    let tag = get_u8(buf)?;
    let body = match tag {
        0 => MsgBody::Proposal(get_proposal(buf)?),
        1 => MsgBody::Vote(get_vote(buf)?),
        2 => MsgBody::ViewChange(get_view_change(buf)?),
        3 => MsgBody::Decide(Decide {
            commit_qc: get_qc(buf)?,
        }),
        4 => MsgBody::FetchRequest {
            block: BlockId::from_digest(get_digest(buf)?),
        },
        5 => {
            let block = get_block(buf, None)?;
            let has_parent = get_u8(buf)?;
            let digest = get_digest(buf)?;
            let virtual_parent = match has_parent {
                0 => None,
                1 => Some(BlockId::from_digest(digest)),
                t => {
                    return Err(DecodeError::BadTag {
                        what: "FetchResponse.virtual_parent",
                        tag: t,
                    })
                }
            };
            MsgBody::FetchResponse {
                block,
                virtual_parent,
            }
        }
        6 => MsgBody::CatchUpRequest {
            last_committed: Height(get_u64(buf)?),
        },
        7 => MsgBody::CatchUpResponse {
            commit_qc: match get_u8(buf)? {
                0 => None,
                1 => Some(get_qc(buf)?),
                t => {
                    return Err(DecodeError::BadTag {
                        what: "CatchUpResponse.commit_qc",
                        tag: t,
                    })
                }
            },
        },
        8 => MsgBody::SnapshotRequest,
        9 => MsgBody::SnapshotResponse {
            snapshot: match get_u8(buf)? {
                0 => None,
                1 => {
                    let block = get_block(buf, None)?;
                    let qc = get_qc(buf)?;
                    Some((block, qc))
                }
                t => {
                    return Err(DecodeError::BadTag {
                        what: "SnapshotResponse.snapshot",
                        tag: t,
                    })
                }
            },
        },
        10 => MsgBody::BlockRangeRequest {
            from_height: Height(get_u64(buf)?),
            to_height: Height(get_u64(buf)?),
        },
        11 => {
            let from_height = Height(get_u64(buf)?);
            let count = get_u16(buf)? as usize;
            // A block occupies at least its fixed header, a justify tag,
            // and an empty batch count.
            let count = bounded_count(buf, count, BLOCK_MIN_WIRE_LEN, "BlockRangeResponse.blocks")?;
            let mut blocks = Vec::with_capacity(count);
            for _ in 0..count {
                blocks.push(get_block(buf, None)?);
            }
            MsgBody::BlockRangeResponse {
                from_height,
                blocks,
            }
        }
        12 => MsgBody::PayloadPush {
            digest: BatchId::from_digest(get_digest(buf)?),
            batch: get_batch(buf)?,
        },
        13 => MsgBody::PayloadAck {
            digest: BatchId::from_digest(get_digest(buf)?),
        },
        14 => MsgBody::PayloadRequest {
            digest: BatchId::from_digest(get_digest(buf)?),
        },
        15 => MsgBody::PayloadResponse {
            digest: BatchId::from_digest(get_digest(buf)?),
            batch: match get_u8(buf)? {
                0 => None,
                1 => Some(get_batch(buf)?),
                t => {
                    return Err(DecodeError::BadTag {
                        what: "PayloadResponse.batch",
                        tag: t,
                    })
                }
            },
        },
        16 => MsgBody::DigestProposal {
            digest: BatchId::from_digest(get_digest(buf)?),
            justify: get_justify(buf)?,
        },
        t => {
            return Err(DecodeError::BadTag {
                what: "MsgBody",
                tag: t,
            })
        }
    };
    Ok(Message { from, view, body })
}

fn get_proposal(buf: &mut &[u8]) -> Result<Proposal> {
    let phase = get_phase(buf)?;
    let count_byte = get_u8(buf)?;
    let dedup = count_byte & 0x80 != 0;
    let count = (count_byte & 0x7f) as usize;
    if count > 2 {
        return Err(DecodeError::BadTag {
            what: "Proposal.blocks",
            tag: count_byte,
        });
    }
    let mut blocks: Vec<Block> = Vec::with_capacity(count);
    for i in 0..count {
        let borrowed = if dedup && i == 1 {
            Some(blocks[0].clone())
        } else {
            None
        };
        blocks.push(get_block(
            buf,
            borrowed.as_ref().map(Block::payload).cloned(),
        )?);
    }
    let justify = get_justify(buf)?;
    let proof_len = get_u16(buf)? as usize;
    // Each cert carries at least a replica id and a full signature.
    let proof_len = bounded_count(buf, proof_len, 4 + SIGNATURE_LEN, "Proposal.vc_proof")?;
    let mut vc_proof = Vec::with_capacity(proof_len);
    for _ in 0..proof_len {
        let from = ReplicaId(get_u32(buf)?);
        let high_qc = get_qc(buf)?;
        need(buf, SIGNATURE_LEN)?;
        let mut sig_bytes = [0u8; SIGNATURE_LEN];
        buf.copy_to_slice(&mut sig_bytes);
        vc_proof.push(VcCert {
            from,
            high_qc,
            sig: Signature::from_bytes(sig_bytes),
        });
    }
    Ok(Proposal {
        phase,
        blocks,
        justify,
        vc_proof,
    })
}

fn get_vote(buf: &mut &[u8]) -> Result<Vote> {
    let seed = get_seed(buf)?;
    let parsig = get_parsig(buf)?;
    let locked_qc = match get_u8(buf)? {
        0 => None,
        1 => Some(get_qc(buf)?),
        t => {
            return Err(DecodeError::BadTag {
                what: "Vote.locked_qc",
                tag: t,
            })
        }
    };
    Ok(Vote {
        seed,
        parsig,
        locked_qc,
    })
}

fn get_view_change(buf: &mut &[u8]) -> Result<ViewChange> {
    let last_voted = get_block_meta(buf)?;
    let high_qc = get_justify(buf)?;
    let parsig = get_parsig(buf)?;
    let cert = match get_u8(buf)? {
        0 => None,
        1 => {
            need(buf, SIGNATURE_LEN)?;
            let mut bytes = [0u8; SIGNATURE_LEN];
            buf.copy_to_slice(&mut bytes);
            Some(Signature::from_bytes(bytes))
        }
        t => {
            return Err(DecodeError::BadTag {
                what: "ViewChange.cert",
                tag: t,
            })
        }
    };
    Ok(ViewChange {
        last_voted,
        high_qc,
        parsig,
        cert,
    })
}

/// `shared_payload` carries the first shadow block's batch when decoding
/// the payload-less second block of a deduplicated proposal.
fn get_block(buf: &mut &[u8], shared_payload: Option<Batch>) -> Result<Block> {
    let parent_tag = get_u8(buf)?;
    let parent_digest = get_digest(buf)?;
    let pview = View(get_u64(buf)?);
    let view = View(get_u64(buf)?);
    let height = Height(get_u64(buf)?);
    let justify = get_justify(buf)?;
    let payload = match shared_payload {
        Some(p) => p,
        None => get_batch(buf)?,
    };
    let block = match parent_tag {
        1 => Block::new_normal(
            BlockId::from_digest(parent_digest),
            pview,
            view,
            height,
            payload,
            justify,
        ),
        0 => {
            if view == View::GENESIS && height == Height::GENESIS {
                Block::genesis()
            } else {
                Block::new_virtual(pview, view, height, payload, justify)
            }
        }
        t => {
            return Err(DecodeError::BadTag {
                what: "ParentLink",
                tag: t,
            })
        }
    };
    Ok(block)
}

fn get_batch(buf: &mut &[u8]) -> Result<Batch> {
    let count = get_u32(buf)? as usize;
    let count = bounded_count(buf, count, Transaction::HEADER_LEN, "Batch.count")?;
    let mut txs = Vec::with_capacity(count);
    for _ in 0..count {
        let id = get_u64(buf)?;
        let client = get_u32(buf)?;
        let len = get_u32(buf)? as usize;
        let submitted_at_ns = get_u64(buf)?;
        need(buf, len)?;
        let payload = Bytes::copy_from_slice(&buf[..len]);
        buf.advance(len);
        txs.push(Transaction::new(id, client, payload, submitted_at_ns));
    }
    Ok(Batch::new(txs))
}

/// Deserializes a [`BlockMeta`] written by [`put_block_meta`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on a truncated or malformed buffer.
pub fn get_block_meta(buf: &mut &[u8]) -> Result<BlockMeta> {
    Ok(BlockMeta {
        id: BlockId::from_digest(get_digest(buf)?),
        view: View(get_u64(buf)?),
        height: Height(get_u64(buf)?),
        pview: View(get_u64(buf)?),
        kind: get_kind(buf)?,
        rank_boost: get_u8(buf)? != 0,
    })
}

/// Deserializes a [`Justify`] written by [`put_justify`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on a truncated or malformed buffer.
pub fn get_justify(buf: &mut &[u8]) -> Result<Justify> {
    match get_u8(buf)? {
        0 => Ok(Justify::None),
        1 => Ok(Justify::One(get_qc(buf)?)),
        2 => Ok(Justify::Two(get_qc(buf)?, get_qc(buf)?)),
        t => Err(DecodeError::BadTag {
            what: "Justify",
            tag: t,
        }),
    }
}

/// Deserializes a [`Qc`] written by [`put_qc`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on a truncated or malformed buffer.
pub fn get_qc(buf: &mut &[u8]) -> Result<Qc> {
    let seed = get_seed(buf)?;
    let sig = get_combined_sig(buf)?;
    Ok(Qc::new(seed, sig))
}

/// Deserializes a full [`Block`] written by [`put_block_full`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on a truncated or malformed buffer.
pub fn get_block_full(buf: &mut &[u8]) -> Result<Block> {
    get_block(buf, None)
}

fn get_seed(buf: &mut &[u8]) -> Result<QcSeed> {
    Ok(QcSeed {
        phase: get_phase(buf)?,
        view: View(get_u64(buf)?),
        block: BlockId::from_digest(get_digest(buf)?),
        height: Height(get_u64(buf)?),
        block_view: View(get_u64(buf)?),
        pview: View(get_u64(buf)?),
        block_kind: get_kind(buf)?,
    })
}

fn get_combined_sig(buf: &mut &[u8]) -> Result<CombinedSig> {
    let format = match get_u8(buf)? {
        0 => QcFormat::SigGroup,
        1 => QcFormat::Threshold,
        t => {
            return Err(DecodeError::BadTag {
                what: "QcFormat",
                tag: t,
            })
        }
    };
    let bitmap = SignerBitmap::from_bits(get_u128(buf)?);
    let agg = get_digest(buf)?;
    let sig = CombinedSig::from_parts(format, bitmap, agg);
    let pad = sig.wire_len() - CombinedSig::MIN_WIRE_LEN;
    need(buf, pad)?;
    buf.advance(pad);
    Ok(sig)
}

fn get_parsig(buf: &mut &[u8]) -> Result<PartialSig> {
    let signer = get_u64(buf)? as usize;
    let tag = get_digest(buf)?;
    let pad = PartialSig::WIRE_LEN - 8 - 32;
    need(buf, pad)?;
    buf.advance(pad);
    Ok(PartialSig::from_parts(signer, tag))
}

fn get_phase(buf: &mut &[u8]) -> Result<Phase> {
    match get_u8(buf)? {
        0 => Ok(Phase::PrePrepare),
        1 => Ok(Phase::Prepare),
        2 => Ok(Phase::PreCommit),
        3 => Ok(Phase::Commit),
        t => Err(DecodeError::BadTag {
            what: "Phase",
            tag: t,
        }),
    }
}

fn get_kind(buf: &mut &[u8]) -> Result<BlockKind> {
    match get_u8(buf)? {
        0 => Ok(BlockKind::Normal),
        1 => Ok(BlockKind::Virtual),
        t => Err(DecodeError::BadTag {
            what: "BlockKind",
            tag: t,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marlin_crypto::KeyStore;

    fn keys() -> KeyStore {
        KeyStore::generate(4, 1, 11)
    }

    fn make_qc(keys: &KeyStore, phase: Phase, view: u64, format: QcFormat) -> Qc {
        let seed = QcSeed {
            phase,
            view: View(view),
            block: BlockId::from_digest(marlin_crypto::sha256(&[view as u8])),
            height: Height(view),
            block_view: View(view),
            pview: View(view.saturating_sub(1)),
            block_kind: BlockKind::Normal,
        };
        let partials: Vec<_> = (0..3)
            .map(|i| keys.signer(i).sign_partial(&seed.signing_bytes()))
            .collect();
        Qc::combine(seed, &partials, keys, format).unwrap()
    }

    fn tx(id: u64, len: usize) -> Transaction {
        Transaction::new(id, 1, Bytes::from(vec![id as u8; len]), id * 10)
    }

    fn round_trip(msg: Message, shadow: bool) {
        let encoded = encode_message(&msg, shadow);
        assert_eq!(encoded.len(), msg.wire_len(shadow), "length model broken");
        let decoded = decode_message(&encoded).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn fetch_request_round_trip() {
        round_trip(
            Message::new(
                ReplicaId(2),
                View(4),
                MsgBody::FetchRequest {
                    block: BlockId::GENESIS,
                },
            ),
            false,
        );
    }

    #[test]
    fn vote_round_trip_with_and_without_lock() {
        let ks = keys();
        let qc = make_qc(&ks, Phase::Prepare, 2, QcFormat::Threshold);
        let seed = QcSeed {
            phase: Phase::PrePrepare,
            ..*qc.seed()
        };
        let parsig = ks.signer(1).sign_partial(&seed.signing_bytes());
        for locked in [None, Some(qc)] {
            round_trip(
                Message::new(
                    ReplicaId(1),
                    View(3),
                    MsgBody::Vote(Vote {
                        seed,
                        parsig,
                        locked_qc: locked,
                    }),
                ),
                false,
            );
        }
    }

    #[test]
    fn view_change_round_trip_all_justify_shapes() {
        let ks = keys();
        let qc = make_qc(&ks, Phase::Prepare, 2, QcFormat::SigGroup);
        let pre = make_qc(&ks, Phase::PrePrepare, 2, QcFormat::Threshold);
        let meta = BlockMeta::genesis();
        let parsig = ks.signer(0).sign_partial(b"vc");
        for high_qc in [Justify::None, Justify::One(qc), Justify::Two(pre, qc)] {
            round_trip(
                Message::new(
                    ReplicaId(0),
                    View(3),
                    MsgBody::ViewChange(ViewChange {
                        last_voted: meta,
                        high_qc,
                        parsig,
                        cert: None,
                    }),
                ),
                false,
            );
        }
    }

    #[test]
    fn proposal_round_trip_one_block() {
        let ks = keys();
        let g = Block::genesis();
        let qc = Qc::genesis(g.id());
        let b = Block::new_normal(
            g.id(),
            g.view(),
            View(1),
            g.height().next(),
            Batch::new(vec![tx(1, 150), tx(2, 0)]),
            Justify::One(qc),
        );
        round_trip(
            Message::new(
                ReplicaId(1),
                View(1),
                MsgBody::Proposal(Proposal {
                    phase: Phase::Prepare,
                    blocks: vec![b],
                    justify: Justify::One(make_qc(&ks, Phase::Prepare, 1, QcFormat::Threshold)),
                    vc_proof: Vec::new(),
                }),
            ),
            false,
        );
    }

    #[test]
    fn shadow_proposal_round_trip_preserves_blocks() {
        let g = Block::genesis();
        let payload = Batch::new(vec![tx(1, 150)]);
        let qc = Qc::genesis(g.id());
        let b1 = Block::new_normal(
            g.id(),
            g.view(),
            View(2),
            g.height().next(),
            payload.clone(),
            Justify::One(qc),
        );
        let b2 = Block::new_virtual(
            g.view(),
            View(2),
            g.height().plus(2),
            payload,
            Justify::One(qc),
        );
        let msg = Message::new(
            ReplicaId(2),
            View(2),
            MsgBody::Proposal(Proposal {
                phase: Phase::PrePrepare,
                blocks: vec![b1.clone(), b2.clone()],
                justify: Justify::One(qc),
                vc_proof: Vec::new(),
            }),
        );
        for shadow in [false, true] {
            let enc = encode_message(&msg, shadow);
            assert_eq!(enc.len(), msg.wire_len(shadow));
            let dec = decode_message(&enc).unwrap();
            assert_eq!(dec, msg, "shadow={shadow}");
            // Decoded ids must match (payload reconstruction is faithful).
            if let MsgBody::Proposal(p) = &dec.body {
                assert_eq!(p.blocks[0].id(), b1.id());
                assert_eq!(p.blocks[1].id(), b2.id());
            }
        }
    }

    #[test]
    fn jolteon_proof_round_trip() {
        let ks = keys();
        let qc = make_qc(&ks, Phase::Prepare, 3, QcFormat::Threshold);
        let certs: Vec<VcCert> = (0..3)
            .map(|i| {
                let bytes = VcCert::signing_bytes(ReplicaId(i), View(4), &qc);
                VcCert {
                    from: ReplicaId(i),
                    high_qc: qc,
                    sig: ks.signer(i as usize).sign(&bytes),
                }
            })
            .collect();
        round_trip(
            Message::new(
                ReplicaId(0),
                View(4),
                MsgBody::Proposal(Proposal {
                    phase: Phase::Prepare,
                    blocks: Vec::new(),
                    justify: Justify::One(qc),
                    vc_proof: certs,
                }),
            ),
            false,
        );
    }

    #[test]
    fn decide_and_fetch_response_round_trip() {
        let ks = keys();
        let qc = make_qc(&ks, Phase::Commit, 5, QcFormat::SigGroup);
        round_trip(
            Message::new(
                ReplicaId(0),
                View(5),
                MsgBody::Decide(Decide { commit_qc: qc }),
            ),
            false,
        );
        let g = Block::genesis();
        round_trip(
            Message::new(
                ReplicaId(0),
                View(5),
                MsgBody::FetchResponse {
                    block: g,
                    virtual_parent: Some(BlockId::GENESIS),
                },
            ),
            false,
        );
    }

    #[test]
    fn catch_up_round_trips() {
        let ks = keys();
        let qc = make_qc(&ks, Phase::Commit, 6, QcFormat::Threshold);
        round_trip(
            Message::new(
                ReplicaId(2),
                View(6),
                MsgBody::CatchUpRequest {
                    last_committed: Height(17),
                },
            ),
            false,
        );
        for commit_qc in [None, Some(qc)] {
            round_trip(
                Message::new(
                    ReplicaId(1),
                    View(6),
                    MsgBody::CatchUpResponse { commit_qc },
                ),
                false,
            );
        }
    }

    #[test]
    fn sync_messages_round_trip() {
        let ks = keys();
        let qc = make_qc(&ks, Phase::Commit, 9, QcFormat::Threshold);
        round_trip(
            Message::new(ReplicaId(3), View(9), MsgBody::SnapshotRequest),
            false,
        );
        let g = Block::genesis();
        let anchor = Block::new_normal(
            g.id(),
            g.view(),
            View(9),
            g.height().next(),
            Batch::new(vec![tx(1, 40)]),
            Justify::One(Qc::genesis(g.id())),
        );
        for snapshot in [None, Some((anchor.clone(), qc))] {
            round_trip(
                Message::new(
                    ReplicaId(0),
                    View(9),
                    MsgBody::SnapshotResponse { snapshot },
                ),
                false,
            );
        }
        round_trip(
            Message::new(
                ReplicaId(2),
                View(9),
                MsgBody::BlockRangeRequest {
                    from_height: Height(100),
                    to_height: Height(131),
                },
            ),
            false,
        );
        for blocks in [
            vec![],
            vec![anchor.clone()],
            vec![anchor.clone(), g.clone()],
        ] {
            round_trip(
                Message::new(
                    ReplicaId(1),
                    View(9),
                    MsgBody::BlockRangeResponse {
                        from_height: Height(100),
                        blocks,
                    },
                ),
                false,
            );
        }
    }

    #[test]
    fn payload_messages_round_trip() {
        let ks = keys();
        let batch = Batch::new(vec![tx(1, 150), tx(2, 0), tx(3, 33)]);
        let digest = batch.digest();
        round_trip(
            Message::new(
                ReplicaId(2),
                View(7),
                MsgBody::PayloadPush {
                    digest,
                    batch: batch.clone(),
                },
            ),
            false,
        );
        round_trip(
            Message::new(ReplicaId(0), View(7), MsgBody::PayloadAck { digest }),
            false,
        );
        round_trip(
            Message::new(ReplicaId(1), View(8), MsgBody::PayloadRequest { digest }),
            false,
        );
        for batch in [None, Some(batch)] {
            round_trip(
                Message::new(
                    ReplicaId(3),
                    View(8),
                    MsgBody::PayloadResponse { digest, batch },
                ),
                false,
            );
        }
        for justify in [
            Justify::One(Qc::genesis(BlockId::GENESIS)),
            Justify::One(make_qc(&ks, Phase::Prepare, 7, QcFormat::Threshold)),
        ] {
            round_trip(
                Message::new(
                    ReplicaId(2),
                    View(8),
                    MsgBody::DigestProposal { digest, justify },
                ),
                false,
            );
        }
    }

    #[test]
    fn payload_push_lying_count_rejected() {
        // A batch count claiming more transactions than the buffer can
        // back must fail before sizing an allocation.
        let batch = Batch::new(vec![tx(1, 10)]);
        let msg = Message::new(
            ReplicaId(1),
            View(2),
            MsgBody::PayloadPush {
                digest: batch.digest(),
                batch,
            },
        );
        let mut enc = encode_message(&msg, false).to_vec();
        // Batch count sits right after the 13-byte header + 32-byte digest.
        let count_at = 13 + 32;
        enc[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_message(&enc),
            Err(DecodeError::FieldTooLarge { .. })
        ));
    }

    #[test]
    fn payload_message_decode_never_panics() {
        // Deterministic mutation fuzz over the new wire tags: every
        // truncation and byte flip must decode to Ok or a clean error.
        let ks = keys();
        let batch = Batch::new(vec![tx(1, 150), tx(2, 7)]);
        let digest = batch.digest();
        let bodies = vec![
            MsgBody::PayloadPush {
                digest,
                batch: batch.clone(),
            },
            MsgBody::PayloadAck { digest },
            MsgBody::PayloadRequest { digest },
            MsgBody::PayloadResponse {
                digest,
                batch: Some(batch),
            },
            MsgBody::DigestProposal {
                digest,
                justify: Justify::One(make_qc(&ks, Phase::Prepare, 3, QcFormat::SigGroup)),
            },
        ];
        let mut rng: u64 = 0x9e3779b97f4a7c15;
        for body in bodies {
            let enc = encode_message(&Message::new(ReplicaId(1), View(3), body), false);
            for cut in 0..enc.len() {
                let _ = decode_message(&enc[..cut]);
            }
            for _ in 0..256 {
                let mut mutated = enc.to_vec();
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let at = (rng >> 33) as usize % mutated.len();
                mutated[at] ^= (rng >> 17) as u8 | 1;
                let _ = decode_message(&mutated);
            }
        }
    }

    #[test]
    fn block_range_response_lying_count_rejected() {
        // A count prefix claiming more blocks than the buffer can back
        // must fail before sizing an allocation.
        let msg = Message::new(
            ReplicaId(1),
            View(2),
            MsgBody::BlockRangeResponse {
                from_height: Height(5),
                blocks: Vec::new(),
            },
        );
        let mut enc = encode_message(&msg, false).to_vec();
        let count_at = enc.len() - 2;
        enc[count_at] = 0xff;
        enc[count_at + 1] = 0xff;
        assert!(matches!(
            decode_message(&enc),
            Err(DecodeError::FieldTooLarge { .. })
        ));
    }

    #[test]
    fn genesis_block_round_trips_as_genesis() {
        let msg = Message::new(
            ReplicaId(0),
            View(0),
            MsgBody::FetchResponse {
                block: Block::genesis(),
                virtual_parent: None,
            },
        );
        let dec = decode_message(&encode_message(&msg, false)).unwrap();
        if let MsgBody::FetchResponse { block, .. } = dec.body {
            assert!(block.is_genesis());
            assert_eq!(block.id(), BlockId::GENESIS);
        } else {
            panic!("wrong body");
        }
    }

    #[test]
    fn truncated_buffers_error_cleanly() {
        let ks = keys();
        let qc = make_qc(&ks, Phase::Commit, 5, QcFormat::Threshold);
        let msg = Message::new(
            ReplicaId(0),
            View(5),
            MsgBody::Decide(Decide { commit_qc: qc }),
        );
        let enc = encode_message(&msg, false);
        for cut in [0, 1, 12, 13, 20, enc.len() - 1] {
            assert!(decode_message(&enc[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn bad_tags_error_cleanly() {
        let msg = Message::new(
            ReplicaId(0),
            View(1),
            MsgBody::FetchRequest {
                block: BlockId::GENESIS,
            },
        );
        let mut enc = encode_message(&msg, false).to_vec();
        enc[12] = 99; // body tag
        assert_eq!(
            decode_message(&enc),
            Err(DecodeError::BadTag {
                what: "MsgBody",
                tag: 99
            })
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let msg = Message::new(
            ReplicaId(0),
            View(1),
            MsgBody::FetchRequest {
                block: BlockId::GENESIS,
            },
        );
        let mut enc = encode_message(&msg, false).to_vec();
        enc.push(0);
        assert_eq!(decode_message(&enc), Err(DecodeError::TrailingBytes(1)));
    }
}
