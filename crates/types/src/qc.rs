//! Quorum certificates.

use crate::block::{BlockId, BlockKind};
use crate::ids::{Height, View};
use marlin_crypto::{CombinedSig, Digest, KeyStore, PartialSig, QcFormat, Sha256, SignerBitmap};
use std::fmt;

/// The phase a vote or quorum certificate belongs to.
///
/// Marlin uses `PrePrepare` (view change only), `Prepare`, and `Commit`.
/// The HotStuff baseline additionally uses `PreCommit` for its middle
/// phase. The paper's rank rules (Figure 4) treat `Prepare` and `Commit`
/// as one class ranking above `PrePrepare`; `PreCommit` is grouped with
/// that higher class so HotStuff QCs rank consistently.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Phase {
    /// First view-change phase (Marlin) — `pre-prepareQC`.
    PrePrepare,
    /// First normal-case phase — `prepareQC`.
    Prepare,
    /// HotStuff's second phase — `precommitQC`.
    PreCommit,
    /// Final phase — `commitQC`.
    Commit,
}

impl Phase {
    /// Whether this phase belongs to the high rank class of Figure 4
    /// (`PREPARE`/`COMMIT`, plus HotStuff's `PreCommit`).
    pub fn is_high_class(self) -> bool {
        !matches!(self, Phase::PrePrepare)
    }

    fn tag(self) -> u8 {
        match self {
            Phase::PrePrepare => 0,
            Phase::Prepare => 1,
            Phase::PreCommit => 2,
            Phase::Commit => 3,
        }
    }
}

/// The exact content a vote's partial signature covers.
///
/// Every replica voting in a given phase for a given block signs the same
/// seed, which is what makes the partial signatures combinable into a
/// [`Qc`]. The seed also carries enough block metadata (`block_view`,
/// `pview`, `block_kind`) that a QC's rank and validity rules can be
/// evaluated without possessing the block itself.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct QcSeed {
    /// Phase being certified.
    pub phase: Phase,
    /// View in which the certificate forms (`qc.view`).
    pub view: View,
    /// The certified block.
    pub block: BlockId,
    /// Height of the certified block (`qc.height`).
    pub height: Height,
    /// View in which the certified block was proposed.
    pub block_view: View,
    /// View of the certified block's parent (`qc.pview`) — used to
    /// validate virtual blocks (`vc.view = qc.pview`).
    pub pview: View,
    /// Whether the certified block is normal or virtual.
    pub block_kind: BlockKind,
}

impl QcSeed {
    /// Canonical byte string that partial signatures sign.
    pub fn signing_bytes(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(b"marlin.qc.seed.v1");
        h.update(&[self.phase.tag()]);
        h.update(&self.view.0.to_le_bytes());
        h.update(self.block.digest().as_bytes());
        h.update(&self.height.0.to_le_bytes());
        h.update(&self.block_view.0.to_le_bytes());
        h.update(&self.pview.0.to_le_bytes());
        h.update(&[match self.block_kind {
            BlockKind::Normal => 0u8,
            BlockKind::Virtual => 1u8,
        }]);
        h.finalize().into_bytes()
    }
}

/// A quorum certificate: a combined signature from `n − f` replicas over
/// a [`QcSeed`].
///
/// # Example
///
/// ```
/// use marlin_types::{Qc, BlockId};
///
/// let genesis_qc = Qc::genesis(BlockId::GENESIS);
/// assert!(genesis_qc.is_genesis());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Qc {
    seed: QcSeed,
    sig: CombinedSig,
    /// Memoized `seed.signing_bytes()`, computed once at construction.
    /// Every signature check, justify hash, and verification-cache probe
    /// needs these bytes; certificates are re-verified and re-hashed far
    /// more often than they are built.
    signing: [u8; 32],
}

impl Qc {
    /// Assembles a certificate from a seed and a combined signature.
    ///
    /// The signature's validity is *not* checked here; use
    /// [`Qc::verify`] at trust boundaries.
    pub fn new(seed: QcSeed, sig: CombinedSig) -> Self {
        Qc {
            seed,
            sig,
            signing: seed.signing_bytes(),
        }
    }

    /// The well-known certificate for the genesis block. Its signature is
    /// empty and is special-cased by [`Qc::verify`].
    pub fn genesis(genesis_block: BlockId) -> Self {
        let seed = QcSeed {
            phase: Phase::Prepare,
            view: View::GENESIS,
            block: genesis_block,
            height: Height::GENESIS,
            block_view: View::GENESIS,
            pview: View::GENESIS,
            block_kind: BlockKind::Normal,
        };
        let sig = CombinedSig::from_parts(QcFormat::Threshold, SignerBitmap::empty(), Digest::ZERO);
        Qc::new(seed, sig)
    }

    /// Whether this is the genesis certificate.
    pub fn is_genesis(&self) -> bool {
        self.seed.view == View::GENESIS && self.seed.height == Height::GENESIS
    }

    /// The certified seed.
    pub fn seed(&self) -> &QcSeed {
        &self.seed
    }

    /// The seed's canonical signing bytes, memoized at construction.
    /// Prefer this over `seed().signing_bytes()` on hot paths — the
    /// latter recomputes a SHA-256 every call.
    pub fn signing_bytes(&self) -> &[u8; 32] {
        &self.signing
    }

    /// The combined signature.
    pub fn sig(&self) -> &CombinedSig {
        &self.sig
    }

    /// `type(qc)` — the phase this certificate belongs to.
    pub fn phase(&self) -> Phase {
        self.seed.phase
    }

    /// `qc.view` — the view in which this certificate formed.
    pub fn view(&self) -> View {
        self.seed.view
    }

    /// `block(qc)` — the id of the certified block.
    pub fn block(&self) -> BlockId {
        self.seed.block
    }

    /// `qc.height` — height of the certified block.
    pub fn height(&self) -> Height {
        self.seed.height
    }

    /// View in which the certified block was proposed.
    pub fn block_view(&self) -> View {
        self.seed.block_view
    }

    /// `qc.pview` — view of the certified block's parent.
    pub fn pview(&self) -> View {
        self.seed.pview
    }

    /// Whether the certified block is normal or virtual.
    pub fn block_kind(&self) -> BlockKind {
        self.seed.block_kind
    }

    /// Verifies the certificate's combined signature against `keys`.
    ///
    /// The genesis certificate is always valid.
    pub fn verify(&self, keys: &KeyStore) -> bool {
        if self.is_genesis() {
            return true;
        }
        keys.verify_combined(&self.signing, &self.sig)
    }

    /// Combines `partials` (each signed over `seed.signing_bytes()`) into
    /// a certificate.
    ///
    /// # Errors
    ///
    /// Propagates [`marlin_crypto::SigError`] if fewer than `n − f`
    /// distinct valid partial signatures are supplied.
    pub fn combine(
        seed: QcSeed,
        partials: &[PartialSig],
        keys: &KeyStore,
        format: QcFormat,
    ) -> Result<Self, marlin_crypto::SigError> {
        let signing = seed.signing_bytes();
        let sig = keys.combine(&signing, partials, format)?;
        Ok(Qc { seed, sig, signing })
    }

    /// Bytes this certificate occupies on the wire (seed metadata plus
    /// the format-dependent signature size).
    pub fn wire_len(&self) -> usize {
        // phase(1) + view(8) + block(32) + height(8) + block_view(8)
        // + pview(8) + kind(1) + signature
        66 + self.sig.wire_len()
    }

    /// Authenticators this certificate counts as under the paper's
    /// complexity metric.
    pub fn authenticator_count(&self) -> usize {
        if self.is_genesis() {
            0
        } else {
            self.sig.authenticator_count()
        }
    }
}

impl fmt::Debug for Qc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Qc({:?} {:?} {:?} blk={} bv={:?})",
            self.seed.phase,
            self.seed.view,
            self.seed.height,
            self.seed.block.digest().short(),
            self.seed.block_view,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marlin_crypto::KeyStore;

    fn seed(phase: Phase, view: u64, height: u64) -> QcSeed {
        QcSeed {
            phase,
            view: View(view),
            block: BlockId::from_digest(marlin_crypto::sha256(&height.to_le_bytes())),
            height: Height(height),
            block_view: View(view),
            pview: View(view.saturating_sub(1)),
            block_kind: BlockKind::Normal,
        }
    }

    #[test]
    fn genesis_qc_is_valid_everywhere() {
        let keys = KeyStore::generate(4, 1, 1);
        let qc = Qc::genesis(BlockId::GENESIS);
        assert!(qc.is_genesis());
        assert!(qc.verify(&keys));
        assert_eq!(qc.authenticator_count(), 0);
    }

    #[test]
    fn combine_and_verify_round_trip() {
        let keys = KeyStore::generate(4, 1, 1);
        let s = seed(Phase::Prepare, 3, 7);
        let partials: Vec<_> = (0..3)
            .map(|i| keys.signer(i).sign_partial(&s.signing_bytes()))
            .collect();
        let qc = Qc::combine(s, &partials, &keys, QcFormat::Threshold).unwrap();
        assert!(qc.verify(&keys));
        assert_eq!(qc.phase(), Phase::Prepare);
        assert_eq!(qc.view(), View(3));
        assert_eq!(qc.height(), Height(7));
    }

    #[test]
    fn combine_rejects_subquorum() {
        let keys = KeyStore::generate(4, 1, 1);
        let s = seed(Phase::Commit, 1, 1);
        let partials: Vec<_> = (0..2)
            .map(|i| keys.signer(i).sign_partial(&s.signing_bytes()))
            .collect();
        assert!(Qc::combine(s, &partials, &keys, QcFormat::Threshold).is_err());
    }

    #[test]
    fn verify_rejects_seed_substitution() {
        let keys = KeyStore::generate(4, 1, 1);
        let s = seed(Phase::Prepare, 3, 7);
        let partials: Vec<_> = (0..3)
            .map(|i| keys.signer(i).sign_partial(&s.signing_bytes()))
            .collect();
        let qc = Qc::combine(s, &partials, &keys, QcFormat::Threshold).unwrap();
        // Re-bind the signature to a different seed: must fail.
        let other = seed(Phase::Prepare, 4, 8);
        let forged = Qc::new(other, *qc.sig());
        assert!(!forged.verify(&keys));
    }

    #[test]
    fn seeds_differing_in_any_field_sign_differently() {
        let base = seed(Phase::Prepare, 3, 7);
        let variants = [
            QcSeed {
                phase: Phase::Commit,
                ..base
            },
            QcSeed {
                view: View(4),
                ..base
            },
            QcSeed {
                height: Height(8),
                ..base
            },
            QcSeed {
                block_view: View(9),
                ..base
            },
            QcSeed {
                pview: View(9),
                ..base
            },
            QcSeed {
                block_kind: BlockKind::Virtual,
                ..base
            },
        ];
        for v in variants {
            assert_ne!(v.signing_bytes(), base.signing_bytes(), "{v:?}");
        }
    }

    #[test]
    fn wire_len_reflects_format() {
        let keys = KeyStore::generate(4, 1, 1);
        let s = seed(Phase::Prepare, 1, 1);
        let partials: Vec<_> = (0..3)
            .map(|i| keys.signer(i).sign_partial(&s.signing_bytes()))
            .collect();
        let thr = Qc::combine(s, &partials, &keys, QcFormat::Threshold).unwrap();
        let grp = Qc::combine(s, &partials, &keys, QcFormat::SigGroup).unwrap();
        assert!(grp.wire_len() > thr.wire_len());
        assert_eq!(thr.wire_len(), 66 + 96);
    }

    #[test]
    fn memoized_signing_bytes_match_seed() {
        let keys = KeyStore::generate(4, 1, 1);
        let s = seed(Phase::Commit, 5, 9);
        let partials: Vec<_> = (0..3)
            .map(|i| keys.signer(i).sign_partial(&s.signing_bytes()))
            .collect();
        let qc = Qc::combine(s, &partials, &keys, QcFormat::Threshold).unwrap();
        assert_eq!(qc.signing_bytes(), &qc.seed().signing_bytes());
        let rebuilt = Qc::new(*qc.seed(), *qc.sig());
        assert_eq!(rebuilt.signing_bytes(), qc.signing_bytes());
        assert_eq!(
            Qc::genesis(BlockId::GENESIS).signing_bytes(),
            &Qc::genesis(BlockId::GENESIS).seed().signing_bytes()
        );
    }

    #[test]
    fn phase_classes() {
        assert!(!Phase::PrePrepare.is_high_class());
        assert!(Phase::Prepare.is_high_class());
        assert!(Phase::PreCommit.is_high_class());
        assert!(Phase::Commit.is_high_class());
    }
}
