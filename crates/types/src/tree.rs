//! Each replica's tree of blocks and its committed chain.

use crate::block::{Block, BlockId, ParentLink};
use crate::ids::Height;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Error returned by [`BlockStore::commit`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommitError {
    /// The block to commit is not in the store.
    UnknownBlock(BlockId),
    /// An ancestor needed to complete the chain is missing; the caller
    /// should fetch it and retry.
    MissingAncestor {
        /// The block whose parent is missing.
        of: BlockId,
        /// The missing parent (if the link is known).
        parent: Option<BlockId>,
    },
    /// Committing this block would conflict with the committed chain —
    /// a safety violation if it ever happens.
    ConflictsWithCommitted {
        /// The offending block.
        block: BlockId,
    },
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::UnknownBlock(id) => write!(f, "block {id} not in store"),
            CommitError::MissingAncestor { of, parent } => match parent {
                Some(p) => write!(f, "missing ancestor {p} of {of}"),
                None => write!(f, "unresolved virtual parent of {of}"),
            },
            CommitError::ConflictsWithCommitted { block } => {
                write!(f, "block {block} conflicts with the committed chain")
            }
        }
    }
}

impl std::error::Error for CommitError {}

/// A replica's tree of blocks (Section III-A), rooted at the genesis
/// block, plus the monotonically growing committed branch.
///
/// Virtual blocks carry no parent link; their parent is resolved later
/// from the accompanying `prepareQC` via
/// [`BlockStore::resolve_virtual_parent`].
///
/// # Example
///
/// ```
/// use marlin_types::{Batch, Block, BlockStore, Justify, Qc, View};
///
/// let mut store = BlockStore::new();
/// let g = store.genesis().clone();
/// let b1 = Block::new_normal(
///     g.id(), g.view(), View(1), g.height().next(),
///     Batch::empty(), Justify::One(Qc::genesis(g.id())),
/// );
/// store.insert(b1.clone());
/// assert!(store.is_extension(&b1.id(), &g.id()));
/// let committed = store.commit(&b1.id()).unwrap();
/// assert_eq!(committed.len(), 1); // genesis is pre-committed
/// ```
#[derive(Clone, Debug)]
pub struct BlockStore {
    blocks: HashMap<BlockId, Block>,
    /// Resolved parents of virtual blocks.
    virtual_parents: HashMap<BlockId, BlockId>,
    /// Resident suffix of the committed chain. Entry `i` sits at
    /// absolute chain position `committed_trimmed + i`; along the
    /// committed chain, absolute position equals block height (genesis
    /// is position 0).
    committed: Vec<BlockId>,
    /// Absolute position of `committed[0]`: how many older entries have
    /// been pruned away.
    committed_trimmed: usize,
    committed_set: HashSet<BlockId>,
}

impl Default for BlockStore {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockStore {
    /// Creates a store containing only the (already committed) genesis
    /// block.
    pub fn new() -> Self {
        let genesis = Block::genesis();
        let id = genesis.id();
        let mut blocks = HashMap::new();
        blocks.insert(id, genesis);
        let mut committed_set = HashSet::new();
        committed_set.insert(id);
        BlockStore {
            blocks,
            virtual_parents: HashMap::new(),
            committed: vec![id],
            committed_trimmed: 0,
            committed_set,
        }
    }

    /// The genesis block.
    pub fn genesis(&self) -> &Block {
        &self.blocks[&BlockId::GENESIS]
    }

    /// Inserts a block; returns `false` if it was already present.
    pub fn insert(&mut self, block: Block) -> bool {
        self.blocks.insert(block.id(), block).is_none()
    }

    /// Looks up a block by id.
    pub fn get(&self, id: &BlockId) -> Option<&Block> {
        self.blocks.get(id)
    }

    /// Whether the store holds `id`.
    pub fn contains(&self, id: &BlockId) -> bool {
        self.blocks.contains_key(id)
    }

    /// Number of blocks stored (including genesis).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the store is empty — never true, genesis is always held.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Records that virtual block `virtual_id`'s parent is `parent_id`
    /// (learned from the validating `prepareQC` `vc`).
    pub fn resolve_virtual_parent(&mut self, virtual_id: BlockId, parent_id: BlockId) {
        self.virtual_parents.insert(virtual_id, parent_id);
    }

    /// The parent id of `id`, following virtual-parent resolutions.
    pub fn parent_id_of(&self, id: &BlockId) -> Option<BlockId> {
        let block = self.blocks.get(id)?;
        match block.parent() {
            ParentLink::Hash(pid) => Some(pid),
            ParentLink::Nil => self.virtual_parents.get(id).copied(),
        }
    }

    /// Walks the branch led by `id` down to genesis, yielding ids
    /// starting at `id`. Stops early if a link is unresolved or missing.
    pub fn branch(&self, id: &BlockId) -> Branch<'_> {
        Branch {
            store: self,
            next: self.blocks.contains_key(id).then_some(*id),
        }
    }

    /// Whether `descendant` is `ancestor` or an extension of it
    /// (the paper's "b′ is an extension of b").
    pub fn is_extension(&self, descendant: &BlockId, ancestor: &BlockId) -> bool {
        self.branch(descendant).any(|id| id == *ancestor)
    }

    /// Whether two blocks conflict: neither branch extends the other.
    pub fn conflicts(&self, a: &BlockId, b: &BlockId) -> bool {
        !self.is_extension(a, b) && !self.is_extension(b, a)
    }

    /// The resident suffix of the committed chain, oldest first. Entry
    /// `i` sits at absolute position [`Self::committed_offset`]` + i`.
    pub fn committed_chain(&self) -> &[BlockId] {
        &self.committed
    }

    /// Absolute chain position of `committed_chain()[0]` — the number
    /// of older committed entries pruned away. Along the committed
    /// chain, absolute position equals block height.
    pub fn committed_offset(&self) -> usize {
        self.committed_trimmed
    }

    /// The committed block at `height`, if it is still resident.
    pub fn block_at_height(&self, height: Height) -> Option<&Block> {
        let idx = (height.0 as usize).checked_sub(self.committed_trimmed)?;
        let id = self.committed.get(idx)?;
        self.blocks.get(id)
    }

    /// The tip of the committed chain.
    pub fn last_committed(&self) -> BlockId {
        *self
            .committed
            .last()
            .expect("committed chain always holds genesis")
    }

    /// Whether `id` has been committed.
    pub fn is_committed(&self, id: &BlockId) -> bool {
        self.committed_set.contains(id)
    }

    /// Commits `id` and all its uncommitted ancestors, returning the
    /// newly committed blocks oldest-first.
    ///
    /// # Errors
    ///
    /// * [`CommitError::UnknownBlock`] if `id` is not stored;
    /// * [`CommitError::MissingAncestor`] if the chain to the committed
    ///   tip cannot be completed (caller should fetch the block);
    /// * [`CommitError::ConflictsWithCommitted`] if the branch does not
    ///   extend the committed tip — this would be a safety violation and
    ///   is also checked by the test harnesses.
    pub fn commit(&mut self, id: &BlockId) -> Result<Vec<Block>, CommitError> {
        if !self.blocks.contains_key(id) {
            return Err(CommitError::UnknownBlock(*id));
        }
        if self.committed_set.contains(id) {
            return Ok(Vec::new());
        }
        // Walk up until we reach a committed block.
        let mut path: Vec<BlockId> = Vec::new();
        let mut cur = *id;
        loop {
            path.push(cur);
            let parent = match self.parent_id_of(&cur) {
                Some(p) => p,
                None => {
                    return Err(CommitError::MissingAncestor {
                        of: cur,
                        parent: None,
                    });
                }
            };
            if self.committed_set.contains(&parent) {
                // Must extend the *tip*, not an interior committed block.
                if parent != self.last_committed() {
                    return Err(CommitError::ConflictsWithCommitted { block: *id });
                }
                break;
            }
            if !self.blocks.contains_key(&parent) {
                return Err(CommitError::MissingAncestor {
                    of: cur,
                    parent: Some(parent),
                });
            }
            cur = parent;
        }
        path.reverse();
        let mut newly = Vec::with_capacity(path.len());
        for bid in path {
            debug_assert_eq!(
                self.blocks[&bid].height().0 as usize,
                self.committed_trimmed + self.committed.len(),
                "committed chain positions must equal heights"
            );
            self.committed.push(bid);
            self.committed_set.insert(bid);
            newly.push(self.blocks[&bid].clone());
        }
        Ok(newly)
    }

    /// Re-roots the committed chain at a snapshot `anchor` (a block a
    /// sync run verified against a commit-phase QC). The anchor becomes
    /// the committed tip at its own height; everything below it is
    /// treated as pruned. Subsequent commits must extend the anchor.
    pub fn install_anchor(&mut self, anchor: Block) {
        let id = anchor.id();
        let height = anchor.height().0 as usize;
        debug_assert!(
            height >= self.committed_trimmed + self.committed.len(),
            "anchor must be ahead of the committed tip"
        );
        for old in self.committed.drain(..) {
            if old != BlockId::GENESIS {
                self.blocks.remove(&old);
                self.virtual_parents.remove(&old);
                self.committed_set.remove(&old);
            }
        }
        self.blocks.insert(id, anchor);
        self.committed.push(id);
        self.committed_trimmed = height;
        self.committed_set.insert(id);
    }

    /// Prunes committed chain entries strictly below `height`: the
    /// blocks leave the store, the resident committed suffix shrinks,
    /// and [`Self::committed_offset`] advances. The committed tip and
    /// the genesis block are always retained. This — unlike
    /// [`Self::prune`] — also shrinks the committed-id set, so resident
    /// state stays bounded on arbitrarily long runs.
    pub fn prune_committed_before(&mut self, height: Height) {
        let target = height.0 as usize;
        let drop = target
            .saturating_sub(self.committed_trimmed)
            .min(self.committed.len().saturating_sub(1));
        for id in self.committed.drain(..drop) {
            self.committed_set.remove(&id);
            if id != BlockId::GENESIS {
                self.blocks.remove(&id);
                self.virtual_parents.remove(&id);
            }
        }
        self.committed_trimmed += drop;
        // Genesis stays logically committed even once trimmed out of
        // the resident suffix.
        self.committed_set.insert(BlockId::GENESIS);
    }

    /// Drops uncommitted blocks below `height` and committed chain
    /// entries older than the last `keep_committed` (garbage collection
    /// / checkpointing). The genesis entry and committed tip are always
    /// retained.
    pub fn prune(&mut self, height: Height, keep_committed: usize) {
        let committed_set = &self.committed_set;
        self.blocks.retain(|id, b| {
            committed_set.contains(id) || b.height() >= height || *id == BlockId::GENESIS
        });
        if self.committed.len() > keep_committed.max(1) {
            let cut = self.committed.len() - keep_committed.max(1);
            for id in self.committed.drain(..cut) {
                self.committed_set.remove(&id);
                if id != BlockId::GENESIS {
                    self.blocks.remove(&id);
                    self.virtual_parents.remove(&id);
                }
            }
            self.committed_trimmed += cut;
            self.committed_set.insert(BlockId::GENESIS);
        }
    }
}

/// Iterator returned by [`BlockStore::branch`].
#[derive(Clone, Debug)]
pub struct Branch<'a> {
    store: &'a BlockStore,
    next: Option<BlockId>,
}

impl Iterator for Branch<'_> {
    type Item = BlockId;

    fn next(&mut self) -> Option<BlockId> {
        let cur = self.next?;
        self.next = self
            .store
            .parent_id_of(&cur)
            .filter(|p| self.store.blocks.contains_key(p));
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Justify;
    use crate::ids::View;
    use crate::qc::Qc;
    use crate::transaction::Batch;

    fn child(parent: &Block, view: u64) -> Block {
        Block::new_normal(
            parent.id(),
            parent.view(),
            View(view),
            parent.height().next(),
            Batch::empty(),
            Justify::One(Qc::genesis(parent.id())),
        )
    }

    fn store_with_chain(len: usize) -> (BlockStore, Vec<Block>) {
        let mut store = BlockStore::new();
        let mut blocks = vec![store.genesis().clone()];
        for i in 0..len {
            let b = child(blocks.last().unwrap(), (i + 1) as u64);
            store.insert(b.clone());
            blocks.push(b);
        }
        (store, blocks)
    }

    #[test]
    fn paper_figure1_relations() {
        // Figure 1: b0 ← b1 ← b2 ← b3 and a conflicting d3 under b1.
        let (mut store, chain) = store_with_chain(3);
        let (b0, b1, b2, b3) = (&chain[0], &chain[1], &chain[2], &chain[3]);
        let d3 = Block::new_normal(
            b1.id(),
            b1.view(),
            View(9),
            b1.height().next(),
            Batch::empty(),
            Justify::One(Qc::genesis(b1.id())),
        );
        store.insert(d3.clone());
        assert!(store.is_extension(&b3.id(), &b2.id()));
        assert!(store.is_extension(&b3.id(), &b1.id()));
        assert!(store.is_extension(&b3.id(), &b0.id()));
        assert!(store.conflicts(&b3.id(), &d3.id()));
        assert!(!store.conflicts(&b2.id(), &b3.id()));
        assert_eq!(b3.height(), Height(3));
    }

    #[test]
    fn commit_walks_ancestors_in_order() {
        let (mut store, chain) = store_with_chain(3);
        let newly = store.commit(&chain[3].id()).unwrap();
        let ids: Vec<BlockId> = newly.iter().map(Block::id).collect();
        assert_eq!(ids, vec![chain[1].id(), chain[2].id(), chain[3].id()]);
        assert_eq!(store.last_committed(), chain[3].id());
        // Recommitting is a no-op.
        assert!(store.commit(&chain[3].id()).unwrap().is_empty());
    }

    #[test]
    fn commit_unknown_block_errors() {
        let mut store = BlockStore::new();
        let err = store
            .commit(&BlockId::from_digest(marlin_crypto::sha256(b"?")))
            .unwrap_err();
        assert!(matches!(err, CommitError::UnknownBlock(_)));
    }

    #[test]
    fn commit_with_missing_ancestor_errors() {
        let (full, chain) = store_with_chain(3);
        // A second store that never saw block 2.
        let mut sparse = BlockStore::new();
        sparse.insert(chain[1].clone());
        sparse.insert(chain[3].clone());
        let err = sparse.commit(&chain[3].id()).unwrap_err();
        assert_eq!(
            err,
            CommitError::MissingAncestor {
                of: chain[3].id(),
                parent: Some(chain[2].id())
            }
        );
        drop(full);
    }

    #[test]
    fn commit_conflicting_branch_errors() {
        let (mut store, chain) = store_with_chain(2);
        store.commit(&chain[2].id()).unwrap();
        // A fork off block 1 conflicts with committed block 2.
        let fork = child(&chain[1], 7);
        store.insert(fork.clone());
        let err = store.commit(&fork.id()).unwrap_err();
        assert!(matches!(err, CommitError::ConflictsWithCommitted { .. }));
    }

    #[test]
    fn virtual_parent_resolution() {
        let (mut store, chain) = store_with_chain(1);
        let parent = &chain[1];
        let vb = Block::new_virtual(
            parent.view(),
            View(2),
            parent.height().next(),
            Batch::empty(),
            Justify::One(Qc::genesis(parent.id())),
        );
        store.insert(vb.clone());
        // Unresolved: branch stops at the virtual block, commit fails.
        assert_eq!(store.branch(&vb.id()).count(), 1);
        assert!(matches!(
            store.commit(&vb.id()),
            Err(CommitError::MissingAncestor { parent: None, .. })
        ));
        // Resolve and retry.
        store.resolve_virtual_parent(vb.id(), parent.id());
        assert!(store.is_extension(&vb.id(), &BlockId::GENESIS));
        let newly = store.commit(&vb.id()).unwrap();
        assert_eq!(newly.len(), 2);
    }

    #[test]
    fn prune_keeps_committed_tip_and_genesis() {
        let (mut store, chain) = store_with_chain(6);
        store.commit(&chain[6].id()).unwrap();
        store.prune(Height(100), 2);
        assert!(store.contains(&BlockId::GENESIS));
        assert!(store.contains(&chain[6].id()));
        assert!(store.contains(&chain[5].id()));
        assert!(!store.contains(&chain[1].id()));
        assert_eq!(store.last_committed(), chain[6].id());
    }

    #[test]
    fn prune_retains_high_uncommitted_blocks() {
        let (mut store, chain) = store_with_chain(4);
        store.prune(Height(3), 10);
        // Heights 3 and 4 are retained even though uncommitted.
        assert!(store.contains(&chain[3].id()));
        assert!(store.contains(&chain[4].id()));
        assert!(!store.contains(&chain[1].id()));
    }

    #[test]
    fn prune_committed_before_bounds_resident_state() {
        let (mut store, chain) = store_with_chain(8);
        store.commit(&chain[8].id()).unwrap();
        assert_eq!(store.committed_offset(), 0);
        store.prune_committed_before(Height(5));
        assert_eq!(store.committed_offset(), 5);
        assert_eq!(store.committed_chain().len(), 4);
        assert_eq!(store.last_committed(), chain[8].id());
        assert!(store.contains(&BlockId::GENESIS));
        assert!(!store.contains(&chain[2].id()));
        assert!(!store.is_committed(&chain[2].id()));
        assert!(store.is_committed(&BlockId::GENESIS));
        assert_eq!(
            store.block_at_height(Height(6)).map(Block::id),
            Some(chain[6].id())
        );
        assert!(store.block_at_height(Height(2)).is_none());
        // Never prunes the tip, even with an absurd horizon.
        store.prune_committed_before(Height(1_000));
        assert_eq!(store.committed_chain().len(), 1);
        assert_eq!(store.last_committed(), chain[8].id());
        // Committing still extends the (now offset) chain.
        let next = child(&chain[8], 20);
        store.insert(next.clone());
        store.commit(&next.id()).unwrap();
        assert_eq!(store.last_committed(), next.id());
    }

    #[test]
    fn install_anchor_reroots_the_committed_chain() {
        let (mut store, chain) = store_with_chain(3);
        store.commit(&chain[2].id()).unwrap();
        // A far-ahead anchor at height 40, as a sync run would install.
        let mut parent = chain[3].clone();
        for v in 4..40 {
            let b = child(&parent, v);
            parent = b;
        }
        assert_eq!(parent.height(), Height(39));
        let anchor = child(&parent, 40);
        store.install_anchor(anchor.clone());
        assert_eq!(store.last_committed(), anchor.id());
        assert_eq!(store.committed_offset(), 40);
        assert_eq!(store.committed_chain().len(), 1);
        assert!(store.is_committed(&anchor.id()));
        assert!(!store.is_committed(&chain[2].id()));
        assert!(store.contains(&BlockId::GENESIS));
        // Commits above the anchor chain onto it.
        let next = child(&anchor, 41);
        store.insert(next.clone());
        let newly = store.commit(&next.id()).unwrap();
        assert_eq!(newly.len(), 1);
        assert_eq!(store.committed_offset(), 40);
        assert_eq!(store.committed_chain().len(), 2);
    }

    #[test]
    fn branch_iterates_to_genesis() {
        let (store, chain) = store_with_chain(3);
        let ids: Vec<BlockId> = store.branch(&chain[3].id()).collect();
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[0], chain[3].id());
        assert_eq!(ids[3], BlockId::GENESIS);
    }
}
