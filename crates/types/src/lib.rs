//! Shared data model for the `marlin-bft` reproduction of *Marlin:
//! Two-Phase BFT with Linearity* (DSN 2022).
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! * [`View`], [`Height`], [`ReplicaId`] — protocol newtypes;
//! * [`Transaction`] and [`Batch`] — client operations;
//! * [`Block`] — the paper's `b = [pl, pview, view, height, op, justify]`
//!   tuple, including *virtual* blocks (parent link ⊥) and *shadow*
//!   blocks (same operations, different metadata);
//! * [`Qc`] — quorum certificates with their [`Phase`];
//! * [`rank`] — the paper's Figure 4 rank-comparison rules for QCs and
//!   the block rank rules of Section V-A;
//! * [`Message`] — the union wire format used by Marlin and every
//!   baseline protocol in this workspace;
//! * [`codec`] — a compact binary wire codec whose byte counts drive the
//!   network simulator's bandwidth model;
//! * [`BlockStore`] — each replica's tree of blocks.
//!
//! # Example
//!
//! ```
//! use marlin_types::{Block, BlockStore, View, Height};
//!
//! let mut store = BlockStore::new();
//! let genesis = store.genesis().clone();
//! assert_eq!(genesis.height(), Height(0));
//! assert!(store.contains(&genesis.id()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
pub mod codec;
mod ids;
mod message;
mod qc;
pub mod rank;
mod transaction;
mod tree;

pub use block::{Block, BlockId, BlockKind, BlockMeta, Justify, ParentLink};
pub use ids::{Height, ReplicaId, View};
pub use message::{Decide, Message, MsgBody, MsgClass, Proposal, VcCert, ViewChange, Vote};
pub use qc::{Phase, Qc, QcSeed};
pub use transaction::{Batch, BatchId, Transaction};
pub use tree::{BlockStore, CommitError};
