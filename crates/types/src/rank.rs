//! Rank comparison rules for quorum certificates and blocks
//! (paper Figure 4 and Section V-A).
//!
//! Ranks determine whether a proposal may safely be accepted. For QCs the
//! rules of Figure 4 form a **total preorder**: every pair of QCs is
//! comparable, but distinct QCs can share a rank (e.g. two
//! `pre-prepareQC`s formed in the same view have equal rank regardless of
//! height). For blocks the relation of Section V-A is a *partial* order —
//! within one view a block only outranks another if it is higher **and**
//! its justify is a `prepareQC` formed in that same view.
//!
//! # Example
//!
//! ```
//! use marlin_types::rank::qc_rank_cmp;
//! use marlin_types::{Phase, Qc, QcSeed, View, Height, BlockId, BlockKind};
//! use std::cmp::Ordering;
//!
//! let lo = Qc::genesis(BlockId::GENESIS);
//! let hi = Qc::genesis(BlockId::GENESIS); // same seed → same rank
//! assert_eq!(qc_rank_cmp(&lo, &hi), Ordering::Equal);
//! ```

use crate::block::BlockMeta;
use crate::qc::Qc;
use std::cmp::Ordering;

/// The totally ordered key realizing Figure 4's comparison rules.
///
/// * rule (a): view dominates;
/// * rule (b): within a view, `PREPARE`/`COMMIT` (the "high class")
///   outrank `PRE-PREPARE`;
/// * rule (c): within a view and the high class, height decides;
///   `PRE-PREPARE` QCs of one view are all equal regardless of height.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RankKey {
    view: u64,
    high_class: bool,
    height: u64,
}

/// The rank key of a certificate.
pub fn qc_rank(qc: &Qc) -> RankKey {
    let high_class = qc.phase().is_high_class();
    RankKey {
        view: qc.view().0,
        high_class,
        // Heights only discriminate within the high class (rule c);
        // pre-prepare QCs of one view share a rank whatever their height.
        height: if high_class { qc.height().0 } else { 0 },
    }
}

/// Compares two certificates by rank (`Ordering::Equal` means
/// "same rank", which does **not** imply the QCs are identical).
pub fn qc_rank_cmp(a: &Qc, b: &Qc) -> Ordering {
    qc_rank(a).cmp(&qc_rank(b))
}

/// `rank(a) ≥ rank(b)` for certificates; treats `None` as minus infinity
/// (a replica that has never locked accepts any valid QC).
pub fn qc_rank_ge(a: &Qc, b: Option<&Qc>) -> bool {
    match b {
        None => true,
        Some(b) => qc_rank_cmp(a, b) != Ordering::Less,
    }
}

/// Block rank: `rank(a) > rank(b)` per Section V-A.
///
/// True iff `a.view > b.view`, or (`a.view = b.view`, `a.height >
/// b.height`, and `a.justify` is a `prepareQC` formed in `a.view` —
/// captured by [`BlockMeta::rank_boost`]).
pub fn block_rank_gt(a: &BlockMeta, b: &BlockMeta) -> bool {
    a.view > b.view || (a.view == b.view && a.height > b.height && a.rank_boost)
}

/// Selects the metadata of a highest-ranked block from `candidates`
/// (any maximal element of the partial order; ties broken by first seen).
pub fn highest_block<'a, I>(candidates: I) -> Option<&'a BlockMeta>
where
    I: IntoIterator<Item = &'a BlockMeta>,
{
    let mut best: Option<&BlockMeta> = None;
    for c in candidates {
        match best {
            None => best = Some(c),
            Some(b) => {
                if block_rank_gt(c, b) {
                    best = Some(c);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockId, BlockKind};
    use crate::ids::{Height, View};
    use crate::qc::{Phase, QcSeed};
    use marlin_crypto::sha256;

    fn qc(phase: Phase, view: u64, height: u64) -> Qc {
        let seed = QcSeed {
            phase,
            view: View(view),
            block: BlockId::from_digest(sha256(&[view as u8, height as u8, phase as u8])),
            height: Height(height),
            block_view: View(view),
            pview: View(view.saturating_sub(1)),
            block_kind: BlockKind::Normal,
        };
        // Rank never inspects the signature, so the genesis signature is
        // a fine stand-in for tests.
        Qc::new(seed, *Qc::genesis(BlockId::GENESIS).sig())
    }

    fn meta(view: u64, height: u64, rank_boost: bool) -> BlockMeta {
        BlockMeta {
            id: BlockId::from_digest(sha256(&[view as u8, height as u8, rank_boost as u8])),
            view: View(view),
            height: Height(height),
            pview: View(view.saturating_sub(1)),
            kind: BlockKind::Normal,
            rank_boost,
        }
    }

    #[test]
    fn rule_a_view_dominates() {
        // Even a PRE-PREPARE in a later view outranks a COMMIT earlier.
        assert_eq!(
            qc_rank_cmp(&qc(Phase::PrePrepare, 5, 1), &qc(Phase::Commit, 4, 99)),
            Ordering::Greater
        );
    }

    #[test]
    fn rule_b_class_dominates_within_view() {
        assert_eq!(
            qc_rank_cmp(&qc(Phase::Prepare, 3, 1), &qc(Phase::PrePrepare, 3, 9)),
            Ordering::Greater
        );
        assert_eq!(
            qc_rank_cmp(&qc(Phase::Commit, 3, 1), &qc(Phase::PrePrepare, 3, 9)),
            Ordering::Greater
        );
    }

    #[test]
    fn rule_c_height_decides_in_high_class() {
        assert_eq!(
            qc_rank_cmp(&qc(Phase::Prepare, 3, 5), &qc(Phase::Commit, 3, 4)),
            Ordering::Greater
        );
        assert_eq!(
            qc_rank_cmp(&qc(Phase::Prepare, 3, 4), &qc(Phase::Commit, 3, 4)),
            Ordering::Equal
        );
    }

    #[test]
    fn pre_prepare_heights_do_not_discriminate() {
        // Figure 5: qc3 and qc3' have the same rank although their
        // heights differ.
        assert_eq!(
            qc_rank_cmp(&qc(Phase::PrePrepare, 3, 7), &qc(Phase::PrePrepare, 3, 8)),
            Ordering::Equal
        );
    }

    #[test]
    fn figure5_example() {
        // Reconstruction of the paper's Figure 5 rank chain:
        //   rank(qc2) > rank(qc1)            (rule c)
        //   rank(qc3') > rank(qc2)           (rule a)
        //   rank(qc4) > rank(qc3), rank(qc3') (rule b)
        //   rank(qc3) = rank(qc3')
        let qc1 = qc(Phase::Prepare, 1, 1);
        let qc2 = qc(Phase::Prepare, 1, 2);
        let qc3 = qc(Phase::PrePrepare, 2, 3);
        let qc3p = qc(Phase::PrePrepare, 2, 4);
        let qc4 = qc(Phase::Prepare, 2, 3);
        assert_eq!(qc_rank_cmp(&qc2, &qc1), Ordering::Greater);
        assert_eq!(qc_rank_cmp(&qc3p, &qc2), Ordering::Greater);
        assert_eq!(qc_rank_cmp(&qc4, &qc3), Ordering::Greater);
        assert_eq!(qc_rank_cmp(&qc4, &qc3p), Ordering::Greater);
        assert_eq!(qc_rank_cmp(&qc3, &qc3p), Ordering::Equal);
    }

    #[test]
    fn rank_ge_with_none_lock() {
        assert!(qc_rank_ge(&qc(Phase::Prepare, 1, 1), None));
        assert!(qc_rank_ge(
            &qc(Phase::Prepare, 2, 1),
            Some(&qc(Phase::Prepare, 1, 9))
        ));
        assert!(!qc_rank_ge(
            &qc(Phase::Prepare, 1, 1),
            Some(&qc(Phase::Prepare, 2, 1))
        ));
    }

    #[test]
    fn block_rank_rules() {
        // Higher view always wins.
        assert!(block_rank_gt(&meta(2, 1, false), &meta(1, 9, true)));
        // Same view: need higher height AND rank boost.
        assert!(block_rank_gt(&meta(2, 3, true), &meta(2, 2, false)));
        assert!(!block_rank_gt(&meta(2, 3, false), &meta(2, 2, false)));
        assert!(!block_rank_gt(&meta(2, 2, true), &meta(2, 3, false)));
        // Equal blocks are not greater.
        assert!(!block_rank_gt(&meta(2, 2, true), &meta(2, 2, true)));
    }

    #[test]
    fn highest_block_selects_maximal() {
        let ms = [
            meta(1, 1, false),
            meta(2, 5, true),
            meta(2, 7, true),
            meta(2, 6, false),
        ];
        let best = highest_block(ms.iter()).unwrap();
        assert_eq!(best.height, Height(7));
        assert!(highest_block(std::iter::empty()).is_none());
    }
}
