//! The replica host: a protocol plus its durable block log.

use marlin_core::marlin::Marlin;
use marlin_core::{Action, Config, Event, Protocol, SafetyJournal, StepOutput};

use marlin_storage::{KvStore, MemDisk, SharedDisk, StoreConfig};
use marlin_types::{codec, Block, BlockStore, Message, MsgBody, ReplicaId, View};

/// The paper's checkpoint (garbage-collection) interval: every 5000
/// blocks (Section VI).
pub const CHECKPOINT_INTERVAL: u64 = 5_000;

/// Wraps a protocol with the durable block log.
///
/// Every committed block is encoded and written to the LevelDB stand-in
/// before being released to the application, and a checkpoint
/// (flush + compaction) runs every [`CHECKPOINT_INTERVAL`] blocks; the
/// simulated I/O cost is charged to the replica's CPU time, reproducing
/// the paper's "we write to the database, not memory" setup.
pub struct ReplicaHost {
    inner: Box<dyn Protocol>,
    db: KvStore<MemDisk>,
    blocks_since_checkpoint: u64,
    persist: bool,
}

impl ReplicaHost {
    /// Wraps `inner` with a fresh in-memory-disk database.
    pub fn new(inner: Box<dyn Protocol>, persist: bool) -> Self {
        let db = KvStore::open(MemDisk::new(), StoreConfig::default())
            .expect("MemDisk cannot fail to open");
        ReplicaHost {
            inner,
            db,
            blocks_since_checkpoint: 0,
            persist,
        }
    }

    /// A Marlin replica whose consensus safety state is write-ahead
    /// journaled on `disk` (DESIGN.md §9): the lock, last vote, and
    /// view are appended and synced before any vote leaves the host,
    /// so a crash can never lead to an equivocating restart.
    pub fn durable(cfg: Config, disk: SharedDisk, persist: bool) -> Self {
        let journal = SafetyJournal::open(disk).expect("fresh safety journal");
        ReplicaHost::new(Box::new(Marlin::with_journal(cfg, journal)), persist)
    }

    /// Rebuilds a crashed [`ReplicaHost::durable`] replica from its
    /// safety journal: the replayed view, last-voted block, lock, and
    /// `highQC` (torn final records discarded by CRC) gate every vote
    /// the restarted replica casts.
    pub fn recover(cfg: Config, disk: SharedDisk, persist: bool) -> Self {
        let journal = SafetyJournal::open(disk).expect("safety journal replay");
        ReplicaHost::new(Box::new(Marlin::recover(cfg, journal)), persist)
    }

    /// Read access to the block log database.
    pub fn db(&mut self) -> &mut KvStore<MemDisk> {
        &mut self.db
    }

    fn persist_blocks(&mut self, blocks: &[Block]) -> u64 {
        for block in blocks {
            let key = format!("block/{:020}", block.height().0).into_bytes();
            let msg = Message::new(
                self.inner.id(),
                block.view(),
                MsgBody::FetchResponse {
                    block: block.clone(),
                    virtual_parent: None,
                },
            );
            let value = codec::encode_message(&msg, false).to_vec();
            self.db.put(key, value).expect("MemDisk put cannot fail");
            self.blocks_since_checkpoint += 1;
        }
        if self.blocks_since_checkpoint >= CHECKPOINT_INTERVAL {
            self.blocks_since_checkpoint = 0;
            self.db
                .checkpoint()
                .expect("MemDisk checkpoint cannot fail");
        }
        self.db.take_io_cost_ns()
    }
}

impl Protocol for ReplicaHost {
    fn config(&self) -> &Config {
        self.inner.config()
    }

    fn current_view(&self) -> View {
        self.inner.current_view()
    }

    fn store(&self) -> &BlockStore {
        self.inner.store()
    }

    fn mempool_len(&self) -> usize {
        self.inner.mempool_len()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn id(&self) -> ReplicaId {
        self.inner.id()
    }

    fn on_event(&mut self, event: Event) -> StepOutput {
        let mut out = self.inner.on_event(event);
        if self.persist {
            let mut io_ns = 0;
            for action in &out.actions {
                if let Action::Commit { blocks } = action {
                    let blocks = blocks.clone();
                    io_ns += self.persist_blocks(&blocks);
                }
            }
            // Durable writes run on the journal/IO lane; keep the
            // scalar total consistent with the lane split.
            out.cpu_ns += io_ns;
            out.journal_ns += io_ns;
        }
        out
    }

    fn maintain_crypto(&mut self, max_verified: usize) -> marlin_core::CryptoCacheStats {
        self.inner.maintain_crypto(max_verified)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marlin_core::harness::build_protocol;
    use marlin_core::ProtocolKind;
    use marlin_types::Transaction;

    fn host_pair() -> Vec<ReplicaHost> {
        let cfg = Config::for_test(4, 1);
        (0..4u32)
            .map(|i| {
                ReplicaHost::new(
                    build_protocol(ProtocolKind::Marlin, cfg.with_id(ReplicaId(i))),
                    true,
                )
            })
            .collect()
    }

    /// Drives four hosts to a commit by routing messages by hand.
    #[test]
    fn commits_are_persisted_with_io_cost() {
        let mut hosts = host_pair();
        let mut queue: Vec<(ReplicaId, Event)> =
            (0..4u32).map(|i| (ReplicaId(i), Event::Start)).collect();
        queue.push((
            ReplicaId(1),
            Event::NewTransactions(vec![Transaction::new(1, 0, bytes::Bytes::new(), 0)]),
        ));
        let mut committed = 0usize;
        let mut cpu_total = 0u64;
        let mut steps = 0;
        while let Some((to, ev)) = queue.pop() {
            steps += 1;
            assert!(steps < 100_000);
            let out = hosts[to.index()].step(ev);
            cpu_total += out.cpu_ns;
            for action in out.actions {
                match action {
                    Action::Send { to, message } => queue.push((to, Event::Message(message))),
                    Action::Broadcast { message } => {
                        for i in 0..4u32 {
                            if ReplicaId(i) != to {
                                queue.push((ReplicaId(i), Event::Message(message.clone())));
                            }
                        }
                    }
                    Action::Commit { blocks } => committed += blocks.len(),
                    _ => {}
                }
            }
        }
        assert!(committed > 0, "nothing committed");
        // Storage I/O was charged (the crypto model is zero in tests, so
        // any CPU time here is database cost).
        assert!(cpu_total > 0, "no I/O cost charged");
        // The block log contains the committed blocks.
        let mut with_block = 0;
        for h in &mut hosts {
            if h.db().get(b"block/00000000000000000001").unwrap().is_some() {
                with_block += 1;
            }
        }
        assert!(
            with_block >= 3,
            "block log missing on {} hosts",
            4 - with_block
        );
    }

    /// A durable host crashed after entering a view comes back
    /// remembering it — the journal survives, the process state does
    /// not.
    #[test]
    fn durable_host_recovers_its_view_from_disk() {
        let cfg = Config::for_test(4, 1);
        let disk = marlin_storage::SharedDisk::new();
        let mut host = ReplicaHost::durable(cfg.with_id(ReplicaId(0)), disk.clone(), false);
        host.step(Event::Start);
        let view = host.current_view();
        assert!(view >= View(1));
        drop(host); // process death
        disk.crash(); // power loss: unsynced bytes are gone
        let recovered = ReplicaHost::recover(cfg.with_id(ReplicaId(0)), disk, false);
        assert_eq!(recovered.current_view(), view);
    }

    #[test]
    fn persistence_can_be_disabled() {
        let cfg = Config::for_test(4, 1);
        let mut host = ReplicaHost::new(
            build_protocol(ProtocolKind::Marlin, cfg.with_id(ReplicaId(0))),
            false,
        );
        let out = host.step(Event::Start);
        // No I/O charge without persistence (crypto cost is zero).
        assert_eq!(out.cpu_ns, 0);
    }
}
