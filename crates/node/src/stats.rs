//! Latency and throughput measurement, and fault-campaign reporting.

use marlin_core::Note;
use marlin_simnet::{CommitObserver, ScenarioOutcome};
use marlin_types::{Block, ReplicaId};
use std::collections::HashSet;

// The histogram lives in `marlin-telemetry` now so every latency-like
// series in the workspace shares one bucket layout; re-exported under
// the historical name for existing callers.
pub use marlin_telemetry::{Histogram as LatencyHistogram, LatencySummary};

/// Commit observer measuring throughput and end-to-end latency at a
/// reference replica.
///
/// Latency per transaction is `commit_time − submit_time + 2 ×
/// client_leg_ns` (the client→leader and replica→client hops the paper's
/// end-to-end numbers include). Two real-clock corrections:
///
/// - Transactions submitted locally at a replica
///   ([`marlin_types::Transaction::is_local`]) never crossed a client
///   link, so no client legs are added for them.
/// - Under per-thread wall clocks the commit timestamp can read
///   *earlier* than the submit timestamp (clock skew). Such samples are
///   clamped to the client legs alone — but counted and surfaced in
///   [`Metrics::skew_clamped`] rather than silently swallowed, so a
///   wall-clock run reports how trustworthy its latency tail is.
#[derive(Debug)]
pub struct Stats {
    reference: ReplicaId,
    client_leg_ns: u64,
    warmup_until_ns: u64,
    histogram: LatencyHistogram,
    committed_txs: u64,
    total_observed_txs: u64,
    committed_blocks: u64,
    skew_clamped: u64,
    first_commit_ns: Option<u64>,
    last_commit_ns: u64,
    /// Transaction ids already counted: a transaction committed twice
    /// (a client resubmission landing in two leaders' batches) is
    /// *goodput* only once — the second commit is recorded under
    /// [`Metrics::duplicate_txs`] and excluded from throughput.
    seen_ids: HashSet<u64>,
    duplicate_txs: u64,
}

impl Stats {
    /// Creates a collector observing `reference`; samples before
    /// `warmup_until_ns` are discarded.
    pub fn new(reference: ReplicaId, client_leg_ns: u64, warmup_until_ns: u64) -> Self {
        Stats {
            reference,
            client_leg_ns,
            warmup_until_ns,
            histogram: LatencyHistogram::new(),
            committed_txs: 0,
            total_observed_txs: 0,
            committed_blocks: 0,
            skew_clamped: 0,
            first_commit_ns: None,
            last_commit_ns: 0,
            seen_ids: HashSet::new(),
            duplicate_txs: 0,
        }
    }

    /// Transactions counted after warmup.
    pub fn committed_txs(&self) -> u64 {
        self.committed_txs
    }

    /// All transactions observed committing at the reference replica,
    /// including during warmup (drives the closed-loop client release).
    pub fn total_observed_txs(&self) -> u64 {
        self.total_observed_txs
    }

    /// Finalizes into metrics for a run that observed `duration_ns` of
    /// post-warmup time.
    pub fn into_metrics(self, duration_ns: u64, notes: &[(u64, ReplicaId, Note)]) -> Metrics {
        let mut view_changes = 0;
        let mut happy = 0;
        let mut unhappy = 0;
        for (_, id, note) in notes {
            if *id == self.reference {
                if let Note::ViewChangeStarted { .. } = note {
                    view_changes += 1;
                }
            }
            match note {
                Note::HappyPathVc { .. } => happy += 1,
                Note::UnhappyPathVc { .. } => unhappy += 1,
                _ => {}
            }
        }
        Metrics {
            duration_ns,
            committed_txs: self.committed_txs,
            committed_blocks: self.committed_blocks,
            throughput_tps: if duration_ns == 0 {
                0.0
            } else {
                self.committed_txs as f64 * 1e9 / duration_ns as f64
            },
            latency: self.histogram.summary(),
            skew_clamped: self.skew_clamped,
            view_changes,
            happy_path_vcs: happy,
            unhappy_path_vcs: unhappy,
            duplicate_txs: self.duplicate_txs,
            proposal_wire_bytes: 0,
            payload_wire_bytes: 0,
        }
    }
}

impl CommitObserver for Stats {
    fn on_commit(&mut self, replica: ReplicaId, now_ns: u64, blocks: &[Block]) {
        if replica != self.reference {
            return;
        }
        self.first_commit_ns.get_or_insert(now_ns);
        self.last_commit_ns = now_ns;
        for block in blocks {
            self.committed_blocks += 1;
            for tx in block.payload().iter() {
                if !self.seen_ids.insert(tx.id) {
                    self.duplicate_txs += 1;
                    continue;
                }
                self.total_observed_txs += 1;
                if tx.submitted_at_ns < self.warmup_until_ns {
                    continue;
                }
                self.committed_txs += 1;
                let legs = if tx.is_local() {
                    0
                } else {
                    2 * self.client_leg_ns
                };
                if now_ns < tx.submitted_at_ns {
                    // Clock skew: commit stamped before submit. Record
                    // the clamp instead of pretending the sample was a
                    // clean zero.
                    self.skew_clamped += 1;
                    self.histogram.record(legs);
                } else {
                    self.histogram.record(now_ns - tx.submitted_at_ns + legs);
                }
            }
        }
    }
}

/// The result of one experiment run.
#[derive(Clone, Copy, Debug, Default)]
pub struct Metrics {
    /// Post-warmup measured duration.
    pub duration_ns: u64,
    /// Transactions committed at the reference replica after warmup.
    pub committed_txs: u64,
    /// Blocks committed at the reference replica (incl. warmup).
    pub committed_blocks: u64,
    /// Committed transactions per second.
    pub throughput_tps: f64,
    /// End-to-end latency summary.
    pub latency: LatencySummary,
    /// Latency samples whose commit timestamp read earlier than their
    /// submit timestamp (wall-clock skew) and were clamped. Nonzero
    /// values mean the latency floor is not trustworthy at that
    /// resolution.
    pub skew_clamped: u64,
    /// View changes started at the reference replica.
    pub view_changes: usize,
    /// Happy-path view changes observed anywhere.
    pub happy_path_vcs: usize,
    /// Unhappy-path (pre-prepare) view changes observed anywhere.
    pub unhappy_path_vcs: usize,
    /// Re-committed transactions excluded from the throughput numbers
    /// (goodput counts each transaction id once).
    pub duplicate_txs: u64,
    /// Prepare-proposal bytes put on the wire across the run — the
    /// leader egress that digest dissemination shrinks from O(batch)
    /// to O(digest) per block. Filled by the experiment driver from
    /// the simulator's traffic accounting.
    pub proposal_wire_bytes: u64,
    /// Payload-plane bytes (pushes, acks, digest fetches) put on the
    /// wire across the run.
    pub payload_wire_bytes: u64,
}

impl Metrics {
    /// Throughput in kilo-transactions per second (the paper's unit).
    pub fn ktps(&self) -> f64 {
        self.throughput_tps / 1_000.0
    }

    /// Prepare-proposal wire bytes per committed transaction — O(batch)
    /// when proposals carry payloads, O(digest) under dissemination.
    pub fn proposal_bytes_per_tx(&self) -> f64 {
        if self.committed_txs == 0 {
            return 0.0;
        }
        self.proposal_wire_bytes as f64 / self.committed_txs as f64
    }
}

/// Aggregates fault-injection campaign verdicts (one
/// [`ScenarioOutcome`] per `(protocol, scenario, seed)` cell) into a
/// printable per-scenario table.
#[derive(Default)]
pub struct CampaignReport {
    rows: Vec<ScenarioOutcome>,
}

impl CampaignReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one campaign cell.
    pub fn push(&mut self, outcome: ScenarioOutcome) {
        self.rows.push(outcome);
    }

    /// All recorded cells, in insertion order.
    pub fn rows(&self) -> &[ScenarioOutcome] {
        &self.rows
    }

    /// Total safety violations across the campaign.
    pub fn total_safety_violations(&self) -> usize {
        self.rows
            .iter()
            .map(ScenarioOutcome::safety_violations)
            .sum()
    }

    /// Total cells that ended in a post-quiet liveness stall.
    pub fn total_stalls(&self) -> usize {
        self.rows.iter().filter(|r| r.has_liveness_stall()).count()
    }

    /// Renders the verdict table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:<24} {:>4}  {:<7} {:>9} {:>8} {:>5} {:>16}\n",
            "protocol",
            "scenario",
            "seed",
            "verdict",
            "committed",
            "max-view",
            "viols",
            "fingerprint"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<18} {:<24} {:>4}  {:<7} {:>9} {:>8} {:>5} {:>16x}\n",
                r.protocol,
                r.scenario,
                r.seed,
                r.verdict(),
                r.committed,
                r.max_view,
                r.violations.len(),
                r.fingerprint,
            ));
        }
        out.push_str(&format!(
            "campaign: {} cells, {} safety violations, {} stalls\n",
            self.rows.len(),
            self.total_safety_violations(),
            self.total_stalls(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use marlin_types::{Batch, Block, Justify, Qc, Transaction, View};

    #[test]
    fn histogram_mean_and_quantiles() {
        let mut h = LatencyHistogram::new();
        for ms in [1u64, 2, 4, 8, 100] {
            h.record(ms * 1_000_000);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean_ns(), 23 * 1_000_000);
        assert!(h.quantile_ns(0.5) >= 2_000_000);
        assert!(h.quantile_ns(1.0) >= 100_000_000);
        assert_eq!(h.max_ns(), 100_000_000);
        let s = h.summary();
        assert!(s.p99_ms >= s.p50_ms);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.quantile_ns(0.99), 0);
    }

    fn block_with_txs(times: &[u64]) -> Block {
        let g = Block::genesis();
        let txs: Vec<Transaction> = times
            .iter()
            .enumerate()
            .map(|(i, t)| Transaction::new(i as u64, 0, Bytes::new(), *t))
            .collect();
        Block::new_normal(
            g.id(),
            g.view(),
            View(1),
            g.height().next(),
            Batch::new(txs),
            Justify::One(Qc::genesis(g.id())),
        )
    }

    #[test]
    fn stats_measure_reference_replica_only() {
        let mut stats = Stats::new(ReplicaId(0), 40_000_000, 0);
        let block = block_with_txs(&[100, 200]);
        stats.on_commit(ReplicaId(1), 1_000_000, std::slice::from_ref(&block));
        assert_eq!(stats.committed_txs(), 0);
        stats.on_commit(ReplicaId(0), 1_000_000, &[block]);
        assert_eq!(stats.committed_txs(), 2);
        let m = stats.into_metrics(1_000_000_000, &[]);
        assert_eq!(m.committed_txs, 2);
        assert!((m.throughput_tps - 2.0).abs() < 1e-9);
        // Latency includes the two 40ms client legs.
        assert!(m.latency.mean_ms >= 80.0);
    }

    #[test]
    fn warmup_discards_early_transactions() {
        let mut stats = Stats::new(ReplicaId(0), 0, 1_000);
        let block = block_with_txs(&[500, 1_500]);
        stats.on_commit(ReplicaId(0), 2_000, &[block]);
        assert_eq!(stats.committed_txs(), 1);
    }

    #[test]
    fn skewed_samples_are_counted_not_swallowed() {
        let mut stats = Stats::new(ReplicaId(0), 40_000_000, 0);
        // Submitted "in the future" relative to the commit stamp: a
        // skewed per-thread clock, not a real negative latency.
        let block = block_with_txs(&[5_000_000, 100]);
        stats.on_commit(ReplicaId(0), 1_000_000, &[block]);
        let m = stats.into_metrics(1_000_000_000, &[]);
        assert_eq!(m.committed_txs, 2);
        assert_eq!(m.skew_clamped, 1, "one clamped sample must be surfaced");
        // The clamped sample still carries the client legs (80ms).
        assert!(m.latency.max_ms >= 80.0);
    }

    #[test]
    fn local_transactions_skip_client_legs() {
        let mut stats = Stats::new(ReplicaId(0), 40_000_000, 0);
        let g = Block::genesis();
        let txs = vec![
            // Locally submitted: no client network legs.
            Transaction::new(0, Transaction::LOCAL_CLIENT, Bytes::new(), 100),
            // Remote client: two 40ms legs.
            Transaction::new(1, 7, Bytes::new(), 100),
        ];
        let block = Block::new_normal(
            g.id(),
            g.view(),
            View(1),
            g.height().next(),
            Batch::new(txs),
            Justify::One(Qc::genesis(g.id())),
        );
        stats.on_commit(ReplicaId(0), 1_000_100, &[block]);
        let m = stats.into_metrics(1_000_000_000, &[]);
        assert_eq!(m.skew_clamped, 0);
        // Local: 1ms exactly. Remote: 1ms + 80ms of legs. Were the legs
        // double-counted onto the local sample too, the mean would be
        // 81ms; with the fix it is 41ms.
        assert!(m.latency.mean_ms < 50.0, "{}", m.latency.mean_ms);
        assert!(m.latency.max_ms >= 81.0 - 1e-6, "{}", m.latency.max_ms);
    }

    #[test]
    fn recommitted_transactions_do_not_count_as_goodput() {
        // Satellite pin: a transaction id that commits twice (client
        // resubmission across leader changes) contributes to throughput
        // exactly once; the recommit is surfaced, not counted.
        let mut stats = Stats::new(ReplicaId(0), 0, 0);
        let block = block_with_txs(&[100, 200]);
        stats.on_commit(ReplicaId(0), 1_000, std::slice::from_ref(&block));
        stats.on_commit(ReplicaId(0), 2_000, &[block]);
        assert_eq!(stats.committed_txs(), 2);
        assert_eq!(stats.total_observed_txs(), 2);
        let m = stats.into_metrics(1_000_000_000, &[]);
        assert_eq!(m.committed_txs, 2);
        assert_eq!(m.duplicate_txs, 2);
    }

    #[test]
    fn metrics_count_view_changes() {
        let stats = Stats::new(ReplicaId(0), 0, 0);
        let notes = vec![
            (
                0,
                ReplicaId(0),
                Note::ViewChangeStarted { from_view: View(1) },
            ),
            (
                0,
                ReplicaId(1),
                Note::ViewChangeStarted { from_view: View(1) },
            ),
            (0, ReplicaId(2), Note::HappyPathVc { view: View(2) }),
        ];
        let m = stats.into_metrics(1, &notes);
        assert_eq!(m.view_changes, 1);
        assert_eq!(m.happy_path_vcs, 1);
        assert_eq!(m.unhappy_path_vcs, 0);
    }
}
