//! A small replicated key-value application: the state machine the
//! examples replicate on top of the consensus core.

use bytes::Bytes;
use marlin_storage::{KvStore, MemDisk, StoreConfig};
use marlin_types::{Block, Transaction};

/// Commands the application understands, encoded into transaction
/// payloads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvCommand {
    /// Set `key` to `value`.
    Set {
        /// Key.
        key: Vec<u8>,
        /// Value.
        value: Vec<u8>,
    },
    /// Delete `key`.
    Delete {
        /// Key.
        key: Vec<u8>,
    },
}

impl KvCommand {
    /// Encodes the command into a transaction payload.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::new();
        match self {
            KvCommand::Set { key, value } => {
                out.push(0);
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key);
                out.extend_from_slice(value);
            }
            KvCommand::Delete { key } => {
                out.push(1);
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key);
            }
        }
        Bytes::from(out)
    }

    /// Decodes a payload; returns `None` for malformed or non-command
    /// payloads (which the application ignores).
    pub fn decode(payload: &[u8]) -> Option<KvCommand> {
        if payload.len() < 5 {
            return None;
        }
        let klen = u32::from_le_bytes(payload[1..5].try_into().ok()?) as usize;
        let rest = payload.get(5..)?;
        if rest.len() < klen {
            return None;
        }
        let key = rest[..klen].to_vec();
        match payload[0] {
            0 => Some(KvCommand::Set {
                key,
                value: rest[klen..].to_vec(),
            }),
            1 if rest.len() == klen => Some(KvCommand::Delete { key }),
            _ => None,
        }
    }
}

/// The replicated key-value state machine: applies committed blocks in
/// order to a durable store.
pub struct KvApp {
    db: KvStore<MemDisk>,
    applied_txs: u64,
}

impl Default for KvApp {
    fn default() -> Self {
        Self::new()
    }
}

impl KvApp {
    /// A fresh application instance.
    pub fn new() -> Self {
        KvApp {
            db: KvStore::open(MemDisk::new(), StoreConfig::default())
                .expect("MemDisk cannot fail to open"),
            applied_txs: 0,
        }
    }

    /// Applies one committed block's transactions in order.
    pub fn apply_block(&mut self, block: &Block) {
        for tx in block.payload().iter() {
            self.apply_transaction(tx);
        }
    }

    /// Applies a single committed transaction.
    pub fn apply_transaction(&mut self, tx: &Transaction) {
        self.applied_txs += 1;
        match KvCommand::decode(&tx.payload) {
            Some(KvCommand::Set { key, value }) => {
                self.db.put(key, value).expect("MemDisk put cannot fail");
            }
            Some(KvCommand::Delete { key }) => {
                self.db.delete(key).expect("MemDisk delete cannot fail");
            }
            None => {} // non-command payloads (e.g. benchmark filler)
        }
    }

    /// Reads a key from the replicated state.
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.db.get(key).expect("MemDisk get cannot fail")
    }

    /// Transactions applied so far.
    pub fn applied_txs(&self) -> u64 {
        self.applied_txs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marlin_types::{Batch, Justify, Qc, View};

    #[test]
    fn command_codec_round_trip() {
        let cmds = [
            KvCommand::Set {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
            KvCommand::Set {
                key: vec![],
                value: vec![1, 2, 3],
            },
            KvCommand::Delete {
                key: b"gone".to_vec(),
            },
        ];
        for cmd in cmds {
            assert_eq!(KvCommand::decode(&cmd.encode()), Some(cmd));
        }
    }

    #[test]
    fn malformed_payloads_are_none() {
        assert_eq!(KvCommand::decode(b""), None);
        assert_eq!(KvCommand::decode(b"\x00\xff\xff\xff\xff"), None);
        assert_eq!(KvCommand::decode(b"\x09\x01\x00\x00\x00k"), None);
        // Delete with trailing garbage is rejected.
        assert_eq!(KvCommand::decode(b"\x01\x01\x00\x00\x00kX"), None);
    }

    #[test]
    fn apply_block_mutates_state_in_order() {
        let mut app = KvApp::new();
        let txs = vec![
            Transaction::new(
                1,
                0,
                KvCommand::Set {
                    key: b"a".to_vec(),
                    value: b"1".to_vec(),
                }
                .encode(),
                0,
            ),
            Transaction::new(
                2,
                0,
                KvCommand::Set {
                    key: b"a".to_vec(),
                    value: b"2".to_vec(),
                }
                .encode(),
                0,
            ),
            Transaction::new(3, 0, KvCommand::Delete { key: b"b".to_vec() }.encode(), 0),
        ];
        let g = Block::genesis();
        let block = Block::new_normal(
            g.id(),
            g.view(),
            View(1),
            g.height().next(),
            Batch::new(txs),
            Justify::One(Qc::genesis(g.id())),
        );
        app.apply_block(&block);
        assert_eq!(app.get(b"a"), Some(b"2".to_vec()));
        assert_eq!(app.get(b"b"), None);
        assert_eq!(app.applied_txs(), 3);
    }
}
