//! Replica runtime, workload generation, and experiment drivers —
//! the glue that turns the `marlin-core` state machines, the
//! `marlin-simnet` network, and the `marlin-storage` database into the
//! testbed the paper evaluates (Section VI).
//!
//! * [`ReplicaHost`] wraps any protocol with the durable block log
//!   (every committed block is written to the LevelDB stand-in, with
//!   checkpointing every 5000 blocks — the paper's setup);
//! * [`Stats`] measures end-to-end latency and throughput as a
//!   [`marlin_simnet::CommitObserver`];
//! * [`ExperimentConfig`] / [`run_experiment`] assemble a full run:
//!   open-loop clients at a target rate, crash schedules, rotation, and
//!   the paper's network parameters;
//! * [`sweep_peak_throughput`] performs the rate sweep behind the
//!   peak-throughput figures;
//! * [`KvApp`] is a small replicated key-value application used by the
//!   examples.
//!
//! # Example
//!
//! ```
//! use marlin_core::ProtocolKind;
//! use marlin_node::{run_experiment, ExperimentConfig};
//!
//! let mut cfg = ExperimentConfig::paper(ProtocolKind::Marlin, 1);
//! cfg.duration_ns = 2_000_000_000; // short run for the doc test
//! cfg.rate_tps = 2_000;
//! let metrics = run_experiment(&cfg);
//! assert!(metrics.committed_txs > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod experiment;
mod host;
mod stats;

pub use app::{KvApp, KvCommand};
pub use experiment::{
    run_experiment, run_experiment_with_telemetry, sweep_peak_throughput, ExperimentConfig,
    SweepPoint,
};
pub use host::{ReplicaHost, CHECKPOINT_INTERVAL};
pub use stats::{CampaignReport, LatencyHistogram, LatencySummary, Metrics, Stats};
