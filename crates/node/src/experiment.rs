//! Full experiment assembly: the paper's testbed in one call.

use crate::host::ReplicaHost;
use crate::stats::{Metrics, Stats};
use marlin_core::harness::build_protocol;
use marlin_core::{Config, Protocol, ProtocolKind};
use marlin_crypto::{CostModel, KeyStore, QcFormat};
use marlin_simnet::CommitObserver;
use marlin_simnet::{SimConfig, SimNet};
use marlin_telemetry::TelemetrySink;
use marlin_types::ReplicaId;
use std::sync::{Arc, Mutex};

/// Everything one run needs.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Fault tolerance; `n = 3f + 1`.
    pub f: usize,
    /// Transaction payload bytes (150 in the paper; 0 = no-op).
    pub payload_len: usize,
    /// Open-loop offered load, transactions per second.
    pub rate_tps: u64,
    /// Measured duration after warmup, simulated nanoseconds.
    pub duration_ns: u64,
    /// Warmup period excluded from measurement.
    pub warmup_ns: u64,
    /// Network parameters.
    pub net: SimConfig,
    /// Crypto cost model.
    pub cost: CostModel,
    /// QC wire format.
    pub qc_format: QcFormat,
    /// Max transactions per block.
    pub batch_size: usize,
    /// Whether committed blocks are persisted to the database.
    pub storage: bool,
    /// Rotating-leader interval (the paper's failure experiment).
    pub rotation_interval_ns: Option<u64>,
    /// Crash schedule `(replica, at_ns)`.
    pub crashes: Vec<(ReplicaId, u64)>,
    /// View timeout.
    pub base_timeout_ns: u64,
    /// Closed-loop mode: this many clients each keep exactly one
    /// request outstanding (each commit at the reference replica
    /// releases the next request after the two client legs). When set,
    /// `rate_tps` is ignored. This is the workload shape BFT
    /// evaluations typically sweep to draw throughput/latency curves.
    pub closed_loop_clients: Option<usize>,
    /// Stage vote shares and verify them in one amortized batch pass
    /// at quorum time instead of per-arrival.
    pub batch_verify: bool,
    /// Size of each replica's simulated crypto worker pool; `1` means
    /// inline synchronous verification (the legacy CPU model).
    pub crypto_workers: usize,
    /// Per-replica mempool capacity; `0` = legacy unbounded queue.
    pub mempool_capacity: usize,
    /// Fee threshold for the mempool priority lane; `0` = off.
    pub priority_fee_threshold: u8,
    /// Decoupled digest dissemination (batches pushed ahead of
    /// proposals; proposals carry digests). Marlin only; off = legacy.
    pub dissemination: bool,
    /// Max payload batches sealed but not yet proposed (dissemination
    /// pipelining depth). Two fills the push pipe; deeper windows seal
    /// batches long before their proposal slot, which only adds queueing
    /// latency and displaces measured-window capacity under overload.
    pub dissemination_window: usize,
}

impl ExperimentConfig {
    /// The paper's Section VI defaults for `protocol` at fault level
    /// `f`: 200 Mbps, 40 ms latency, 150-byte transactions, ECDSA-like
    /// crypto costs, database persistence on.
    pub fn paper(protocol: ProtocolKind, f: usize) -> Self {
        ExperimentConfig {
            protocol,
            f,
            payload_len: 150,
            rate_tps: 10_000,
            duration_ns: 10_000_000_000,
            warmup_ns: 2_000_000_000,
            net: SimConfig::paper_testbed(),
            cost: CostModel::ecdsa_like(),
            qc_format: QcFormat::SigGroup,
            batch_size: 16_000,
            storage: true,
            rotation_interval_ns: None,
            crashes: Vec::new(),
            base_timeout_ns: 1_000_000_000,
            closed_loop_clients: None,
            batch_verify: true,
            crypto_workers: 4,
            mempool_capacity: 0,
            priority_fee_threshold: 0,
            dissemination: false,
            dissemination_window: 2,
        }
    }

    /// Number of replicas.
    pub fn n(&self) -> usize {
        3 * self.f + 1
    }

    /// Builds the per-replica protocol configuration.
    pub fn replica_config(&self) -> Config {
        let n = self.n();
        Config {
            id: ReplicaId(0),
            n,
            f: self.f,
            keys: Arc::new(KeyStore::generate(n, self.f, 0x4D41524C)),
            cost: self.cost,
            qc_format: self.qc_format,
            batch_size: self.batch_size,
            base_timeout_ns: self.base_timeout_ns,
            max_backoff_exp: 6,
            rotation_interval_ns: self.rotation_interval_ns,
            batch_verify: self.batch_verify,
            crypto_workers: self.crypto_workers,
            // The storage host charges persisted-commit IO to the
            // journal lane itself; the protocol's own journal notes
            // stay report-only, as before.
            charge_journal: false,
            sync_snapshot_interval: 0,
            sync_range_size: 16,
            sync_lag_threshold: 64,
            mempool_capacity: self.mempool_capacity,
            priority_fee_threshold: self.priority_fee_threshold,
            dissemination: self.dissemination,
            dissemination_window: self.dissemination_window,
        }
    }

    /// Builds the simulation (replicas wrapped with storage hosts).
    pub fn build(&self) -> SimNet {
        let cfg = self.replica_config();
        let replicas: Vec<Box<dyn Protocol>> = (0..self.n())
            .map(|i| {
                let inner = build_protocol(self.protocol, cfg.with_id(ReplicaId(i as u32)));
                Box::new(ReplicaHost::new(inner, self.storage)) as Box<dyn Protocol>
            })
            .collect();
        let mut sim = SimNet::with_replicas(replicas, self.net.clone());
        for (replica, at) in &self.crashes {
            sim.schedule_crash(*replica, *at);
        }
        sim
    }
}

/// Picks a live reference replica (the lowest id that never crashes).
fn reference_replica(cfg: &ExperimentConfig) -> ReplicaId {
    for i in 0..cfg.n() as u32 {
        if !cfg.crashes.iter().any(|(r, _)| *r == ReplicaId(i)) {
            return ReplicaId(i);
        }
    }
    ReplicaId(0)
}

/// Runs one experiment: open-loop clients at `rate_tps` submitting to
/// the current leader (re-targeted after view changes), measured after
/// warmup.
pub fn run_experiment(cfg: &ExperimentConfig) -> Metrics {
    run_inner(cfg, None).0
}

/// Like [`run_experiment`], but feeds every protocol note and message
/// transmission into `sink` (stamped with the simulator clock); the
/// sink is handed back alongside the metrics.
pub fn run_experiment_with_telemetry(
    cfg: &ExperimentConfig,
    sink: Box<dyn TelemetrySink>,
) -> (Metrics, Box<dyn TelemetrySink>) {
    let (metrics, sink) = run_inner(cfg, Some(sink));
    (
        metrics,
        sink.expect("simulation returns the installed sink"),
    )
}

fn run_inner(
    cfg: &ExperimentConfig,
    telemetry: Option<Box<dyn TelemetrySink>>,
) -> (Metrics, Option<Box<dyn TelemetrySink>>) {
    let mut sim = cfg.build();
    if let Some(sink) = telemetry {
        sim.set_telemetry(sink);
    }
    let reference = reference_replica(cfg);
    let stats = Arc::new(Mutex::new(Stats::new(
        reference,
        cfg.net.one_way_latency_ns,
        cfg.warmup_ns,
    )));
    sim.set_observer(Box::new(SharedStats(Arc::clone(&stats))));

    let total_ns = cfg.warmup_ns + cfg.duration_ns;
    // Client tick: submit the next arrivals to the current leader every
    // 10 ms (open loop: a fixed-rate process; closed loop: one release
    // per completion observed at the reference replica).
    let tick_ns: u64 = 10_000_000;
    let n = cfg.n();
    let mut submitted: u64 = 0;
    let mut completed_seen: u64 = 0;
    let mut t = 0u64;
    while t < total_ns {
        let count = match cfg.closed_loop_clients {
            None => {
                let due = ((t + tick_ns) as u128 * cfg.rate_tps as u128 / 1_000_000_000u128) as u64;
                let c = due.saturating_sub(submitted) as usize;
                submitted = due;
                c
            }
            Some(clients) => {
                if t == 0 {
                    clients // the initial burst: every client submits
                } else {
                    // Completions since the last tick release clients.
                    let done = stats.lock().expect("single-threaded").total_observed_txs();
                    let released = done.saturating_sub(completed_seen) as usize;
                    completed_seen = done;
                    released
                }
            }
        };
        if count > 0 {
            // Target the leader of the highest view currently reached.
            let mut view = marlin_types::View(1);
            for i in 0..n as u32 {
                view = view.max(sim.replica(ReplicaId(i)).current_view());
            }
            let mut leader = ReplicaId::leader_of(view, n);
            // Skip a crashed leader (clients re-target after timeout).
            while cfg.crashes.iter().any(|(r, at)| *r == leader && *at <= t) {
                view = view.next();
                leader = ReplicaId::leader_of(view, n);
            }
            // Closed-loop releases pay the reply + resubmit client legs.
            let at = t
                + tick_ns
                + if cfg.closed_loop_clients.is_some() {
                    2 * cfg.net.one_way_latency_ns
                } else {
                    0
                };
            sim.schedule_client_batch(leader, at, count, cfg.payload_len);
        }
        t += tick_ns;
        sim.run_until(t);
    }
    // Drain the pipeline.
    sim.run_until(total_ns + 500_000_000);

    let notes = sim.notes().to_vec();
    let proposal_wire_bytes = sim
        .accounting()
        .class(marlin_simnet::MsgClass::Proposal(
            marlin_types::Phase::Prepare,
        ))
        .bytes;
    let payload_wire_bytes = sim
        .accounting()
        .class(marlin_simnet::MsgClass::Payload)
        .bytes;
    drop(sim.take_observer());
    let sink = sim.take_telemetry();
    let stats = Arc::try_unwrap(stats)
        .unwrap_or_else(|_| panic!("simulation retained its observer handle"))
        .into_inner()
        .expect("single-threaded");
    let mut metrics = stats.into_metrics(cfg.duration_ns, &notes);
    metrics.proposal_wire_bytes = proposal_wire_bytes;
    metrics.payload_wire_bytes = payload_wire_bytes;
    (metrics, sink)
}

/// Shares a [`Stats`] collector between the simulation (as observer)
/// and the experiment driver (to extract the results).
struct SharedStats(Arc<Mutex<Stats>>);

impl CommitObserver for SharedStats {
    fn on_commit(&mut self, replica: ReplicaId, now_ns: u64, blocks: &[marlin_types::Block]) {
        self.0
            .lock()
            .expect("single-threaded")
            .on_commit(replica, now_ns, blocks);
    }
}

/// One point of a rate sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// Offered load.
    pub rate_tps: u64,
    /// Measured metrics at that load.
    pub metrics: Metrics,
}

/// Sweeps offered load over `rates` and returns the measured points;
/// the peak throughput is the max measured `throughput_tps`.
pub fn sweep_peak_throughput(base: &ExperimentConfig, rates: &[u64]) -> Vec<SweepPoint> {
    rates
        .iter()
        .map(|&rate_tps| {
            let mut cfg = base.clone();
            cfg.rate_tps = rate_tps;
            SweepPoint {
                rate_tps,
                metrics: run_experiment(&cfg),
            }
        })
        .collect()
}
