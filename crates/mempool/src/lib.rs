//! The client-facing transaction pool.
//!
//! The seed harness synthesized batches out of thin air: every
//! submitted transaction was appended to an unbounded `VecDeque`,
//! so past saturation the queue — and the blocks drained from it —
//! grew without limit, and goodput *collapsed* instead of plateauing
//! (the fig10 tails). This crate is the fix: admission is bounded and
//! explicit, duplicates are rejected at the door, and what the
//! consensus core drains is exactly what survived admission.
//!
//! Three rules, all deterministic:
//!
//! * **Per-client sequencing** — transaction ids pack the client id in
//!   the high 32 bits and a per-client sequence in the low 32 bits (the
//!   workload convention). A client's admitted sequence numbers are
//!   monotone: a replayed or reordered-below-watermark id is a
//!   [`Admission::Duplicate`], as is any id currently resident.
//! * **Bounded admission** — at most `capacity` resident transactions
//!   (0 = unbounded, the legacy configuration). An arrival over
//!   capacity gets [`Admission::Full`] — the "try again" backpressure
//!   signal — and mutates nothing, so an overloaded replica sheds load
//!   instead of queueing it. Clients must retry in order: submitting
//!   `seq + 1` before a `Full`-rejected `seq` was admitted abandons
//!   `seq` for good (see [`Admission::Full`]).
//! * **Fee lanes** — a transaction bidding at least
//!   `priority_fee_threshold` (and the threshold is nonzero) joins the
//!   priority lane; [`Mempool::take`] drains priority strictly before
//!   normal. Within a lane, admission order is preserved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use marlin_types::Transaction;
use std::collections::{HashMap, HashSet, VecDeque};

/// Outcome of offering one transaction to the pool.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Admission {
    /// Queued; will be drained into a batch in lane order.
    Admitted,
    /// Rejected: already resident, or at/below the client's admitted
    /// sequence watermark. Permanent for this id — do not retry.
    Duplicate,
    /// Rejected: the pool is at capacity. Transient backpressure — the
    /// client may retry after commits drain the pool. Nothing about
    /// this transaction was recorded.
    ///
    /// The retry contract is *in-order*: a client must not submit
    /// sequence `k + 1` until sequence `k` was admitted. Submitting
    /// ahead advances the client's watermark past the rejected `k`,
    /// turning every later retry of `k` into a permanent
    /// [`Admission::Duplicate`] even though `k` was never admitted.
    Full,
}

/// Admission-control knobs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MempoolConfig {
    /// Maximum resident transactions across both lanes; `0` means
    /// unbounded (the legacy synthetic-workload behavior).
    pub capacity: usize,
    /// Minimum fee bid for the priority lane; `0` disables the
    /// priority lane entirely.
    pub priority_fee_threshold: u8,
}

/// Monotone admission counters, for telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MempoolStats {
    /// Transactions admitted (both lanes).
    pub admitted: u64,
    /// Of the admitted, how many went to the priority lane.
    pub priority_admitted: u64,
    /// Rejections with [`Admission::Duplicate`].
    pub duplicates: u64,
    /// Rejections with [`Admission::Full`].
    pub rejected_full: u64,
}

/// A bounded, deduplicating, two-lane transaction pool.
#[derive(Clone, Debug)]
pub struct Mempool {
    cfg: MempoolConfig,
    priority: VecDeque<Transaction>,
    normal: VecDeque<Transaction>,
    /// Ids currently resident in either lane.
    resident: HashSet<u64>,
    /// Per-client highest admitted sequence number (from the id's low
    /// 32 bits). Bounded by the number of distinct clients.
    watermark: HashMap<u32, u32>,
    stats: MempoolStats,
}

impl Mempool {
    /// An empty pool under `cfg`.
    pub fn new(cfg: MempoolConfig) -> Self {
        Mempool {
            cfg,
            priority: VecDeque::new(),
            normal: VecDeque::new(),
            resident: HashSet::new(),
            watermark: HashMap::new(),
            stats: MempoolStats::default(),
        }
    }

    /// An unbounded pool with no priority lane — drop-in for the
    /// legacy `VecDeque` mempool.
    pub fn unbounded() -> Self {
        Mempool::new(MempoolConfig::default())
    }

    /// The pool's configuration.
    pub fn config(&self) -> MempoolConfig {
        self.cfg
    }

    /// Resident transactions across both lanes.
    pub fn len(&self) -> usize {
        self.priority.len() + self.normal.len()
    }

    /// Whether no transactions are resident.
    pub fn is_empty(&self) -> bool {
        self.priority.is_empty() && self.normal.is_empty()
    }

    /// Resident transactions in the priority lane.
    pub fn priority_len(&self) -> usize {
        self.priority.len()
    }

    /// Cumulative admission counters.
    pub fn stats(&self) -> MempoolStats {
        self.stats
    }

    /// Offers one transaction; see [`Admission`] for the outcomes.
    pub fn admit(&mut self, tx: Transaction) -> Admission {
        if self.resident.contains(&tx.id) {
            self.stats.duplicates += 1;
            return Admission::Duplicate;
        }
        // Per-client monotone sequencing. The sentinel local client
        // (runtime load generators) shares the convention: its ids come
        // from one monotone counter.
        let client = tx.client_of_id();
        let seq = tx.seq_of_id();
        if self.watermark.get(&client).is_some_and(|&hi| seq <= hi) {
            self.stats.duplicates += 1;
            return Admission::Duplicate;
        }
        if self.cfg.capacity > 0 && self.len() >= self.cfg.capacity {
            self.stats.rejected_full += 1;
            return Admission::Full;
        }
        self.watermark.insert(client, seq);
        self.resident.insert(tx.id);
        self.stats.admitted += 1;
        if self.cfg.priority_fee_threshold > 0 && tx.fee() >= self.cfg.priority_fee_threshold {
            self.stats.priority_admitted += 1;
            self.priority.push_back(tx);
        } else {
            self.normal.push_back(tx);
        }
        Admission::Admitted
    }

    /// Returns previously drained transactions to the *front* of their
    /// lanes, bypassing admission: they were admitted once (their
    /// watermarks are already recorded), so dedup or capacity checks
    /// would wrongly reject them. Used when a sealed dissemination
    /// batch expires without reaching its availability quorum — the
    /// transactions fall back to the inline-proposal path rather than
    /// being dropped. Ids already resident again are skipped.
    pub fn requeue(&mut self, txs: Vec<Transaction>) {
        for tx in txs.into_iter().rev() {
            if !self.resident.insert(tx.id) {
                continue;
            }
            if self.cfg.priority_fee_threshold > 0 && tx.fee() >= self.cfg.priority_fee_threshold {
                self.priority.push_front(tx);
            } else {
                self.normal.push_front(tx);
            }
        }
    }

    /// Drains up to `max` transactions: the priority lane first, then
    /// the normal lane, FIFO within each.
    pub fn take(&mut self, max: usize) -> Vec<Transaction> {
        let mut out = Vec::with_capacity(max.min(self.len()));
        while out.len() < max {
            let Some(tx) = self
                .priority
                .pop_front()
                .or_else(|| self.normal.pop_front())
            else {
                break;
            };
            self.resident.remove(&tx.id);
            out.push(tx);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn tx(client: u32, seq: u32, fee: u8) -> Transaction {
        let id = (u64::from(client) << 32) | u64::from(seq);
        Transaction::new(id, client, Bytes::from(vec![fee; 8]), 0)
    }

    fn bounded(capacity: usize, threshold: u8) -> Mempool {
        Mempool::new(MempoolConfig {
            capacity,
            priority_fee_threshold: threshold,
        })
    }

    #[test]
    fn admits_and_drains_fifo() {
        let mut mp = Mempool::unbounded();
        for seq in 1..=5 {
            assert_eq!(mp.admit(tx(1, seq, 0)), Admission::Admitted);
        }
        assert_eq!(mp.len(), 5);
        let ids: Vec<u32> = mp.take(10).iter().map(Transaction::seq_of_id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        assert!(mp.is_empty());
    }

    #[test]
    fn resident_and_replayed_ids_are_duplicates() {
        let mut mp = Mempool::unbounded();
        assert_eq!(mp.admit(tx(1, 1, 0)), Admission::Admitted);
        assert_eq!(mp.admit(tx(1, 1, 0)), Admission::Duplicate);
        // Drained-and-replayed is still a duplicate (watermark).
        assert_eq!(mp.take(1).len(), 1);
        assert_eq!(mp.admit(tx(1, 1, 0)), Admission::Duplicate);
        // The next sequence is fine; an unrelated client is unaffected.
        assert_eq!(mp.admit(tx(1, 2, 0)), Admission::Admitted);
        assert_eq!(mp.admit(tx(2, 1, 0)), Admission::Admitted);
        assert_eq!(mp.stats().duplicates, 2);
    }

    #[test]
    fn full_pool_rejects_without_state_change() {
        let mut mp = bounded(2, 0);
        assert_eq!(mp.admit(tx(1, 1, 0)), Admission::Admitted);
        assert_eq!(mp.admit(tx(1, 2, 0)), Admission::Admitted);
        assert_eq!(mp.admit(tx(1, 3, 0)), Admission::Full);
        // Full recorded nothing: seq 3 is admittable once space frees.
        mp.take(1);
        assert_eq!(mp.admit(tx(1, 3, 0)), Admission::Admitted);
        assert_eq!(mp.stats().rejected_full, 1);
    }

    #[test]
    fn priority_lane_drains_first() {
        let mut mp = bounded(0, 10);
        mp.admit(tx(1, 1, 0));
        mp.admit(tx(2, 1, 200));
        mp.admit(tx(1, 2, 0));
        mp.admit(tx(2, 2, 10));
        assert_eq!(mp.priority_len(), 2);
        let order: Vec<u64> = mp.take(10).iter().map(|t| t.id).collect();
        assert_eq!(
            order,
            vec![
                tx(2, 1, 0).id,
                tx(2, 2, 0).id,
                tx(1, 1, 0).id,
                tx(1, 2, 0).id
            ]
        );
        assert_eq!(mp.stats().priority_admitted, 2);
    }

    #[test]
    fn requeue_restores_drained_transactions_ahead_of_resident() {
        let mut mp = bounded(4, 10);
        assert_eq!(mp.admit(tx(1, 1, 0)), Admission::Admitted);
        assert_eq!(mp.admit(tx(1, 2, 200)), Admission::Admitted);
        let drained = mp.take(2); // priority seq 2, then seq 1
        assert_eq!(mp.admit(tx(1, 3, 0)), Admission::Admitted);
        // Requeue bypasses the watermark (both seqs are below it) and
        // restores lane order: the priority tx drains first again, and
        // requeued normals come before the younger resident seq 3.
        mp.requeue(drained);
        let order: Vec<u32> = mp.take(10).iter().map(Transaction::seq_of_id).collect();
        assert_eq!(order, vec![2, 1, 3]);
        // A requeue of an id that is already resident is a no-op.
        assert_eq!(mp.admit(tx(1, 4, 0)), Admission::Admitted);
        mp.requeue(vec![tx(1, 4, 0)]);
        assert_eq!(mp.len(), 1);
    }

    #[test]
    fn zero_threshold_disables_priority_lane() {
        let mut mp = Mempool::unbounded();
        mp.admit(tx(1, 1, 255));
        assert_eq!(mp.priority_len(), 0);
    }
}
