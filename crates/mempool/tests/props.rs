//! Property tests for the mempool's three contracts: deduplication,
//! per-client monotone sequencing, and priority-lane ordering — driven
//! by randomized multi-client submission schedules with replays,
//! reorders, and capacity pressure.

use bytes::Bytes;
use marlin_mempool::{Admission, Mempool, MempoolConfig};
use marlin_types::Transaction;
use proptest::prelude::*;
use std::collections::HashSet;

/// SplitMix64, so one `u64` seed drives a whole schedule (the vendored
/// proptest draws only flat tuples).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn tx(client: u32, seq: u32, fee: u8) -> Transaction {
    let id = (u64::from(client) << 32) | u64::from(seq);
    Transaction::new(id, client, Bytes::from(vec![fee, 0, 0]), 0)
}

/// Runs a randomized schedule of submissions (fresh, replayed, and
/// occasionally drained) and checks every invariant after every step.
fn run_schedule(seed: u64, steps: usize, capacity: usize, threshold: u8) {
    let mut rng = Rng(seed);
    let mut mp = Mempool::new(MempoolConfig {
        capacity,
        priority_fee_threshold: threshold,
    });
    const CLIENTS: u32 = 5;
    let mut next_seq = [1u32; CLIENTS as usize];
    let mut ever_admitted: HashSet<u64> = HashSet::new();
    let mut drained: Vec<Transaction> = Vec::new();

    for _ in 0..steps {
        let r = rng.next();
        let client = (r % u64::from(CLIENTS)) as u32;
        match (r >> 8) % 10 {
            // Mostly: submit this client's next fresh sequence.
            0..=5 => {
                let seq = next_seq[client as usize];
                let fee = (r >> 16) as u8;
                let t = tx(client, seq, fee);
                match mp.admit(t.clone()) {
                    Admission::Admitted => {
                        assert!(
                            ever_admitted.insert(t.id),
                            "admitted the same id twice: {t:?}"
                        );
                        next_seq[client as usize] = seq + 1;
                    }
                    Admission::Full => {
                        assert!(capacity > 0 && mp.len() >= capacity, "spurious Full");
                        // Full is transient: the id was not burned, so
                        // the client retries the same seq later.
                    }
                    Admission::Duplicate => panic!("fresh seq {seq} rejected as duplicate"),
                }
            }
            // Replay an already-used sequence: must never be admitted.
            6..=7 => {
                let used = next_seq[client as usize].saturating_sub(1);
                if used == 0 {
                    continue;
                }
                let seq = ((r >> 16) % u64::from(used)) as u32 + 1;
                assert_eq!(
                    mp.admit(tx(client, seq, (r >> 24) as u8)),
                    Admission::Duplicate,
                    "replayed c{client}/s{seq} slipped through"
                );
            }
            // Drain a batch.
            _ => {
                let batch = mp.take((r >> 16) as usize % 8 + 1);
                drained.extend(batch);
            }
        }
        if capacity > 0 {
            assert!(mp.len() <= capacity, "capacity bound violated");
        }
    }
    drained.extend(mp.take(usize::MAX));

    // Exactly-once: everything drained was admitted exactly once.
    let mut seen = HashSet::new();
    for t in &drained {
        assert!(seen.insert(t.id), "drained {t:?} twice");
        assert!(ever_admitted.contains(&t.id));
    }
    assert_eq!(seen.len(), ever_admitted.len(), "admitted tx lost");

    // Per-client order: sequences appear in strictly increasing order
    // within each (client, lane) stream. Across lanes a high-fee later
    // seq may overtake, so compare within the lane classification.
    for lane_priority in [false, true] {
        for client in 0..CLIENTS {
            let seqs: Vec<u32> = drained
                .iter()
                .filter(|t| {
                    t.client_of_id() == client
                        && (threshold > 0 && t.fee() >= threshold) == lane_priority
                })
                .map(Transaction::seq_of_id)
                .collect();
            assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "client {client} lane order broken: {seqs:?}"
            );
        }
    }
}

/// Priority-lane ordering on a drained prefix: every priority tx
/// admitted before a `take` drains ahead of every normal tx.
fn run_priority_schedule(seed: u64, rounds: usize) {
    let mut rng = Rng(seed);
    let threshold = 100u8;
    let mut mp = Mempool::new(MempoolConfig {
        capacity: 0,
        priority_fee_threshold: threshold,
    });
    let mut seq = 1u32;
    for _ in 0..rounds {
        let n = rng.next() % 12 + 1;
        for _ in 0..n {
            let fee = (rng.next() % 256) as u8;
            mp.admit(tx(1, seq, fee));
            seq += 1;
        }
        let batch = mp.take((rng.next() % 16) as usize);
        // No normal tx may precede a priority tx in one drain.
        let first_normal = batch.iter().position(|t| t.fee() < threshold);
        if let Some(i) = first_normal {
            assert!(
                batch[i..].iter().all(|t| t.fee() < threshold),
                "normal tx drained before priority tx: {batch:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Unbounded pool: dedup + sequencing + exactly-once drain.
    #[test]
    fn unbounded_schedules_hold_invariants(seed in 0u64..1_000_000_000, steps in 16usize..400) {
        run_schedule(seed, steps, 0, 0);
    }

    /// Bounded pool with fee lanes: the capacity bound holds, Full is
    /// transient, and lane-local ordering survives overload.
    #[test]
    fn bounded_schedules_hold_invariants(
        seed in 0u64..1_000_000_000,
        steps in 16usize..400,
        capacity in 1usize..32,
        threshold in 0u8..=255,
    ) {
        run_schedule(seed, steps, capacity, threshold);
    }

    /// Priority lane strictly precedes the normal lane in every drain.
    #[test]
    fn priority_drains_first(seed in 0u64..1_000_000_000, rounds in 1usize..64) {
        run_priority_schedule(seed, rounds);
    }
}
