//! Regression tests for Byzantine-wedgeable view-change edge cases.
//!
//! Each test reconstructs the exact adversarial snapshot that used to
//! wedge (or mislead) the leader, and fails against the pre-fix code:
//!
//! * a Case R2 lock attachment must *resolve the round's virtual
//!   candidate* — the leader used to latch whichever valid `prepareQC`
//!   arrived first, letting a Byzantine voter poison the
//!   `Justify::Two` pair with an unrelated QC;
//! * the happy path over a unanimous *virtual* `lb` must fall back to
//!   the unhappy pre-prepare when no view-change message carries the
//!   resolving `vc` — the leader used to propose a block whose virtual
//!   parent no replica could ever resolve.

use marlin_core::{harness::Cluster, Config, Note, ProtocolKind, VcCase};
use marlin_crypto::QcFormat;
use marlin_types::{
    Batch, Block, Justify, Message, MsgBody, Phase, Qc, QcSeed, ReplicaId, View, ViewChange, Vote,
};

const P0: ReplicaId = ReplicaId(0);
const P1: ReplicaId = ReplicaId(1);
const P2: ReplicaId = ReplicaId(2);
const P3: ReplicaId = ReplicaId(3);

/// Signs a quorum certificate over `seed` with the first three keys.
fn craft_qc(cfg: &Config, seed: QcSeed) -> Qc {
    let partials: Vec<_> = (0..3)
        .map(|i| cfg.keys.signer(i).sign_partial(&seed.signing_bytes()))
        .collect();
    Qc::combine(seed, &partials, &cfg.keys, QcFormat::Threshold).expect("quorum of signers")
}

/// A Byzantine voter attaches a *valid but unrelated* `prepareQC` to
/// its Case R2 pre-prepare vote, before the genuine resolving `vc`
/// arrives. The leader must reject the decoy (it does not certify the
/// virtual candidate's parent slot) and accept the later matching
/// attachment; latching the decoy would pair the virtual
/// `pre-prepareQC` with a QC every honest replica rejects, wedging the
/// view.
#[test]
fn r2_lock_attachment_must_resolve_the_virtual_candidate() {
    let cfg = Config::for_test(4, 1);
    let mut cl = Cluster::new(ProtocolKind::Marlin, cfg.clone(), 17);
    cl.submit_to(P1, 10, 0);
    cl.run_until_idle();
    let b_old = cl.committed_blocks(P0).last().expect("committed").clone();
    let h = b_old.height();

    // ---- Craft the aftermath of a contested view 2. ----
    // `contested` earned a prepareQC in view 2; `ghost` extends it and
    // is the victim's last-voted block (its prepareQC over `ghost` is
    // the lock an R2 voter would attach).
    let qc_old = craft_qc(&cfg, b_old.vote_seed(Phase::Prepare, View(1)));
    let contested = Block::new_normal(
        b_old.id(),
        b_old.view(),
        View(2),
        h.next(),
        Batch::empty(),
        Justify::One(qc_old),
    );
    let vc_contested = craft_qc(&cfg, contested.vote_seed(Phase::Prepare, View(2)));
    let ghost = Block::new_normal(
        contested.id(),
        View(2),
        View(2),
        h.plus(2),
        Batch::empty(),
        Justify::One(vc_contested),
    );
    let vc_ghost = craft_qc(&cfg, ghost.vote_seed(Phase::Prepare, View(2)));

    // The view-3 leader's Case V1 candidates, reconstructed exactly as
    // `run_pre_prepare` will build them (empty batch: nothing is in
    // p3's mempool).
    let b1 = Block::new_normal(
        contested.id(),
        View(2),
        View(3),
        h.plus(2),
        Batch::empty(),
        Justify::One(vc_contested),
    );
    let b2 = Block::new_virtual(
        View(2),
        View(3),
        h.plus(3),
        Batch::empty(),
        Justify::One(vc_contested),
    );

    // Hand every live replica the crafted blocks (as if block sync ran).
    for block in [&contested, &ghost] {
        for to in [P0, P2, P3] {
            cl.inject(
                to,
                Message::new(
                    P1,
                    View(1),
                    MsgBody::FetchResponse {
                        block: block.clone(),
                        virtual_parent: None,
                    },
                ),
            );
        }
    }

    // ---- Drive everyone to view 3 with no view-2 progress. ----
    cl.crash(P1);
    // Drop view-2 traffic, every real VIEW-CHANGE (the crafted snapshot
    // replaces them), and all pre-prepare votes for the *normal* view-3
    // candidate — so the round must advance through the virtual one.
    let b1_id = b1.id();
    cl.set_filter(Box::new(move |_from, _to, msg: &Message| match &msg.body {
        MsgBody::Proposal(_) if msg.view == View(2) => false,
        MsgBody::ViewChange(_) if msg.view >= View(2) => false,
        MsgBody::Vote(v) if v.seed.phase == Phase::PrePrepare && v.seed.block == b1_id => false,
        _ => true,
    }));
    while cl.min_view() < View(3) {
        assert!(cl.fire_next_timer());
    }
    cl.run_until_idle();

    // ---- The crafted view-3 snapshot (injected from p3 replaces the
    // leader's own real VIEW-CHANGE in the round). ----
    let vc_msg = |from: ReplicaId, high_qc: Justify, lb: &Block| {
        Message::new(
            from,
            View(3),
            MsgBody::ViewChange(ViewChange {
                last_voted: lb.meta(),
                high_qc,
                parsig: cfg.keys.signer(from.index()).sign_partial(b"unused"),
                cert: None,
            }),
        )
    };
    cl.inject(P3, vc_msg(P3, Justify::One(vc_contested), &ghost));
    cl.inject(P3, vc_msg(P0, Justify::One(qc_old), &b_old));
    cl.inject(P3, vc_msg(P2, Justify::One(qc_old), &b_old));
    cl.run_until_idle();
    assert!(
        cl.notes().iter().any(|(p, n)| *p == P3
            && matches!(
                n,
                Note::UnhappyPathVc {
                    view: View(3),
                    case: VcCase::V1,
                }
            )),
        "expected Case V1 in view 3"
    );

    // ---- The attack: a decoy attachment, then the genuine one. ----
    // `qc_old` is a perfectly valid prepareQC — it just certifies the
    // wrong slot (view 1, two heights below the virtual candidate's
    // parent). `vc_ghost` certifies exactly the parent slot.
    let seed_b2 = b2.vote_seed(Phase::PrePrepare, View(3));
    let r2_vote = |from: ReplicaId, attach: Qc| {
        Message::new(
            from,
            View(3),
            MsgBody::Vote(Vote {
                seed: seed_b2,
                parsig: cfg
                    .keys
                    .signer(from.index())
                    .sign_partial(&seed_b2.signing_bytes()),
                locked_qc: Some(attach),
            }),
        )
    };
    cl.inject(P3, r2_vote(P1, qc_old));
    cl.inject(P3, r2_vote(P0, vc_ghost));
    cl.run_until_idle();

    // The round advanced through the *virtual* candidate with the
    // correct pair: the contested chain (incl. the resolved virtual
    // block) is committed on every live replica.
    cl.assert_consistent();
    let chain: Vec<_> = cl.committed_blocks(P0).iter().map(Block::id).collect();
    assert!(
        chain.contains(&ghost.id()) && chain.contains(&b2.id()),
        "virtual candidate never committed — the decoy attachment wedged the view"
    );

    // And the system keeps committing afterwards.
    cl.clear_filter();
    cl.submit_to(P3, 10, 0);
    cl.run_until_idle();
    cl.assert_consistent();
    assert!(
        cl.total_committed_txs(P0) >= 20,
        "no post-recovery progress"
    );
}

/// Every replica reports the same *virtual* last-voted block, but no
/// view-change message carries the `vc` that resolves its parent. The
/// happy path must be refused (extending an unresolvable virtual block
/// wedges the system); the leader falls back to the unhappy
/// pre-prepare and the cluster recovers.
#[test]
fn happy_path_requires_resolvable_virtual_lb() {
    let cfg = Config::for_test(4, 1);
    let mut cl = Cluster::new(ProtocolKind::Marlin, cfg.clone(), 18);
    cl.submit_to(P1, 10, 0);
    cl.run_until_idle();
    let b_old = cl.committed_blocks(P0).last().expect("committed").clone();
    let h = b_old.height();

    let qc_old = craft_qc(&cfg, b_old.vote_seed(Phase::Prepare, View(1)));
    // The unanimous virtual lb: a view-2 shadow block whose parent (the
    // contested view-1 slot at h+1) is certified by a `vc` that *no*
    // snapshot message carries.
    let virt = Block::new_virtual(
        b_old.view(),
        View(2),
        h.plus(2),
        Batch::empty(),
        Justify::One(qc_old),
    );

    cl.crash(P1);
    cl.set_filter(Box::new(|_from, _to, msg: &Message| {
        !matches!(&msg.body,
            MsgBody::Proposal(_) if msg.view == View(2))
            && !matches!(&msg.body,
                MsgBody::ViewChange(_) if msg.view >= View(2))
    }));
    while cl.min_view() < View(3) {
        assert!(cl.fire_next_timer());
    }
    cl.run_until_idle();

    // Unanimous virtual lb with *valid* happy-path signatures — the
    // happy path is cryptographically available, just unsafe.
    let happy = ViewChange::happy_seed(&virt.meta(), View(3));
    let vc_msg = |from: ReplicaId| {
        Message::new(
            from,
            View(3),
            MsgBody::ViewChange(ViewChange {
                last_voted: virt.meta(),
                high_qc: Justify::One(qc_old),
                parsig: cfg
                    .keys
                    .signer(from.index())
                    .sign_partial(&happy.signing_bytes()),
                cert: None,
            }),
        )
    };
    cl.inject(P3, vc_msg(P3));
    cl.inject(P3, vc_msg(P0));
    cl.inject(P3, vc_msg(P2));
    cl.run_until_idle();

    // The leader refused the happy path and ran the unhappy pre-prepare.
    assert!(
        !cl.notes()
            .iter()
            .any(|(p, n)| *p == P3 && matches!(n, Note::HappyPathVc { view: View(3) })),
        "leader took the happy path over an unresolvable virtual lb"
    );
    assert!(
        cl.notes()
            .iter()
            .any(|(p, n)| *p == P3 && matches!(n, Note::UnhappyPathVc { view: View(3), .. })),
        "leader never ran the unhappy pre-prepare fallback"
    );

    // The fallback recovered the system: new transactions commit.
    cl.clear_filter();
    cl.submit_to(P3, 10, 0);
    cl.run_until_idle();
    cl.assert_consistent();
    assert!(
        cl.total_committed_txs(P0) >= 20,
        "no progress after the virtual-lb view change"
    );
}
