//! Scenario tests for the rarer view-change cases: leader Case V3 (two
//! `pre-prepareQC`s of equal rank) and the chained-mode unhappy path.

use marlin_core::{harness::Cluster, Config, Note, ProtocolKind, VcCase};
use marlin_crypto::QcFormat;
use marlin_types::{
    Batch, Block, BlockKind, Justify, Message, MsgBody, Phase, Qc, QcSeed, ReplicaId, View,
    ViewChange,
};

const P0: ReplicaId = ReplicaId(0);
const P1: ReplicaId = ReplicaId(1);
const P2: ReplicaId = ReplicaId(2);
const P3: ReplicaId = ReplicaId(3);

/// Signs a quorum certificate over `seed` with the first three keys.
fn craft_qc(cfg: &Config, seed: QcSeed) -> Qc {
    let partials: Vec<_> = (0..3)
        .map(|i| cfg.keys.signer(i).sign_partial(&seed.signing_bytes()))
        .collect();
    Qc::combine(seed, &partials, &cfg.keys, QcFormat::Threshold).expect("quorum of signers")
}

/// Case V3: a Byzantine view-2 leader managed to form *two*
/// `pre-prepareQC`s — one for a normal candidate, one for a virtual
/// candidate — and crashed. The view-3 leader receives both in its
/// view-change snapshot, proposes two blocks (Case V3), and the system
/// recovers.
#[test]
fn case_v3_two_equal_rank_pre_prepare_qcs() {
    let cfg = Config::for_test(4, 1);
    let mut cl = Cluster::new(ProtocolKind::Marlin, cfg.clone(), 11);
    cl.submit_to(P1, 10, 0);
    cl.run_until_idle();
    let b_old = cl.committed_blocks(P0).last().expect("committed").clone();

    // ---- Craft the aftermath of a failed view-2 view change. ----
    let qc_old = craft_qc(&cfg, b_old.vote_seed(Phase::Prepare, View(1)));
    // The "contested" view-1 block the virtual candidate stands in for.
    let contested = Block::new_normal(
        b_old.id(),
        b_old.view(),
        View(1),
        b_old.height().next(),
        Batch::empty(),
        Justify::One(qc_old),
    );
    let vc_contested = craft_qc(&cfg, contested.vote_seed(Phase::Prepare, View(1)));
    // View-2 pre-prepare candidates (Case V1 shapes) and their QCs.
    let normal_cand = Block::new_normal(
        b_old.id(),
        b_old.view(),
        View(2),
        b_old.height().next(),
        Batch::empty(),
        Justify::One(qc_old),
    );
    let virtual_cand = Block::new_virtual(
        b_old.view(),
        View(2),
        b_old.height().plus(2),
        Batch::empty(),
        Justify::One(qc_old),
    );
    assert_eq!(virtual_cand.kind(), BlockKind::Virtual);
    let pre_normal = craft_qc(&cfg, normal_cand.vote_seed(Phase::PrePrepare, View(2)));
    let pre_virtual = craft_qc(&cfg, virtual_cand.vote_seed(Phase::PrePrepare, View(2)));

    // Hand every replica the crafted blocks (as if block sync had run).
    for block in [&contested, &normal_cand, &virtual_cand] {
        for to in [P0, P1, P2, P3] {
            let virtual_parent = block.is_virtual().then(|| contested.id());
            cl.inject(
                to,
                Message::new(
                    P1,
                    View(1),
                    MsgBody::FetchResponse {
                        block: block.clone(),
                        virtual_parent,
                    },
                ),
            );
        }
    }

    // ---- Drive everyone to view 3 with no view-2 progress. ----
    // The view-1 leader crashes (it "was" the Byzantine leader whose
    // failed view-2 view change produced the two pre-prepareQCs).
    cl.crash(P1);
    // Drop all view-2 traffic (so nobody locks beyond view 1) and every
    // honest view-3 VIEW-CHANGE (the crafted snapshot replaces them).
    cl.set_filter(Box::new(|_from, _to, msg: &Message| match &msg.body {
        MsgBody::Proposal(_) if msg.view == View(2) => false,
        MsgBody::ViewChange(_) if msg.view == View(2) => false,
        MsgBody::ViewChange(_) if msg.view == View(3) => false,
        _ => true,
    }));
    while cl.min_view() < View(3) {
        assert!(cl.fire_next_timer());
    }
    cl.run_until_idle();

    // ---- Deliver the crafted snapshot to the view-3 leader (p3). ----
    let vc_msg = |from: ReplicaId, high_qc: Justify, lb: &Block| {
        Message::new(
            from,
            View(3),
            MsgBody::ViewChange(ViewChange {
                last_voted: lb.meta(),
                high_qc,
                parsig: cfg.keys.signer(from.index()).sign_partial(b"unused"),
                cert: None,
            }),
        )
    };
    cl.clear_filter();
    cl.inject(
        P3,
        vc_msg(P0, Justify::Two(pre_virtual, vc_contested), &virtual_cand),
    );
    cl.inject(P3, vc_msg(P1, Justify::One(pre_normal), &normal_cand));
    cl.inject(P3, vc_msg(P2, Justify::One(qc_old), &b_old));

    // Case V3 ran, and the cluster commits again.
    assert!(
        cl.notes().iter().any(|(p, n)| *p == P3
            && matches!(
                n,
                Note::UnhappyPathVc {
                    case: VcCase::V3,
                    ..
                }
            )),
        "expected Case V3; notes: {:?}",
        cl.notes()
            .iter()
            .filter(|(_, n)| matches!(n, Note::UnhappyPathVc { .. } | Note::HappyPathVc { .. }))
            .collect::<Vec<_>>()
    );
    cl.assert_consistent();
    cl.submit_to(P3, 10, 0);
    cl.run_until_idle();
    cl.assert_consistent();
    assert!(
        cl.total_committed_txs(P0) >= 20,
        "no recovery after Case V3"
    );
    // One of the two crafted candidates was committed.
    let chain: Vec<_> = cl.committed_blocks(P0).iter().map(Block::id).collect();
    assert!(
        chain.contains(&normal_cand.id()) || chain.contains(&virtual_cand.id()),
        "neither V3 candidate committed"
    );
}

/// Chained Marlin's unhappy path: divergent last-voted blocks force the
/// pre-prepare phase; the pipeline then resumes.
#[test]
fn chained_marlin_unhappy_view_change() {
    let mut cl = Cluster::new(ProtocolKind::ChainedMarlin, Config::for_test(4, 1), 12);
    cl.submit_to(P1, 40, 0);
    cl.run_until_idle();
    // Close the pipeline so there is committed state.
    while cl.total_committed_txs(P0) < 40 {
        assert!(cl.fire_next_timer());
        cl.run_until_idle();
    }
    let committed_before = cl.committed_height(P0);

    // The next proposal reaches only p0; replicas' lb now diverge.
    let marker_height = cl
        .committed_blocks(P0)
        .last()
        .expect("committed")
        .height()
        .0;
    cl.set_filter(Box::new(move |_f, to, msg: &Message| match &msg.body {
        MsgBody::Proposal(p) if p.phase == Phase::Prepare => {
            !(p.blocks
                .first()
                .is_some_and(|b| b.height().0 > marker_height)
                && to != P0)
        }
        _ => true,
    }));
    cl.submit_to(P1, 10, 0);
    cl.run_until_idle();
    cl.crash(P1);
    cl.clear_filter();

    while cl.min_view() < View(2) {
        assert!(cl.fire_next_timer());
    }
    cl.run_until_idle();
    // Happy path is impossible (lbs diverge): either V1 or V2 ran.
    assert!(
        cl.notes()
            .iter()
            .any(|(_, n)| matches!(n, Note::UnhappyPathVc { .. })),
        "expected an unhappy-path view change"
    );
    // The pipeline resumes and commits new blocks.
    cl.submit_to(P2, 20, 0);
    cl.run_until_idle();
    for _ in 0..8 {
        cl.fire_next_timer();
        cl.run_until_idle();
    }
    cl.assert_consistent();
    assert!(cl.committed_height(P0) > committed_before);
    assert!(cl.total_committed_txs(P0) >= 60);
}

/// The happy path also works in chained mode (unanimous lb after a
/// clean crash).
#[test]
fn chained_marlin_happy_view_change() {
    let mut cl = Cluster::new(ProtocolKind::ChainedMarlin, Config::for_test(4, 1), 13);
    cl.submit_to(P1, 20, 0);
    cl.run_until_idle();
    while cl.total_committed_txs(P0) < 20 {
        assert!(cl.fire_next_timer());
        cl.run_until_idle();
    }
    cl.crash(P1);
    while cl.min_view() < View(2) {
        assert!(cl.fire_next_timer());
    }
    cl.run_until_idle();
    assert!(cl
        .notes()
        .iter()
        .any(|(_, n)| matches!(n, Note::HappyPathVc { view: View(2) })));
    cl.submit_to(P2, 20, 0);
    cl.run_until_idle();
    for _ in 0..8 {
        cl.fire_next_timer();
        cl.run_until_idle();
    }
    cl.assert_consistent();
    assert_eq!(cl.total_committed_txs(P0), 40);
}
