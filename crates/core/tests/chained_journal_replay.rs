//! Property test: a *chained* (pipelined) replica driven through random
//! traffic, torn writes, and crash/restart points keeps its journaled
//! safety state bracketed — the pipelined analogue of
//! `journal_props.rs`, but with the journal fed by a live replica
//! instead of a synthetic append schedule.
//!
//! The victim replica runs journal-backed inside a 4-replica harness
//! cluster. At random points its disk tears the next write (so the
//! write-ahead rule withholds a vote), and at random points it crashes:
//! the disk drops its unsynced tail, the journal reopens, and the
//! replayed [`SafetySnapshot`] must satisfy
//!
//! * **no invention** — the replayed view and `last_voted` never exceed
//!   any view the cluster actually reached;
//! * **no regression** — each successive replay ranks at least as high
//!   as the previous one (everything acknowledged between two crashes
//!   can only push the fold upward), for the view, `last_voted`, the
//!   lock, and the `highQC`;
//! * **faithful adoption** — `recover()` seeds the fresh replica with
//!   exactly the replayed snapshot (`lb`, lock, `highQC`), so the
//!   restarted voter cannot re-vote a journaled height.
//!
//! The restarted replica rejoins the pipeline (with uncommitted
//! in-flight ancestors still live on the other three) and the cluster
//! must stay consistent and keep committing.

use std::cmp::Ordering;

use marlin_core::chained::{ChainedHotStuff, ChainedMarlin};
use marlin_core::harness::Cluster;
use marlin_core::{Config, Protocol, SafetyJournal, SafetySnapshot};
use marlin_storage::SharedDisk;
use marlin_types::rank::{block_rank_gt, qc_rank_cmp};
use marlin_types::{Justify, ReplicaId, View};
use proptest::prelude::*;

/// SplitMix64, as in `journal_props.rs`: one `u64` seed drives the
/// whole schedule.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn boxed_fresh(hotstuff: bool, cfg: Config) -> Box<dyn Protocol> {
    if hotstuff {
        Box::new(ChainedHotStuff::new(cfg))
    } else {
        Box::new(ChainedMarlin::new(cfg))
    }
}

/// Crashes the victim, reopens its journal from the (possibly torn)
/// disk, asserts the bracketing invariants against the previous replay,
/// and restarts the victim from the replayed snapshot.
fn crash_restart_check(
    cl: &mut Cluster,
    disk: &SharedDisk,
    victim: ReplicaId,
    hotstuff: bool,
    last_replayed: &mut Option<SafetySnapshot>,
) {
    cl.crash(victim);
    disk.crash();
    let journal = SafetyJournal::open(disk.clone()).expect("reopen journal after crash");
    let replayed = *journal.state();

    // No invention: the journal only ever saw state the replica acted
    // on, so replay cannot exceed any view the cluster reached.
    let max_view = cl.max_view();
    assert!(
        replayed.view <= max_view,
        "replayed view {:?} exceeds the cluster's max view {max_view:?}",
        replayed.view
    );
    assert!(
        replayed.last_voted.view <= max_view,
        "replayed last_voted {:?} exceeds the cluster's max view {max_view:?}",
        replayed.last_voted
    );

    // No regression: acknowledged appends between two crashes only push
    // the fold upward, so each replay ranks at least as high as the
    // previous one.
    if let Some(prev) = last_replayed {
        assert!(
            replayed.view >= prev.view,
            "replayed view {:?} regressed below the previous replay {:?}",
            replayed.view,
            prev.view
        );
        assert!(
            !block_rank_gt(&prev.last_voted, &replayed.last_voted),
            "replayed last_voted regressed: {:?} vs previous {:?}",
            replayed.last_voted,
            prev.last_voted
        );
        match (&prev.locked_qc, &replayed.locked_qc) {
            (Some(_), None) => panic!("replay lost an acknowledged lock: {replayed:?}"),
            (Some(p), Some(r)) => assert_ne!(
                qc_rank_cmp(p, r),
                Ordering::Greater,
                "replayed lock regressed: {r:?} vs previous {p:?}"
            ),
            _ => {}
        }
        match (prev.high_qc.qc(), replayed.high_qc.qc()) {
            (Some(_), None) => panic!("replay lost an acknowledged highQC: {replayed:?}"),
            (Some(p), Some(r)) => assert_ne!(
                qc_rank_cmp(p, r),
                Ordering::Greater,
                "replayed highQC regressed: {r:?} vs previous {p:?}"
            ),
            _ => {}
        }
    }

    // Faithful adoption: the recovered replica's in-memory safety state
    // is exactly the replayed snapshot, so journaled heights cannot be
    // re-voted after the restart.
    let cfg = Config::for_test(4, 1).with_id(victim);
    let rebuilt: Box<dyn Protocol> = if hotstuff {
        let rep = ChainedHotStuff::recover(cfg, journal);
        assert_eq!(*rep.last_voted(), replayed.last_voted);
        assert_eq!(rep.locked_qc().copied(), replayed.locked_qc);
        if !matches!(replayed.high_qc, Justify::None) {
            assert_eq!(*rep.high_qc(), replayed.high_qc);
        }
        Box::new(rep)
    } else {
        let rep = ChainedMarlin::recover(cfg, journal);
        assert_eq!(*rep.last_voted(), replayed.last_voted);
        assert_eq!(rep.locked_qc().copied(), replayed.locked_qc);
        if !matches!(replayed.high_qc, Justify::None) {
            assert_eq!(*rep.high_qc(), replayed.high_qc);
        }
        Box::new(rep)
    };
    cl.restart(victim, rebuilt);
    *last_replayed = Some(replayed);
}

/// One random schedule: traffic rounds with adversarial timer firings,
/// randomly armed torn writes on the victim's disk, and random
/// crash/replay/restart points, ending in a final crash + replay check
/// and a healing phase that demands renewed commit progress.
fn run_schedule(seed: u64, rounds: usize, hotstuff: bool) {
    let mut rng = Rng(seed);
    let n = 4usize;
    let victim = ReplicaId(3);
    let disk = SharedDisk::new();
    let mut seed_journal = Some(SafetyJournal::open(disk.clone()).expect("open fresh journal"));
    let mut cl = Cluster::from_builder(Config::for_test(n, 1), seed, |id, cfg| {
        if id == victim {
            let journal = seed_journal.take().expect("victim built once");
            if hotstuff {
                Box::new(ChainedHotStuff::with_journal(cfg, journal))
            } else {
                Box::new(ChainedMarlin::with_journal(cfg, journal))
            }
        } else {
            boxed_fresh(hotstuff, cfg)
        }
    });
    let mut last_replayed: Option<SafetySnapshot> = None;

    for _ in 0..rounds {
        let view = cl.max_view();
        let leader = ReplicaId::leader_of(view, n);
        cl.submit_to(leader, 1 + (rng.next() % 5) as usize, 32);
        cl.run_until_idle();
        for _ in 0..rng.next() % 3 {
            cl.fire_next_timer();
            cl.run_until_idle();
        }
        match rng.next() % 8 {
            // Arm a torn write: the victim's next append keeps only a
            // prefix and errors, so the write-ahead rule withholds that
            // vote (the other three keep the pipeline moving).
            0 | 1 => disk.tear_next_write_after((rng.next() % 48) as usize),
            2 if !cl.is_crashed(victim) => {
                crash_restart_check(&mut cl, &disk, victim, hotstuff, &mut last_replayed);
            }
            _ => {}
        }
        cl.assert_consistent();
    }
    crash_restart_check(&mut cl, &disk, victim, hotstuff, &mut last_replayed);
    cl.assert_consistent();

    // Healing: with all four replicas live again, commits must resume.
    let probe = ReplicaId(0);
    let before = cl.committed_height(probe);
    let mut fires = 0;
    while cl.committed_height(probe) <= before {
        let v = cl.max_view();
        cl.submit_to(ReplicaId::leader_of(v, n), 3, 16);
        cl.run_until_idle();
        if cl.committed_height(probe) > before {
            break;
        }
        assert!(
            cl.fire_next_timer(),
            "seed={seed}: no timers left while stalled"
        );
        cl.run_until_idle();
        fires += 1;
        assert!(fires < 300, "seed={seed}: liveness lost after healing");
    }
    cl.assert_consistent();
    assert!(cl.max_view() >= View(1));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chained Marlin (two-chain): random torn writes and restart
    /// points; replayed safety state stays bracketed and the restarted
    /// voter rejoins the pipeline without forking it.
    #[test]
    fn chained_marlin_replay_brackets_durable_state(
        seed in 0u64..1_000_000_000,
        rounds in 6usize..24,
    ) {
        run_schedule(seed, rounds, false);
    }

    /// Chained HotStuff (three-chain): same schedule, deeper pipeline —
    /// a restart lands with up to two uncommitted in-flight ancestors.
    #[test]
    fn chained_hotstuff_replay_brackets_durable_state(
        seed in 0u64..1_000_000_000,
        rounds in 6usize..24,
    ) {
        run_schedule(seed, rounds, true);
    }
}
