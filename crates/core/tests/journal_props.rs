//! Property tests for the durable safety journal: random append
//! schedules interleaved with random torn writes and crash/reopen
//! points (Issue 3).
//!
//! Two invariants bracket every replayed [`SafetySnapshot`]:
//!
//! * **no invention** — the replayed lock never ranks above the
//!   pre-crash in-memory fold (replay cannot conjure safety state that
//!   was never journaled), and likewise for `last_voted` and the view;
//! * **no regression** — the replayed `last_voted` never ranks below
//!   the last *acknowledged* record (an `Ok` from a `log_*` call is a
//!   durability promise: the write-ahead voting rule emits the vote on
//!   that promise, so losing it after a crash would permit a re-vote),
//!   and likewise for the lock and the view.
//!
//! Torn writes make the two bounds differ: a torn append errors (never
//! acknowledged, so outside the lower bound) but its intact prefix may
//! linger on disk until compaction — CRC framing must keep replay from
//! reading it as state.

use std::cmp::Ordering;

use marlin_core::{JournalRecord, SafetyJournal, SafetySnapshot};
use marlin_storage::SharedDisk;
use marlin_types::rank::{block_rank_gt, qc_rank_cmp};
use marlin_types::{BlockId, BlockKind, BlockMeta, Height, Justify, Phase, Qc, QcSeed, View};
use proptest::prelude::*;

/// SplitMix64: a tiny deterministic generator so one `u64` seed drives
/// the whole op schedule (the vendored proptest draws only flat
/// tuples).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn meta(view: u64, height: u64, rank_boost: bool) -> BlockMeta {
    BlockMeta {
        id: BlockId::from_digest(marlin_crypto::sha256(&[view as u8, height as u8, 7])),
        view: View(view),
        height: Height(height),
        pview: View(view.saturating_sub(1)),
        kind: BlockKind::Normal,
        rank_boost,
    }
}

fn qc(phase: Phase, view: u64, height: u64) -> Qc {
    let seed = QcSeed {
        phase,
        view: View(view),
        block: BlockId::from_digest(marlin_crypto::sha256(&[view as u8, height as u8])),
        height: Height(height),
        block_view: View(view),
        pview: View(view.saturating_sub(1)),
        block_kind: BlockKind::Normal,
    };
    Qc::new(seed, *Qc::genesis(BlockId::GENESIS).sig())
}

/// Crashes the disk, reopens the journal, and checks that the replayed
/// state sits between the fold of acknowledged appends (`acked`, the
/// lower bound) and the pre-crash in-memory fold (the upper bound).
/// The bounds differ exactly when an append was durably folded but its
/// caller saw an error (e.g. a torn write during the post-append
/// compaction), which is safe: extra remembered state only makes a
/// replica more conservative.
fn crash_reopen_check(disk: &SharedDisk, journal: &mut SafetyJournal, acked: &mut SafetySnapshot) {
    let pre_crash = *journal.state();
    disk.crash();
    *journal = SafetyJournal::open(disk.clone()).expect("reopen after crash");
    let replayed = *journal.state();

    // Lock: acked ≤ replayed ≤ pre-crash, in QC rank.
    match (&replayed.locked_qc, &pre_crash.locked_qc) {
        (Some(_), None) => panic!("replay invented a lock: {replayed:?}"),
        (Some(r), Some(p)) => assert_ne!(
            qc_rank_cmp(r, p),
            Ordering::Greater,
            "replayed lock outranks the pre-crash lock: {replayed:?} vs {pre_crash:?}"
        ),
        _ => {}
    }
    if let Some(a) = &acked.locked_qc {
        let r = replayed
            .locked_qc
            .as_ref()
            .expect("acknowledged lock lost in replay");
        assert_ne!(
            qc_rank_cmp(a, r),
            Ordering::Greater,
            "replayed lock regressed below the acknowledged lock: {replayed:?} vs {acked:?}"
        );
    }

    // last_voted: acked ≤ replayed ≤ pre-crash, in block rank.
    assert!(
        !block_rank_gt(&acked.last_voted, &replayed.last_voted),
        "replayed last_voted regressed below the last acknowledged record: \
         {replayed:?} vs {acked:?}"
    );
    assert!(
        !block_rank_gt(&replayed.last_voted, &pre_crash.last_voted),
        "replayed last_voted outranks the pre-crash fold: {replayed:?} vs {pre_crash:?}"
    );

    // View: same sandwich.
    assert!(
        replayed.view >= acked.view,
        "replayed view {:?} regressed below acknowledged {:?}",
        replayed.view,
        acked.view
    );
    assert!(
        replayed.view <= pre_crash.view,
        "replayed view {:?} outranks pre-crash {:?}",
        replayed.view,
        pre_crash.view
    );

    // The restarted replica's baseline is whatever replay produced.
    *acked = replayed;
}

/// One random schedule: `ops` draws of {append, arm a torn write,
/// crash+reopen}, with stale (lower-rank) records mixed in to exercise
/// the monotone fold, ending in a final crash+reopen.
fn run_schedule(seed: u64, ops: usize) {
    let mut rng = Rng(seed);
    let disk = SharedDisk::new();
    let mut journal = SafetyJournal::open(disk.clone()).expect("open fresh journal");
    // Fold of every append the journal acknowledged with Ok.
    let mut acked = *journal.state();

    for _ in 0..ops {
        match rng.next() % 10 {
            0 | 1 => {
                let v = View(rng.next() % 24);
                if journal.log_view(v).is_ok() {
                    acked.apply(&JournalRecord::EnteredView(v));
                }
            }
            2..=4 => {
                let m = meta(
                    rng.next() % 16,
                    rng.next() % 16,
                    rng.next().is_multiple_of(4),
                );
                if journal.log_last_voted(&m).is_ok() {
                    acked.apply(&JournalRecord::LastVoted(m));
                }
            }
            5 | 6 => {
                let q = qc(Phase::Prepare, rng.next() % 16, rng.next() % 16);
                if journal.log_lock(&q).is_ok() {
                    acked.apply(&JournalRecord::Lock(q));
                }
            }
            7 => {
                let j = Justify::One(qc(Phase::Prepare, rng.next() % 16, rng.next() % 16));
                if journal.log_high_qc(&j).is_ok() {
                    acked.apply(&JournalRecord::HighQc(j));
                }
            }
            8 => {
                // Arm a torn write: the next disk write (append or
                // compaction) keeps only this prefix and errors.
                disk.tear_next_write_after((rng.next() % 24) as usize);
            }
            _ => crash_reopen_check(&disk, &mut journal, &mut acked),
        }
    }
    crash_reopen_check(&disk, &mut journal, &mut acked);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random crash/restart points with random torn writes: the
    /// replayed lock never ranks above the pre-crash lock, and
    /// `last_voted` never regresses below the last durable record.
    #[test]
    fn replay_brackets_durable_state(seed in 0u64..1_000_000_000, ops in 8usize..160) {
        run_schedule(seed, ops);
    }

    /// Long schedules cross the `SNAPSHOT_EVERY` compaction boundary
    /// repeatedly (generation turnover under fire).
    #[test]
    fn replay_survives_compaction_churn(seed in 0u64..1_000_000_000) {
        run_schedule(seed, 400);
    }
}
