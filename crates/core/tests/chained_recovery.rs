//! Regression tests for chained (pipelined) durability and recovery —
//! the deterministic core-level counterpart of the scenario-level
//! restart-fork contrast in `tests/fault_matrix.rs`.
//!
//! Each test drives a single journal-backed replica with hand-crafted
//! pipeline proposals (one leader broadcast per round, each `justify`
//! the previous round's `prepareQC`), so the exact failure the journal
//! exists to prevent can be replayed byte-for-byte:
//!
//! * a torn journal append must *withhold* the vote (write-ahead rule)
//!   and leave the in-memory safety state exactly where the journal is
//!   — before the fix the vote raced the append onto the wire;
//! * a replica recovered via journal replay must refuse to re-vote the
//!   heights it already voted, while an amnesiac restart happily
//!   re-votes them — the double vote that forks the pipeline (the
//!   `chained-restart-fork/amnesia` campaign cell);
//! * a three-chain replica that crashes mid-pipeline — locked on a
//!   grandparent that is still uncommitted in flight — must come back
//!   with that lock and its voting edge intact, and keep voting at the
//!   pipeline tip without re-voting below it.

use marlin_core::chained::{ChainedHotStuff, ChainedMarlin};
use marlin_core::{Action, Config, Event, Note, Protocol, SafetyJournal, StepOutput};
use marlin_crypto::QcFormat;
use marlin_storage::SharedDisk;
use marlin_types::{
    Batch, Block, BlockId, Height, Justify, Message, MsgBody, Phase, Qc, ReplicaId, View, Vote,
};

/// Signs a quorum certificate over `seed` with the first three keys.
fn craft_qc(cfg: &Config, seed: marlin_types::QcSeed) -> Qc {
    let partials: Vec<_> = (0..3)
        .map(|i| cfg.keys.signer(i).sign_partial(&seed.signing_bytes()))
        .collect();
    Qc::combine(seed, &partials, &cfg.keys, QcFormat::Threshold).expect("quorum of signers")
}

/// The chained happy-path pipeline in view 1: `len` blocks, each
/// justified by its parent's `prepareQC`, plus the certificate chain.
fn pipeline(cfg: &Config, len: usize) -> (Vec<Block>, Vec<Qc>) {
    let genesis = Qc::genesis(BlockId::GENESIS);
    let mut blocks = Vec::new();
    let mut qcs = Vec::new();
    let mut justify_qc = genesis;
    for i in 0..len {
        let block = Block::new_normal(
            justify_qc.block(),
            justify_qc.block_view(),
            View(1),
            Height(i as u64 + 1),
            Batch::empty(),
            Justify::One(justify_qc),
        );
        let qc = craft_qc(cfg, block.vote_seed(Phase::Prepare, View(1)));
        blocks.push(block);
        qcs.push(qc);
        justify_qc = qc;
    }
    (blocks, qcs)
}

/// The leader's one-broadcast proposal carrying `block`.
fn proposal(leader: ReplicaId, block: &Block) -> Event {
    Event::Message(Message::new(
        leader,
        View(1),
        MsgBody::Proposal(marlin_types::Proposal {
            phase: Phase::Prepare,
            blocks: vec![block.clone()],
            justify: *block.justify(),
            vc_proof: Vec::new(),
        }),
    ))
}

fn votes(out: &StepOutput) -> Vec<&Vote> {
    out.actions
        .iter()
        .filter_map(|a| match a {
            Action::Send {
                message:
                    Message {
                        body: MsgBody::Vote(v),
                        ..
                    },
                ..
            } => Some(v),
            _ => None,
        })
        .collect()
}

fn withheld(out: &StepOutput) -> bool {
    out.actions
        .iter()
        .any(|a| matches!(a, Action::Note(Note::VoteWithheld { .. })))
}

fn voter_config() -> (Config, ReplicaId, ReplicaId) {
    let base = Config::for_test(4, 1);
    let leader = base.leader_of(View(1));
    let voter = ReplicaId((leader.0 + 1) % 4);
    (base.with_id(voter), leader, voter)
}

/// Write-ahead voting under a torn append: the vote is withheld, the
/// in-memory safety state does not outrun the journal, and a clean
/// re-delivery of the same proposal votes normally (the abstention is
/// transient, not a wedge). Before the journal wiring, the vote left
/// on the wire with nothing durable behind it.
#[test]
fn torn_append_withholds_the_vote_and_state_stays_with_the_journal() {
    let (cfg, leader, _) = voter_config();
    let disk = SharedDisk::new();
    let journal = SafetyJournal::open(disk.clone()).expect("fresh journal");
    let mut rep = ChainedMarlin::with_journal(cfg.clone(), journal);
    rep.on_event(Event::Start);

    let (blocks, _) = pipeline(&cfg, 2);
    let out = rep.on_event(proposal(leader, &blocks[0]));
    assert_eq!(votes(&out).len(), 1, "clean append: the vote goes out");
    assert_eq!(*rep.last_voted(), blocks[0].meta());

    // The next append tears after a few bytes: the height-2 vote must
    // be withheld and `lb`/`highQC` must still describe height 1.
    disk.tear_next_write_after(5);
    let out = rep.on_event(proposal(leader, &blocks[1]));
    assert!(withheld(&out), "torn append must surface VoteWithheld");
    assert!(votes(&out).is_empty(), "the vote must not reach the wire");
    assert_eq!(*rep.last_voted(), blocks[0].meta());
    assert_eq!(*rep.high_qc(), *blocks[0].justify());
    assert_eq!(
        rep.journal().expect("journaled").state().last_voted,
        blocks[0].meta(),
        "in-memory state must not outrun the journal"
    );

    // The disk healed (the tear was consumed): the same proposal,
    // re-delivered, votes normally.
    let out = rep.on_event(proposal(leader, &blocks[1]));
    assert_eq!(votes(&out).len(), 1, "abstention must be transient");
    assert_eq!(*rep.last_voted(), blocks[1].meta());
}

/// The restart-fork contrast, replica-local: after a crash, journal
/// replay refuses to re-vote height 2, and keeps voting at the
/// pipeline tip (height 3); an amnesiac restart re-votes height 2 —
/// the exact double vote `tests/fault_matrix.rs` watches fork the
/// cluster.
#[test]
fn journal_replay_refuses_to_re_vote_where_amnesia_forks() {
    let (cfg, leader, _) = voter_config();
    let disk = SharedDisk::new();
    let journal = SafetyJournal::open(disk.clone()).expect("fresh journal");
    let mut rep = ChainedMarlin::with_journal(cfg.clone(), journal);
    rep.on_event(Event::Start);

    let (blocks, qcs) = pipeline(&cfg, 3);
    assert_eq!(votes(&rep.on_event(proposal(leader, &blocks[0]))).len(), 1);
    assert_eq!(votes(&rep.on_event(proposal(leader, &blocks[1]))).len(), 1);

    // Crash: the disk drops its unsynced tail, the journal replays.
    disk.crash();
    let journal = SafetyJournal::open(disk.clone()).expect("reopen after crash");
    let mut rec = ChainedMarlin::recover(cfg.clone(), journal);
    assert_eq!(*rec.last_voted(), blocks[1].meta());
    assert_eq!(rec.locked_qc(), Some(&qcs[0]), "two-chain lock survives");
    rec.on_event(Event::Start);

    // Re-delivered height-2 proposal: already voted, must stay silent.
    let out = rec.on_event(proposal(leader, &blocks[1]));
    assert!(
        votes(&out).is_empty(),
        "journal replay re-voted an acknowledged height"
    );
    // The pipeline tip is still live: the replica keeps voting there.
    let out = rec.on_event(proposal(leader, &blocks[2]));
    assert_eq!(votes(&out).len(), 1, "recovery must not wedge the voter");

    // Amnesia: a fresh replica on the same schedule happily re-votes
    // height 2 — this is the fork, not a harmless duplicate, because a
    // different leader block at that height would be voted just the
    // same.
    let mut amnesiac = ChainedMarlin::new(cfg);
    amnesiac.on_event(Event::Start);
    let out = amnesiac.on_event(proposal(leader, &blocks[1]));
    assert_eq!(
        votes(&out).len(),
        1,
        "the amnesiac contrast lost its teeth: no re-vote happened"
    );
}

/// Three-chain mid-pipeline recovery: the replica crashes after voting
/// height 3, locked on the still-uncommitted grandparent certificate
/// (three-chain has nothing committed yet at depth 3). Replay must
/// restore the lock, `lb`, and `highQC` exactly, refuse to re-vote
/// height 3, and vote height 4 — rejoining a pipeline whose in-flight
/// ancestors it never saw commit.
#[test]
fn three_chain_recovery_restores_the_mid_pipeline_lock() {
    let (cfg, leader, _) = voter_config();
    let disk = SharedDisk::new();
    let journal = SafetyJournal::open(disk.clone()).expect("fresh journal");
    let mut rep = ChainedHotStuff::with_journal(cfg.clone(), journal);
    rep.on_event(Event::Start);

    let (blocks, qcs) = pipeline(&cfg, 4);
    for b in &blocks[..3] {
        assert_eq!(votes(&rep.on_event(proposal(leader, b))).len(), 1);
    }
    // Voting height 3 locked the grandparent: qc over height 1.
    assert_eq!(rep.locked_qc(), Some(&qcs[0]));

    disk.crash();
    let journal = SafetyJournal::open(disk.clone()).expect("reopen after crash");
    let mut rec = ChainedHotStuff::recover(cfg, journal);
    assert_eq!(*rec.last_voted(), blocks[2].meta());
    assert_eq!(
        rec.locked_qc(),
        Some(&qcs[0]),
        "the uncommitted in-flight lock must survive the crash"
    );
    assert_eq!(*rec.high_qc(), Justify::One(qcs[1]));
    rec.on_event(Event::Start);

    let out = rec.on_event(proposal(leader, &blocks[2]));
    assert!(votes(&out).is_empty(), "height 3 was already voted");
    let out = rec.on_event(proposal(leader, &blocks[3]));
    assert_eq!(
        votes(&out).len(),
        1,
        "the recovered replica must keep voting at the pipeline tip"
    );
}
