//! End-to-end protocol tests for Marlin on the in-process harness,
//! including reconstructions of the paper's Figure 2 view-change
//! snapshot scenarios.

use marlin_core::ProtocolKind;
use marlin_core::{harness::Cluster, Config, Note, VcCase};
use marlin_crypto::QcFormat;
use marlin_types::{Message, MsgBody, Phase, Qc, ReplicaId, View, ViewChange};

const P0: ReplicaId = ReplicaId(0);
const P1: ReplicaId = ReplicaId(1);
const P2: ReplicaId = ReplicaId(2);
const P3: ReplicaId = ReplicaId(3);

fn marlin_cluster(n: usize, f: usize, seed: u64) -> Cluster {
    Cluster::new(ProtocolKind::Marlin, Config::for_test(n, f), seed)
}

#[test]
fn normal_case_commits_transactions() {
    let mut cl = marlin_cluster(4, 1, 1);
    cl.submit_to(P1, 50, 150); // view-1 leader
    cl.run_until_idle();
    cl.assert_consistent();
    for p in [P0, P1, P2, P3] {
        assert_eq!(cl.total_committed_txs(p), 50, "{p}");
    }
}

#[test]
fn multiple_batches_commit_sequentially() {
    let mut cl = marlin_cluster(4, 1, 2);
    for _ in 0..5 {
        cl.submit_to(P1, 20, 0);
        cl.run_until_idle();
    }
    cl.assert_consistent();
    assert_eq!(cl.total_committed_txs(P0), 100);
    // Still in view 1 — no spurious view changes under instant delivery.
    assert_eq!(cl.max_view(), View(1));
}

#[test]
fn larger_cluster_commits() {
    let mut cl = Cluster::new(ProtocolKind::Marlin, Config::for_test(7, 2), 3);
    cl.submit_to(P1, 30, 150);
    cl.run_until_idle();
    cl.assert_consistent();
    for i in 0..7u32 {
        assert_eq!(cl.total_committed_txs(ReplicaId(i)), 30);
    }
}

#[test]
fn heartbeat_produces_empty_blocks() {
    let mut cl = marlin_cluster(4, 1, 4);
    let before = cl.committed_height(P0);
    // Fire a few heartbeats (they pace empty proposals).
    for _ in 0..6 {
        cl.fire_next_timer();
    }
    assert!(cl.committed_height(P0) > before);
    cl.assert_consistent();
}

#[test]
fn leader_crash_triggers_happy_path_view_change() {
    let mut cl = marlin_cluster(4, 1, 5);
    cl.submit_to(P1, 10, 0);
    cl.run_until_idle();
    assert_eq!(cl.total_committed_txs(P0), 10);

    cl.crash(P1);
    // Replicas time out of view 1 and elect p2 (leader of view 2). All
    // correct replicas share the same last-voted block, so the leader
    // takes the happy path.
    while cl.min_view() < View(2) {
        assert!(cl.fire_next_timer(), "ran out of timers");
    }
    cl.run_until_idle();
    assert!(
        cl.notes()
            .iter()
            .any(|(p, n)| *p == P2 && matches!(n, Note::HappyPathVc { view: View(2) })),
        "expected a happy-path view change at p2; notes: {:?}",
        cl.notes()
    );

    // The new leader makes progress.
    cl.submit_to(P2, 15, 0);
    cl.run_until_idle();
    cl.assert_consistent();
    for p in [P0, P2, P3] {
        assert_eq!(cl.total_committed_txs(p), 25, "{p}");
    }
}

#[test]
fn consecutive_leader_crashes_are_survived() {
    let mut cl = marlin_cluster(7, 2, 6);
    cl.submit_to(P1, 10, 0);
    cl.run_until_idle();

    // Crash the leaders of views 1 and 2.
    cl.crash(P1);
    cl.crash(P2);
    while cl.min_view() < View(3) {
        assert!(cl.fire_next_timer());
    }
    cl.run_until_idle();
    cl.submit_to(P3, 10, 0);
    cl.run_until_idle();
    cl.assert_consistent();
    assert_eq!(cl.total_committed_txs(P0), 20);
}

/// Builds the paper's Figure 2 situation: the decided-but-hidden block.
///
/// Returns `(cluster, contested_height)` where the block at
/// `contested_height` has a `prepareQC` known only to p0 (p0 is locked
/// on it), p2/p3 voted for it but never saw its QC, and the view-1
/// leader p1 has crashed.
fn build_figure2_scenario(insecure: bool) -> (Cluster, u64) {
    let kind = if insecure {
        ProtocolKind::TwoPhaseInsecure
    } else {
        ProtocolKind::Marlin
    };
    let mut cl = Cluster::new(kind, Config::for_test(4, 1), 7);
    cl.submit_to(P1, 10, 0);
    cl.run_until_idle();
    assert_eq!(
        cl.total_committed_txs(P0),
        10,
        "{kind:?} failed in the failure-free phase"
    );
    let committed = cl.committed_height(P0) as u64;
    let contested = committed + 1;

    // The PREPARE proposal for the contested block reaches p0 and p3
    // but not p2; the COMMIT (carrying its prepareQC) reaches only p0.
    cl.set_filter(Box::new(move |_from, to, msg: &Message| match &msg.body {
        MsgBody::Proposal(p) if p.phase == Phase::Prepare => {
            !(p.blocks.first().is_some_and(|b| b.height().0 == contested) && to == P2)
        }
        MsgBody::Proposal(p) if p.phase == Phase::Commit => {
            let is_contested = p
                .justify
                .qc()
                .is_some_and(|qc| qc.height().0 == contested && qc.phase() == Phase::Prepare);
            !is_contested || to == P0
        }
        _ => true,
    }));
    cl.submit_to(P1, 10, 0);
    cl.run_until_idle();
    cl.crash(P1);
    (cl, contested)
}

/// Crafts the Byzantine stale VIEW-CHANGE of Figure 2 (the faulty
/// replica hides the contested QC and reports an old last-voted block).
fn stale_view_change(cl: &Cluster, cfg: &Config, from: ReplicaId, view: View) -> Message {
    let stale_block = cl.committed_blocks(P0).last().expect("committed").clone();
    let lb = stale_block.meta();
    let qc_seed = stale_block.vote_seed(Phase::Prepare, View(1));
    let partials: Vec<_> = (0..3)
        .map(|i| cfg.keys.signer(i).sign_partial(&qc_seed.signing_bytes()))
        .collect();
    let stale_qc = Qc::combine(qc_seed, &partials, &cfg.keys, QcFormat::Threshold).unwrap();
    let parsig = cfg
        .keys
        .signer(from.index())
        .sign_partial(&ViewChange::happy_seed(&lb, view).signing_bytes());
    Message::new(
        from,
        view,
        MsgBody::ViewChange(ViewChange {
            last_voted: lb,
            high_qc: marlin_types::Justify::One(stale_qc),
            parsig,
            cert: None,
        }),
    )
}

/// Figure 2c: with an unsafe view-change snapshot (p0's message hidden,
/// the Byzantine replica reporting stale state), Marlin's Case V1 +
/// virtual block + R2 vote still commits the block p0 is locked on.
#[test]
fn figure2c_unsafe_snapshot_case_v1_recovers() {
    let cfg = Config::for_test(4, 1);
    let (mut cl, contested) = build_figure2_scenario(false);

    // Drop p0's VIEW-CHANGE messages (the unsafe snapshot) but keep all
    // other traffic flowing.
    cl.set_filter(Box::new(|from, _to, msg: &Message| {
        !(from == P0 && matches!(msg.body, MsgBody::ViewChange(_)))
    }));

    while cl.min_view() < View(2) {
        assert!(cl.fire_next_timer());
    }
    cl.run_until_idle();
    // p2 (view-2 leader) has only 2 view-change messages; inject the
    // Byzantine stale one to complete its (unsafe) snapshot.
    cl.inject(P2, stale_view_change(&cl, &cfg, P1, View(2)));

    // Case V1 must have run, and the contested block must commit.
    assert!(
        cl.notes().iter().any(|(p, n)| {
            *p == P2
                && matches!(
                    n,
                    Note::UnhappyPathVc {
                        case: VcCase::V1,
                        ..
                    }
                )
        }),
        "expected Case V1; notes: {:?}",
        cl.notes()
    );
    cl.assert_consistent();
    for p in [P0, P2, P3] {
        let chain = cl.committed_blocks(p);
        assert!(
            chain.iter().any(|b| b.height().0 == contested),
            "{p} did not commit the contested block; chain heights: {:?}",
            chain.iter().map(|b| b.height().0).collect::<Vec<_>>()
        );
        assert_eq!(cl.total_committed_txs(p), 20, "{p}");
    }
    // The virtual block itself is part of the committed chain.
    assert!(cl
        .committed_blocks(P0)
        .iter()
        .any(|b| b.is_virtual() && b.height().0 == contested + 1));
}

/// The same unsafe snapshot under the insecure two-phase strawman
/// (Figure 2b): the locked replica rejects the new proposal and the
/// system cannot commit anything new — the liveness failure Marlin
/// fixes.
#[test]
fn figure2b_insecure_two_phase_stalls() {
    let cfg = Config::for_test(4, 1);
    let (mut cl, contested) = build_figure2_scenario(true);
    let committed_before = cl.committed_height(P0);

    cl.set_filter(Box::new(|from, _to, msg: &Message| {
        !(from == P0 && matches!(msg.body, MsgBody::ViewChange(_)))
    }));
    // Views 2 (leader p2) and 3 (leader p3) both receive unsafe
    // snapshots (two honest stale views plus the Byzantine stale
    // message); neither can make progress because p0 stays locked on
    // the hidden QC and refuses every proposal. (Once rotation reaches
    // p0 itself the system would recover — the paper's point is that a
    // leader with an unsafe snapshot is stuck, which Marlin fixes
    // *within* the same view; see figure2c.)
    for target in [2u64, 3] {
        while cl.min_view() < View(target) {
            assert!(cl.fire_next_timer());
        }
        cl.run_until_idle();
        let leader = ReplicaId::leader_of(View(target), 4);
        cl.inject(leader, stale_view_change(&cl, &cfg, P1, View(target)));
        // The leader proposes from the stale QC; p0 rejects, the quorum
        // is missed, nothing commits.
        for p in [P2, P3] {
            assert_eq!(
                cl.committed_height(p),
                committed_before,
                "{p} made progress in view {target} despite the unsafe snapshot"
            );
            assert!(!cl
                .committed_blocks(p)
                .iter()
                .any(|b| b.height().0 == contested));
        }
    }
}

/// A safe snapshot containing p0's high QC takes Case V2 (the leader is
/// certain) and extends the contested block directly.
#[test]
fn figure2_safe_snapshot_case_v2() {
    let cfg = Config::for_test(4, 1);
    let (mut cl, contested) = build_figure2_scenario(false);

    // p3's VIEW-CHANGE is hidden instead of p0's: the snapshot includes
    // p0's prepareQC for the contested block (safe snapshot).
    cl.set_filter(Box::new(|from, _to, msg: &Message| {
        !(from == P3 && matches!(msg.body, MsgBody::ViewChange(_)))
    }));
    while cl.min_view() < View(2) {
        assert!(cl.fire_next_timer());
    }
    cl.run_until_idle();
    cl.inject(P2, stale_view_change(&cl, &cfg, P1, View(2)));

    assert!(
        cl.notes().iter().any(|(p, n)| {
            *p == P2
                && matches!(
                    n,
                    Note::UnhappyPathVc {
                        case: VcCase::V2,
                        ..
                    }
                )
        }),
        "expected Case V2; notes: {:?}",
        cl.notes()
    );
    cl.assert_consistent();
    for p in [P0, P2, P3] {
        assert!(cl
            .committed_blocks(p)
            .iter()
            .any(|b| b.height().0 == contested));
        assert_eq!(cl.total_committed_txs(p), 20, "{p}");
    }
    // Case V2 extends the contested block with a normal block: no
    // virtual block in the chain.
    assert!(!cl.committed_blocks(P0).iter().any(|b| b.is_virtual()));
}

/// After recovery through a view change, the protocol keeps committing
/// in the new view.
#[test]
fn progress_continues_after_unhappy_view_change() {
    let cfg = Config::for_test(4, 1);
    let (mut cl, _) = build_figure2_scenario(false);
    cl.set_filter(Box::new(|from, _to, msg: &Message| {
        !(from == P0 && matches!(msg.body, MsgBody::ViewChange(_)))
    }));
    while cl.min_view() < View(2) {
        assert!(cl.fire_next_timer());
    }
    cl.run_until_idle();
    cl.inject(P2, stale_view_change(&cl, &cfg, P1, View(2)));
    cl.clear_filter();

    cl.submit_to(P2, 30, 150);
    cl.run_until_idle();
    cl.assert_consistent();
    assert_eq!(cl.total_committed_txs(P0), 50);
    assert_eq!(cl.max_view(), View(2));
}

/// Locked state is tracked correctly: after a commit, replicas are
/// locked on the newest prepareQC.
#[test]
fn replicas_lock_on_latest_prepare_qc() {
    let mut cl = marlin_cluster(4, 1, 9);
    cl.submit_to(P1, 5, 0);
    cl.run_until_idle();
    let height = cl.committed_height(P0) as u64;
    for p in [P0, P2, P3] {
        let view = cl.replica(p).current_view();
        assert_eq!(view, View(1));
    }
    assert!(height >= 2);
}

/// Rotating-leader mode: leaders hand over on the rotation interval and
/// the cluster keeps committing (Section VI, Figure 10j setup).
#[test]
fn rotating_leader_mode_rotates_and_commits() {
    let mut cfg = Config::for_test(4, 1);
    cfg.rotation_interval_ns = Some(50_000_000);
    let mut cl = Cluster::new(ProtocolKind::Marlin, cfg, 10);
    for round in 0..6 {
        // Wait for every replica to converge on one view, then submit to
        // its leader (clients of a real deployment resubmit after a
        // rotation; here we submit only to in-view leaders).
        while cl.min_view() < cl.max_view() {
            assert!(cl.fire_next_timer(), "no timers at round {round}");
        }
        let v = cl.max_view();
        cl.submit_to(ReplicaId::leader_of(v, 4), 10, 0);
        cl.run_until_idle();
        // Fire rotation timers to move to the next view.
        while cl.min_view() <= v {
            assert!(cl.fire_next_timer(), "no timers at round {round}");
        }
        cl.run_until_idle();
    }
    cl.assert_consistent();
    assert!(cl.max_view() >= View(6));
    assert_eq!(cl.total_committed_txs(P0), 60);
    // Rotations under no failures take the happy path.
    let happy = cl
        .notes()
        .iter()
        .filter(|(_, n)| matches!(n, Note::HappyPathVc { .. }))
        .count();
    assert!(happy >= 5, "expected happy-path rotations, got {happy}");
}

/// A replica that missed everything catches up through fetch.
#[test]
fn lagging_replica_catches_up_via_fetch() {
    let mut cl = marlin_cluster(4, 1, 11);
    // p3 is partitioned from proposals/commits (but not Decide).
    cl.set_filter(Box::new(|_from, to, msg: &Message| {
        !(to == P3 && matches!(&msg.body, MsgBody::Proposal(_)))
    }));
    cl.submit_to(P1, 10, 0);
    cl.run_until_idle();
    cl.assert_consistent();
    // p3 saw only Decide messages, fetched the blocks, and committed.
    assert_eq!(cl.total_committed_txs(P3), 10);
}

/// Post-crash view resynchronization (the f+1 attestation rule): with
/// linear view changes a recovered replica never overhears VIEW-CHANGE
/// traffic, so peers' `CATCH-UP` responses — whose headers carry the
/// responder's current view — are what pull it forward. One claim must
/// not move it (a lone Byzantine responder could drag it arbitrarily
/// far); the (f+1)-th highest claim is attested by at least one honest
/// replica and is joined immediately.
#[test]
fn catch_up_responses_resynchronize_a_lagging_replica() {
    use marlin_core::marlin::Marlin;
    use marlin_core::{Action, Event, Protocol};

    let cfg = Config::for_test(4, 1);
    let mut p3 = Marlin::new(cfg.with_id(P3));
    p3.step(Event::Start);
    assert_eq!(p3.current_view(), View(1));

    // A single (possibly Byzantine) claim of a far-future view: no move.
    let inflated = Message::new(P1, View(99), MsgBody::CatchUpResponse { commit_qc: None });
    p3.step(Event::Message(inflated));
    assert_eq!(
        p3.current_view(),
        View(1),
        "one attestation must not move the view"
    );

    // A second, honest claim: f + 1 = 2 peers are now above view 1, and
    // the 2nd-highest claim (view 4, the honest one) bounds the jump.
    let honest = Message::new(P0, View(4), MsgBody::CatchUpResponse { commit_qc: None });
    let out = p3.step(Event::Message(honest));
    assert_eq!(
        p3.current_view(),
        View(4),
        "should join the honestly-attested view"
    );
    // Joining means a VIEW-CHANGE goes to the view-4 leader (linearity).
    assert!(
        out.actions.iter().any(|a| matches!(
            a,
            Action::Send { to, message } if *to == ReplicaId::leader_of(View(4), 4)
                && matches!(&message.body, MsgBody::ViewChange(_))
        )),
        "expected a VIEW-CHANGE to the view-4 leader: {:?}",
        out.actions
    );
}

/// With decoupled dissemination enabled, the leader pushes batches as
/// digest-addressed payloads ahead of consensus and the prepare phase
/// carries only `DIGEST-PROPOSAL` messages — no full-batch `PROPOSAL`
/// ever crosses the wire, yet every replica commits the payload.
#[test]
fn dissemination_commits_via_digest_proposals() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let mut cfg = Config::for_test(4, 1);
    cfg.dissemination = true;
    let mut cl = Cluster::new(ProtocolKind::Marlin, cfg, 21);

    let digest_proposals = Arc::new(AtomicUsize::new(0));
    let full_prepare_proposals = Arc::new(AtomicUsize::new(0));
    let (d, p) = (
        Arc::clone(&digest_proposals),
        Arc::clone(&full_prepare_proposals),
    );
    cl.set_filter(Box::new(move |_from, _to, msg: &Message| {
        match &msg.body {
            MsgBody::DigestProposal { .. } => {
                d.fetch_add(1, Ordering::Relaxed);
            }
            MsgBody::Proposal(prop)
                if prop.phase == Phase::Prepare
                    && prop.blocks.iter().any(|b| !b.payload().is_empty()) =>
            {
                p.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        true // observe only, drop nothing
    }));

    cl.submit_to(P1, 60, 150);
    cl.run_until_idle();
    cl.assert_consistent();
    for replica in [P0, P1, P2, P3] {
        assert_eq!(cl.total_committed_txs(replica), 60, "{replica}");
    }
    assert!(
        digest_proposals.load(Ordering::Relaxed) > 0,
        "payload batches should be proposed by digest"
    );
    assert_eq!(
        full_prepare_proposals.load(Ordering::Relaxed),
        0,
        "no full-batch prepare proposal should cross the wire"
    );
    // The payload plane reported its lifecycle: pushes and ack quorums.
    let pushed = cl
        .notes()
        .iter()
        .filter(|(_, n)| matches!(n, Note::PayloadPushed { .. }))
        .count();
    let quorums = cl
        .notes()
        .iter()
        .filter(|(_, n)| matches!(n, Note::PayloadQuorum { .. }))
        .count();
    assert!(pushed > 0, "expected PayloadPushed notes");
    assert!(quorums > 0, "expected PayloadQuorum notes");
}

/// A replica that missed the payload push still follows the chain: it
/// buffers the digest proposal, fetches the batch from the proposer by
/// digest, and commits the same payload as everyone else.
#[test]
fn dissemination_fetch_fallback_recovers_missing_payload() {
    let mut cfg = Config::for_test(4, 1);
    cfg.dissemination = true;
    let mut cl = Cluster::new(ProtocolKind::Marlin, cfg, 22);

    // p3 never receives the payload push; acks from p0/p1/p2 (plus the
    // leader's own) still clear the availability quorum of n - f = 3.
    cl.set_filter(Box::new(|_from, to, msg: &Message| {
        !(to == P3 && matches!(&msg.body, MsgBody::PayloadPush { .. }))
    }));
    cl.submit_to(P1, 40, 150);
    cl.run_until_idle();
    cl.clear_filter();
    cl.run_until_idle();
    cl.assert_consistent();
    for replica in [P0, P1, P2, P3] {
        assert_eq!(cl.total_committed_txs(replica), 40, "{replica}");
    }
    assert!(
        cl.notes()
            .iter()
            .any(|(id, n)| *id == P3 && matches!(n, Note::PayloadFetched { .. })),
        "p3 should have fetched the missing batch by digest"
    );
}

/// A leader whose payload pushes are all lost must not wedge: the seal
/// never reaches its availability quorum, so after `EXPIRE_AFTER`
/// heartbeat ticks the payload plane abandons it, hands the
/// transactions back to the mempool, and the next proposal ships them
/// inline — all before the view times out.
#[test]
fn lost_payload_pushes_do_not_wedge_the_leader() {
    let mut cfg = Config::for_test(4, 1);
    cfg.dissemination = true;
    let mut cl = Cluster::new(ProtocolKind::Marlin, cfg, 23);

    // Every push is lost; the leader's self-ack alone can never reach
    // the n - f = 3 availability quorum.
    cl.set_filter(Box::new(|_from, _to, msg: &Message| {
        !matches!(&msg.body, MsgBody::PayloadPush { .. })
    }));
    cl.submit_to(P1, 40, 150);
    cl.run_until_idle();
    // Nothing can commit while the seal occupies its window slot.
    assert_eq!(cl.total_committed_txs(P1), 0);
    // Heartbeats age the seal to expiry, then the inline path takes over.
    cl.run_until(1_000_000_000);
    cl.run_until_idle();
    cl.assert_consistent();
    for replica in [P0, P1, P2, P3] {
        assert_eq!(cl.total_committed_txs(replica), 40, "{replica}");
    }
    assert!(
        cl.notes()
            .iter()
            .any(|(id, n)| *id == P1 && matches!(n, Note::PayloadExpired { .. })),
        "the unacked seal should have been expired"
    );
}

/// A transient push loss is healed by retransmission: the first
/// fan-out is dropped, the heartbeat-driven re-push lands, the quorum
/// forms, and the batch still commits by digest — no expiry, no
/// inline fallback.
#[test]
fn transient_push_loss_is_healed_by_retransmission() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let mut cfg = Config::for_test(4, 1);
    cfg.dissemination = true;
    let mut cl = Cluster::new(ProtocolKind::Marlin, cfg, 24);

    // Drop exactly the first push fan-out (one broadcast = 3 sends).
    let dropped = Arc::new(AtomicUsize::new(0));
    let d = Arc::clone(&dropped);
    cl.set_filter(Box::new(move |_from, _to, msg: &Message| {
        if matches!(&msg.body, MsgBody::PayloadPush { .. }) {
            return d.fetch_add(1, Ordering::Relaxed) >= 3;
        }
        true
    }));
    cl.submit_to(P1, 40, 150);
    cl.run_until_idle();
    assert_eq!(cl.total_committed_txs(P1), 0, "first fan-out was lost");
    cl.run_until(1_000_000_000);
    cl.run_until_idle();
    cl.assert_consistent();
    for replica in [P0, P1, P2, P3] {
        assert_eq!(cl.total_committed_txs(replica), 40, "{replica}");
    }
    assert!(
        cl.notes()
            .iter()
            .any(|(_, n)| matches!(n, Note::PayloadQuorum { .. })),
        "the re-push should have completed the availability quorum"
    );
    assert!(
        !cl.notes()
            .iter()
            .any(|(_, n)| matches!(n, Note::PayloadExpired { .. })),
        "a healed seal must not expire"
    );
}

/// When the proposer answers a payload fetch with `batch: None` (it
/// pruned or never had the batch), the requester fans the fetch out to
/// every replica instead of leaving the digest proposal stuck; any
/// peer holding the batch can then complete the resolution and the
/// replica votes as normal.
#[test]
fn unresolvable_fetch_fans_out_and_recovers() {
    use bytes::Bytes;
    use marlin_core::marlin::Marlin;
    use marlin_core::{Action, Event, Protocol};
    use marlin_types::{Batch, BlockId, Justify, Transaction};

    let mut cfg = Config::for_test(4, 1);
    cfg.dissemination = true;
    let mut p3 = Marlin::new(cfg.with_id(P3));
    p3.step(Event::Start);

    let batch = Batch::new(
        (0..3)
            .map(|i| Transaction::new(i, 0, Bytes::from(vec![0x5A; 8]), 0))
            .collect(),
    );
    let digest = batch.digest();
    let justify = Justify::One(Qc::genesis(BlockId::GENESIS));

    // An unknown digest is fetched from the proposer first.
    let proposal = Message::new(P1, View(1), MsgBody::DigestProposal { digest, justify });
    let out = p3.step(Event::Message(proposal));
    assert!(
        out.actions.iter().any(|a| matches!(
            a,
            Action::Send { to, message } if *to == P1
                && matches!(&message.body, MsgBody::PayloadRequest { .. })
        )),
        "expected a targeted fetch to the proposer: {:?}",
        out.actions
    );

    // The proposer cannot serve it: the fetch fans out to everyone.
    let miss = Message::new(
        P1,
        View(1),
        MsgBody::PayloadResponse {
            digest,
            batch: None,
        },
    );
    let out = p3.step(Event::Message(miss));
    assert!(
        out.actions.iter().any(|a| matches!(
            a,
            Action::Broadcast { message }
                if matches!(&message.body, MsgBody::PayloadRequest { .. })
        )),
        "expected a broadcast fetch after the miss: {:?}",
        out.actions
    );

    // Any peer with the batch completes the resolution; the buffered
    // digest proposal replays and the replica votes prepare.
    let hit = Message::new(
        P2,
        View(1),
        MsgBody::PayloadResponse {
            digest,
            batch: Some(batch),
        },
    );
    let out = p3.step(Event::Message(hit));
    assert!(
        out.actions.iter().any(|a| matches!(
            a,
            Action::Send { to, message } if *to == P1
                && matches!(&message.body, MsgBody::Vote(v) if v.seed.phase == Phase::Prepare)
        )),
        "expected a prepare vote to the leader after resolution: {:?}",
        out.actions
    );
}
