//! The durable consensus-safety journal.
//!
//! Marlin's safety argument assumes a replica never forgets its lock,
//! its last-voted block, or its current view (PAPER.md §V). A replica
//! that restarts with amnesia silently becomes a Byzantine-equivalent
//! fault: it can re-vote in a view it already voted in and help certify
//! a fork. The [`SafetyJournal`] closes that hole with a **write-ahead
//! voting discipline**: every safety-critical transition — view entry,
//! last-voted block, lock update, `highQC` advance — is appended to a
//! CRC-framed log on a [`Disk`] and synced *before* the corresponding
//! vote message is emitted. If the append fails (torn write at crash
//! time), the replica abstains from that vote; abstention is always
//! safe.
//!
//! # Record format
//!
//! Records ride on the [`Wal`] framing (`len: u32 LE | crc: u32 LE |
//! payload`) in a journal-owned log file, so a torn tail — a crash
//! mid-append — loses only the record being written, never acknowledged
//! state. Each payload is a 1-byte tag followed by the field's wire
//! encoding (shared with the network codec):
//!
//! | tag | record | payload |
//! |-----|--------|---------|
//! | 0 | `EnteredView` | view `u64 LE` |
//! | 1 | `LastVoted` | [`BlockMeta`] wire form |
//! | 2 | `Lock` | [`Qc`] wire form |
//! | 3 | `HighQc` | [`Justify`] wire form |
//! | 4 | `Snapshot` | view + meta + optional lock + justify |
//!
//! # Monotone replay
//!
//! Replay folds records into a [`SafetySnapshot`] **monotonically**:
//! the view only advances, the last-voted block only climbs the block
//! rank order, and the lock only rises in QC rank. Duplicate or stale
//! records (e.g. re-appended after an imperfect compaction) are
//! therefore harmless, and replay can never yield a lock of higher rank
//! than was ever durably recorded.
//!
//! # Snapshot compaction
//!
//! Every [`SNAPSHOT_EVERY`] appends the journal folds its state into a
//! single `Snapshot` record written to a *new generation* of the log
//! file; the old generation is removed only after the new one is
//! synced, so a crash at any point of compaction leaves at least one
//! intact generation. Recovery picks the newest generation with intact
//! records and deletes empty or fully-torn stragglers.

use crate::events::{Action, Note};
use bytes::{BufMut, BytesMut};
use marlin_storage::{Disk, IoCostModel, SharedDisk, Wal};
use marlin_types::codec::{
    get_block_meta, get_justify, get_qc, put_block_meta, put_justify, put_qc,
};
use marlin_types::rank::{block_rank_gt, qc_rank_cmp};
use marlin_types::{BlockMeta, Height, Justify, Phase, Qc, View};
use std::cmp::Ordering;
use std::io;

/// Base name of the journal's log file; generations append `.<n>`.
pub const JOURNAL_FILE: &str = "safety-journal";

/// Appends between snapshot compactions.
pub const SNAPSHOT_EVERY: usize = 64;

/// One durable safety record.
#[allow(clippy::large_enum_variant)] // records are transient encode/decode carriers
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalRecord {
    /// The replica entered `view` (it must never re-enter or vote in an
    /// earlier view after a restart).
    EnteredView(View),
    /// The replica is about to vote for this block.
    LastVoted(BlockMeta),
    /// The replica's lock rose to this `prepareQC`.
    Lock(Qc),
    /// The replica's `highQC` advanced.
    HighQc(Justify),
    /// A compaction snapshot: the folded state of every prior record.
    Snapshot(SafetySnapshot),
}

/// The monotone fold of a journal: everything a restarting replica must
/// remember to stay safe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SafetySnapshot {
    /// Highest view durably entered.
    pub view: View,
    /// Highest-ranked block durably voted for.
    pub last_voted: BlockMeta,
    /// Highest-ranked durable lock.
    pub locked_qc: Option<Qc>,
    /// Highest-ranked durable `highQC`.
    pub high_qc: Justify,
}

impl SafetySnapshot {
    /// The pre-genesis snapshot: nothing voted, nothing locked.
    pub fn genesis() -> Self {
        SafetySnapshot {
            view: View::GENESIS,
            last_voted: BlockMeta::genesis(),
            locked_qc: None,
            high_qc: Justify::None,
        }
    }

    /// Folds one record in, monotonically (see the module docs).
    pub fn apply(&mut self, rec: &JournalRecord) {
        match rec {
            JournalRecord::EnteredView(v) => self.view = self.view.max(*v),
            JournalRecord::LastVoted(meta) => {
                if block_rank_gt(meta, &self.last_voted) {
                    self.last_voted = *meta;
                }
            }
            JournalRecord::Lock(qc) => self.raise_lock(qc),
            JournalRecord::HighQc(justify) => self.raise_high_qc(justify),
            JournalRecord::Snapshot(snap) => {
                self.view = self.view.max(snap.view);
                if block_rank_gt(&snap.last_voted, &self.last_voted) {
                    self.last_voted = snap.last_voted;
                }
                if let Some(qc) = &snap.locked_qc {
                    self.raise_lock(qc);
                }
                self.raise_high_qc(&snap.high_qc);
            }
        }
    }

    fn raise_lock(&mut self, qc: &Qc) {
        let rises = match &self.locked_qc {
            None => true,
            Some(cur) => qc_rank_cmp(qc, cur) == Ordering::Greater,
        };
        if rises {
            self.locked_qc = Some(*qc);
        }
    }

    fn raise_high_qc(&mut self, justify: &Justify) {
        let rises = match (justify.qc(), self.high_qc.qc()) {
            (None, _) => false,
            (Some(_), None) => true,
            (Some(new), Some(cur)) => match qc_rank_cmp(new, cur) {
                Ordering::Greater => true,
                // Equal rank: prefer the richer shape (a `Two` carries
                // the resolving vc a `One` lacks).
                Ordering::Equal => matches!(justify, Justify::Two(_, _)),
                Ordering::Less => false,
            },
        };
        if rises {
            self.high_qc = *justify;
        }
    }
}

fn encode_record(rec: &JournalRecord) -> Vec<u8> {
    let mut buf = BytesMut::new();
    match rec {
        JournalRecord::EnteredView(v) => {
            buf.put_u8(0);
            buf.put_u64_le(v.0);
        }
        JournalRecord::LastVoted(meta) => {
            buf.put_u8(1);
            put_block_meta(&mut buf, meta);
        }
        JournalRecord::Lock(qc) => {
            buf.put_u8(2);
            put_qc(&mut buf, qc);
        }
        JournalRecord::HighQc(justify) => {
            buf.put_u8(3);
            put_justify(&mut buf, justify);
        }
        JournalRecord::Snapshot(snap) => {
            buf.put_u8(4);
            buf.put_u64_le(snap.view.0);
            put_block_meta(&mut buf, &snap.last_voted);
            match &snap.locked_qc {
                None => buf.put_u8(0),
                Some(qc) => {
                    buf.put_u8(1);
                    put_qc(&mut buf, qc);
                }
            }
            put_justify(&mut buf, &snap.high_qc);
        }
    }
    buf.to_vec()
}

fn decode_record(payload: &[u8]) -> Option<JournalRecord> {
    let (&tag, mut rest) = payload.split_first()?;
    let buf = &mut rest;
    let rec = match tag {
        0 => {
            if buf.len() < 8 {
                return None;
            }
            let v = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
            *buf = &buf[8..];
            JournalRecord::EnteredView(View(v))
        }
        1 => JournalRecord::LastVoted(get_block_meta(buf).ok()?),
        2 => JournalRecord::Lock(get_qc(buf).ok()?),
        3 => JournalRecord::HighQc(get_justify(buf).ok()?),
        4 => {
            if buf.len() < 8 {
                return None;
            }
            let v = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
            *buf = &buf[8..];
            let last_voted = get_block_meta(buf).ok()?;
            let locked_qc = match buf.split_first()? {
                (0, rest) => {
                    *buf = rest;
                    None
                }
                (1, rest) => {
                    *buf = rest;
                    Some(get_qc(buf).ok()?)
                }
                _ => return None,
            };
            let high_qc = get_justify(buf).ok()?;
            JournalRecord::Snapshot(SafetySnapshot {
                view: View(v),
                last_voted,
                locked_qc,
                high_qc,
            })
        }
        _ => return None,
    };
    if buf.is_empty() {
        Some(rec)
    } else {
        None
    }
}

/// Accumulated write-ahead IO since the last [`SafetyJournal::take_io`]
/// call: what the journal cost, for telemetry.
///
/// The modeled `cost_ns` is **reported, not charged**: folding it into
/// a step's `cpu_ns` would perturb the deterministic schedules that the
/// fault-injection campaign pins by fingerprint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalIo {
    /// Append operations (including compaction snapshots) that reached
    /// the disk.
    pub appends: u64,
    /// Bytes written, including the WAL's 8-byte length/CRC framing.
    pub bytes: u64,
    /// Modeled append + sync latency under [`IoCostModel::ssd`].
    pub cost_ns: u64,
}

impl JournalIo {
    fn charge(&mut self, payload_len: usize, cost: &IoCostModel) {
        self.appends += 1;
        self.bytes += payload_len as u64 + 8;
        self.cost_ns += cost.wal_append(payload_len) + cost.sync_ns;
    }
}

/// The write-ahead safety journal (see the module docs).
#[derive(Clone, Debug)]
pub struct SafetyJournal {
    disk: SharedDisk,
    /// Current log-file generation (compaction bumps it).
    gen: u64,
    /// Records appended to the current generation.
    records_in_gen: usize,
    /// The monotone fold of everything durably acknowledged.
    state: SafetySnapshot,
    /// The last append tore; the log tail is unreadable past it, so the
    /// next append must compact to a fresh generation first.
    torn: bool,
    /// Lowest block height referenced by a non-snapshot record in the
    /// current generation (None: only view entries / snapshots, which
    /// carry no prunable history). Drives [`SafetyJournal::gc_below`].
    gen_low_height: Option<u64>,
    /// IO cost model used for the telemetry accounting in `io`.
    cost: IoCostModel,
    /// IO accumulated since the last [`SafetyJournal::take_io`].
    io: JournalIo,
}

impl SafetyJournal {
    /// Opens (or creates) the journal on `disk`, replaying the newest
    /// intact log generation into the recovered [`SafetySnapshot`] and
    /// removing empty or fully-torn straggler generations.
    ///
    /// # Errors
    ///
    /// Propagates disk errors.
    pub fn open(disk: SharedDisk) -> io::Result<Self> {
        let mut disk = disk;
        let mut gens: Vec<u64> = disk
            .list()?
            .iter()
            .filter_map(|name| {
                name.strip_prefix(JOURNAL_FILE)
                    .and_then(|rest| rest.strip_prefix('.'))
                    .and_then(|g| g.parse().ok())
            })
            .collect();
        gens.sort_unstable();

        let mut state = SafetySnapshot::genesis();
        let mut gen_low_height = None;
        let mut chosen: Option<(u64, usize, bool)> = None;
        for &g in gens.iter().rev() {
            let (records, tail_clean) = Wal::replay_named_checked(&disk, &gen_file(g))?;
            if records.is_empty() {
                continue;
            }
            let mut applied = 0usize;
            let mut low = None;
            for payload in &records {
                match decode_record(payload) {
                    Some(rec) => {
                        state.apply(&rec);
                        low = min_opt(low, record_low_height(&rec));
                        applied += 1;
                    }
                    // An intact-CRC record that fails to decode means a
                    // format change or corruption; stop conservatively
                    // (everything before it is already folded in).
                    None => break,
                }
            }
            if applied > 0 {
                gen_low_height = low;
                chosen = Some((g, applied, tail_clean && applied == records.len()));
                break;
            }
        }
        let (gen, records_in_gen, tail_clean) = match chosen {
            Some(c) => c,
            None => {
                let g = gens.last().copied().unwrap_or(0);
                // A straggler file with zero intact records still holds
                // bytes that would shadow anything appended after them.
                (g, 0, !disk.exists(&gen_file(g)))
            }
        };
        // Garbage-collect every other generation (older history is
        // subsumed; newer ones held no intact records).
        for &g in &gens {
            if g != gen {
                disk.remove(&gen_file(g))?;
            }
        }
        Ok(SafetyJournal {
            disk,
            gen,
            records_in_gen,
            state,
            // A torn or undecodable tail survived the crash: appending
            // after it would be invisible to the next replay, so the
            // first append must compact to a fresh generation.
            torn: !tail_clean,
            gen_low_height,
            cost: IoCostModel::ssd(),
            io: JournalIo::default(),
        })
    }

    /// Drops journal history wholly below the pruned prefix: when the
    /// current log generation still references a block below `horizon`
    /// (the sync snapshot horizon that block storage was pruned to),
    /// the journal folds its state into a fresh generation and removes
    /// the old one — so an idle generation cannot pin sub-horizon
    /// history on disk indefinitely. Returns whether a compaction ran.
    ///
    /// # Errors
    ///
    /// Propagates disk errors; on error the journal is still intact
    /// (the same crash discipline as [`SNAPSHOT_EVERY`] compaction).
    pub fn gc_below(&mut self, horizon: Height) -> io::Result<bool> {
        // A lone post-compaction snapshot contributes no low height, so
        // GC naturally quiesces until new prunable records land.
        match self.gen_low_height {
            Some(low) if low < horizon.0 => {
                self.compact()?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Takes (and resets) the IO accumulated since the last call, for
    /// telemetry reporting.
    pub fn take_io(&mut self) -> JournalIo {
        std::mem::take(&mut self.io)
    }

    /// The monotone fold of everything durably acknowledged so far.
    pub fn state(&self) -> &SafetySnapshot {
        &self.state
    }

    /// Durably records a view entry.
    ///
    /// # Errors
    ///
    /// Propagates disk errors; on error nothing was acknowledged.
    pub fn log_view(&mut self, view: View) -> io::Result<()> {
        self.append(JournalRecord::EnteredView(view))
    }

    /// Durably records the block the replica is about to vote for.
    /// **Must succeed before the vote is sent** (write-ahead voting).
    ///
    /// # Errors
    ///
    /// Propagates disk errors; on error the caller must abstain.
    pub fn log_last_voted(&mut self, meta: &BlockMeta) -> io::Result<()> {
        self.append(JournalRecord::LastVoted(*meta))
    }

    /// Durably records a lock update.
    ///
    /// # Errors
    ///
    /// Propagates disk errors; on error nothing was acknowledged.
    pub fn log_lock(&mut self, qc: &Qc) -> io::Result<()> {
        self.append(JournalRecord::Lock(*qc))
    }

    /// Durably records a `highQC` advance.
    ///
    /// # Errors
    ///
    /// Propagates disk errors; on error nothing was acknowledged.
    pub fn log_high_qc(&mut self, justify: &Justify) -> io::Result<()> {
        self.append(JournalRecord::HighQc(*justify))
    }

    fn append(&mut self, rec: JournalRecord) -> io::Result<()> {
        // Records that would not move the monotone fold are already
        // durable (e.g. a commit-phase re-vote for an already-journaled
        // block, or a lock raise to a QC the journal has): skip the
        // disk round-trip.
        let mut next = self.state;
        next.apply(&rec);
        if next == self.state {
            return Ok(());
        }
        if self.torn {
            // The current generation has an unreadable tail; anything
            // appended after it would be lost to replay. Fold the known
            // state into a fresh generation first.
            self.compact()?;
        }
        let payload = encode_record(&rec);
        let file = gen_file(self.gen);
        match Wal::append_named(&mut self.disk, &file, &payload) {
            Ok(()) => {
                self.disk.sync()?;
                self.io.charge(payload.len(), &self.cost);
                self.state.apply(&rec);
                self.gen_low_height = min_opt(self.gen_low_height, record_low_height(&rec));
                self.records_in_gen += 1;
                if self.records_in_gen >= SNAPSHOT_EVERY {
                    self.compact()?;
                }
                Ok(())
            }
            Err(e) => {
                // Best-effort sync so the torn tail is what a real disk
                // would leave behind; replay discards it by CRC.
                let _ = self.disk.sync();
                self.torn = true;
                Err(e)
            }
        }
    }

    /// Folds the journal into one `Snapshot` record on a fresh log
    /// generation, then removes the old generation. Crash-safe: the old
    /// generation is removed only after the new one is synced.
    fn compact(&mut self) -> io::Result<()> {
        let next = self.gen + 1;
        let target = gen_file(next);
        // A previous compaction attempt may have torn, leaving a
        // fragment at the head of the target file. Appending after it
        // would hide the snapshot from replay (the CRC scan stops at
        // the first bad frame), so truncate the target first.
        self.disk.remove(&target)?;
        let snap = encode_record(&JournalRecord::Snapshot(self.state));
        Wal::append_named(&mut self.disk, &target, &snap)?;
        self.disk.sync()?;
        self.io.charge(snap.len(), &self.cost);
        let old = gen_file(self.gen);
        self.gen = next;
        self.records_in_gen = 1;
        self.torn = false;
        // The fresh generation holds only the snapshot (current state):
        // no prunable history until new records land.
        self.gen_low_height = None;
        self.disk.remove(&old)?;
        Ok(())
    }
}

/// The lowest block height a record pins on disk, if any. View entries
/// carry no height; a `Snapshot` is the folded current state, which is
/// never *history* (it is exactly what survives a GC compaction).
fn record_low_height(rec: &JournalRecord) -> Option<u64> {
    match rec {
        JournalRecord::LastVoted(meta) => Some(meta.height.0),
        JournalRecord::Lock(qc) => Some(qc.height().0),
        JournalRecord::HighQc(justify) => justify.qc().map(|qc| qc.height().0),
        JournalRecord::EnteredView(_) | JournalRecord::Snapshot(_) => None,
    }
}

fn min_opt(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (x, None) | (None, x) => x,
    }
}

/// Journals a vote and pushes the vote action, or abstains: the
/// write-ahead voting rule as a helper. Returns `true` if the vote was
/// journaled and pushed; on journal failure pushes a
/// [`Note::VoteWithheld`] instead and returns `false`.
pub fn journal_vote_or_abstain(
    journal: Option<&mut SafetyJournal>,
    meta: &BlockMeta,
    phase: Phase,
    vote: Action,
    out: &mut Vec<Action>,
) -> bool {
    if let Some(journal) = journal {
        if journal.log_last_voted(meta).is_err() {
            out.push(Action::Note(Note::VoteWithheld { phase }));
            return false;
        }
    }
    out.push(vote);
    true
}

fn gen_file(gen: u64) -> String {
    format!("{JOURNAL_FILE}.{gen}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use marlin_types::{BlockId, BlockKind, Height, QcSeed};

    fn meta(view: u64, height: u64, rank_boost: bool) -> BlockMeta {
        BlockMeta {
            id: BlockId::from_digest(marlin_crypto::sha256(&[view as u8, height as u8, 7])),
            view: View(view),
            height: Height(height),
            pview: View(view.saturating_sub(1)),
            kind: BlockKind::Normal,
            rank_boost,
        }
    }

    fn qc(phase: Phase, view: u64, height: u64) -> Qc {
        let seed = QcSeed {
            phase,
            view: View(view),
            block: BlockId::from_digest(marlin_crypto::sha256(&[view as u8, height as u8])),
            height: Height(height),
            block_view: View(view),
            pview: View(view.saturating_sub(1)),
            block_kind: BlockKind::Normal,
        };
        Qc::new(seed, *Qc::genesis(BlockId::GENESIS).sig())
    }

    #[test]
    fn records_round_trip() {
        let recs = [
            JournalRecord::EnteredView(View(9)),
            JournalRecord::LastVoted(meta(3, 4, true)),
            JournalRecord::Lock(qc(Phase::Prepare, 3, 4)),
            JournalRecord::HighQc(Justify::None),
            JournalRecord::HighQc(Justify::One(qc(Phase::Prepare, 2, 2))),
            JournalRecord::HighQc(Justify::Two(
                qc(Phase::PrePrepare, 4, 5),
                qc(Phase::Prepare, 3, 4),
            )),
            JournalRecord::Snapshot(SafetySnapshot {
                view: View(5),
                last_voted: meta(5, 6, false),
                locked_qc: Some(qc(Phase::Prepare, 4, 5)),
                high_qc: Justify::One(qc(Phase::Prepare, 4, 5)),
            }),
            JournalRecord::Snapshot(SafetySnapshot::genesis()),
        ];
        for rec in recs {
            let enc = encode_record(&rec);
            assert_eq!(decode_record(&enc), Some(rec.clone()), "{rec:?}");
        }
        assert_eq!(decode_record(&[]), None);
        assert_eq!(decode_record(&[99]), None);
    }

    #[test]
    fn take_io_reports_appends_and_drains() {
        let disk = SharedDisk::new();
        let mut j = SafetyJournal::open(disk).unwrap();
        assert_eq!(j.take_io(), JournalIo::default());

        j.log_view(View(1)).unwrap();
        j.log_last_voted(&meta(1, 1, false)).unwrap();
        let io = j.take_io();
        assert_eq!(io.appends, 2);
        // Each append is charged its payload plus 8 bytes WAL framing.
        assert!(io.bytes > 16);
        assert!(io.cost_ns > 0);

        // Drained: a second take reports nothing.
        assert_eq!(j.take_io(), JournalIo::default());

        // A no-op fold (stale view) skips the disk and is not charged.
        j.log_view(View(1)).unwrap();
        assert_eq!(j.take_io(), JournalIo::default());
    }

    #[test]
    fn open_append_reopen_recovers_state() {
        let disk = SharedDisk::new();
        let mut j = SafetyJournal::open(disk.clone()).unwrap();
        assert_eq!(*j.state(), SafetySnapshot::genesis());
        j.log_view(View(1)).unwrap();
        j.log_last_voted(&meta(1, 1, false)).unwrap();
        j.log_lock(&qc(Phase::Prepare, 1, 1)).unwrap();
        j.log_high_qc(&Justify::One(qc(Phase::Prepare, 1, 1)))
            .unwrap();
        let expected = *j.state();
        // Power loss: unsynced data is lost, but every append synced.
        disk.crash();
        let j2 = SafetyJournal::open(disk).unwrap();
        assert_eq!(*j2.state(), expected);
        assert_eq!(j2.state().view, View(1));
        assert_eq!(j2.state().last_voted.height, Height(1));
    }

    #[test]
    fn replay_is_monotone_under_stale_records() {
        let mut s = SafetySnapshot::genesis();
        s.apply(&JournalRecord::EnteredView(View(5)));
        s.apply(&JournalRecord::EnteredView(View(3))); // stale
        assert_eq!(s.view, View(5));
        s.apply(&JournalRecord::Lock(qc(Phase::Prepare, 4, 4)));
        s.apply(&JournalRecord::Lock(qc(Phase::Prepare, 2, 9))); // lower rank
        assert_eq!(s.locked_qc.unwrap().view(), View(4));
        s.apply(&JournalRecord::LastVoted(meta(4, 4, true)));
        s.apply(&JournalRecord::LastVoted(meta(3, 9, true))); // lower rank
        assert_eq!(s.last_voted.view, View(4));
    }

    #[test]
    fn torn_append_is_discarded_and_reported() {
        let disk = SharedDisk::new();
        let mut j = SafetyJournal::open(disk.clone()).unwrap();
        j.log_last_voted(&meta(1, 1, false)).unwrap();
        disk.tear_next_write_after(5); // tears inside the 8-byte header
        assert!(j.log_last_voted(&meta(2, 2, false)).is_err());
        // The crashed-and-reopened journal sees only the intact record.
        disk.crash();
        let j2 = SafetyJournal::open(disk).unwrap();
        assert_eq!(j2.state().last_voted.view, View(1));
    }

    #[test]
    fn append_after_torn_tail_compacts_and_survives() {
        let disk = SharedDisk::new();
        let mut j = SafetyJournal::open(disk.clone()).unwrap();
        j.log_last_voted(&meta(1, 1, false)).unwrap();
        disk.tear_next_write_after(3);
        assert!(j.log_view(View(2)).is_err());
        // The journal heals by compacting to a new generation; later
        // appends are durable again.
        j.log_view(View(3)).unwrap();
        j.log_last_voted(&meta(3, 2, false)).unwrap();
        disk.crash();
        let j2 = SafetyJournal::open(disk).unwrap();
        assert_eq!(j2.state().view, View(3));
        assert_eq!(j2.state().last_voted.view, View(3));
    }

    #[test]
    fn snapshot_compaction_bounds_log_and_preserves_state() {
        let disk = SharedDisk::new();
        let mut j = SafetyJournal::open(disk.clone()).unwrap();
        for i in 1..=(3 * SNAPSHOT_EVERY as u64) {
            j.log_view(View(i)).unwrap();
        }
        let expected = *j.state();
        // At most one generation file exists, holding well under
        // SNAPSHOT_EVERY + 1 records' worth of bytes.
        let files = disk.list().unwrap();
        let journal_files: Vec<_> = files
            .iter()
            .filter(|f| f.starts_with(JOURNAL_FILE))
            .collect();
        assert_eq!(journal_files.len(), 1, "{journal_files:?}");
        disk.crash();
        let j2 = SafetyJournal::open(disk).unwrap();
        assert_eq!(j2.state(), &expected);
        assert_eq!(j2.state().view.0, 3 * SNAPSHOT_EVERY as u64);
    }

    #[test]
    fn torn_newest_generation_falls_back_to_old_one() {
        let disk = SharedDisk::new();
        let mut j = SafetyJournal::open(disk.clone()).unwrap();
        for i in 1..SNAPSHOT_EVERY as u64 {
            j.log_view(View(i)).unwrap();
        }
        // Simulate a crash mid-compaction: a newer generation exists on
        // disk but holds only a torn fragment of its snapshot record.
        let mut d = disk.clone();
        d.append(&gen_file(1), &[9, 9, 9]).unwrap();
        d.sync().unwrap();
        disk.crash();
        let j2 = SafetyJournal::open(disk.clone()).unwrap();
        // Recovery fell back to the intact old generation and removed
        // the straggler.
        assert_eq!(j2.state().view.0, SNAPSHOT_EVERY as u64 - 1);
        assert!(!disk.exists(&gen_file(1)));
    }

    #[test]
    fn appends_after_reopening_onto_a_torn_tail_survive() {
        // Found by the journal property test: a torn append leaves
        // durable garbage at the log tail; if a reopen then keeps
        // appending to the same generation, replay stops at the garbage
        // and everything after it — acknowledged records included — is
        // silently lost. Reopen must treat the surviving tail as torn.
        let disk = SharedDisk::new();
        let mut j = SafetyJournal::open(disk.clone()).unwrap();
        j.log_lock(&qc(Phase::Prepare, 1, 1)).unwrap();
        disk.tear_next_write_after(12); // durable 12-byte fragment
        assert!(j.log_view(View(2)).is_err());
        disk.crash();
        let mut j2 = SafetyJournal::open(disk.clone()).unwrap();
        assert_eq!(j2.state().locked_qc.unwrap().view(), View(1));
        // These appends must not hide behind the surviving fragment.
        j2.log_lock(&qc(Phase::Prepare, 3, 3)).unwrap();
        j2.log_view(View(4)).unwrap();
        disk.crash();
        let j3 = SafetyJournal::open(disk).unwrap();
        assert_eq!(j3.state().locked_qc.unwrap().view(), View(3));
        assert_eq!(j3.state().view, View(4));
    }

    #[test]
    fn retried_compaction_truncates_the_torn_target() {
        // Also property-test fallout: if the snapshot write of a
        // compaction tears, the retry must truncate the partial target
        // file rather than append the snapshot after the fragment.
        let disk = SharedDisk::new();
        let mut j = SafetyJournal::open(disk.clone()).unwrap();
        j.log_lock(&qc(Phase::Prepare, 2, 2)).unwrap();
        // First tear marks the tail torn; the next append compacts, and
        // the second tear hits that compaction's snapshot write.
        disk.tear_next_write_after(3);
        assert!(j.log_view(View(3)).is_err());
        disk.tear_next_write_after(3);
        assert!(j.log_view(View(4)).is_err());
        // The retried compaction must start the new generation clean.
        j.log_view(View(5)).unwrap();
        disk.crash();
        let j2 = SafetyJournal::open(disk).unwrap();
        assert_eq!(j2.state().locked_qc.unwrap().view(), View(2));
        assert_eq!(j2.state().view, View(5));
    }

    #[test]
    fn gc_below_drops_stale_history_and_preserves_state() {
        let disk = SharedDisk::new();
        let mut j = SafetyJournal::open(disk.clone()).unwrap();
        j.log_view(View(1)).unwrap();
        j.log_last_voted(&meta(1, 1, false)).unwrap();
        j.log_lock(&qc(Phase::Prepare, 1, 1)).unwrap();
        // Horizon at the generation's lowest height: nothing is wholly
        // below it yet.
        assert!(!j.gc_below(Height(1)).unwrap());
        // Horizon above it: history folds into a fresh generation.
        let before = *j.state();
        assert!(j.gc_below(Height(10)).unwrap());
        assert_eq!(*j.state(), before);
        // Quiesces until new prunable records land.
        assert!(!j.gc_below(Height(10)).unwrap());
        j.log_last_voted(&meta(2, 12, false)).unwrap();
        assert!(!j.gc_below(Height(10)).unwrap()); // 12 >= horizon
        assert!(j.gc_below(Height(20)).unwrap());
        disk.crash();
        let j2 = SafetyJournal::open(disk).unwrap();
        assert_eq!(j2.state().last_voted.height, Height(12));
        assert_eq!(j2.state().view, before.view);
        assert_eq!(j2.state().locked_qc, before.locked_qc);
    }

    #[test]
    fn gc_low_height_is_recovered_across_reopen() {
        let disk = SharedDisk::new();
        let mut j = SafetyJournal::open(disk.clone()).unwrap();
        j.log_last_voted(&meta(1, 5, false)).unwrap();
        disk.crash();
        let mut j2 = SafetyJournal::open(disk.clone()).unwrap();
        // The reopened generation still pins height 5; a horizon above
        // it collects, one at or below it does not.
        assert!(!j2.gc_below(Height(5)).unwrap());
        assert!(j2.gc_below(Height(9)).unwrap());
        assert!(!j2.gc_below(Height(9)).unwrap());
        // Only one (fresh) generation remains on disk.
        let journal_files: Vec<String> = disk
            .list()
            .unwrap()
            .into_iter()
            .filter(|f| f.starts_with(JOURNAL_FILE))
            .collect();
        assert_eq!(journal_files.len(), 1, "{journal_files:?}");
    }

    #[test]
    fn vote_helper_abstains_on_journal_failure() {
        let disk = SharedDisk::new();
        let mut j = SafetyJournal::open(disk.clone()).unwrap();
        let vote = Action::Note(Note::HappyPathVc { view: View(1) }); // stand-in action
        let mut out = Vec::new();
        assert!(journal_vote_or_abstain(
            Some(&mut j),
            &meta(1, 1, false),
            Phase::Prepare,
            vote.clone(),
            &mut out
        ));
        assert_eq!(out.len(), 1);
        disk.tear_next_write_after(0);
        let mut out2 = Vec::new();
        assert!(!journal_vote_or_abstain(
            Some(&mut j),
            &meta(2, 2, false),
            Phase::Commit,
            vote,
            &mut out2
        ));
        assert!(matches!(
            out2[0],
            Action::Note(Note::VoteWithheld {
                phase: Phase::Commit
            })
        ));
    }
}
