//! The paper's "half-baked attempt" (Section IV-D), implemented as an
//! ablation: Marlin's replica-voted pre-prepare phase **without virtual
//! blocks**.
//!
//! The new leader broadcasts a single pre-prepare proposal extending its
//! highest `prepareQC`. A replica locked on a *higher* `prepareQC`
//! cannot vote; instead it NACKs with that QC, and the leader restarts
//! the pre-prepare phase extending it (the paper's "Case 2"). Because a
//! `pre-prepareQC` may therefore fail to form on the first try, the
//! block that finally emerges must commit through **three** more phases
//! (prepare → pre-commit → commit) to stay live across successive view
//! changes — a four-phase view change in total.
//!
//! The paper rejects this design: it is linear, but its view change is
//! *slower than HotStuff's*. Marlin's virtual block removes the wasted
//! round: the leader proposes both possible futures at once, and two of
//! the four phases disappear. This module exists so the claim can be
//! measured (`eval -- ablate-four-phase`); its normal case is identical
//! to Marlin's.

use crate::config::Config;
use crate::events::{Action, Event, Note, StepOutput, VcCase};
use crate::util::{Base, Protocol};
use crate::votes::VoteCollector;
use marlin_types::rank::{block_rank_gt, qc_rank_cmp, qc_rank_ge};
use marlin_types::{
    Block, BlockId, BlockMeta, BlockStore, Decide, Justify, Message, MsgBody, Phase, Proposal, Qc,
    QcSeed, ReplicaId, View, ViewChange, Vote,
};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Per-view leader state for the NACK-and-restart pre-prepare phase.
#[derive(Clone, Debug, Default)]
struct VcRound {
    msgs: HashMap<ReplicaId, ViewChange>,
    decided: bool,
    /// The block currently proposed in pre-prepare.
    candidate: Option<BlockId>,
    /// Set once a pre-prepareQC formed and the leader moved on.
    advanced: bool,
}

/// A replica running the four-phase ablation protocol.
#[derive(Clone, Debug)]
pub struct MarlinFourPhase {
    base: Base,
    lb: BlockMeta,
    locked_qc: Option<Qc>,
    /// Highest known `prepareQC` (reported in view changes).
    high_qc: Qc,
    votes: VoteCollector,
    in_flight: Option<BlockId>,
    /// Whether the in-flight block is the post-view-change recovery
    /// block (which must run the long three-phase commit).
    recovering: bool,
    vc_rounds: HashMap<View, VcRound>,
}

impl MarlinFourPhase {
    /// Creates a replica in the pre-start state.
    pub fn new(config: Config) -> Self {
        MarlinFourPhase {
            base: Base::new(config),
            lb: BlockMeta::genesis(),
            locked_qc: None,
            high_qc: Qc::genesis(BlockId::GENESIS),
            votes: VoteCollector::new(),
            in_flight: None,
            recovering: false,
            vc_rounds: HashMap::new(),
        }
    }

    /// The current lock, if any.
    pub fn locked_qc(&self) -> Option<&Qc> {
        self.locked_qc.as_ref()
    }

    fn cfg(&self) -> &Config {
        &self.base.cfg
    }

    fn raise_lock(&mut self, qc: &Qc) {
        let higher = match &self.locked_qc {
            None => true,
            Some(cur) => qc_rank_cmp(qc, cur) == Ordering::Greater,
        };
        if higher {
            self.locked_qc = Some(*qc);
        }
    }

    fn raise_high(&mut self, qc: &Qc) {
        if qc_rank_cmp(qc, &self.high_qc) == Ordering::Greater {
            self.high_qc = *qc;
        }
    }

    fn enter_view(&mut self, view: View, out: &mut StepOutput) {
        self.votes.clear();
        self.in_flight = None;
        self.recovering = false;
        let drained = self.base.enter_view(view, out);
        self.vc_rounds.retain(|v, _| *v >= view);
        for msg in drained {
            let sub = self.on_event(Event::Message(msg));
            out.merge(sub);
        }
    }

    fn start_view_change(&mut self, target: View, out: &mut StepOutput) {
        out.actions.push(Action::Note(Note::ViewChangeStarted {
            from_view: self.base.cview,
        }));
        self.enter_view(target, out);
        let parsig = self
            .base
            .crypto
            .sign_seed(&ViewChange::happy_seed(&self.lb, target));
        out.actions.push(Action::Send {
            to: self.cfg().leader_of(target),
            message: Message::new(
                self.cfg().id,
                target,
                MsgBody::ViewChange(ViewChange {
                    last_voted: self.lb,
                    high_qc: Justify::One(self.high_qc),
                    parsig,
                    cert: None,
                }),
            ),
        });
    }

    /// Normal-case proposal (identical to Marlin's Case N1).
    fn propose(&mut self, out: &mut StepOutput) {
        let view = self.base.cview;
        if self.in_flight.is_some() {
            return;
        }
        let qc = self.high_qc;
        if !qc.is_genesis() && qc.view() != view {
            return; // view change not complete yet
        }
        let batch = self.base.take_batch();
        let block = Block::new_normal(
            qc.block(),
            qc.block_view(),
            view,
            qc.height().next(),
            batch,
            Justify::One(qc),
        );
        self.base.store_block(&block);
        self.in_flight = Some(block.id());
        self.recovering = false;
        out.actions.push(Action::Note(Note::Proposed {
            view,
            height: block.height(),
            phase: Phase::Prepare,
        }));
        out.actions.push(Action::Broadcast {
            message: Message::new(
                self.cfg().id,
                view,
                MsgBody::Proposal(Proposal {
                    phase: Phase::Prepare,
                    blocks: vec![block],
                    justify: Justify::One(qc),
                    vc_proof: Vec::new(),
                }),
            ),
        });
    }

    /// View-change pre-prepare proposal extending `qc`.
    fn propose_pre_prepare(&mut self, qc: Qc, out: &mut StepOutput) {
        let view = self.base.cview;
        let batch = self.base.take_batch();
        let block = Block::new_normal(
            qc.block(),
            qc.block_view(),
            view,
            qc.height().next(),
            batch,
            Justify::One(qc),
        );
        self.base.store_block(&block);
        let round = self.vc_rounds.entry(view).or_default();
        round.candidate = Some(block.id());
        out.actions.push(Action::Note(Note::Proposed {
            view,
            height: block.height(),
            phase: Phase::PrePrepare,
        }));
        out.actions.push(Action::Broadcast {
            message: Message::new(
                self.cfg().id,
                view,
                MsgBody::Proposal(Proposal {
                    phase: Phase::PrePrepare,
                    blocks: vec![block],
                    justify: Justify::One(qc),
                    vc_proof: Vec::new(),
                }),
            ),
        });
    }

    fn on_message(&mut self, msg: Message, out: &mut StepOutput) {
        if self.base.handle_fetch(&msg, out) {
            return;
        }
        if self.base.handle_sync(&msg, out) {
            return;
        }
        if let MsgBody::Decide(d) = &msg.body {
            self.on_decide(*d, msg.from, out);
            return;
        }
        if msg.view > self.base.cview {
            self.base.buffer_future(msg);
            if let Some(target) = self.base.future_view_change_senders(self.cfg().f + 1) {
                if target > self.base.cview {
                    self.start_view_change(target, out);
                }
            }
            return;
        }
        if msg.view < self.base.cview {
            return;
        }
        match msg.body {
            MsgBody::Proposal(p) => match p.phase {
                Phase::PrePrepare => self.on_pre_prepare(msg.from, msg.view, p, out),
                Phase::Prepare => self.on_prepare(msg.from, msg.view, p, out),
                Phase::PreCommit | Phase::Commit => {
                    self.on_phase_broadcast(msg.from, msg.view, p, out)
                }
            },
            MsgBody::Vote(v) => self.on_vote(v, out),
            MsgBody::ViewChange(vc) => self.on_view_change(msg.from, msg.view, vc, out),
            _ => {}
        }
    }

    /// Replica: vote for the pre-prepare candidate, or NACK with a
    /// higher lock.
    fn on_pre_prepare(&mut self, from: ReplicaId, view: View, p: Proposal, out: &mut StepOutput) {
        if from != self.cfg().leader_of(view) || p.blocks.len() != 1 {
            return;
        }
        let block = &p.blocks[0];
        let Justify::One(qc) = p.justify else { return };
        let structural = block.view() == view
            && qc.phase() == Phase::Prepare
            && qc.view() < view
            && block.parent_id() == Some(qc.block())
            && block.height() == qc.height().next()
            && block.pview() == qc.block_view()
            && self.base.crypto.verify_qc(&qc);
        if !structural {
            return;
        }
        let seed = block.vote_seed(Phase::PrePrepare, view);
        if qc_rank_ge(&qc, self.locked_qc.as_ref()) {
            // "Yes" — contribute to the pre-prepareQC.
            self.base.store_block(block);
            let parsig = self.base.crypto.sign_seed(&seed);
            out.actions.push(Action::Send {
                to: from,
                message: Message::new(
                    self.cfg().id,
                    view,
                    MsgBody::Vote(Vote {
                        seed,
                        parsig,
                        locked_qc: None,
                    }),
                ),
            });
        } else {
            // NACK: report the higher prepareQC so the leader restarts.
            let parsig = self.base.crypto.sign_seed(&seed);
            out.actions.push(Action::Send {
                to: from,
                message: Message::new(
                    self.cfg().id,
                    view,
                    MsgBody::Vote(Vote {
                        seed,
                        parsig,
                        locked_qc: self.locked_qc,
                    }),
                ),
            });
        }
        self.base.progress_timer(out);
    }

    /// Replica: the recovery block's PREPARE (justify is the fresh
    /// pre-prepareQC).
    fn on_prepare(&mut self, from: ReplicaId, view: View, p: Proposal, out: &mut StepOutput) {
        if from != self.cfg().leader_of(view) || p.blocks.len() != 1 {
            return;
        }
        let block = &p.blocks[0];
        if block.view() != view || !block_rank_gt(&block.meta(), &self.lb) {
            return;
        }
        let Justify::One(qc) = p.justify else { return };
        if !self.base.crypto.verify_qc(&qc) {
            return;
        }
        let valid = match qc.phase() {
            // Normal case (Marlin N1).
            Phase::Prepare => {
                block.parent_id() == Some(qc.block())
                    && block.height() == qc.height().next()
                    && block.pview() == qc.block_view()
                    && (qc.is_genesis() || qc.view() == view)
                    && qc_rank_ge(&qc, self.locked_qc.as_ref())
            }
            // Recovery case: the pre-prepareQC certifies this block.
            Phase::PrePrepare => {
                block.id() == qc.block()
                    && qc.view() == view
                    && qc_rank_ge(&qc, self.locked_qc.as_ref())
            }
            _ => false,
        };
        if !valid {
            return;
        }
        self.base.store_block(block);
        let seed = block.vote_seed(Phase::Prepare, view);
        let parsig = self.base.crypto.sign_seed(&seed);
        out.actions.push(Action::Send {
            to: from,
            message: Message::new(
                self.cfg().id,
                view,
                MsgBody::Vote(Vote {
                    seed,
                    parsig,
                    locked_qc: None,
                }),
            ),
        });
        self.lb = block.meta();
        if qc.phase() == Phase::Prepare {
            self.raise_high(&qc);
            self.raise_lock(&qc);
        }
        self.base.progress_timer(out);
    }

    /// Replica: PRE-COMMIT (recovery path) and COMMIT broadcasts.
    fn on_phase_broadcast(
        &mut self,
        from: ReplicaId,
        view: View,
        p: Proposal,
        out: &mut StepOutput,
    ) {
        if from != self.cfg().leader_of(view) {
            return;
        }
        let Justify::One(qc) = p.justify else { return };
        let ok = match p.phase {
            // Recovery path: PRE-COMMIT carries the prepareQC.
            Phase::PreCommit => qc.phase() == Phase::Prepare,
            // COMMIT carries a prepareQC (short path) or precommitQC
            // (recovery path).
            Phase::Commit => matches!(qc.phase(), Phase::Prepare | Phase::PreCommit),
            _ => false,
        };
        if !ok || qc.view() != view || !self.base.crypto.verify_qc(&qc) {
            return;
        }
        let seed = QcSeed {
            phase: p.phase,
            ..*qc.seed()
        };
        let parsig = self.base.crypto.sign_seed(&seed);
        out.actions.push(Action::Send {
            to: from,
            message: Message::new(
                self.cfg().id,
                view,
                MsgBody::Vote(Vote {
                    seed,
                    parsig,
                    locked_qc: None,
                }),
            ),
        });
        match (p.phase, qc.phase()) {
            (Phase::PreCommit, _) => self.raise_high(&qc),
            (Phase::Commit, Phase::Prepare) => {
                self.raise_high(&qc);
                self.raise_lock(&qc);
            }
            (Phase::Commit, _) => self.raise_lock(&qc),
            _ => {}
        }
        self.base.progress_timer(out);
    }

    /// Leader: vote aggregation for all phases.
    fn on_vote(&mut self, v: Vote, out: &mut StepOutput) {
        let view = self.base.cview;
        if v.seed.view != view || !self.cfg().is_leader(view) {
            return;
        }
        // A NACK restarts the pre-prepare phase from the higher QC
        // ("Case 2" of the half-baked design).
        if v.seed.phase == Phase::PrePrepare {
            if let Some(higher) = v.locked_qc {
                let round = self.vc_rounds.entry(view).or_default();
                if !round.advanced
                    && higher.phase() == Phase::Prepare
                    && qc_rank_cmp(&higher, &self.high_qc) == Ordering::Greater
                    && self.base.crypto.verify_qc(&higher)
                {
                    self.raise_high(&higher);
                    self.votes.clear();
                    self.propose_pre_prepare(higher, out);
                    return;
                }
            }
            let round = self.vc_rounds.entry(view).or_default();
            if round.advanced || round.candidate != Some(v.seed.block) {
                return;
            }
        } else if Some(v.seed.block) != self.in_flight {
            return;
        }
        let quorum = self.cfg().quorum();
        let Some(qc) =
            crate::votes::add_vote_noted(&mut self.votes, &v, quorum, &mut self.base.crypto, out)
        else {
            return;
        };
        out.actions.push(Action::Note(Note::QcFormed {
            phase: qc.phase(),
            view: qc.view(),
            height: qc.height(),
        }));
        match qc.phase() {
            Phase::PrePrepare => {
                let round = self.vc_rounds.entry(view).or_default();
                round.advanced = true;
                self.in_flight = Some(qc.block());
                self.recovering = true;
                let Some(block) = self.base.store.get(&qc.block()).cloned() else {
                    return;
                };
                out.actions.push(Action::Broadcast {
                    message: Message::new(
                        self.cfg().id,
                        view,
                        MsgBody::Proposal(Proposal {
                            phase: Phase::Prepare,
                            blocks: vec![block],
                            justify: Justify::One(qc),
                            vc_proof: Vec::new(),
                        }),
                    ),
                });
            }
            Phase::Prepare => {
                self.raise_high(&qc);
                // Recovery blocks take the long path (pre-commit);
                // normal blocks go straight to commit.
                let phase = if self.recovering {
                    Phase::PreCommit
                } else {
                    Phase::Commit
                };
                out.actions.push(Action::Broadcast {
                    message: Message::new(
                        self.cfg().id,
                        view,
                        MsgBody::Proposal(Proposal {
                            phase,
                            blocks: Vec::new(),
                            justify: Justify::One(qc),
                            vc_proof: Vec::new(),
                        }),
                    ),
                });
            }
            Phase::PreCommit => {
                out.actions.push(Action::Broadcast {
                    message: Message::new(
                        self.cfg().id,
                        view,
                        MsgBody::Proposal(Proposal {
                            phase: Phase::Commit,
                            blocks: Vec::new(),
                            justify: Justify::One(qc),
                            vc_proof: Vec::new(),
                        }),
                    ),
                });
            }
            Phase::Commit => {
                self.in_flight = None;
                self.recovering = false;
                out.actions.push(Action::Broadcast {
                    message: Message::new(
                        self.cfg().id,
                        view,
                        MsgBody::Decide(Decide { commit_qc: qc }),
                    ),
                });
                if self.base.mempool.is_empty() {
                    out.actions.push(Action::SetHeartbeat {
                        delay_ns: self.base.cfg.base_timeout_ns / 4,
                    });
                } else {
                    self.propose(out);
                }
            }
        }
    }

    fn on_decide(&mut self, d: Decide, from: ReplicaId, out: &mut StepOutput) {
        let qc = d.commit_qc;
        if qc.phase() != Phase::Commit || !self.base.crypto.verify_qc(&qc) {
            return;
        }
        if qc.view() > self.base.cview {
            self.enter_view(qc.view(), out);
        }
        self.base.try_commit(qc, from, out);
    }

    fn on_view_change(
        &mut self,
        from: ReplicaId,
        view: View,
        vc: ViewChange,
        out: &mut StepOutput,
    ) {
        if !self.cfg().is_leader(view) {
            return;
        }
        let quorum = self.cfg().quorum();
        let round = self.vc_rounds.entry(view).or_default();
        if round.decided {
            return;
        }
        round.msgs.insert(from, vc);
        if round.msgs.len() < quorum {
            return;
        }
        round.decided = true;
        let msgs = round.msgs.clone();
        let mut best: Option<Qc> = None;
        for m in msgs.values() {
            if let Some(qc) = m.high_qc.qc() {
                if qc.phase() == Phase::Prepare
                    && self.base.crypto.verify_qc(qc)
                    && best
                        .as_ref()
                        .is_none_or(|b| qc_rank_cmp(qc, b) == Ordering::Greater)
                {
                    best = Some(*qc);
                }
            }
        }
        if let Some(qc) = best {
            out.actions.push(Action::Note(Note::UnhappyPathVc {
                view,
                case: VcCase::V2,
            }));
            self.raise_high(&qc);
            self.propose_pre_prepare(qc, out);
        }
    }
}

impl Protocol for MarlinFourPhase {
    fn config(&self) -> &Config {
        &self.base.cfg
    }

    fn current_view(&self) -> View {
        self.base.cview
    }

    fn store(&self) -> &BlockStore {
        &self.base.store
    }

    fn mempool_len(&self) -> usize {
        self.base.mempool.len()
    }

    fn maintain_crypto(&mut self, max_verified: usize) -> crate::CryptoCacheStats {
        self.base.maintain_crypto(max_verified)
    }

    fn locked_qc(&self) -> Option<&Qc> {
        self.locked_qc.as_ref()
    }

    fn name(&self) -> &'static str {
        "marlin-four-phase"
    }

    fn on_event(&mut self, event: Event) -> StepOutput {
        let mut out = StepOutput::empty();
        match event {
            Event::Start => {
                if self.base.cview == View::GENESIS {
                    self.enter_view(View(1), &mut out);
                    if self.cfg().is_leader(View(1)) {
                        self.propose(&mut out);
                    }
                }
            }
            Event::Message(msg) => self.on_message(msg, &mut out),
            Event::Timeout { view } => {
                if view == self.base.cview {
                    self.start_view_change(view.next(), &mut out);
                }
            }
            Event::NewTransactions(txs) => {
                self.base.add_transactions(txs, &mut out);
                if self.cfg().is_leader(self.base.cview) && self.in_flight.is_none() {
                    self.propose(&mut out);
                }
            }
            Event::Heartbeat => {
                if self.cfg().is_leader(self.base.cview) && self.in_flight.is_none() {
                    if self.base.mempool.is_empty() {
                        out.actions.push(Action::SetHeartbeat {
                            delay_ns: self.base.cfg.base_timeout_ns / 4,
                        });
                    }
                    self.propose(&mut out);
                }
            }
            Event::Recovered => {
                // Pre-crash timers died with the process: re-arm the view
                // timer so the replica can time out of a stale view.
                out.actions.push(Action::SetTimer {
                    view: self.base.cview,
                    delay_ns: self.base.pacemaker.delay_for(self.base.cview),
                });
            }
        }
        self.base.finish(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Cluster;
    use crate::ProtocolKind;

    const P0: ReplicaId = ReplicaId(0);
    const P1: ReplicaId = ReplicaId(1);
    const P2: ReplicaId = ReplicaId(2);

    #[test]
    fn normal_case_commits() {
        let mut cl = Cluster::new(ProtocolKind::MarlinFourPhase, Config::for_test(4, 1), 1);
        cl.submit_to(P1, 30, 150);
        cl.run_until_idle();
        cl.assert_consistent();
        assert_eq!(cl.total_committed_txs(P0), 30);
    }

    #[test]
    fn view_change_takes_four_phases() {
        let mut cl = Cluster::new(ProtocolKind::MarlinFourPhase, Config::for_test(4, 1), 2);
        cl.submit_to(P1, 10, 0);
        cl.run_until_idle();
        cl.crash(P1);
        while cl.min_view() < View(2) {
            assert!(cl.fire_next_timer());
        }
        cl.run_until_idle();
        // The recovery block forms all four QCs.
        let phases: Vec<Phase> = cl
            .notes()
            .iter()
            .filter_map(|(p, n)| match n {
                Note::QcFormed {
                    phase,
                    view: View(2),
                    ..
                } if *p == P2 => Some(*phase),
                _ => None,
            })
            .collect();
        assert!(phases.contains(&Phase::PrePrepare), "phases: {phases:?}");
        assert!(phases.contains(&Phase::Prepare));
        assert!(phases.contains(&Phase::PreCommit));
        assert!(phases.contains(&Phase::Commit));
        // Progress continues.
        cl.submit_to(P2, 10, 0);
        cl.run_until_idle();
        cl.assert_consistent();
        assert_eq!(cl.total_committed_txs(P0), 20);
    }

    #[test]
    fn nack_restart_unlocks_hidden_qc() {
        // The Fig. 2 situation: p0 locked on a hidden prepareQC. The
        // four-phase leader proposes from the stale QC, p0 NACKs with
        // its lock, and the leader restarts from it — liveness holds,
        // at the cost of the extra round trips.
        let mut cl = Cluster::new(ProtocolKind::MarlinFourPhase, Config::for_test(4, 1), 3);
        cl.submit_to(P1, 10, 0);
        cl.run_until_idle();
        let contested = cl.committed_height(P0) as u64 + 1;
        cl.set_filter(Box::new(move |_f, to, msg: &Message| match &msg.body {
            MsgBody::Proposal(p) if p.phase == Phase::Prepare => {
                !(p.blocks.first().is_some_and(|b| b.height().0 == contested) && to == P2)
            }
            MsgBody::Proposal(p) if p.phase == Phase::Commit => {
                p.justify.qc().is_none_or(|qc| qc.height().0 != contested) || to == P0
            }
            _ => true,
        }));
        cl.submit_to(P1, 10, 0);
        cl.run_until_idle();
        cl.crash(P1);
        // Unsafe snapshot: p0's VIEW-CHANGE never reaches the leader.
        cl.set_filter(Box::new(|from, _to, msg: &Message| {
            !(from == P0 && matches!(msg.body, MsgBody::ViewChange(_)))
        }));
        while cl.min_view() < View(2) {
            assert!(cl.fire_next_timer());
        }
        cl.run_until_idle();
        cl.clear_filter();
        // Inject a stale Byzantine VIEW-CHANGE to complete the quorum.
        let cfg = Config::for_test(4, 1);
        let stale = cl.committed_blocks(P0).last().expect("committed").clone();
        let seed = stale.vote_seed(Phase::Prepare, View(1));
        let partials: Vec<_> = (0..3)
            .map(|i| cfg.keys.signer(i).sign_partial(&seed.signing_bytes()))
            .collect();
        let stale_qc = Qc::combine(
            seed,
            &partials,
            &cfg.keys,
            marlin_crypto::QcFormat::Threshold,
        )
        .unwrap();
        let parsig = cfg
            .keys
            .signer(1)
            .sign_partial(&ViewChange::happy_seed(&stale.meta(), View(2)).signing_bytes());
        cl.inject(
            P2,
            Message::new(
                ReplicaId(1),
                View(2),
                MsgBody::ViewChange(ViewChange {
                    last_voted: stale.meta(),
                    high_qc: Justify::One(stale_qc),
                    parsig,
                    cert: None,
                }),
            ),
        );
        cl.run_until_idle();
        // The NACK-restart recovered the contested block.
        cl.assert_consistent();
        assert!(
            cl.committed_blocks(P0)
                .iter()
                .any(|b| b.height().0 == contested),
            "contested block not recovered; heights: {:?}",
            cl.committed_blocks(P0)
                .iter()
                .map(|b| b.height().0)
                .collect::<Vec<_>>()
        );
        assert_eq!(cl.total_committed_txs(P0), 20);
    }
}
