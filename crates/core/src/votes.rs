//! Leader-side vote aggregation.

use crate::crypto_ctx::CryptoCtx;
use crate::events::{Action, Note, StepOutput};
use marlin_crypto::{PartialSig, SignerBitmap};
use marlin_types::{Qc, QcSeed, Vote};
use std::collections::HashMap;

/// Collects partial signatures per vote seed and forms a quorum
/// certificate when `n − f` distinct valid shares arrive.
///
/// Duplicate shares from one replica, shares failing verification, and
/// shares for already-certified seeds are dropped.
///
/// Two verification disciplines, selected by
/// [`CryptoCtx::batch_verify`]:
///
/// * **serial** (historical): each arriving share is verified
///   stand-alone before it counts;
/// * **batched**: shares are *staged* unverified and the whole stage is
///   verified in one amortized pass at the quorum-trigger point. A
///   failed batch falls back to per-signature identification, evicts
///   exactly the bad signers (they may retry with a correct share), and
///   keeps the good shares — so the formed certificate is identical to
///   the serial one, at a fraction of the verification cost.
#[derive(Clone, Debug, Default)]
pub struct VoteCollector {
    pending: HashMap<[u8; 32], Slot>,
}

#[derive(Clone, Debug)]
struct Slot {
    seed: QcSeed,
    partials: Vec<PartialSig>,
    /// Shares accepted for staging but not yet verified (batch mode
    /// only; always empty in serial mode).
    staged: Vec<PartialSig>,
    /// Signers contributing to `partials` or `staged`.
    seen: SignerBitmap,
    done: bool,
}

impl Slot {
    /// Verifies every staged share in one amortized batch. Good shares
    /// graduate to `partials`; bad signers are evicted from `seen` so a
    /// later correct share from them still counts.
    fn flush(&mut self, crypto: &mut CryptoCtx) {
        if self.staged.is_empty() {
            return;
        }
        match crypto.verify_partial_batch(&self.seed, &self.staged) {
            Ok(()) => self.partials.append(&mut self.staged),
            Err(bad) => {
                for (i, p) in self.staged.drain(..).enumerate() {
                    if bad.binary_search(&i).is_ok() {
                        self.seen.remove(p.signer());
                    } else {
                        self.partials.push(p);
                    }
                }
            }
        }
    }
}

impl VoteCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        VoteCollector::default()
    }

    /// Adds a vote share; returns the freshly formed certificate when
    /// this share completes a quorum (exactly once per seed).
    pub fn add(
        &mut self,
        seed: QcSeed,
        parsig: PartialSig,
        quorum: usize,
        crypto: &mut CryptoCtx,
    ) -> Option<Qc> {
        let key = crypto.seed_bytes(&seed);
        let slot = self.pending.entry(key).or_insert_with(|| Slot {
            seed,
            partials: Vec::new(),
            staged: Vec::new(),
            seen: SignerBitmap::empty(),
            done: false,
        });
        if slot.done || slot.seen.contains(parsig.signer()) {
            return None;
        }
        if crypto.batch_verify() {
            // A share naming an out-of-range signer can never verify;
            // reject it before it reaches the signer bitmap. (Serial
            // mode rejects these through verification itself.)
            if parsig.signer() >= crypto.n() {
                return None;
            }
            slot.seen.insert(parsig.signer());
            slot.staged.push(parsig);
            if slot.seen.count() >= quorum {
                slot.flush(crypto);
            }
        } else {
            if !crypto.verify_partial(&seed, &parsig) {
                return None;
            }
            slot.seen.insert(parsig.signer());
            slot.partials.push(parsig);
        }
        if slot.partials.len() >= quorum {
            slot.done = true;
            let qc = crypto.combine(slot.seed, &slot.partials);
            slot.partials.clear();
            return qc;
        }
        None
    }

    /// Number of valid shares collected so far for `seed`.
    pub fn count(&self, seed: &QcSeed) -> usize {
        self.pending
            .get(&seed.signing_bytes())
            .map_or(0, |s| s.seen.count())
    }

    /// Whether a certificate has already been formed for `seed`.
    pub fn is_done(&self, seed: &QcSeed) -> bool {
        self.pending
            .get(&seed.signing_bytes())
            .is_some_and(|s| s.done)
    }

    /// Drops all collection state (e.g. on view change).
    pub fn clear(&mut self) {
        self.pending.clear();
    }

    /// Number of distinct seeds being collected.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no collection is in progress.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// Adds a vote share to `votes`, emitting a [`Note::FirstVote`] when it
/// is the first *valid* share for its seed — the start of the vote→QC
/// aggregation window drivers measure. Returns the freshly formed
/// certificate, if any; the note always precedes the caller's
/// `QcFormed` note in the action stream.
pub fn add_vote_noted(
    votes: &mut VoteCollector,
    v: &Vote,
    quorum: usize,
    crypto: &mut CryptoCtx,
    out: &mut StepOutput,
) -> Option<Qc> {
    let first_before = votes.count(&v.seed) == 0;
    let formed = votes.add(v.seed, v.parsig, quorum, crypto);
    if first_before && votes.count(&v.seed) > 0 {
        out.actions.push(Action::Note(Note::FirstVote {
            view: v.seed.view,
            height: v.seed.height,
            phase: v.seed.phase,
        }));
    }
    formed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;
    use marlin_types::{BlockId, BlockKind, Height, Phase, View};

    fn seed(view: u64) -> QcSeed {
        QcSeed {
            phase: Phase::Prepare,
            view: View(view),
            block: BlockId::GENESIS,
            height: Height(1),
            block_view: View(view),
            pview: View(0),
            block_kind: BlockKind::Normal,
        }
    }

    fn setup() -> (Config, CryptoCtx, VoteCollector) {
        let cfg = Config::for_test(4, 1);
        let ctx = CryptoCtx::new(&cfg);
        (cfg, ctx, VoteCollector::new())
    }

    fn setup_batched() -> (Config, CryptoCtx, VoteCollector) {
        let mut cfg = Config::for_test(4, 1);
        cfg.batch_verify = true;
        let ctx = CryptoCtx::new(&cfg);
        (cfg, ctx, VoteCollector::new())
    }

    #[test]
    fn quorum_forms_exactly_once() {
        let (cfg, mut ctx, mut col) = setup();
        let s = seed(1);
        let mut formed = 0;
        for i in 0..4 {
            let p = cfg.keys.signer(i).sign_partial(&s.signing_bytes());
            if col.add(s, p, cfg.quorum(), &mut ctx).is_some() {
                formed += 1;
            }
        }
        assert_eq!(formed, 1);
        assert!(col.is_done(&s));
    }

    #[test]
    fn duplicates_do_not_count() {
        let (cfg, mut ctx, mut col) = setup();
        let s = seed(2);
        let p0 = cfg.keys.signer(0).sign_partial(&s.signing_bytes());
        for _ in 0..5 {
            assert!(col.add(s, p0, cfg.quorum(), &mut ctx).is_none());
        }
        assert_eq!(col.count(&s), 1);
    }

    #[test]
    fn invalid_shares_rejected() {
        let (cfg, mut ctx, mut col) = setup();
        let s = seed(3);
        let bad = cfg.keys.signer(0).sign_partial(b"wrong message");
        assert!(col.add(s, bad, cfg.quorum(), &mut ctx).is_none());
        assert_eq!(col.count(&s), 0);
    }

    #[test]
    fn independent_seeds_tracked_separately() {
        let (cfg, mut ctx, mut col) = setup();
        let (s1, s2) = (seed(4), seed(5));
        for i in 0..2 {
            let p = cfg.keys.signer(i).sign_partial(&s1.signing_bytes());
            col.add(s1, p, cfg.quorum(), &mut ctx);
        }
        let p = cfg.keys.signer(0).sign_partial(&s2.signing_bytes());
        col.add(s2, p, cfg.quorum(), &mut ctx);
        assert_eq!(col.count(&s1), 2);
        assert_eq!(col.count(&s2), 1);
        assert_eq!(col.len(), 2);
        col.clear();
        assert!(col.is_empty());
    }

    #[test]
    fn batched_quorum_forms_on_same_share_as_serial() {
        let (cfg, mut ctx, mut col) = setup_batched();
        let s = seed(7);
        for i in 0..2 {
            let p = cfg.keys.signer(i).sign_partial(&s.signing_bytes());
            assert!(col.add(s, p, cfg.quorum(), &mut ctx).is_none());
        }
        let p = cfg.keys.signer(2).sign_partial(&s.signing_bytes());
        let qc = col
            .add(s, p, cfg.quorum(), &mut ctx)
            .expect("third share completes the quorum, as in serial mode");
        assert!(qc.verify(&cfg.keys));
        assert!(col.is_done(&s));
    }

    #[test]
    fn batched_mode_charges_one_amortized_pass() {
        use marlin_crypto::{CostModel, CryptoOp};
        let (cfg, _, mut col) = setup_batched();
        let mut costed = cfg.clone();
        costed.cost = CostModel::ecdsa_like();
        let mut ctx = CryptoCtx::new(&costed);
        let s = seed(8);
        for i in 0..3 {
            let p = cfg.keys.signer(i).sign_partial(&s.signing_bytes());
            col.add(s, p, cfg.quorum(), &mut ctx);
        }
        let m = CostModel::ecdsa_like();
        let expected =
            m.cost(CryptoOp::VerifyBatch { sigs: 3 }) + m.cost(CryptoOp::Combine { shares: 3 });
        assert_eq!(ctx.take_charge(), expected);
        assert!(expected < 3 * m.cost(CryptoOp::Verify) + m.cost(CryptoOp::Combine { shares: 3 }));
    }

    #[test]
    fn batched_mode_evicts_bad_shares_and_recovers() {
        let (cfg, mut ctx, mut col) = setup_batched();
        let s = seed(9);
        // Signer 0 submits garbage; the batch at the quorum trigger
        // must identify and evict it without poisoning signers 1–2.
        let bad = cfg.keys.signer(0).sign_partial(b"wrong message");
        assert!(col.add(s, bad, cfg.quorum(), &mut ctx).is_none());
        for i in 1..3 {
            let p = cfg.keys.signer(i).sign_partial(&s.signing_bytes());
            assert!(col.add(s, p, cfg.quorum(), &mut ctx).is_none());
        }
        // After the failed flush only the two good shares count …
        assert_eq!(col.count(&s), 2);
        // … signer 0 may retry with a correct share …
        let retry = cfg.keys.signer(0).sign_partial(&s.signing_bytes());
        let qc = col
            .add(s, retry, cfg.quorum(), &mut ctx)
            .expect("retried share completes the quorum");
        assert!(qc.verify(&cfg.keys));
    }

    #[test]
    fn batched_mode_ignores_out_of_range_signers() {
        let (cfg, mut ctx, mut col) = setup_batched();
        let s = seed(10);
        let forged = PartialSig::from_parts(200, cfg.keys.signer(0).sign_partial(b"x").tag());
        assert!(col.add(s, forged, cfg.quorum(), &mut ctx).is_none());
        assert_eq!(col.count(&s), 0);
    }

    #[test]
    fn batched_and_serial_form_identical_certificates() {
        let (cfg, mut serial_ctx, mut serial_col) = setup();
        let (_, mut batch_ctx, mut batch_col) = setup_batched();
        let s = seed(11);
        let mut serial_qc = None;
        let mut batch_qc = None;
        for i in 0..3 {
            let p = cfg.keys.signer(i).sign_partial(&s.signing_bytes());
            serial_qc = serial_qc.or(serial_col.add(s, p, cfg.quorum(), &mut serial_ctx));
            batch_qc = batch_qc.or(batch_col.add(s, p, cfg.quorum(), &mut batch_ctx));
        }
        assert_eq!(serial_qc.unwrap(), batch_qc.unwrap());
    }

    #[test]
    fn formed_qc_verifies() {
        let (cfg, mut ctx, mut col) = setup();
        let s = seed(6);
        let mut qc = None;
        for i in 0..3 {
            let p = cfg.keys.signer(i).sign_partial(&s.signing_bytes());
            if let Some(formed) = col.add(s, p, cfg.quorum(), &mut ctx) {
                qc = Some(formed);
            }
        }
        let qc = qc.expect("quorum reached");
        assert!(qc.verify(&cfg.keys));
        assert_eq!(qc.view(), View(6));
    }
}
