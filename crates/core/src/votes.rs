//! Leader-side vote aggregation.

use crate::crypto_ctx::CryptoCtx;
use crate::events::{Action, Note, StepOutput};
use marlin_crypto::{PartialSig, SignerBitmap};
use marlin_types::{Qc, QcSeed, Vote};
use std::collections::HashMap;

/// Collects partial signatures per vote seed and forms a quorum
/// certificate when `n − f` distinct valid shares arrive.
///
/// Duplicate shares from one replica, shares failing verification, and
/// shares for already-certified seeds are dropped.
#[derive(Clone, Debug, Default)]
pub struct VoteCollector {
    pending: HashMap<[u8; 32], Slot>,
}

#[derive(Clone, Debug)]
struct Slot {
    seed: QcSeed,
    partials: Vec<PartialSig>,
    seen: SignerBitmap,
    done: bool,
}

impl VoteCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        VoteCollector::default()
    }

    /// Adds a vote share; returns the freshly formed certificate when
    /// this share completes a quorum (exactly once per seed).
    pub fn add(
        &mut self,
        seed: QcSeed,
        parsig: PartialSig,
        quorum: usize,
        crypto: &mut CryptoCtx,
    ) -> Option<Qc> {
        let key = crypto.seed_bytes(&seed);
        let slot = self.pending.entry(key).or_insert_with(|| Slot {
            seed,
            partials: Vec::new(),
            seen: SignerBitmap::empty(),
            done: false,
        });
        if slot.done || slot.seen.contains(parsig.signer()) {
            return None;
        }
        if !crypto.verify_partial(&seed, &parsig) {
            return None;
        }
        slot.seen.insert(parsig.signer());
        slot.partials.push(parsig);
        if slot.partials.len() >= quorum {
            slot.done = true;
            let qc = crypto.combine(slot.seed, &slot.partials);
            slot.partials.clear();
            return qc;
        }
        None
    }

    /// Number of valid shares collected so far for `seed`.
    pub fn count(&self, seed: &QcSeed) -> usize {
        self.pending
            .get(&seed.signing_bytes())
            .map_or(0, |s| s.seen.count())
    }

    /// Whether a certificate has already been formed for `seed`.
    pub fn is_done(&self, seed: &QcSeed) -> bool {
        self.pending
            .get(&seed.signing_bytes())
            .is_some_and(|s| s.done)
    }

    /// Drops all collection state (e.g. on view change).
    pub fn clear(&mut self) {
        self.pending.clear();
    }

    /// Number of distinct seeds being collected.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no collection is in progress.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// Adds a vote share to `votes`, emitting a [`Note::FirstVote`] when it
/// is the first *valid* share for its seed — the start of the vote→QC
/// aggregation window drivers measure. Returns the freshly formed
/// certificate, if any; the note always precedes the caller's
/// `QcFormed` note in the action stream.
pub fn add_vote_noted(
    votes: &mut VoteCollector,
    v: &Vote,
    quorum: usize,
    crypto: &mut CryptoCtx,
    out: &mut StepOutput,
) -> Option<Qc> {
    let first_before = votes.count(&v.seed) == 0;
    let formed = votes.add(v.seed, v.parsig, quorum, crypto);
    if first_before && votes.count(&v.seed) > 0 {
        out.actions.push(Action::Note(Note::FirstVote {
            view: v.seed.view,
            height: v.seed.height,
            phase: v.seed.phase,
        }));
    }
    formed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;
    use marlin_types::{BlockId, BlockKind, Height, Phase, View};

    fn seed(view: u64) -> QcSeed {
        QcSeed {
            phase: Phase::Prepare,
            view: View(view),
            block: BlockId::GENESIS,
            height: Height(1),
            block_view: View(view),
            pview: View(0),
            block_kind: BlockKind::Normal,
        }
    }

    fn setup() -> (Config, CryptoCtx, VoteCollector) {
        let cfg = Config::for_test(4, 1);
        let ctx = CryptoCtx::new(&cfg);
        (cfg, ctx, VoteCollector::new())
    }

    #[test]
    fn quorum_forms_exactly_once() {
        let (cfg, mut ctx, mut col) = setup();
        let s = seed(1);
        let mut formed = 0;
        for i in 0..4 {
            let p = cfg.keys.signer(i).sign_partial(&s.signing_bytes());
            if col.add(s, p, cfg.quorum(), &mut ctx).is_some() {
                formed += 1;
            }
        }
        assert_eq!(formed, 1);
        assert!(col.is_done(&s));
    }

    #[test]
    fn duplicates_do_not_count() {
        let (cfg, mut ctx, mut col) = setup();
        let s = seed(2);
        let p0 = cfg.keys.signer(0).sign_partial(&s.signing_bytes());
        for _ in 0..5 {
            assert!(col.add(s, p0, cfg.quorum(), &mut ctx).is_none());
        }
        assert_eq!(col.count(&s), 1);
    }

    #[test]
    fn invalid_shares_rejected() {
        let (cfg, mut ctx, mut col) = setup();
        let s = seed(3);
        let bad = cfg.keys.signer(0).sign_partial(b"wrong message");
        assert!(col.add(s, bad, cfg.quorum(), &mut ctx).is_none());
        assert_eq!(col.count(&s), 0);
    }

    #[test]
    fn independent_seeds_tracked_separately() {
        let (cfg, mut ctx, mut col) = setup();
        let (s1, s2) = (seed(4), seed(5));
        for i in 0..2 {
            let p = cfg.keys.signer(i).sign_partial(&s1.signing_bytes());
            col.add(s1, p, cfg.quorum(), &mut ctx);
        }
        let p = cfg.keys.signer(0).sign_partial(&s2.signing_bytes());
        col.add(s2, p, cfg.quorum(), &mut ctx);
        assert_eq!(col.count(&s1), 2);
        assert_eq!(col.count(&s2), 1);
        assert_eq!(col.len(), 2);
        col.clear();
        assert!(col.is_empty());
    }

    #[test]
    fn formed_qc_verifies() {
        let (cfg, mut ctx, mut col) = setup();
        let s = seed(6);
        let mut qc = None;
        for i in 0..3 {
            let p = cfg.keys.signer(i).sign_partial(&s.signing_bytes());
            if let Some(formed) = col.add(s, p, cfg.quorum(), &mut ctx) {
                qc = Some(formed);
            }
        }
        let qc = qc.expect("quorum reached");
        assert!(qc.verify(&cfg.keys));
        assert_eq!(qc.view(), View(6));
    }
}
