//! Chained (pipelined) Marlin and HotStuff.
//!
//! In chained mode every round has a single leader broadcast: the
//! proposal for block `b_k` carries the `prepareQC` for `b_{k-1}` as its
//! justify, so each certificate simultaneously serves as a phase of
//! several in-flight blocks ("Chained Marlin", Section V-C; the chained
//! HotStuff of the original paper).
//!
//! Commit rules (same-view, consecutive-height chains, ancestors ride
//! along via the block tree):
//!
//! * **Chained Marlin** — a *two-chain*: when `b_k` is certified and its
//!   direct child `b_{k+1}` is certified, `b_k` commits. Replicas lock
//!   on the justify `prepareQC` exactly as in basic Marlin; the view
//!   change is basic Marlin's (happy path or pre-prepare with
//!   V1–V3/R1–R3). No new block is proposed in the prepare phase right
//!   after an unhappy view change — matching the paper's remark.
//! * **Chained HotStuff** — a *three-chain*: `b_k` commits once three
//!   consecutively-certified descendants exist; replicas lock on the
//!   grandparent certificate.

use crate::config::Config;
use crate::events::{Action, Event, Note, StepOutput, VcCase};
use crate::journal::SafetyJournal;
use crate::util::{Base, Protocol};
use crate::votes::VoteCollector;
use marlin_types::rank::{block_rank_gt, highest_block, qc_rank_cmp, qc_rank_ge};
use marlin_types::{
    Block, BlockId, BlockKind, BlockMeta, BlockStore, Justify, Message, MsgBody, Phase, Proposal,
    Qc, ReplicaId, View, ViewChange, Vote,
};
use std::cmp::Ordering;
use std::collections::HashMap;

/// How many QCs must stack on top of a block before it commits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CommitRule {
    /// Two-chain (chained Marlin / Jolteon-style).
    TwoChain,
    /// Three-chain (chained HotStuff).
    ThreeChain,
}

/// Per-view leader state for the Marlin-style view change.
#[derive(Clone, Debug, Default)]
struct VcRound {
    msgs: HashMap<ReplicaId, ViewChange>,
    decided: bool,
    candidates: Vec<BlockId>,
    virtual_vc: Option<Qc>,
    stashed_virtual_qc: Option<Qc>,
    advanced: bool,
}

/// Shared implementation of both chained protocols.
#[derive(Clone, Debug)]
struct Chained {
    base: Base,
    rule: CommitRule,
    name: &'static str,
    lb: BlockMeta,
    locked_qc: Option<Qc>,
    /// `highQC`: `One(prepareQC)` normally; after a Marlin-style unhappy
    /// view change it may be `One(pre-prepareQC)` or `Two(pre, vc)`.
    high_qc: Justify,
    votes: VoteCollector,
    /// The leader's outstanding (not yet certified) proposal.
    outstanding: Option<BlockId>,
    vc_rounds: HashMap<View, VcRound>,
    /// Highest view each peer attested in a `CATCH-UP` response (the
    /// same post-crash resynchronization rule as basic Marlin: once
    /// `f + 1` distinct peers claim views above ours, join).
    peer_views: HashMap<ReplicaId, View>,
    /// A broadcast `CATCH-UP` request is awaiting its first response.
    catch_up_outstanding: bool,
    /// Consecutive heartbeats with nothing to propose (empty mempool,
    /// closed pipeline). Gates idle empty-block production: the leader
    /// keeps the heartbeat armed but only emits a keep-alive block
    /// every [`IDLE_BEATS_PER_BLOCK`]th beat.
    idle_beats: u32,
    /// Write-ahead safety journal; `None` runs without durability.
    journal: Option<SafetyJournal>,
}

/// One idle keep-alive block per this many empty heartbeats.
const IDLE_BEATS_PER_BLOCK: u32 = 4;

impl Chained {
    fn new(config: Config, rule: CommitRule, name: &'static str) -> Self {
        Chained {
            base: Base::new(config),
            rule,
            name,
            lb: BlockMeta::genesis(),
            locked_qc: None,
            high_qc: Justify::One(Qc::genesis(BlockId::GENESIS)),
            votes: VoteCollector::new(),
            outstanding: None,
            vc_rounds: HashMap::new(),
            peer_views: HashMap::new(),
            catch_up_outstanding: false,
            idle_beats: 0,
            journal: None,
        }
    }

    fn with_journal(
        config: Config,
        rule: CommitRule,
        name: &'static str,
        journal: SafetyJournal,
    ) -> Self {
        let mut replica = Chained::new(config, rule, name);
        replica.journal = Some(journal);
        replica
    }

    /// Rebuilds safety state from a durable journal (amnesia-safe
    /// restart): the replica resumes in the journaled view with the
    /// journaled `lb`, lock and `highQC`, so it cannot re-vote in a
    /// pipeline slot it voted in before the crash.
    fn recover(
        config: Config,
        rule: CommitRule,
        name: &'static str,
        journal: SafetyJournal,
    ) -> Self {
        let snapshot = *journal.state();
        let mut replica = Chained::with_journal(config, rule, name, journal);
        replica.lb = snapshot.last_voted;
        replica.locked_qc = snapshot.locked_qc;
        if !matches!(snapshot.high_qc, Justify::None) {
            replica.high_qc = snapshot.high_qc;
        }
        if snapshot.view > View::GENESIS {
            replica.base.cview = snapshot.view;
        }
        replica
    }

    fn cfg(&self) -> &Config {
        &self.base.cfg
    }

    fn quorum(&self) -> usize {
        self.base.cfg.quorum()
    }

    fn meta_of_qc(qc: &Qc) -> BlockMeta {
        BlockMeta {
            id: qc.block(),
            view: qc.block_view(),
            height: qc.height(),
            pview: qc.pview(),
            kind: qc.block_kind(),
            rank_boost: false,
        }
    }

    fn raise_lock(&mut self, qc: &Qc) {
        let higher = match &self.locked_qc {
            None => true,
            Some(cur) => qc_rank_cmp(qc, cur) == Ordering::Greater,
        };
        if higher {
            self.locked_qc = Some(*qc);
        }
    }

    /// Write-ahead check for votes that change no block-level safety
    /// state (pre-prepare votes, view-change shares): the current view
    /// must be durable. Returns `false` — abstain — when the journal
    /// cannot be written; abstention is always safe.
    fn journal_view_durable(&mut self, view: View, phase: Phase, out: &mut StepOutput) -> bool {
        match self.journal.as_mut() {
            None => true,
            Some(j) => match j.log_view(view) {
                Ok(()) => true,
                Err(_) => {
                    out.actions.push(Action::Note(Note::VoteWithheld { phase }));
                    false
                }
            },
        }
    }

    fn enter_view(&mut self, view: View, out: &mut StepOutput) {
        self.votes.clear();
        self.outstanding = None;
        // Durable before actionable: a replica recovering from its
        // journal must not re-enter an older view. Failure here is
        // tolerated (view regression costs liveness, not safety — votes
        // are guarded by the separately-journaled `lb` and lock).
        if let Some(j) = self.journal.as_mut() {
            let _ = j.log_view(view);
        }
        let drained = self.base.enter_view(view, out);
        self.vc_rounds.retain(|v, _| *v >= view);
        for msg in drained {
            let sub = self.handle(Event::Message(msg));
            out.merge(sub);
        }
    }

    fn start_view_change(&mut self, target: View, out: &mut StepOutput) {
        out.actions.push(Action::Note(Note::ViewChangeStarted {
            from_view: self.base.cview,
        }));
        self.enter_view(target, out);
        let parsig = self
            .base
            .crypto
            .sign_seed(&ViewChange::happy_seed(&self.lb, target));
        let msg = Message::new(
            self.cfg().id,
            target,
            MsgBody::ViewChange(ViewChange {
                last_voted: self.lb,
                high_qc: self.high_qc,
                parsig,
                cert: None,
            }),
        );
        // The happy-path share inside a VIEW-CHANGE is combinable into a
        // prepareQC for `lb`, so it is write-ahead journaled like any
        // other vote: the target view must be durable before it is sent.
        if !self.journal_view_durable(target, Phase::Prepare, out) {
            return;
        }
        out.actions.push(Action::Send {
            to: self.cfg().leader_of(target),
            message: msg,
        });
    }

    /// Leader: proposes the next block in the pipeline (or re-broadcasts
    /// a pre-prepared block after a Marlin-style view change).
    ///
    /// Gated until the justify is valid for the current view (see the
    /// basic protocols): two-chain replicas only accept in-view
    /// prepareQCs; three-chain leaders must wait for their new-view
    /// decision (`vc_decided`) before extending a cross-view QC.
    fn propose(&mut self, out: &mut StepOutput) {
        let view = self.base.cview;
        if self.outstanding.is_some() {
            return;
        }
        if let Some(qc) = self.high_qc.qc() {
            let in_view = qc.is_genesis() || qc.view() == view;
            let ready = match self.rule {
                CommitRule::TwoChain => in_view,
                CommitRule::ThreeChain => {
                    in_view
                        || self
                            .vc_rounds
                            .get(&view)
                            .map(|r| r.decided)
                            .unwrap_or(false)
                }
            };
            if !ready {
                return;
            }
        }
        let (block, justify) = match self.high_qc {
            Justify::One(qc) if qc.phase() == Phase::Prepare => {
                let batch = self.base.take_batch();
                let block = Block::new_normal(
                    qc.block(),
                    qc.block_view(),
                    view,
                    qc.height().next(),
                    batch,
                    Justify::One(qc),
                );
                self.base.store_block(&block);
                (block, self.high_qc)
            }
            Justify::One(pre) | Justify::Two(pre, _) => {
                let Some(block) = self.base.store.get(&pre.block()).cloned() else {
                    return;
                };
                (block, self.high_qc)
            }
            Justify::None => return,
        };
        self.outstanding = Some(block.id());
        out.actions.push(Action::Note(Note::Proposed {
            view,
            height: block.height(),
            phase: Phase::Prepare,
        }));
        out.actions.push(Action::Broadcast {
            message: Message::new(
                self.cfg().id,
                view,
                MsgBody::Proposal(Proposal {
                    phase: Phase::Prepare,
                    blocks: vec![block],
                    justify,
                    vc_proof: Vec::new(),
                }),
            ),
        });
    }

    /// The chained commit rule: called with a fresh `prepareQC`; walks
    /// the `justify` chain below the certified block and commits the
    /// `rule`-deep ancestor when the chain links are direct (consecutive
    /// heights, same view).
    fn try_chain_commit(&mut self, qc: &Qc, from: ReplicaId, out: &mut StepOutput) {
        let Some(block) = self.base.store.get(&qc.block()).cloned() else {
            return;
        };
        let Some(parent_qc) = block.justify().qc().copied() else {
            return;
        };
        if parent_qc.is_genesis() || parent_qc.phase() != Phase::Prepare {
            return;
        }
        let direct = parent_qc.height().next() == qc.height() && parent_qc.view() == qc.view();
        if !direct {
            return;
        }
        match self.rule {
            CommitRule::TwoChain => {
                self.base.try_commit(parent_qc, from, out);
            }
            CommitRule::ThreeChain => {
                let Some(parent) = self.base.store.get(&parent_qc.block()).cloned() else {
                    return;
                };
                let Some(gp_qc) = parent.justify().qc().copied() else {
                    return;
                };
                if gp_qc.is_genesis() || gp_qc.phase() != Phase::Prepare {
                    return;
                }
                let direct2 =
                    gp_qc.height().next() == parent_qc.height() && gp_qc.view() == parent_qc.view();
                if direct2 {
                    self.base.try_commit(gp_qc, from, out);
                }
            }
        }
    }

    fn on_message(&mut self, msg: Message, out: &mut StepOutput) {
        if self.base.handle_fetch(&msg, out) {
            return;
        }
        if self.base.handle_sync(&msg, out) {
            return;
        }
        // Catch-up (crash recovery) messages are view-independent: a
        // recovering replica may be views behind.
        if let MsgBody::CatchUpRequest { last_committed } = &msg.body {
            if msg.from == self.cfg().id {
                return; // our own broadcast, looped back
            }
            // Always answer: even with no newer commit to serve, the
            // response header carries our current view, which is the
            // attestation a recovering replica needs to resynchronize.
            let commit_qc = self
                .base
                .latest_commit_qc
                .filter(|qc| qc.height() > *last_committed);
            out.actions.push(Action::Note(Note::CatchUpServed {
                view: self.base.cview,
                newer: commit_qc.is_some(),
            }));
            out.actions.push(Action::Send {
                to: msg.from,
                message: Message::new(
                    self.cfg().id,
                    self.base.cview,
                    MsgBody::CatchUpResponse { commit_qc },
                ),
            });
            return;
        }
        if let MsgBody::CatchUpResponse { commit_qc } = &msg.body {
            // The first response closes the catch-up round trip.
            if self.catch_up_outstanding {
                self.catch_up_outstanding = false;
                out.actions.push(Action::Note(Note::CatchUpCompleted {
                    view: self.base.cview,
                }));
            }
            if let Some(qc) = commit_qc {
                self.on_commit_certificate(*qc, msg.from, out);
            }
            self.note_peer_view(msg.from, msg.view, out);
            return;
        }
        if msg.view > self.base.cview {
            // Fast-forward on a certified view: a valid prepareQC formed
            // in a later view is proof that view started.
            if let MsgBody::Proposal(p) = &msg.body {
                if let Some(qc) = p.justify.qc() {
                    if qc.view() == msg.view
                        && qc.phase() == Phase::Prepare
                        && self.base.crypto.verify_qc(qc)
                    {
                        self.enter_view(msg.view, out);
                        self.on_message(msg, out);
                        return;
                    }
                }
            }
            self.base.buffer_future(msg);
            if let Some(target) = self.base.future_view_change_senders(self.cfg().f + 1) {
                if target > self.base.cview {
                    self.start_view_change(target, out);
                }
            }
            return;
        }
        if msg.view < self.base.cview {
            return;
        }
        match msg.body {
            MsgBody::Proposal(p) => match p.phase {
                Phase::Prepare => self.on_prepare(msg.from, msg.view, p, out),
                Phase::PrePrepare => self.on_pre_prepare_proposal(msg.from, msg.view, p, out),
                _ => {}
            },
            MsgBody::Vote(v) => match v.seed.phase {
                Phase::Prepare => self.on_vote(v, out),
                Phase::PrePrepare => self.on_pre_prepare_vote(v, out),
                _ => {}
            },
            MsgBody::ViewChange(vc) => self.on_view_change(msg.from, msg.view, vc, out),
            _ => {}
        }
    }

    fn on_prepare(&mut self, from: ReplicaId, view: View, p: Proposal, out: &mut StepOutput) {
        if from != self.cfg().leader_of(view) || p.blocks.len() != 1 {
            return;
        }
        let block = &p.blocks[0];
        if block.view() != view || !block_rank_gt(&block.meta(), &self.lb) {
            return;
        }
        let Some(qc) = p.justify.qc().copied() else {
            return;
        };
        if !self.base.crypto.verify_justify(&p.justify) {
            return;
        }
        let mut virtual_vc = None;
        let valid = match (&p.justify, qc.phase()) {
            (Justify::One(_), Phase::Prepare) => {
                block.parent_id() == Some(qc.block())
                    && block.height() == qc.height().next()
                    && block.pview() == qc.block_view()
                    && match self.rule {
                        // Two-chain locks on the justify: the rank check
                        // mirrors basic Marlin's Case N1 (same view only).
                        CommitRule::TwoChain => {
                            (qc.is_genesis() || qc.view() == view)
                                && qc_rank_ge(&qc, self.locked_qc.as_ref())
                        }
                        // Three-chain: the standard safeNode predicate.
                        CommitRule::ThreeChain => qc_rank_ge(&qc, self.locked_qc.as_ref()),
                    }
            }
            (justify, Phase::PrePrepare) => {
                // Marlin-style Case N2 after an unhappy view change.
                let base_ok = self.rule == CommitRule::TwoChain
                    && block.id() == qc.block()
                    && qc.view() == view
                    && qc_rank_ge(&qc, self.locked_qc.as_ref());
                match justify {
                    Justify::One(_) => base_ok && qc.block_kind() == BlockKind::Normal,
                    Justify::Two(_, vc) => {
                        let ok = base_ok
                            && qc.block_kind() == BlockKind::Virtual
                            && vc.phase() == Phase::Prepare
                            && vc.view() == qc.pview()
                            && vc.height() == qc.height().prev();
                        if ok {
                            virtual_vc = Some(*vc);
                        }
                        ok
                    }
                    Justify::None => false,
                }
            }
            _ => false,
        };
        if !valid {
            return;
        }
        self.base.store_block(block);
        if let Some(vc) = virtual_vc {
            self.base
                .store
                .resolve_virtual_parent(block.id(), vc.block());
        }
        // The lock raise this vote implies, computed up front so it can
        // be journaled together with `lb` and `highQC`. Two-chain locks
        // on the justify itself; three-chain locks on the grandparent
        // certificate if it directly precedes the justify.
        let lock_raise: Option<Qc> = if qc.phase() == Phase::Prepare {
            match self.rule {
                CommitRule::TwoChain => Some(qc),
                CommitRule::ThreeChain => self
                    .base
                    .store
                    .get(&qc.block())
                    .and_then(|parent| parent.justify().qc().copied())
                    .filter(|gp_qc| {
                        !gp_qc.is_genesis()
                            && gp_qc.phase() == Phase::Prepare
                            && gp_qc.height().next() == qc.height()
                            && gp_qc.view() == qc.view()
                    }),
            }
        } else {
            None
        };
        // Write-ahead voting: every safety delta this vote implies (the
        // new `lb`, the justify as `highQC`, any lock raise) must be
        // durable before the vote can reach the wire. On a failed append
        // the replica abstains, and its in-memory state must not outrun
        // the journal either.
        if let Some(j) = self.journal.as_mut() {
            let mut res = j.log_last_voted(&block.meta());
            if res.is_ok() {
                res = j.log_high_qc(&p.justify);
            }
            if res.is_ok() {
                if let Some(lock) = &lock_raise {
                    res = j.log_lock(lock);
                }
            }
            if res.is_err() {
                out.actions.push(Action::Note(Note::VoteWithheld {
                    phase: Phase::Prepare,
                }));
                return;
            }
        }
        let seed = block.vote_seed(Phase::Prepare, view);
        let parsig = self.base.crypto.sign_seed(&seed);
        out.actions.push(Action::Send {
            to: from,
            message: Message::new(
                self.cfg().id,
                view,
                MsgBody::Vote(Vote {
                    seed,
                    parsig,
                    locked_qc: None,
                }),
            ),
        });
        self.lb = block.meta();
        self.high_qc = p.justify;
        if let Some(lock) = lock_raise {
            self.raise_lock(&lock);
        }
        if qc.phase() == Phase::Prepare {
            // The justify certificate advances the chain: try to commit.
            self.try_chain_commit(&qc, from, out);
        }
        self.base.progress_timer(out);
    }

    fn on_vote(&mut self, v: Vote, out: &mut StepOutput) {
        if v.seed.view != self.base.cview || Some(v.seed.block) != self.outstanding {
            return;
        }
        let quorum = self.quorum();
        let Some(qc) =
            crate::votes::add_vote_noted(&mut self.votes, &v, quorum, &mut self.base.crypto, out)
        else {
            return;
        };
        out.actions.push(Action::Note(Note::QcFormed {
            phase: Phase::Prepare,
            view: qc.view(),
            height: qc.height(),
        }));
        self.note_ancestor_phases(&qc, out);
        self.outstanding = None;
        self.high_qc = Justify::One(qc);
        // Pipeline: immediately propose the next block carrying this QC.
        // While certified-but-uncommitted payload is still in flight the
        // leader keeps extending the chain itself, even with an empty
        // mempool — pacing the tail with heartbeats alone would strand
        // the last blocks of a burst until an outside timer fired (the
        // pipeline-tail liveness gap). Only a fully-closed pipeline
        // falls back to heartbeat pacing.
        if !self.base.mempool.is_empty() || self.tail_open(&qc) {
            self.propose(out);
        } else {
            out.actions.push(Action::SetHeartbeat {
                delay_ns: self.base.cfg.base_timeout_ns / 8,
            });
        }
    }

    /// Whether certified-but-uncommitted payload is still in flight behind
    /// the freshly certified block: walks parent links from the certified
    /// block down to the committed prefix looking for a nonempty payload.
    fn tail_open(&self, qc: &Qc) -> bool {
        let committed = self
            .base
            .store
            .get(&self.base.store.last_committed())
            .map(|b| b.height())
            .unwrap_or_default();
        let mut cursor = qc.block();
        loop {
            let Some(block) = self.base.store.get(&cursor) else {
                return false;
            };
            if block.height() <= committed {
                return false;
            }
            if !block.payload().is_empty() {
                return true;
            }
            match block.parent_id() {
                Some(parent) => cursor = parent,
                // An unresolved virtual block interposes: conservatively
                // keep the pipeline moving until the commit rule clears it.
                None => return true,
            }
        }
    }

    /// A chained certificate simultaneously serves as a phase of the
    /// in-flight ancestors it stacks on (Section V-C linearity). Emit
    /// the ancestor phase points this `prepareQC` represents so the
    /// cross-replica commit-latency decomposition measures the chained
    /// rule's true depth: 2 phases per block for the two-chain rule,
    /// 3 for the three-chain rule.
    fn note_ancestor_phases(&self, qc: &Qc, out: &mut StepOutput) {
        let Some(block) = self.base.store.get(&qc.block()) else {
            return;
        };
        let Some(parent_qc) = block.justify().qc().copied() else {
            return;
        };
        if parent_qc.is_genesis()
            || parent_qc.phase() != Phase::Prepare
            || parent_qc.height().next() != qc.height()
            || parent_qc.view() != qc.view()
        {
            return;
        }
        match self.rule {
            CommitRule::TwoChain => {
                out.actions.push(Action::Note(Note::QcFormed {
                    phase: Phase::Commit,
                    view: qc.view(),
                    height: parent_qc.height(),
                }));
            }
            CommitRule::ThreeChain => {
                out.actions.push(Action::Note(Note::QcFormed {
                    phase: Phase::PreCommit,
                    view: qc.view(),
                    height: parent_qc.height(),
                }));
                let Some(parent) = self.base.store.get(&parent_qc.block()) else {
                    return;
                };
                let Some(gp_qc) = parent.justify().qc().copied() else {
                    return;
                };
                if !gp_qc.is_genesis()
                    && gp_qc.phase() == Phase::Prepare
                    && gp_qc.height().next() == parent_qc.height()
                    && gp_qc.view() == parent_qc.view()
                {
                    out.actions.push(Action::Note(Note::QcFormed {
                        phase: Phase::Commit,
                        view: qc.view(),
                        height: gp_qc.height(),
                    }));
                }
            }
        }
    }

    /// Handles a served commit certificate. In chained mode the "commit
    /// certificate" a peer serves is the `prepareQC` whose formation
    /// committed the block at the server (`latest_commit_qc`), so an
    /// honest server only ever serves certificates of committed blocks;
    /// the receiver verifies the certificate and commits its chain
    /// (fetching missing ancestors).
    fn on_commit_certificate(&mut self, qc: Qc, from: ReplicaId, out: &mut StepOutput) {
        if qc.is_genesis() || qc.phase() != Phase::Prepare || !self.base.crypto.verify_qc(&qc) {
            return;
        }
        // A certificate from a future view is also a view-synchronisation
        // signal: join that view (we missed its VIEW-CHANGE).
        if qc.view() > self.base.cview {
            self.enter_view(qc.view(), out);
        }
        self.base.try_commit(qc, from, out);
    }

    /// Post-crash view resynchronization via catch-up view attestations:
    /// join the `(f + 1)`-th highest view claimed by distinct peers —
    /// at least one claimant is honest, so the view is safe to join.
    /// (With linear view changes a lagging replica never overhears
    /// `VIEW-CHANGE` traffic, so it needs explicit attestations.)
    fn note_peer_view(&mut self, from: ReplicaId, view: View, out: &mut StepOutput) {
        if from == self.cfg().id {
            return;
        }
        let slot = self.peer_views.entry(from).or_default();
        *slot = (*slot).max(view);
        let mut above: Vec<View> = self
            .peer_views
            .values()
            .copied()
            .filter(|v| *v > self.base.cview)
            .collect();
        if above.len() <= self.cfg().f {
            return;
        }
        above.sort_unstable_by(|a, b| b.cmp(a));
        let target = above[self.cfg().f];
        self.start_view_change(target, out);
    }

    /// Handles rejoin after a crash: re-arms the view timer (any
    /// pre-crash timer is dead), asks peers for commit certificates
    /// formed while this replica was down, and — when it leads the
    /// current view with an extendable `prepareQC` — re-proposes to
    /// restart the pipeline.
    fn on_recovered(&mut self, out: &mut StepOutput) {
        let view = self.base.cview;
        out.actions.push(Action::SetTimer {
            view,
            delay_ns: self.base.pacemaker.delay_for(view),
        });
        let last_committed = self
            .base
            .store
            .get(&self.base.store.last_committed())
            .map(|b| b.height())
            .unwrap_or_default();
        self.catch_up_outstanding = true;
        out.actions
            .push(Action::Note(Note::CatchUpRequested { view }));
        out.actions.push(Action::Broadcast {
            message: Message::new(
                self.cfg().id,
                view,
                MsgBody::CatchUpRequest { last_committed },
            ),
        });
        if self.cfg().is_leader(view)
            && matches!(&self.high_qc, Justify::One(qc) if qc.phase() == Phase::Prepare)
        {
            self.propose(out);
        }
    }

    // ----------------------------------- Marlin-style view change ----

    fn on_view_change(
        &mut self,
        from: ReplicaId,
        view: View,
        vc: ViewChange,
        out: &mut StepOutput,
    ) {
        if !self.cfg().is_leader(view) {
            return;
        }
        let quorum = self.quorum();
        let round = self.vc_rounds.entry(view).or_default();
        if round.decided {
            return;
        }
        round.msgs.insert(from, vc);
        if round.msgs.len() < quorum {
            return;
        }
        round.decided = true;
        let msgs: Vec<(ReplicaId, ViewChange)> =
            round.msgs.iter().map(|(k, v)| (*k, v.clone())).collect();
        match self.rule {
            CommitRule::TwoChain => self.run_marlin_pre_prepare(view, msgs, out),
            CommitRule::ThreeChain => self.run_hotstuff_new_view(view, msgs, out),
        }
    }

    /// Chained HotStuff's linear new-view: extend the highest prepareQC.
    fn run_hotstuff_new_view(
        &mut self,
        _view: View,
        msgs: Vec<(ReplicaId, ViewChange)>,
        out: &mut StepOutput,
    ) {
        let mut best: Option<Qc> = None;
        for (_, m) in &msgs {
            if let Some(qc) = m.high_qc.qc() {
                if qc.phase() == Phase::Prepare
                    && self.base.crypto.verify_qc(qc)
                    && best
                        .as_ref()
                        .is_none_or(|b| qc_rank_cmp(qc, b) == Ordering::Greater)
                {
                    best = Some(*qc);
                }
            }
        }
        if let Some(qc) = best {
            self.high_qc = Justify::One(qc);
            self.propose(out);
        }
    }

    /// Chained Marlin's view change — identical to basic Marlin's
    /// (happy path, then V1/V2/V3).
    fn run_marlin_pre_prepare(
        &mut self,
        view: View,
        msgs: Vec<(ReplicaId, ViewChange)>,
        out: &mut StepOutput,
    ) {
        let first_lb = msgs[0].1.last_voted;
        if msgs.iter().all(|(_, m)| m.last_voted.id == first_lb.id) {
            let seed = ViewChange::happy_seed(&first_lb, view);
            let valid: Vec<_> = msgs
                .iter()
                .filter(|(_, m)| self.base.crypto.verify_partial(&seed, &m.parsig))
                .map(|(_, m)| m.parsig)
                .collect();
            if valid.len() >= self.quorum() {
                if let Some(qc) = self.base.crypto.combine(seed, &valid) {
                    out.actions.push(Action::Note(Note::HappyPathVc { view }));
                    if first_lb.kind == BlockKind::Virtual {
                        if let Some(vc) = Self::find_virtual_vc(&first_lb, &msgs) {
                            self.base
                                .store
                                .resolve_virtual_parent(first_lb.id, vc.block());
                        }
                    }
                    self.high_qc = Justify::One(qc);
                    self.propose(out);
                    return;
                }
            }
        }

        let mut qcs: Vec<(Qc, Option<Qc>)> = Vec::new();
        for (_, m) in &msgs {
            if !self.base.crypto.verify_justify(&m.high_qc) {
                continue;
            }
            match m.high_qc {
                Justify::One(qc) => qcs.push((qc, None)),
                Justify::Two(pre, vc) => {
                    qcs.push((pre, Some(vc)));
                    qcs.push((vc, None));
                }
                Justify::None => {}
            }
        }
        if qcs.is_empty() {
            return;
        }
        let top_rank = qcs
            .iter()
            .map(|(qc, _)| qc)
            .max_by(|a, b| qc_rank_cmp(a, b))
            .copied()
            .expect("nonempty");
        let top: Vec<(Qc, Option<Qc>)> = qcs
            .iter()
            .filter(|(qc, _)| qc_rank_cmp(qc, &top_rank) == Ordering::Equal)
            .cloned()
            .collect();
        let metas: Vec<BlockMeta> = msgs.iter().map(|(_, m)| m.last_voted).collect();
        let bv = *highest_block(metas.iter()).expect("quorum is nonempty");

        let batch = self.base.take_batch();
        let round = self.vc_rounds.entry(view).or_default();
        round.candidates.clear();
        let mut blocks: Vec<Block> = Vec::new();
        let (first, first_vc) = top[0];
        if first.phase() == Phase::Prepare {
            let qc = first;
            if block_rank_gt(&bv, &Self::meta_of_qc(&qc)) {
                out.actions.push(Action::Note(Note::UnhappyPathVc {
                    view,
                    case: VcCase::V1,
                }));
                blocks.push(Block::new_normal(
                    qc.block(),
                    qc.block_view(),
                    view,
                    qc.height().next(),
                    batch.clone(),
                    Justify::One(qc),
                ));
                blocks.push(Block::new_virtual(
                    qc.block_view(),
                    view,
                    qc.height().plus(2),
                    batch,
                    Justify::One(qc),
                ));
            } else {
                out.actions.push(Action::Note(Note::UnhappyPathVc {
                    view,
                    case: VcCase::V2,
                }));
                blocks.push(Block::new_normal(
                    qc.block(),
                    qc.block_view(),
                    view,
                    qc.height().next(),
                    batch,
                    Justify::One(qc),
                ));
            }
        } else if top
            .iter()
            .map(|(qc, _)| qc.block())
            .collect::<std::collections::HashSet<_>>()
            .len()
            == 1
        {
            out.actions.push(Action::Note(Note::UnhappyPathVc {
                view,
                case: VcCase::V2,
            }));
            let justify = match (first.block_kind(), first_vc) {
                (BlockKind::Virtual, Some(vc)) => Justify::Two(first, vc),
                _ => Justify::One(first),
            };
            blocks.push(Block::new_normal(
                first.block(),
                first.block_view(),
                view,
                first.height().next(),
                batch,
                justify,
            ));
        } else {
            out.actions.push(Action::Note(Note::UnhappyPathVc {
                view,
                case: VcCase::V3,
            }));
            let normal = top
                .iter()
                .find(|(qc, _)| qc.block_kind() == BlockKind::Normal);
            let virt = top
                .iter()
                .find(|(qc, _)| qc.block_kind() == BlockKind::Virtual);
            if let Some((qc1, _)) = normal {
                blocks.push(Block::new_normal(
                    qc1.block(),
                    qc1.block_view(),
                    view,
                    qc1.height().next(),
                    batch.clone(),
                    Justify::One(*qc1),
                ));
            }
            if let Some((qc2, Some(vc))) = virt {
                blocks.push(Block::new_normal(
                    qc2.block(),
                    qc2.block_view(),
                    view,
                    qc2.height().next(),
                    batch,
                    Justify::Two(*qc2, *vc),
                ));
            }
            if blocks.is_empty() {
                return;
            }
        }

        for b in &blocks {
            self.base.store_block(b);
            if let Justify::Two(pre, vc) = b.justify() {
                self.base
                    .store
                    .resolve_virtual_parent(pre.block(), vc.block());
            }
            let round = self.vc_rounds.entry(view).or_default();
            round.candidates.push(b.id());
        }
        out.actions.push(Action::Broadcast {
            message: Message::new(
                self.cfg().id,
                view,
                MsgBody::Proposal(Proposal {
                    phase: Phase::PrePrepare,
                    blocks,
                    justify: Justify::None,
                    vc_proof: Vec::new(),
                }),
            ),
        });
    }

    fn find_virtual_vc(lb: &BlockMeta, msgs: &[(ReplicaId, ViewChange)]) -> Option<Qc> {
        msgs.iter().find_map(|(_, m)| match m.high_qc {
            Justify::Two(pre, vc) if pre.block() == lb.id => Some(vc),
            _ => None,
        })
    }

    fn on_pre_prepare_proposal(
        &mut self,
        from: ReplicaId,
        view: View,
        p: Proposal,
        out: &mut StepOutput,
    ) {
        if self.rule != CommitRule::TwoChain {
            return;
        }
        if from != self.cfg().leader_of(view) || p.blocks.is_empty() || p.blocks.len() > 2 {
            return;
        }
        let mut progressed = false;
        for block in &p.blocks {
            if block.view() != view {
                continue;
            }
            let justify = *block.justify();
            let Some(qc) = justify.qc().copied() else {
                continue;
            };
            if qc.view() >= view || !self.base.crypto.verify_justify(&justify) {
                continue;
            }
            let structural = match block.kind() {
                BlockKind::Normal => {
                    block.parent_id() == Some(qc.block())
                        && block.height() == qc.height().next()
                        && block.pview() == qc.block_view()
                }
                BlockKind::Virtual => {
                    qc.phase() == Phase::Prepare
                        && block.height() == qc.height().plus(2)
                        && block.pview() == qc.block_view()
                        && matches!(justify, Justify::One(_))
                }
            };
            if !structural {
                continue;
            }
            if let Justify::Two(pre, vc) = &justify {
                let pair_ok = pre.block_kind() == BlockKind::Virtual
                    && vc.phase() == Phase::Prepare
                    && vc.view() == pre.pview()
                    && vc.height() == pre.height().prev();
                if !pair_ok {
                    continue;
                }
                self.base
                    .store
                    .resolve_virtual_parent(pre.block(), vc.block());
            }
            let mut attach = None;
            let r1 = qc_rank_ge(&qc, self.locked_qc.as_ref());
            let r2 = !r1
                && block.kind() == BlockKind::Virtual
                && qc.phase() == Phase::Prepare
                && self
                    .locked_qc
                    .as_ref()
                    .is_some_and(|l| l.view() == qc.view() && l.height() == qc.height().next());
            let r3 = !r1
                && !r2
                && qc.phase() == Phase::PrePrepare
                && self
                    .locked_qc
                    .as_ref()
                    .is_some_and(|l| l.block() == qc.block());
            if r2 {
                attach = self.locked_qc;
            }
            if !(r1 || r2 || r3) {
                continue;
            }
            // Write-ahead: a pre-prepare vote changes no block-level
            // safety state, but the view it is cast in must be durable.
            if !self.journal_view_durable(view, Phase::PrePrepare, out) {
                continue;
            }
            self.base.store_block(block);
            let seed = block.vote_seed(Phase::PrePrepare, view);
            let parsig = self.base.crypto.sign_seed(&seed);
            out.actions.push(Action::Send {
                to: from,
                message: Message::new(
                    self.cfg().id,
                    view,
                    MsgBody::Vote(Vote {
                        seed,
                        parsig,
                        locked_qc: attach,
                    }),
                ),
            });
            progressed = true;
        }
        if progressed {
            self.base.progress_timer(out);
        }
    }

    fn on_pre_prepare_vote(&mut self, v: Vote, out: &mut StepOutput) {
        if self.rule != CommitRule::TwoChain {
            return;
        }
        let view = self.base.cview;
        if v.seed.view != view || !self.cfg().is_leader(view) {
            return;
        }
        let quorum = self.quorum();
        let Some(round) = self.vc_rounds.get_mut(&view) else {
            return;
        };
        if round.advanced || !round.candidates.contains(&v.seed.block) {
            return;
        }
        // Record a validating prepareQC from a Case R2 voter. As in
        // the non-chained leader, only a vc that resolves the round's
        // virtual candidate (the `pair_ok` shape) may occupy the slot,
        // and matching attachments keep being accepted rather than
        // latching whichever arrived first.
        if let Some(vc) = v.locked_qc {
            let virt = round
                .candidates
                .iter()
                .find_map(|id| self.base.store.get(id).filter(|b| b.is_virtual()))
                .map(|b| (b.pview(), b.height()));
            if let Some((pview, height)) = virt {
                let fits = vc.phase() == Phase::Prepare
                    && vc.view() == pview
                    && vc.height() == height.prev()
                    && self.base.crypto.verify_qc(&vc);
                if fits {
                    let round = self.vc_rounds.get_mut(&view).expect("exists");
                    round.virtual_vc = Some(vc);
                }
            }
        }
        if let Some(qc) =
            crate::votes::add_vote_noted(&mut self.votes, &v, quorum, &mut self.base.crypto, out)
        {
            out.actions.push(Action::Note(Note::QcFormed {
                phase: Phase::PrePrepare,
                view: qc.view(),
                height: qc.height(),
            }));
            let round = self.vc_rounds.get_mut(&view).expect("exists");
            match qc.block_kind() {
                BlockKind::Normal => {
                    round.advanced = true;
                    self.high_qc = Justify::One(qc);
                    self.propose(out);
                }
                BlockKind::Virtual => match round.virtual_vc {
                    Some(vc) => {
                        round.advanced = true;
                        self.base
                            .store
                            .resolve_virtual_parent(qc.block(), vc.block());
                        self.high_qc = Justify::Two(qc, vc);
                        self.propose(out);
                    }
                    None => round.stashed_virtual_qc = Some(qc),
                },
            }
        } else if let Some(round) = self.vc_rounds.get_mut(&view) {
            if !round.advanced {
                if let (Some(pre), Some(vc)) = (round.stashed_virtual_qc, round.virtual_vc) {
                    round.advanced = true;
                    self.base
                        .store
                        .resolve_virtual_parent(pre.block(), vc.block());
                    self.high_qc = Justify::Two(pre, vc);
                    self.propose(out);
                }
            }
        }
    }

    fn handle(&mut self, event: Event) -> StepOutput {
        let mut out = StepOutput::empty();
        match event {
            Event::Start => {
                // Idempotent: a replica that already joined a view
                // (e.g. via a commit certificate that arrived before
                // its start event) must not regress.
                if self.base.cview == View::GENESIS {
                    self.enter_view(View(1), &mut out);
                    if self.cfg().is_leader(View(1)) {
                        self.propose(&mut out);
                    }
                }
            }
            Event::Message(msg) => self.on_message(msg, &mut out),
            Event::Timeout { view } => {
                if view == self.base.cview {
                    self.start_view_change(view.next(), &mut out);
                }
            }
            Event::NewTransactions(txs) => {
                self.base.add_transactions(txs, &mut out);
                if self.cfg().is_leader(self.base.cview) && self.outstanding.is_none() {
                    self.idle_beats = 0;
                    self.propose(&mut out);
                }
            }
            Event::Heartbeat => {
                if self.cfg().is_leader(self.base.cview) && self.outstanding.is_none() {
                    let tail_open = self.high_qc.qc().is_some_and(|qc| self.tail_open(qc));
                    if !self.base.mempool.is_empty() || tail_open {
                        // Real work (or an open pipeline tail): propose
                        // now. The pipeline drives itself from here, no
                        // re-arm needed.
                        self.idle_beats = 0;
                        self.propose(&mut out);
                    } else {
                        // Idle: keep the heartbeat armed so transactions
                        // arriving later are picked up promptly, but emit
                        // a keep-alive block only every
                        // `IDLE_BEATS_PER_BLOCK`th beat instead of on
                        // every one — sustained quiet periods otherwise
                        // spam empty blocks 4× per base timeout.
                        self.idle_beats += 1;
                        out.actions.push(Action::SetHeartbeat {
                            delay_ns: self.base.cfg.base_timeout_ns / 4,
                        });
                        if self.idle_beats.is_multiple_of(IDLE_BEATS_PER_BLOCK) {
                            self.propose(&mut out);
                        }
                    }
                }
            }
            Event::Recovered => self.on_recovered(&mut out),
        }
        // A new snapshot anchor pruned the committed prefix this step:
        // let the journal fold away history below the same horizon so
        // long-lived nodes bound journal disk alongside block residency.
        if let Some(horizon) = self.base.take_journal_gc() {
            if let Some(j) = self.journal.as_mut() {
                let _ = j.gc_below(horizon);
            }
        }
        // Report the step's write-ahead journal IO (appends, bytes,
        // modeled latency). Reported, and charged to the journal lane
        // only when `charge_journal` opts in: folding the modeled cost
        // into the default schedule would perturb the deterministic
        // timings the fault-injection campaign pins by fingerprint.
        if let Some(j) = self.journal.as_mut() {
            let io = j.take_io();
            if io.appends > 0 {
                if self.base.cfg.charge_journal {
                    out.cpu_ns += io.cost_ns;
                    out.journal_ns += io.cost_ns;
                }
                out.actions.push(Action::Note(Note::JournalWrite {
                    appends: io.appends,
                    bytes: io.bytes,
                    cost_ns: io.cost_ns,
                }));
            }
        }
        self.base.finish(out)
    }
}

/// Chained (pipelined) Marlin: one broadcast per block, two-chain
/// commits, Marlin's linear view change.
#[derive(Clone, Debug)]
pub struct ChainedMarlin(Chained);

impl ChainedMarlin {
    /// Creates a replica in the pre-start state.
    pub fn new(config: Config) -> Self {
        ChainedMarlin(Chained::new(config, CommitRule::TwoChain, "chained-marlin"))
    }

    /// Creates a replica that write-ahead journals every safety-state
    /// transition to `journal` *before* the corresponding vote can
    /// leave the replica.
    pub fn with_journal(config: Config, journal: SafetyJournal) -> Self {
        ChainedMarlin(Chained::with_journal(
            config,
            CommitRule::TwoChain,
            "chained-marlin",
            journal,
        ))
    }

    /// Creates a replica whose safety state is reconstructed from a
    /// durable journal (amnesia-safe restart). Feed
    /// [`Event::Recovered`] to re-arm timers and solicit commits formed
    /// while the replica was down.
    pub fn recover(config: Config, journal: SafetyJournal) -> Self {
        ChainedMarlin(Chained::recover(
            config,
            CommitRule::TwoChain,
            "chained-marlin",
            journal,
        ))
    }

    /// The attached safety journal, if any.
    pub fn journal(&self) -> Option<&SafetyJournal> {
        self.0.journal.as_ref()
    }

    /// The last block this replica voted for.
    pub fn last_voted(&self) -> &BlockMeta {
        &self.0.lb
    }

    /// The current lock, if any.
    pub fn locked_qc(&self) -> Option<&Qc> {
        self.0.locked_qc.as_ref()
    }

    /// The replica's `highQC`.
    pub fn high_qc(&self) -> &Justify {
        &self.0.high_qc
    }
}

impl Protocol for ChainedMarlin {
    fn config(&self) -> &Config {
        &self.0.base.cfg
    }

    fn current_view(&self) -> View {
        self.0.base.cview
    }

    fn store(&self) -> &BlockStore {
        &self.0.base.store
    }

    fn mempool_len(&self) -> usize {
        self.0.base.mempool.len()
    }

    fn maintain_crypto(&mut self, max_verified: usize) -> crate::CryptoCacheStats {
        self.0.base.maintain_crypto(max_verified)
    }

    fn locked_qc(&self) -> Option<&Qc> {
        self.0.locked_qc.as_ref()
    }

    fn name(&self) -> &'static str {
        self.0.name
    }

    fn on_event(&mut self, event: Event) -> StepOutput {
        self.0.handle(event)
    }
}

/// Chained (pipelined) HotStuff: one broadcast per block, three-chain
/// commits, HotStuff's linear new-view.
#[derive(Clone, Debug)]
pub struct ChainedHotStuff(Chained);

impl ChainedHotStuff {
    /// Creates a replica in the pre-start state.
    pub fn new(config: Config) -> Self {
        ChainedHotStuff(Chained::new(
            config,
            CommitRule::ThreeChain,
            "chained-hotstuff",
        ))
    }

    /// Creates a replica that write-ahead journals every safety-state
    /// transition to `journal` *before* the corresponding vote can
    /// leave the replica.
    pub fn with_journal(config: Config, journal: SafetyJournal) -> Self {
        ChainedHotStuff(Chained::with_journal(
            config,
            CommitRule::ThreeChain,
            "chained-hotstuff",
            journal,
        ))
    }

    /// Creates a replica whose safety state is reconstructed from a
    /// durable journal (amnesia-safe restart). Feed
    /// [`Event::Recovered`] to re-arm timers and solicit commits formed
    /// while the replica was down.
    pub fn recover(config: Config, journal: SafetyJournal) -> Self {
        ChainedHotStuff(Chained::recover(
            config,
            CommitRule::ThreeChain,
            "chained-hotstuff",
            journal,
        ))
    }

    /// The attached safety journal, if any.
    pub fn journal(&self) -> Option<&SafetyJournal> {
        self.0.journal.as_ref()
    }

    /// The last block this replica voted for.
    pub fn last_voted(&self) -> &BlockMeta {
        &self.0.lb
    }

    /// The current lock, if any.
    pub fn locked_qc(&self) -> Option<&Qc> {
        self.0.locked_qc.as_ref()
    }

    /// The replica's `highQC`.
    pub fn high_qc(&self) -> &Justify {
        &self.0.high_qc
    }
}

impl Protocol for ChainedHotStuff {
    fn config(&self) -> &Config {
        &self.0.base.cfg
    }

    fn current_view(&self) -> View {
        self.0.base.cview
    }

    fn store(&self) -> &BlockStore {
        &self.0.base.store
    }

    fn mempool_len(&self) -> usize {
        self.0.base.mempool.len()
    }

    fn maintain_crypto(&mut self, max_verified: usize) -> crate::CryptoCacheStats {
        self.0.base.maintain_crypto(max_verified)
    }

    fn locked_qc(&self) -> Option<&Qc> {
        self.0.locked_qc.as_ref()
    }

    fn name(&self) -> &'static str {
        self.0.name
    }

    fn on_event(&mut self, event: Event) -> StepOutput {
        self.0.handle(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Cluster;
    use crate::ProtocolKind;

    const P0: ReplicaId = ReplicaId(0);
    const P1: ReplicaId = ReplicaId(1);
    const P2: ReplicaId = ReplicaId(2);

    fn run_pipeline(kind: ProtocolKind, seed: u64) -> Cluster {
        let mut cl = Cluster::new(kind, Config::for_test(4, 1), seed);
        cl.submit_to(P1, 250, 0); // several batches worth
                                  // No timer scaffolding: the leader itself closes the pipeline
                                  // tail with empty blocks once the mempool drains (see
                                  // `on_vote`), so message delivery alone commits everything.
        cl.run_until_idle();
        cl
    }

    #[test]
    fn chained_marlin_commits_pipeline() {
        let cl = run_pipeline(ProtocolKind::ChainedMarlin, 1);
        cl.assert_consistent();
        assert_eq!(cl.total_committed_txs(P0), 250);
    }

    #[test]
    fn chained_hotstuff_commits_pipeline() {
        let cl = run_pipeline(ProtocolKind::ChainedHotStuff, 2);
        cl.assert_consistent();
        assert_eq!(cl.total_committed_txs(P0), 250);
    }

    #[test]
    fn chained_marlin_commits_with_two_chain_latency() {
        // A single batch needs exactly one successor QC to commit: the
        // leader's own tail-closing block finalizes it without any
        // timer firing.
        let mut cl = Cluster::new(ProtocolKind::ChainedMarlin, Config::for_test(4, 1), 3);
        cl.submit_to(P1, 10, 0);
        cl.run_until_idle();
        cl.assert_consistent();
        assert_eq!(cl.total_committed_txs(P0), 10);
    }

    /// Regression (pipeline-tail liveness gap): an idle chained cluster
    /// must commit the tail of a burst from message delivery alone.
    /// Before the fix the leader parked the last in-flight blocks
    /// behind a heartbeat, so `run_until_idle()` (which never fires
    /// timers) left the burst partially uncommitted and tests had to
    /// close the pipeline with manual heartbeats.
    #[test]
    fn chained_pipeline_tail_closes_without_timers() {
        for kind in [ProtocolKind::ChainedMarlin, ProtocolKind::ChainedHotStuff] {
            let mut cl = Cluster::new(kind, Config::for_test(4, 1), 9);
            cl.submit_to(P1, 120, 0);
            cl.run_until_idle();
            cl.assert_consistent();
            assert_eq!(
                cl.total_committed_txs(P0),
                120,
                "{kind:?}: pipeline tail not closed without timers"
            );
        }
    }

    /// Regression (idle empty-block spam): once the pipeline has closed
    /// and the mempool is empty, the leader used to propose a fresh
    /// empty block on *every* heartbeat — four keep-alive blocks per
    /// base timeout, forever. Now it re-arms the heartbeat cheaply and
    /// emits a keep-alive block only every `IDLE_BEATS_PER_BLOCK`th
    /// beat, so a sustained quiet period produces a bounded trickle.
    #[test]
    fn idle_heartbeats_do_not_spam_empty_blocks() {
        for kind in [ProtocolKind::ChainedMarlin, ProtocolKind::ChainedHotStuff] {
            let mut cl = Cluster::new(kind, Config::for_test(4, 1), 11);
            cl.submit_to(P1, 40, 0);
            cl.run_until_idle();
            assert_eq!(cl.total_committed_txs(P0), 40);

            // A long quiet period: every fired timer is a leader
            // heartbeat (payload commits keep re-arming the view timers
            // before they can expire).
            let before = cl.committed_height(P0);
            let fires = 32;
            for _ in 0..fires {
                assert!(cl.fire_next_timer(), "{kind:?}: heartbeat chain broke");
            }
            cl.run_until_idle();
            let idle_blocks = cl.committed_height(P0) - before;
            // Before the fix every beat proposed, committing ~one empty
            // block per fire (~32 here). Gated, at most every 4th idle
            // beat proposes; the commit rule trails by a block or two.
            assert!(
                idle_blocks <= fires / 4 + 2,
                "{kind:?}: {idle_blocks} empty blocks from {fires} idle heartbeats"
            );
            // ...but the trickle must not dry up entirely: keep-alive
            // blocks still flow, so view timers stay quenched.
            assert!(
                idle_blocks >= 2,
                "{kind:?}: idle keep-alive stalled ({idle_blocks} blocks)"
            );
            assert_eq!(
                cl.min_view(),
                View(1),
                "{kind:?}: idle period lost the view"
            );
        }
    }

    /// Regression (post-quiet liveness): a burst arriving after a long
    /// idle stretch must commit from message delivery alone — the
    /// heartbeat gating above must not strand fresh transactions behind
    /// the idle-beat counter.
    #[test]
    fn load_after_quiet_period_commits_without_timers() {
        for kind in [ProtocolKind::ChainedMarlin, ProtocolKind::ChainedHotStuff] {
            let mut cl = Cluster::new(kind, Config::for_test(4, 1), 12);
            cl.submit_to(P1, 30, 0);
            cl.run_until_idle();
            for _ in 0..13 {
                assert!(cl.fire_next_timer());
            }
            cl.run_until_idle();
            // New load lands while the leader sits in the gated-idle
            // state: `NewTransactions` proposes immediately.
            cl.submit_to(P1, 30, 0);
            cl.run_until_idle();
            cl.assert_consistent();
            assert_eq!(
                cl.total_committed_txs(P0),
                60,
                "{kind:?}: post-quiet burst stranded"
            );
        }
    }

    #[test]
    fn chained_marlin_view_change_recovers() {
        let mut cl = Cluster::new(ProtocolKind::ChainedMarlin, Config::for_test(4, 1), 4);
        cl.submit_to(P1, 50, 0);
        cl.run_until_idle();
        cl.crash(P1);
        while cl.min_view() < View(2) {
            assert!(cl.fire_next_timer());
        }
        cl.run_until_idle();
        cl.submit_to(P2, 50, 0);
        cl.run_until_idle();
        for _ in 0..8 {
            cl.fire_next_timer();
        }
        cl.run_until_idle();
        cl.assert_consistent();
        assert_eq!(cl.total_committed_txs(P0), 100);
    }

    #[test]
    fn chained_hotstuff_view_change_recovers() {
        let mut cl = Cluster::new(ProtocolKind::ChainedHotStuff, Config::for_test(4, 1), 5);
        cl.submit_to(P1, 50, 0);
        cl.run_until_idle();
        // Close the pipeline before crashing: an uncertified tip block
        // would otherwise be orphaned by HotStuff's new-view (its QC
        // never traveled), which is faithful but not what this test is
        // about.
        while cl.total_committed_txs(P0) < 50 {
            assert!(cl.fire_next_timer());
            cl.run_until_idle();
        }
        cl.crash(P1);
        while cl.min_view() < View(2) {
            assert!(cl.fire_next_timer());
        }
        cl.run_until_idle();
        cl.submit_to(P2, 50, 0);
        cl.run_until_idle();
        for _ in 0..10 {
            cl.fire_next_timer();
        }
        cl.run_until_idle();
        cl.assert_consistent();
        assert_eq!(cl.total_committed_txs(P0), 100);
    }

    #[test]
    fn three_chain_commits_one_block_later_than_two_chain() {
        // Both rules commit the whole burst (the leader closes its own
        // tail), but the three-chain rule needs exactly one more
        // tail-closing block to do it.
        let mut marlin = Cluster::new(ProtocolKind::ChainedMarlin, Config::for_test(4, 1), 6);
        let mut hotstuff = Cluster::new(ProtocolKind::ChainedHotStuff, Config::for_test(4, 1), 6);
        marlin.submit_to(P1, 30, 0);
        hotstuff.submit_to(P1, 30, 0);
        marlin.run_until_idle();
        hotstuff.run_until_idle();
        assert_eq!(marlin.total_committed_txs(P0), 30);
        assert_eq!(hotstuff.total_committed_txs(P0), 30);
        let proposals = |cl: &Cluster| {
            cl.notes()
                .iter()
                .filter(|(_, n)| matches!(n, Note::Proposed { .. }))
                .count()
        };
        assert_eq!(proposals(&hotstuff), proposals(&marlin) + 1);
    }
}
