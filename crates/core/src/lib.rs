//! Consensus protocols for the `marlin-bft` reproduction of *Marlin:
//! Two-Phase BFT with Linearity* (DSN 2022).
//!
//! Every protocol in this crate is a **deterministic, sans-io state
//! machine**: it consumes [`Event`]s (messages, timeouts, new
//! transactions) and emits [`Action`]s (sends, broadcasts, commits,
//! timer resets) plus a simulated CPU cost. The same state machines run
//! under the discrete-event network simulator (`marlin-simnet` via
//! `marlin-node`), under the in-process [`harness`] used by tests, and
//! under the benchmark drivers.
//!
//! Protocols provided:
//!
//! | module | protocol | normal case | view change |
//! |--------|----------|-------------|-------------|
//! | [`marlin`] | **Marlin** (the paper's contribution) | 2 phases | 2 (happy) or 3 phases, linear |
//! | [`hotstuff`] | basic HotStuff | 3 phases | 3 phases, linear |
//! | [`chained`] | chained (pipelined) Marlin & HotStuff | 1 proposal/round | as base protocol |
//! | [`jolteon`] | Jolteon-style two-phase baseline | 2 phases | 2 phases, **quadratic** |
//! | [`two_phase_insecure`] | the strawman of Section IV-B | 2 phases | loses liveness (kept for the Fig. 2 demonstrations) |
//!
//! # Example
//!
//! ```
//! use marlin_core::{harness::Cluster, Config, ProtocolKind};
//!
//! // Four replicas running Marlin over an instantly-delivering network.
//! let mut cluster = Cluster::new(ProtocolKind::Marlin, Config::for_test(4, 1), 42);
//! cluster.submit_transactions(100);
//! cluster.run_until_idle();
//! assert!(cluster.committed_height(0u32.into()) > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chained;
mod config;
mod crypto_ctx;
mod events;
pub mod harness;
pub mod hotstuff;
pub mod jolteon;
pub mod journal;
pub mod marlin;
pub mod marlin_four_phase;
mod pacemaker;
mod payload;
mod sync;
pub mod two_phase_insecure;
mod util;
mod votes;

pub use config::{Config, ProtocolKind};
pub use crypto_ctx::{CryptoCacheStats, CryptoCtx};
pub use events::{Action, Event, Note, StepOutput, VcCase};
pub use journal::{JournalIo, JournalRecord, SafetyJournal, SafetySnapshot};
pub use pacemaker::Pacemaker;
pub use util::Protocol;
pub use votes::VoteCollector;
