//! An in-process cluster harness with instant message delivery and a
//! virtual clock, used by unit/integration tests and the examples.
//!
//! Unlike `marlin-simnet` (which models latency, bandwidth, and loss),
//! this harness delivers messages immediately and fires timers only when
//! the test advances the virtual clock — making protocol logic easy to
//! drive deterministically.

use crate::chained::{ChainedHotStuff, ChainedMarlin};
use crate::config::{Config, ProtocolKind};
use crate::events::{Action, Event, Note};
use crate::hotstuff::HotStuff;
use crate::jolteon::Jolteon;
use crate::marlin::Marlin;
use crate::marlin_four_phase::MarlinFourPhase;
use crate::two_phase_insecure::TwoPhaseInsecure;
use crate::util::Protocol;
use bytes::Bytes;
use marlin_telemetry::TelemetrySink;
use marlin_types::{Block, BlockId, Message, MsgClass, ReplicaId, Transaction, View};
use std::collections::{BinaryHeap, HashSet, VecDeque};

/// A message filter: return `false` to drop the message on the link
/// from `from` to `to` (used to model partitions and Byzantine hiding).
pub type LinkFilter = Box<dyn Fn(ReplicaId, ReplicaId, &Message) -> bool>;

enum TimerKind {
    View(View),
    Heartbeat,
}

struct TimerEntry {
    at_ns: u64,
    seq: u64,
    replica: ReplicaId,
    kind: TimerKind,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at_ns == other.at_ns && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap via reversal: earliest deadline first, seq tiebreak.
        (other.at_ns, other.seq).cmp(&(self.at_ns, self.seq))
    }
}

/// Constructs a boxed protocol instance of the given kind.
pub fn build_protocol(kind: ProtocolKind, config: Config) -> Box<dyn Protocol> {
    match kind {
        ProtocolKind::Marlin => Box::new(Marlin::new(config)),
        ProtocolKind::HotStuff => Box::new(HotStuff::new(config)),
        ProtocolKind::ChainedMarlin => Box::new(ChainedMarlin::new(config)),
        ProtocolKind::ChainedHotStuff => Box::new(ChainedHotStuff::new(config)),
        ProtocolKind::Jolteon => Box::new(Jolteon::new(config)),
        ProtocolKind::TwoPhaseInsecure => Box::new(TwoPhaseInsecure::new(config)),
        ProtocolKind::MarlinFourPhase => Box::new(MarlinFourPhase::new(config)),
    }
}

/// An in-process cluster of `n` replicas with instant delivery.
///
/// # Example
///
/// ```
/// use marlin_core::{harness::Cluster, Config, ProtocolKind};
///
/// let mut cluster = Cluster::new(ProtocolKind::Marlin, Config::for_test(4, 1), 7);
/// cluster.submit_transactions(50);
/// cluster.run_until_idle();
/// cluster.assert_consistent();
/// assert!(cluster.total_committed_txs(0u32.into()) >= 50);
/// ```
pub struct Cluster {
    replicas: Vec<Box<dyn Protocol>>,
    crashed: HashSet<ReplicaId>,
    inbox: VecDeque<(ReplicaId, Event)>,
    timers: BinaryHeap<TimerEntry>,
    timer_seq: u64,
    now_ns: u64,
    next_tx: u64,
    notes: Vec<(ReplicaId, Note)>,
    committed: Vec<Vec<Block>>,
    filter: Option<LinkFilter>,
    steps: u64,
    /// Latest armed view-timer seq per replica (older entries are
    /// cancelled, modeling a pacemaker's re-arm).
    live_view_timer: Vec<u64>,
    /// Latest armed heartbeat seq per replica.
    live_heartbeat: Vec<u64>,
    /// Telemetry sink: notes and message sends are forwarded here,
    /// stamped with the virtual clock.
    telemetry: Option<Box<dyn TelemetrySink>>,
}

impl Cluster {
    /// Builds and starts a cluster of `config.n` replicas running
    /// `kind`. The seed is reserved for workload generation.
    pub fn new(kind: ProtocolKind, config: Config, seed: u64) -> Self {
        Cluster::from_builder(config, seed, |_, cfg| build_protocol(kind, cfg))
    }

    /// Builds and starts a cluster from a caller-supplied per-replica
    /// constructor (e.g. journal-backed replicas on shared disks that
    /// the test holds onto for later crash/restart).
    pub fn from_builder(
        config: Config,
        _seed: u64,
        mut build: impl FnMut(ReplicaId, Config) -> Box<dyn Protocol>,
    ) -> Self {
        let n = config.n;
        let mut cluster = Cluster {
            replicas: (0..n)
                .map(|i| {
                    let id = ReplicaId(i as u32);
                    build(id, config.with_id(id))
                })
                .collect(),
            crashed: HashSet::new(),
            inbox: VecDeque::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            now_ns: 0,
            next_tx: 0,
            notes: Vec::new(),
            committed: vec![Vec::new(); n],
            filter: None,
            steps: 0,
            live_view_timer: vec![0; n],
            live_heartbeat: vec![0; n],
            telemetry: None,
        };
        for i in 0..n {
            cluster.step_replica(ReplicaId(i as u32), Event::Start);
        }
        cluster.drain();
        cluster
    }

    /// The virtual clock, in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Access a replica (for state assertions).
    pub fn replica(&self, id: ReplicaId) -> &dyn Protocol {
        self.replicas[id.index()].as_ref()
    }

    /// Marks a replica as crashed: it receives no further events and
    /// sends nothing.
    pub fn crash(&mut self, id: ReplicaId) {
        self.crashed.insert(id);
    }

    /// Whether `id` has been crashed.
    pub fn is_crashed(&self, id: ReplicaId) -> bool {
        self.crashed.contains(&id)
    }

    /// Replaces a crashed replica with a rebuilt instance and delivers
    /// `Event::Start` + `Event::Recovered` — the harness analogue of
    /// the simulator's `Ev::Recover`. The replica's committed-block
    /// ledger is reset: a restarted process re-commits from scratch
    /// (or from its journal), exactly like a real node.
    pub fn restart(&mut self, id: ReplicaId, replica: Box<dyn Protocol>) {
        self.crashed.remove(&id);
        self.replicas[id.index()] = replica;
        self.committed[id.index()].clear();
        self.step_replica(id, Event::Start);
        self.step_replica(id, Event::Recovered);
        self.drain();
    }

    /// Installs a link filter (drop messages for which it returns
    /// `false`).
    pub fn set_filter(&mut self, filter: LinkFilter) {
        self.filter = Some(filter);
    }

    /// Removes the link filter.
    pub fn clear_filter(&mut self) {
        self.filter = None;
    }

    /// Submits `count` empty-payload transactions to the leader of the
    /// highest current view.
    pub fn submit_transactions(&mut self, count: usize) {
        let view = self.max_view();
        let leader = ReplicaId::leader_of(view, self.replicas.len());
        self.submit_to(leader, count, 0);
    }

    /// Submits `count` transactions with `payload_len`-byte payloads to
    /// a specific replica's mempool.
    pub fn submit_to(&mut self, id: ReplicaId, count: usize, payload_len: usize) {
        let txs: Vec<Transaction> = (0..count)
            .map(|_| {
                self.next_tx += 1;
                Transaction::new(
                    self.next_tx,
                    0,
                    Bytes::from(vec![0u8; payload_len]),
                    self.now_ns,
                )
            })
            .collect();
        self.enqueue(id, Event::NewTransactions(txs));
        self.drain();
    }

    /// Submits caller-constructed transactions (e.g. application
    /// commands) to a replica's mempool.
    pub fn inject_transactions(&mut self, to: ReplicaId, txs: Vec<Transaction>) {
        self.enqueue(to, Event::NewTransactions(txs));
        self.drain();
    }

    /// Injects an arbitrary message (for Byzantine scenarios).
    pub fn inject(&mut self, to: ReplicaId, message: Message) {
        self.enqueue(to, Event::Message(message));
        self.drain();
    }

    /// Delivers all pending messages (without firing timers).
    ///
    /// # Panics
    ///
    /// Panics if a safety-violating commit is detected or the step
    /// budget (10M) is exhausted (livelock guard).
    pub fn run_until_idle(&mut self) {
        self.drain();
    }

    /// Fires the next pending timer (advancing the clock), then delivers
    /// all resulting messages. Returns `false` if no timers are armed.
    pub fn fire_next_timer(&mut self) -> bool {
        loop {
            let Some(entry) = self.timers.pop() else {
                return false;
            };
            if self.crashed.contains(&entry.replica) {
                continue;
            }
            // Skip superseded timers: only the most recently armed timer
            // of each kind is live (re-arming cancels the previous one).
            let live = match entry.kind {
                TimerKind::View(_) => self.live_view_timer[entry.replica.index()] == entry.seq,
                TimerKind::Heartbeat => self.live_heartbeat[entry.replica.index()] == entry.seq,
            };
            if !live {
                continue;
            }
            self.now_ns = self.now_ns.max(entry.at_ns);
            let event = match entry.kind {
                TimerKind::View(view) => Event::Timeout { view },
                TimerKind::Heartbeat => Event::Heartbeat,
            };
            self.step_replica(entry.replica, event);
            self.drain();
            return true;
        }
    }

    /// Fires timers until `deadline_ns` of virtual time has passed or no
    /// timers remain.
    pub fn run_until(&mut self, deadline_ns: u64) {
        while let Some(top) = self.timers.peek() {
            if top.at_ns > deadline_ns {
                break;
            }
            self.fire_next_timer();
        }
        self.now_ns = self.now_ns.max(deadline_ns);
    }

    /// The lowest view any correct replica is in.
    pub fn min_view(&self) -> View {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.crashed.contains(&ReplicaId(*i as u32)))
            .map(|(_, r)| r.current_view())
            .min()
            .unwrap_or(View(1))
    }

    /// The highest view any correct replica is in.
    pub fn max_view(&self) -> View {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.crashed.contains(&ReplicaId(*i as u32)))
            .map(|(_, r)| r.current_view())
            .max()
            .unwrap_or(View(1))
    }

    /// Blocks committed by `id`, in commit order (excluding genesis).
    pub fn committed_blocks(&self, id: ReplicaId) -> &[Block] {
        &self.committed[id.index()]
    }

    /// Number of blocks committed by `id` (excluding genesis).
    pub fn committed_height(&self, id: ReplicaId) -> usize {
        self.committed[id.index()].len()
    }

    /// Total transactions committed by `id`.
    pub fn total_committed_txs(&self, id: ReplicaId) -> usize {
        self.committed[id.index()]
            .iter()
            .map(|b| b.payload().len())
            .sum()
    }

    /// All notes emitted so far, in order.
    pub fn notes(&self) -> &[(ReplicaId, Note)] {
        &self.notes
    }

    /// Installs a telemetry sink. Every note and every transmitted
    /// message is forwarded to it, stamped with the virtual clock.
    /// Install before driving the cluster: events emitted earlier are
    /// not replayed.
    pub fn set_telemetry(&mut self, sink: Box<dyn TelemetrySink>) {
        self.telemetry = Some(sink);
    }

    /// Removes and returns the installed telemetry sink, if any.
    pub fn take_telemetry(&mut self) -> Option<Box<dyn TelemetrySink>> {
        self.telemetry.take()
    }

    /// Asserts that all correct replicas' committed chains are
    /// prefix-consistent (the safety property of Theorem 1).
    ///
    /// # Panics
    ///
    /// Panics on any divergence.
    pub fn assert_consistent(&self) {
        let chains: Vec<(usize, Vec<BlockId>)> = self
            .committed
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.crashed.contains(&ReplicaId(*i as u32)))
            .map(|(i, blocks)| (i, blocks.iter().map(Block::id).collect()))
            .collect();
        for (i, a) in &chains {
            for (j, b) in &chains {
                if i >= j {
                    continue;
                }
                let len = a.len().min(b.len());
                assert_eq!(
                    &a[..len],
                    &b[..len],
                    "committed chains of p{i} and p{j} diverge"
                );
            }
        }
    }

    // ------------------------------------------------------ internal --

    fn enqueue(&mut self, to: ReplicaId, event: Event) {
        if !self.crashed.contains(&to) {
            self.inbox.push_back((to, event));
        }
    }

    fn step_replica(&mut self, id: ReplicaId, event: Event) {
        if self.crashed.contains(&id) {
            return;
        }
        let out = self.replicas[id.index()].step(event);
        self.dispatch(id, out.actions);
    }

    fn dispatch(&mut self, from: ReplicaId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send { to, message } => {
                    debug_assert_ne!(to, from, "self-sends are resolved by step()");
                    if self.allowed(from, to, &message) {
                        self.record_sent(from, &message);
                        self.enqueue(to, Event::Message(message));
                    }
                }
                Action::Broadcast { message } => {
                    for i in 0..self.replicas.len() {
                        let to = ReplicaId(i as u32);
                        if to != from && self.allowed(from, to, &message) {
                            self.record_sent(from, &message);
                            self.enqueue(to, Event::Message(message.clone()));
                        }
                    }
                }
                Action::Commit { blocks } => {
                    self.committed[from.index()].extend(blocks);
                }
                Action::SetTimer { view, delay_ns } => {
                    self.timer_seq += 1;
                    self.live_view_timer[from.index()] = self.timer_seq;
                    self.timers.push(TimerEntry {
                        at_ns: self.now_ns + delay_ns,
                        seq: self.timer_seq,
                        replica: from,
                        kind: TimerKind::View(view),
                    });
                }
                Action::SetHeartbeat { delay_ns } => {
                    self.timer_seq += 1;
                    self.live_heartbeat[from.index()] = self.timer_seq;
                    self.timers.push(TimerEntry {
                        at_ns: self.now_ns + delay_ns,
                        seq: self.timer_seq,
                        replica: from,
                        kind: TimerKind::Heartbeat,
                    });
                }
                Action::Note(note) => {
                    if let Some(sink) = self.telemetry.as_mut() {
                        sink.note(self.now_ns, from, &note);
                    }
                    self.notes.push((from, note));
                }
            }
        }
    }

    /// Forwards one transmitted message copy to the telemetry sink.
    /// The harness models instant links, so the full (non-shadow) wire
    /// length is charged.
    fn record_sent(&mut self, from: ReplicaId, message: &Message) {
        if let Some(sink) = self.telemetry.as_mut() {
            sink.message_sent(
                self.now_ns,
                from,
                MsgClass::of(message),
                message.wire_len(false) as u64,
                message.authenticator_count() as u64,
            );
        }
    }

    fn allowed(&self, from: ReplicaId, to: ReplicaId, msg: &Message) -> bool {
        match &self.filter {
            Some(f) => f(from, to, msg),
            None => true,
        }
    }

    fn drain(&mut self) {
        while let Some((to, event)) = self.inbox.pop_front() {
            self.steps += 1;
            assert!(
                self.steps < 10_000_000,
                "cluster livelock: step budget exhausted"
            );
            self.step_replica(to, event);
        }
    }
}
