//! Cost-accounted cryptography for the protocol state machines.

use crate::config::Config;
use marlin_crypto::{CostModel, CryptoOp, KeyStore, PartialSig, QcFormat, Signature, Signer};
use marlin_types::{Justify, Qc, QcSeed, VcCert};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

/// Capacity of the seed signing-bytes memo. Chained pipelines interleave
/// a handful of in-flight heights (plus the odd view-change seed), so a
/// small fixed LRU absorbs the working set without unbounded growth.
const SEED_MEMO_CAPACITY: usize = 8;

/// Snapshot of a [`CryptoCtx`]'s cache health, for telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CryptoCacheStats {
    /// Seed-memo lookups answered from the LRU.
    pub seed_hits: u64,
    /// Seed-memo lookups that recomputed the signing bytes.
    pub seed_misses: u64,
    /// Verified-QC cache entries currently held.
    pub verified_qcs: usize,
}

/// Performs signing/verification through the [`KeyStore`] while charging
/// simulated CPU time per the replica's [`CostModel`].
///
/// Verified QCs are cached (by seed signing bytes) so that a certificate
/// carried by many messages is only charged once, mirroring the
/// verification caches of production BFT implementations.
#[derive(Clone, Debug)]
pub struct CryptoCtx {
    keys: Arc<KeyStore>,
    signer: Signer,
    cost: CostModel,
    format: QcFormat,
    batch_verify: bool,
    crypto_workers: usize,
    charged_ns: u64,
    verified_qcs: HashSet<[u8; 32]>,
    /// Insertion order of `verified_qcs`, for bounded FIFO eviction.
    verified_order: VecDeque<[u8; 32]>,
    /// Recently computed seed signing bytes, most recent first. Vote
    /// handling asks for the same few seeds' bytes over and over (once
    /// per share, interleaved across in-flight heights in chained
    /// mode), so a small move-to-front LRU absorbs nearly every repeat
    /// without unbounded growth.
    seed_memo: VecDeque<(QcSeed, [u8; 32])>,
    seed_hits: u64,
    seed_misses: u64,
}

impl CryptoCtx {
    /// Creates a context for the replica described by `config`.
    pub fn new(config: &Config) -> Self {
        CryptoCtx {
            keys: Arc::clone(&config.keys),
            signer: config.keys.signer(config.id.index()),
            cost: config.cost,
            format: config.qc_format,
            batch_verify: config.batch_verify,
            crypto_workers: config.crypto_workers.max(1),
            charged_ns: 0,
            verified_qcs: HashSet::new(),
            verified_order: VecDeque::new(),
            seed_memo: VecDeque::new(),
            seed_hits: 0,
            seed_misses: 0,
        }
    }

    /// Canonical signing bytes of `seed`, served from a small
    /// move-to-front LRU (the working set is the handful of seeds whose
    /// votes are currently being collected).
    pub fn seed_bytes(&mut self, seed: &QcSeed) -> [u8; 32] {
        if let Some(pos) = self.seed_memo.iter().position(|(s, _)| s == seed) {
            self.seed_hits += 1;
            let entry = self.seed_memo.remove(pos).expect("position is in range");
            let bytes = entry.1;
            self.seed_memo.push_front(entry);
            return bytes;
        }
        self.seed_misses += 1;
        let bytes = seed.signing_bytes();
        self.seed_memo.push_front((*seed, bytes));
        self.seed_memo.truncate(SEED_MEMO_CAPACITY);
        bytes
    }

    /// Marks `key` as a verified certificate, tracking insertion order
    /// so [`CryptoCtx::trim_cache`] can evict oldest-first.
    ///
    /// The cache bounds *itself*: once it exceeds
    /// [`CryptoCtx::VERIFIED_CACHE_HIGH_WATER`] it trims back to
    /// [`CryptoCtx::VERIFIED_CACHE_TARGET`], so every driver — the
    /// discrete-event simulator with its periodic maintenance tick, a
    /// threaded runtime with none — inherits boundedness instead of
    /// depending on an external event loop to call
    /// [`CryptoCtx::trim_cache`].
    fn cache_verified(&mut self, key: [u8; 32]) {
        if self.verified_qcs.insert(key) {
            self.verified_order.push_back(key);
            if self.verified_qcs.len() > Self::VERIFIED_CACHE_HIGH_WATER {
                self.trim_cache(Self::VERIFIED_CACHE_TARGET);
            }
        }
    }

    /// Size at which [`CryptoCtx`] trims its verified-QC cache on its
    /// own, with no maintenance tick. Deliberately above the simnet
    /// maintenance bound (4096 every 8192 events) so deterministic
    /// simulations keep their externally-driven eviction schedule and
    /// the self-trim only engages where no tick exists.
    pub const VERIFIED_CACHE_HIGH_WATER: usize = 8192;

    /// What the self-trim trims down to.
    pub const VERIFIED_CACHE_TARGET: usize = 4096;

    /// The QC wire format in use.
    pub fn format(&self) -> QcFormat {
        self.format
    }

    /// Whether vote shares should be staged and batch-verified at
    /// quorum-trigger points instead of verified one-at-a-time.
    pub fn batch_verify(&self) -> bool {
        self.batch_verify
    }

    /// Size of the simulated crypto worker pool.
    pub fn crypto_workers(&self) -> usize {
        self.crypto_workers
    }

    /// Number of replicas in the key universe.
    pub fn n(&self) -> usize {
        self.keys.n()
    }

    /// Current cache counters (seed-memo hits/misses, verified-QC
    /// cache size).
    pub fn cache_stats(&self) -> CryptoCacheStats {
        CryptoCacheStats {
            seed_hits: self.seed_hits,
            seed_misses: self.seed_misses,
            verified_qcs: self.verified_qcs.len(),
        }
    }

    /// Takes and resets the accumulated CPU charge.
    pub fn take_charge(&mut self) -> u64 {
        std::mem::take(&mut self.charged_ns)
    }

    /// Signs a vote seed, producing a partial signature.
    pub fn sign_seed(&mut self, seed: &QcSeed) -> PartialSig {
        self.charged_ns += self.cost.cost(CryptoOp::Sign);
        let bytes = self.seed_bytes(seed);
        self.signer.sign_partial(&bytes)
    }

    /// Signs arbitrary bytes with a conventional signature (used by the
    /// Jolteon baseline's view-change certificates).
    pub fn sign_bytes(&mut self, bytes: &[u8]) -> Signature {
        self.charged_ns += self.cost.cost(CryptoOp::Sign);
        self.signer.sign(bytes)
    }

    /// Verifies a partial signature over a seed.
    pub fn verify_partial(&mut self, seed: &QcSeed, parsig: &PartialSig) -> bool {
        self.charged_ns += self.cost.cost(CryptoOp::Verify);
        let bytes = self.seed_bytes(seed);
        self.keys.verify_partial(&bytes, parsig)
    }

    /// Verifies a batch of vote shares over one seed in a single
    /// amortized pass, charging [`CryptoOp::VerifyBatch`]. When the
    /// batch check fails, the per-signature fallback is charged on top
    /// (one stand-alone verify per share — the price of identifying the
    /// culprits) and `Err` names exactly the bad indices.
    pub fn verify_partial_batch(
        &mut self,
        seed: &QcSeed,
        partials: &[PartialSig],
    ) -> Result<(), Vec<usize>> {
        self.charged_ns += self.cost.cost(CryptoOp::VerifyBatch {
            sigs: partials.len(),
        });
        let bytes = self.seed_bytes(seed);
        let result = self.keys.verify_partial_batch(&bytes, partials);
        if result.is_err() {
            self.charged_ns += partials.len() as u64 * self.cost.cost(CryptoOp::Verify);
        }
        result
    }

    /// Verifies a quorum certificate, charging per its format; cached.
    ///
    /// A `SigGroup` certificate is a bag of partial signatures over one
    /// seed — exactly the shape batch verification amortizes — so when
    /// batching is enabled its check is charged as one
    /// [`CryptoOp::VerifyBatch`] pass instead of per-signer verifies.
    /// `Threshold` certificates are a single pairing either way.
    pub fn verify_qc(&mut self, qc: &Qc) -> bool {
        if qc.is_genesis() {
            return true;
        }
        let key = *qc.signing_bytes();
        if self.verified_qcs.contains(&key) {
            return true;
        }
        let format = qc.sig().format();
        let signers = qc.sig().signers().count();
        let op = if self.batch_verify && format == QcFormat::SigGroup {
            CryptoOp::VerifyBatch { sigs: signers }
        } else {
            CryptoOp::VerifyCombined { format, signers }
        };
        self.charged_ns += self.cost.cost(op);
        let ok = qc.verify(&self.keys);
        if ok {
            self.cache_verified(key);
        }
        ok
    }

    /// Verifies every certificate in a [`Justify`].
    pub fn verify_justify(&mut self, justify: &Justify) -> bool {
        justify.iter().all(|qc| {
            // Iterate eagerly so each QC is charged/cached individually.
            self.verify_qc(qc)
        })
    }

    /// Verifies one Jolteon view-change certificate.
    pub fn verify_vc_cert(&mut self, view: marlin_types::View, cert: &VcCert) -> bool {
        self.charged_ns += self.cost.cost(CryptoOp::Verify);
        let bytes = VcCert::signing_bytes(cert.from, view, &cert.high_qc);
        self.keys.verify(cert.from.index(), &bytes, &cert.sig) && self.verify_qc(&cert.high_qc)
    }

    /// Combines partial signatures into a certificate, charging combine
    /// cost. Returns `None` below threshold (should not happen if the
    /// caller gates on quorum size).
    pub fn combine(&mut self, seed: QcSeed, partials: &[PartialSig]) -> Option<Qc> {
        // Per-share combine work is embarrassingly parallel, so a
        // worker pool divides the wall-clock charge (ceiling division:
        // a lone share still costs one share).
        let combine_ns = self.cost.cost(CryptoOp::Combine {
            shares: partials.len(),
        });
        self.charged_ns += combine_ns.div_ceil(self.crypto_workers as u64);
        let qc = Qc::combine(seed, partials, &self.keys, self.format).ok()?;
        self.cache_verified(*qc.signing_bytes());
        Some(qc)
    }

    /// Charges hashing cost for `len` bytes (e.g. block identity checks).
    pub fn charge_hash(&mut self, len: usize) {
        self.charged_ns += self.cost.cost(CryptoOp::Hash { len });
    }

    /// Evicts oldest-first until the verification cache holds at most
    /// `max` entries; called by long-running drivers to bound memory.
    /// Recently verified certificates — the ones still circulating in
    /// live messages — survive, so a trim does not force the whole
    /// working set to re-verify.
    pub fn trim_cache(&mut self, max: usize) {
        while self.verified_qcs.len() > max {
            let oldest = self.verified_order.pop_front().expect("order tracks set");
            self.verified_qcs.remove(&oldest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;
    use marlin_types::{BlockId, BlockKind, Height, Phase, View};

    fn seed(view: u64) -> QcSeed {
        QcSeed {
            phase: Phase::Prepare,
            view: View(view),
            block: BlockId::GENESIS,
            height: Height(view),
            block_view: View(view),
            pview: View(0),
            block_kind: BlockKind::Normal,
        }
    }

    fn ctx_with_cost() -> (CryptoCtx, Config) {
        let mut cfg = Config::for_test(4, 1);
        cfg.cost = CostModel::ecdsa_like();
        (CryptoCtx::new(&cfg), cfg)
    }

    #[test]
    fn signing_charges_cpu() {
        let (mut ctx, _cfg) = ctx_with_cost();
        assert_eq!(ctx.take_charge(), 0);
        ctx.sign_seed(&seed(1));
        assert_eq!(ctx.take_charge(), CostModel::ecdsa_like().sign_ns);
        assert_eq!(ctx.take_charge(), 0);
    }

    #[test]
    fn qc_verification_is_cached() {
        let (mut ctx, cfg) = ctx_with_cost();
        let s = seed(2);
        let partials: Vec<_> = (0..3)
            .map(|i| cfg.keys.signer(i).sign_partial(&s.signing_bytes()))
            .collect();
        let qc = Qc::combine(s, &partials, &cfg.keys, QcFormat::Threshold).unwrap();
        assert!(ctx.verify_qc(&qc));
        let first = ctx.take_charge();
        assert!(first > 0);
        assert!(ctx.verify_qc(&qc));
        assert_eq!(ctx.take_charge(), 0, "second verification must be cached");
    }

    #[test]
    fn combine_round_trip_and_self_cache() {
        let (mut ctx, cfg) = ctx_with_cost();
        let s = seed(3);
        let partials: Vec<_> = (0..3)
            .map(|i| cfg.keys.signer(i).sign_partial(&s.signing_bytes()))
            .collect();
        let qc = ctx.combine(s, &partials).unwrap();
        ctx.take_charge();
        // A QC we combined ourselves verifies for free.
        assert!(ctx.verify_qc(&qc));
        assert_eq!(ctx.take_charge(), 0);
    }

    #[test]
    fn bad_partial_rejected() {
        let (mut ctx, cfg) = ctx_with_cost();
        let s = seed(4);
        let wrong = cfg.keys.signer(1).sign_partial(b"something else");
        assert!(!ctx.verify_partial(&s, &wrong));
    }

    #[test]
    fn trim_under_capacity_keeps_verified_qcs_cached() {
        let (mut ctx, cfg) = ctx_with_cost();
        let qcs: Vec<Qc> = (1..=4)
            .map(|v| {
                let s = seed(v);
                let partials: Vec<_> = (0..3)
                    .map(|i| cfg.keys.signer(i).sign_partial(&s.signing_bytes()))
                    .collect();
                Qc::combine(s, &partials, &cfg.keys, QcFormat::Threshold).unwrap()
            })
            .collect();
        for qc in &qcs {
            assert!(ctx.verify_qc(qc));
        }
        ctx.take_charge();
        // Regression: a trim that is still within capacity must be a
        // no-op, not a full flush — every QC stays cached.
        ctx.trim_cache(10);
        for qc in &qcs {
            assert!(ctx.verify_qc(qc));
        }
        assert_eq!(
            ctx.take_charge(),
            0,
            "trim under capacity evicted cached QCs"
        );
    }

    #[test]
    fn trim_over_capacity_evicts_oldest_first() {
        let (mut ctx, cfg) = ctx_with_cost();
        // Views start at 1: a (view 0, height 0) seed would read as the
        // genesis QC, which verifies free and is never cached.
        let qcs: Vec<Qc> = (1..=4)
            .map(|v| {
                let s = seed(v);
                let partials: Vec<_> = (0..3)
                    .map(|i| cfg.keys.signer(i).sign_partial(&s.signing_bytes()))
                    .collect();
                Qc::combine(s, &partials, &cfg.keys, QcFormat::Threshold).unwrap()
            })
            .collect();
        for qc in &qcs {
            assert!(ctx.verify_qc(qc));
        }
        ctx.take_charge();
        ctx.trim_cache(2);
        // The two oldest re-verify (charged); the two newest stay free.
        assert!(ctx.verify_qc(&qcs[0]));
        assert!(
            ctx.take_charge() > 0,
            "oldest entry should have been evicted"
        );
        assert!(ctx.verify_qc(&qcs[3]));
        assert_eq!(ctx.take_charge(), 0, "newest entry should have survived");
    }

    #[test]
    fn cache_self_bounds_without_maintenance_tick() {
        // A long-lived node that never gets an external maintenance
        // tick (the threaded runtime path) must still keep the
        // verified-QC cache bounded.
        let (mut ctx, cfg) = ctx_with_cost();
        let total = CryptoCtx::VERIFIED_CACHE_HIGH_WATER + 200;
        for v in 1..=total as u64 {
            let s = seed(v);
            let partials: Vec<_> = (0..3)
                .map(|i| cfg.keys.signer(i).sign_partial(&s.signing_bytes()))
                .collect();
            ctx.combine(s, &partials).unwrap();
            assert!(
                ctx.cache_stats().verified_qcs <= CryptoCtx::VERIFIED_CACHE_HIGH_WATER,
                "cache exceeded high water at {v}"
            );
        }
        // The trim went to the target, not to empty: recent QCs stay.
        let stats = ctx.cache_stats();
        assert!(stats.verified_qcs > CryptoCtx::VERIFIED_CACHE_TARGET / 2);
    }

    #[test]
    fn genesis_qc_is_free() {
        let (mut ctx, _cfg) = ctx_with_cost();
        assert!(ctx.verify_qc(&Qc::genesis(BlockId::GENESIS)));
        assert_eq!(ctx.take_charge(), 0);
    }

    #[test]
    fn seed_memo_survives_interleaving() {
        // The chained pipeline's access pattern: a few seeds queried
        // round-robin. The single-entry memo of old thrashed here; the
        // LRU must answer every repeat from cache.
        let (mut ctx, _cfg) = ctx_with_cost();
        for v in 1..=4 {
            ctx.seed_bytes(&seed(v));
        }
        let misses_after_warmup = ctx.cache_stats().seed_misses;
        for _ in 0..5 {
            for v in 1..=4 {
                ctx.seed_bytes(&seed(v));
            }
        }
        let stats = ctx.cache_stats();
        assert_eq!(stats.seed_misses, misses_after_warmup, "LRU thrashed");
        assert_eq!(stats.seed_hits, 20);
    }

    #[test]
    fn seed_memo_stays_bounded() {
        let (mut ctx, _cfg) = ctx_with_cost();
        for v in 1..=100 {
            ctx.seed_bytes(&seed(v));
        }
        assert!(ctx.seed_memo.len() <= SEED_MEMO_CAPACITY);
        // The most recent seed is still memoized …
        let before = ctx.cache_stats().seed_hits;
        ctx.seed_bytes(&seed(100));
        assert_eq!(ctx.cache_stats().seed_hits, before + 1);
        // … and the long-evicted one is not.
        let misses = ctx.cache_stats().seed_misses;
        ctx.seed_bytes(&seed(1));
        assert_eq!(ctx.cache_stats().seed_misses, misses + 1);
    }

    #[test]
    fn batch_verification_charges_amortized_cost() {
        let (mut ctx, cfg) = ctx_with_cost();
        let s = seed(5);
        let partials: Vec<_> = (0..3)
            .map(|i| cfg.keys.signer(i).sign_partial(&s.signing_bytes()))
            .collect();
        assert_eq!(ctx.verify_partial_batch(&s, &partials), Ok(()));
        let m = CostModel::ecdsa_like();
        let charged = ctx.take_charge();
        assert_eq!(charged, m.cost(CryptoOp::VerifyBatch { sigs: 3 }));
        assert!(charged < 3 * m.cost(CryptoOp::Verify));
    }

    #[test]
    fn failed_batch_charges_fallback_scan() {
        let (mut ctx, cfg) = ctx_with_cost();
        let s = seed(6);
        let mut partials: Vec<_> = (0..3)
            .map(|i| cfg.keys.signer(i).sign_partial(&s.signing_bytes()))
            .collect();
        partials[1] = cfg.keys.signer(1).sign_partial(b"wrong message");
        assert_eq!(ctx.verify_partial_batch(&s, &partials), Err(vec![1]));
        let m = CostModel::ecdsa_like();
        assert_eq!(
            ctx.take_charge(),
            m.cost(CryptoOp::VerifyBatch { sigs: 3 }) + 3 * m.cost(CryptoOp::Verify)
        );
    }

    #[test]
    fn worker_pool_divides_combine_charge() {
        let mut cfg = Config::for_test(16, 5);
        cfg.cost = CostModel::bls_like();
        cfg.crypto_workers = 4;
        let mut ctx = CryptoCtx::new(&cfg);
        let s = seed(7);
        let partials: Vec<_> = (0..11)
            .map(|i| cfg.keys.signer(i).sign_partial(&s.signing_bytes()))
            .collect();
        ctx.combine(s, &partials).unwrap();
        let serial = CostModel::bls_like().cost(CryptoOp::Combine { shares: 11 });
        assert_eq!(ctx.take_charge(), serial.div_ceil(4));
    }
}
