//! Cost-accounted cryptography for the protocol state machines.

use crate::config::Config;
use marlin_crypto::{CostModel, CryptoOp, KeyStore, PartialSig, QcFormat, Signature, Signer};
use marlin_types::{Justify, Qc, QcSeed, VcCert};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

/// Performs signing/verification through the [`KeyStore`] while charging
/// simulated CPU time per the replica's [`CostModel`].
///
/// Verified QCs are cached (by seed signing bytes) so that a certificate
/// carried by many messages is only charged once, mirroring the
/// verification caches of production BFT implementations.
#[derive(Clone, Debug)]
pub struct CryptoCtx {
    keys: Arc<KeyStore>,
    signer: Signer,
    cost: CostModel,
    format: QcFormat,
    charged_ns: u64,
    verified_qcs: HashSet<[u8; 32]>,
    /// Insertion order of `verified_qcs`, for bounded FIFO eviction.
    verified_order: VecDeque<[u8; 32]>,
    /// Last seed whose signing bytes were computed. Vote handling asks
    /// for the same seed's bytes `n − f` times back-to-back (once per
    /// share), so a single-entry memo absorbs nearly every repeat
    /// without unbounded growth.
    last_seed: Option<(QcSeed, [u8; 32])>,
}

impl CryptoCtx {
    /// Creates a context for the replica described by `config`.
    pub fn new(config: &Config) -> Self {
        CryptoCtx {
            keys: Arc::clone(&config.keys),
            signer: config.keys.signer(config.id.index()),
            cost: config.cost,
            format: config.qc_format,
            charged_ns: 0,
            verified_qcs: HashSet::new(),
            verified_order: VecDeque::new(),
            last_seed: None,
        }
    }

    /// Canonical signing bytes of `seed`, memoized for consecutive calls
    /// with the same seed (the common case while collecting one round's
    /// votes).
    pub fn seed_bytes(&mut self, seed: &QcSeed) -> [u8; 32] {
        if let Some((cached, bytes)) = &self.last_seed {
            if cached == seed {
                return *bytes;
            }
        }
        let bytes = seed.signing_bytes();
        self.last_seed = Some((*seed, bytes));
        bytes
    }

    /// Marks `key` as a verified certificate, tracking insertion order
    /// so [`CryptoCtx::trim_cache`] can evict oldest-first.
    fn cache_verified(&mut self, key: [u8; 32]) {
        if self.verified_qcs.insert(key) {
            self.verified_order.push_back(key);
        }
    }

    /// The QC wire format in use.
    pub fn format(&self) -> QcFormat {
        self.format
    }

    /// Takes and resets the accumulated CPU charge.
    pub fn take_charge(&mut self) -> u64 {
        std::mem::take(&mut self.charged_ns)
    }

    /// Signs a vote seed, producing a partial signature.
    pub fn sign_seed(&mut self, seed: &QcSeed) -> PartialSig {
        self.charged_ns += self.cost.cost(CryptoOp::Sign);
        let bytes = self.seed_bytes(seed);
        self.signer.sign_partial(&bytes)
    }

    /// Signs arbitrary bytes with a conventional signature (used by the
    /// Jolteon baseline's view-change certificates).
    pub fn sign_bytes(&mut self, bytes: &[u8]) -> Signature {
        self.charged_ns += self.cost.cost(CryptoOp::Sign);
        self.signer.sign(bytes)
    }

    /// Verifies a partial signature over a seed.
    pub fn verify_partial(&mut self, seed: &QcSeed, parsig: &PartialSig) -> bool {
        self.charged_ns += self.cost.cost(CryptoOp::Verify);
        let bytes = self.seed_bytes(seed);
        self.keys.verify_partial(&bytes, parsig)
    }

    /// Verifies a quorum certificate, charging per its format; cached.
    pub fn verify_qc(&mut self, qc: &Qc) -> bool {
        if qc.is_genesis() {
            return true;
        }
        let key = *qc.signing_bytes();
        if self.verified_qcs.contains(&key) {
            return true;
        }
        self.charged_ns += self.cost.cost(CryptoOp::VerifyCombined {
            format: qc.sig().format(),
            signers: qc.sig().signers().count(),
        });
        let ok = qc.verify(&self.keys);
        if ok {
            self.cache_verified(key);
        }
        ok
    }

    /// Verifies every certificate in a [`Justify`].
    pub fn verify_justify(&mut self, justify: &Justify) -> bool {
        justify.iter().all(|qc| {
            // Iterate eagerly so each QC is charged/cached individually.
            self.verify_qc(qc)
        })
    }

    /// Verifies one Jolteon view-change certificate.
    pub fn verify_vc_cert(&mut self, view: marlin_types::View, cert: &VcCert) -> bool {
        self.charged_ns += self.cost.cost(CryptoOp::Verify);
        let bytes = VcCert::signing_bytes(cert.from, view, &cert.high_qc);
        self.keys.verify(cert.from.index(), &bytes, &cert.sig) && self.verify_qc(&cert.high_qc)
    }

    /// Combines partial signatures into a certificate, charging combine
    /// cost. Returns `None` below threshold (should not happen if the
    /// caller gates on quorum size).
    pub fn combine(&mut self, seed: QcSeed, partials: &[PartialSig]) -> Option<Qc> {
        self.charged_ns += self.cost.cost(CryptoOp::Combine {
            shares: partials.len(),
        });
        let qc = Qc::combine(seed, partials, &self.keys, self.format).ok()?;
        self.cache_verified(*qc.signing_bytes());
        Some(qc)
    }

    /// Charges hashing cost for `len` bytes (e.g. block identity checks).
    pub fn charge_hash(&mut self, len: usize) {
        self.charged_ns += self.cost.cost(CryptoOp::Hash { len });
    }

    /// Evicts oldest-first until the verification cache holds at most
    /// `max` entries; called by long-running drivers to bound memory.
    /// Recently verified certificates — the ones still circulating in
    /// live messages — survive, so a trim does not force the whole
    /// working set to re-verify.
    pub fn trim_cache(&mut self, max: usize) {
        while self.verified_qcs.len() > max {
            let oldest = self.verified_order.pop_front().expect("order tracks set");
            self.verified_qcs.remove(&oldest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;
    use marlin_types::{BlockId, BlockKind, Height, Phase, View};

    fn seed(view: u64) -> QcSeed {
        QcSeed {
            phase: Phase::Prepare,
            view: View(view),
            block: BlockId::GENESIS,
            height: Height(view),
            block_view: View(view),
            pview: View(0),
            block_kind: BlockKind::Normal,
        }
    }

    fn ctx_with_cost() -> (CryptoCtx, Config) {
        let mut cfg = Config::for_test(4, 1);
        cfg.cost = CostModel::ecdsa_like();
        (CryptoCtx::new(&cfg), cfg)
    }

    #[test]
    fn signing_charges_cpu() {
        let (mut ctx, _cfg) = ctx_with_cost();
        assert_eq!(ctx.take_charge(), 0);
        ctx.sign_seed(&seed(1));
        assert_eq!(ctx.take_charge(), CostModel::ecdsa_like().sign_ns);
        assert_eq!(ctx.take_charge(), 0);
    }

    #[test]
    fn qc_verification_is_cached() {
        let (mut ctx, cfg) = ctx_with_cost();
        let s = seed(2);
        let partials: Vec<_> = (0..3)
            .map(|i| cfg.keys.signer(i).sign_partial(&s.signing_bytes()))
            .collect();
        let qc = Qc::combine(s, &partials, &cfg.keys, QcFormat::Threshold).unwrap();
        assert!(ctx.verify_qc(&qc));
        let first = ctx.take_charge();
        assert!(first > 0);
        assert!(ctx.verify_qc(&qc));
        assert_eq!(ctx.take_charge(), 0, "second verification must be cached");
    }

    #[test]
    fn combine_round_trip_and_self_cache() {
        let (mut ctx, cfg) = ctx_with_cost();
        let s = seed(3);
        let partials: Vec<_> = (0..3)
            .map(|i| cfg.keys.signer(i).sign_partial(&s.signing_bytes()))
            .collect();
        let qc = ctx.combine(s, &partials).unwrap();
        ctx.take_charge();
        // A QC we combined ourselves verifies for free.
        assert!(ctx.verify_qc(&qc));
        assert_eq!(ctx.take_charge(), 0);
    }

    #[test]
    fn bad_partial_rejected() {
        let (mut ctx, cfg) = ctx_with_cost();
        let s = seed(4);
        let wrong = cfg.keys.signer(1).sign_partial(b"something else");
        assert!(!ctx.verify_partial(&s, &wrong));
    }

    #[test]
    fn trim_under_capacity_keeps_verified_qcs_cached() {
        let (mut ctx, cfg) = ctx_with_cost();
        let qcs: Vec<Qc> = (1..=4)
            .map(|v| {
                let s = seed(v);
                let partials: Vec<_> = (0..3)
                    .map(|i| cfg.keys.signer(i).sign_partial(&s.signing_bytes()))
                    .collect();
                Qc::combine(s, &partials, &cfg.keys, QcFormat::Threshold).unwrap()
            })
            .collect();
        for qc in &qcs {
            assert!(ctx.verify_qc(qc));
        }
        ctx.take_charge();
        // Regression: a trim that is still within capacity must be a
        // no-op, not a full flush — every QC stays cached.
        ctx.trim_cache(10);
        for qc in &qcs {
            assert!(ctx.verify_qc(qc));
        }
        assert_eq!(
            ctx.take_charge(),
            0,
            "trim under capacity evicted cached QCs"
        );
    }

    #[test]
    fn trim_over_capacity_evicts_oldest_first() {
        let (mut ctx, cfg) = ctx_with_cost();
        // Views start at 1: a (view 0, height 0) seed would read as the
        // genesis QC, which verifies free and is never cached.
        let qcs: Vec<Qc> = (1..=4)
            .map(|v| {
                let s = seed(v);
                let partials: Vec<_> = (0..3)
                    .map(|i| cfg.keys.signer(i).sign_partial(&s.signing_bytes()))
                    .collect();
                Qc::combine(s, &partials, &cfg.keys, QcFormat::Threshold).unwrap()
            })
            .collect();
        for qc in &qcs {
            assert!(ctx.verify_qc(qc));
        }
        ctx.take_charge();
        ctx.trim_cache(2);
        // The two oldest re-verify (charged); the two newest stay free.
        assert!(ctx.verify_qc(&qcs[0]));
        assert!(
            ctx.take_charge() > 0,
            "oldest entry should have been evicted"
        );
        assert!(ctx.verify_qc(&qcs[3]));
        assert_eq!(ctx.take_charge(), 0, "newest entry should have survived");
    }

    #[test]
    fn genesis_qc_is_free() {
        let (mut ctx, _cfg) = ctx_with_cost();
        assert!(ctx.verify_qc(&Qc::genesis(BlockId::GENESIS)));
        assert_eq!(ctx.take_charge(), 0);
    }
}
