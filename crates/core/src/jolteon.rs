//! A Jolteon/Fast-HotStuff-style baseline: a **two-phase normal case**
//! bought with a **quadratic view change**.
//!
//! The normal case matches Marlin's (prepare + commit, replicas lock on
//! the `prepareQC`). The view change is PBFT-like: each replica's
//! `VIEW-CHANGE` additionally carries a conventional signature over its
//! `highQC` claim ([`marlin_types::VcCert`]); the new leader bundles
//! `n − f` such certificates into its first proposal as *proof* that it
//! extended the highest QC of a quorum. Every replica verifies the whole
//! bundle — `O(n)` signatures per replica, `O(n²)` across the system —
//! which is exactly the cost Table I attributes to Jolteon and
//! Fast-HotStuff, and what Marlin's replica-voted pre-prepare phase
//! removes.

use crate::config::Config;
use crate::events::{Action, Event, Note, StepOutput};
use crate::util::{Base, Protocol};
use crate::votes::VoteCollector;
use marlin_types::rank::{block_rank_gt, qc_rank_cmp, qc_rank_ge};
use marlin_types::{
    Block, BlockId, BlockMeta, BlockStore, Decide, Justify, Message, MsgBody, Phase, Proposal, Qc,
    ReplicaId, VcCert, View, ViewChange, Vote,
};
use std::cmp::Ordering;
use std::collections::HashMap;

/// A replica running the Jolteon-style baseline.
#[derive(Clone, Debug)]
pub struct Jolteon {
    base: Base,
    lb: BlockMeta,
    locked_qc: Option<Qc>,
    high_qc: Qc,
    votes: VoteCollector,
    in_flight: Option<BlockId>,
    vc_msgs: HashMap<View, HashMap<ReplicaId, ViewChange>>,
    vc_done: HashMap<View, bool>,
    /// Views whose first proposal must carry the quadratic proof.
    proof_for_view: HashMap<View, Vec<VcCert>>,
}

impl Jolteon {
    /// Creates a replica in the pre-start state.
    pub fn new(config: Config) -> Self {
        Jolteon {
            base: Base::new(config),
            lb: BlockMeta::genesis(),
            locked_qc: None,
            high_qc: Qc::genesis(BlockId::GENESIS),
            votes: VoteCollector::new(),
            in_flight: None,
            vc_msgs: HashMap::new(),
            vc_done: HashMap::new(),
            proof_for_view: HashMap::new(),
        }
    }

    /// The current lock, if any.
    pub fn locked_qc(&self) -> Option<&Qc> {
        self.locked_qc.as_ref()
    }

    fn cfg(&self) -> &Config {
        &self.base.cfg
    }

    fn raise_lock(&mut self, qc: &Qc) {
        let higher = match &self.locked_qc {
            None => true,
            Some(cur) => qc_rank_cmp(qc, cur) == Ordering::Greater,
        };
        if higher {
            self.locked_qc = Some(*qc);
        }
    }

    fn raise_high(&mut self, qc: &Qc) {
        if qc_rank_cmp(qc, &self.high_qc) == Ordering::Greater {
            self.high_qc = *qc;
        }
    }

    fn enter_view(&mut self, view: View, out: &mut StepOutput) {
        self.votes.clear();
        self.in_flight = None;
        let drained = self.base.enter_view(view, out);
        self.vc_msgs.retain(|v, _| *v >= view);
        self.proof_for_view.retain(|v, _| *v >= view);
        for msg in drained {
            let sub = self.on_event(Event::Message(msg));
            out.merge(sub);
        }
    }

    fn start_view_change(&mut self, target: View, out: &mut StepOutput) {
        out.actions.push(Action::Note(Note::ViewChangeStarted {
            from_view: self.base.cview,
        }));
        self.enter_view(target, out);
        let parsig = self
            .base
            .crypto
            .sign_seed(&ViewChange::happy_seed(&self.lb, target));
        // The quadratic-proof certificate: a conventional signature over
        // our highQC claim for the target view.
        let cert_bytes = VcCert::signing_bytes(self.cfg().id, target, &self.high_qc);
        let cert = self.base.crypto.sign_bytes(&cert_bytes);
        out.actions.push(Action::Send {
            to: self.cfg().leader_of(target),
            message: Message::new(
                self.cfg().id,
                target,
                MsgBody::ViewChange(ViewChange {
                    last_voted: self.lb,
                    high_qc: Justify::One(self.high_qc),
                    parsig,
                    cert: Some(cert),
                }),
            ),
        });
    }

    fn propose(&mut self, out: &mut StepOutput) {
        let view = self.base.cview;
        if self.in_flight.is_some() {
            return;
        }
        // A cross-view justify needs the quadratic proof, which only
        // exists once the new-view decision has been made.
        let ready = self.high_qc.is_genesis()
            || self.high_qc.view() == view
            || self.proof_for_view.contains_key(&view);
        if !ready {
            return;
        }
        let qc = self.high_qc;
        let batch = self.base.take_batch();
        let block = Block::new_normal(
            qc.block(),
            qc.block_view(),
            view,
            qc.height().next(),
            batch,
            Justify::One(qc),
        );
        self.base.store_block(&block);
        self.in_flight = Some(block.id());
        out.actions.push(Action::Note(Note::Proposed {
            view,
            height: block.height(),
            phase: Phase::Prepare,
        }));
        let vc_proof = self.proof_for_view.remove(&view).unwrap_or_default();
        out.actions.push(Action::Broadcast {
            message: Message::new(
                self.cfg().id,
                view,
                MsgBody::Proposal(Proposal {
                    phase: Phase::Prepare,
                    blocks: vec![block],
                    justify: Justify::One(qc),
                    vc_proof,
                }),
            ),
        });
    }

    fn on_message(&mut self, msg: Message, out: &mut StepOutput) {
        if self.base.handle_fetch(&msg, out) {
            return;
        }
        if self.base.handle_sync(&msg, out) {
            return;
        }
        if let MsgBody::Decide(d) = &msg.body {
            self.on_decide(*d, msg.from, out);
            return;
        }
        if msg.view > self.base.cview {
            self.base.buffer_future(msg);
            if let Some(target) = self.base.future_view_change_senders(self.cfg().f + 1) {
                if target > self.base.cview {
                    self.start_view_change(target, out);
                }
            }
            return;
        }
        if msg.view < self.base.cview {
            return;
        }
        match msg.body {
            MsgBody::Proposal(p) if p.phase == Phase::Prepare => {
                self.on_prepare(msg.from, msg.view, p, out)
            }
            MsgBody::Proposal(p) if p.phase == Phase::Commit => {
                self.on_commit(msg.from, msg.view, p, out)
            }
            MsgBody::Vote(v) => self.on_vote(v, out),
            MsgBody::ViewChange(vc) => self.on_view_change(msg.from, msg.view, vc, out),
            _ => {}
        }
    }

    fn on_prepare(&mut self, from: ReplicaId, view: View, p: Proposal, out: &mut StepOutput) {
        if from != self.cfg().leader_of(view) || p.blocks.len() != 1 {
            return;
        }
        let block = &p.blocks[0];
        let Justify::One(qc) = p.justify else { return };
        let structural = block.view() == view
            && block_rank_gt(&block.meta(), &self.lb)
            && qc.phase() == Phase::Prepare
            && block.parent_id() == Some(qc.block())
            && block.height() == qc.height().next()
            && block.pview() == qc.block_view()
            && self.base.crypto.verify_qc(&qc);
        if !structural {
            return;
        }
        // Within a view the justify is the in-view chain: the lock rank
        // check suffices. Across a view change the leader must present a
        // quorum's certificates proving qc is the highest of a quorum —
        // which unlocks any replica (the PBFT-style rule); verifying the
        // bundle is the O(n) per-replica / O(n²) total cost.
        let safe = if qc.is_genesis() || qc.view() == view {
            qc_rank_ge(&qc, self.locked_qc.as_ref())
        } else {
            self.verify_vc_proof(view, &qc, &p.vc_proof)
        };
        if !safe {
            return;
        }
        self.base.store_block(block);
        let seed = block.vote_seed(Phase::Prepare, view);
        let parsig = self.base.crypto.sign_seed(&seed);
        out.actions.push(Action::Send {
            to: from,
            message: Message::new(
                self.cfg().id,
                view,
                MsgBody::Vote(Vote {
                    seed,
                    parsig,
                    locked_qc: None,
                }),
            ),
        });
        self.lb = block.meta();
        self.raise_high(&qc);
        self.raise_lock(&qc);
        self.base.progress_timer(out);
    }

    /// Verifies a quadratic new-view proof: `n − f` valid certificates
    /// from distinct replicas, none claiming a QC above `qc`.
    fn verify_vc_proof(&mut self, view: View, qc: &Qc, proof: &[VcCert]) -> bool {
        let mut seen = std::collections::HashSet::new();
        let mut valid = 0usize;
        for cert in proof {
            if !seen.insert(cert.from) {
                continue;
            }
            if !self.base.crypto.verify_vc_cert(view, cert) {
                continue;
            }
            if qc_rank_cmp(&cert.high_qc, qc) == Ordering::Greater {
                return false; // the leader ignored a higher QC
            }
            valid += 1;
        }
        valid >= self.cfg().quorum()
    }

    fn on_commit(&mut self, from: ReplicaId, view: View, p: Proposal, out: &mut StepOutput) {
        if from != self.cfg().leader_of(view) {
            return;
        }
        let Justify::One(qc) = p.justify else { return };
        if qc.phase() != Phase::Prepare || qc.view() != view || !self.base.crypto.verify_qc(&qc) {
            return;
        }
        let seed = marlin_types::QcSeed {
            phase: Phase::Commit,
            ..*qc.seed()
        };
        let parsig = self.base.crypto.sign_seed(&seed);
        out.actions.push(Action::Send {
            to: from,
            message: Message::new(
                self.cfg().id,
                view,
                MsgBody::Vote(Vote {
                    seed,
                    parsig,
                    locked_qc: None,
                }),
            ),
        });
        self.raise_high(&qc);
        self.raise_lock(&qc);
        self.base.progress_timer(out);
    }

    fn on_vote(&mut self, v: Vote, out: &mut StepOutput) {
        if v.seed.view != self.base.cview || Some(v.seed.block) != self.in_flight {
            return;
        }
        let quorum = self.cfg().quorum();
        let Some(qc) =
            crate::votes::add_vote_noted(&mut self.votes, &v, quorum, &mut self.base.crypto, out)
        else {
            return;
        };
        out.actions.push(Action::Note(Note::QcFormed {
            phase: qc.phase(),
            view: qc.view(),
            height: qc.height(),
        }));
        match qc.phase() {
            Phase::Prepare => {
                self.raise_high(&qc);
                out.actions.push(Action::Broadcast {
                    message: Message::new(
                        self.cfg().id,
                        self.base.cview,
                        MsgBody::Proposal(Proposal {
                            phase: Phase::Commit,
                            blocks: Vec::new(),
                            justify: Justify::One(qc),
                            vc_proof: Vec::new(),
                        }),
                    ),
                });
            }
            Phase::Commit => {
                self.in_flight = None;
                out.actions.push(Action::Broadcast {
                    message: Message::new(
                        self.cfg().id,
                        self.base.cview,
                        MsgBody::Decide(Decide { commit_qc: qc }),
                    ),
                });
                if self.base.mempool.is_empty() {
                    out.actions.push(Action::SetHeartbeat {
                        delay_ns: self.base.cfg.base_timeout_ns / 4,
                    });
                } else {
                    self.propose(out);
                }
            }
            _ => {}
        }
    }

    fn on_decide(&mut self, d: Decide, from: ReplicaId, out: &mut StepOutput) {
        let qc = d.commit_qc;
        if qc.phase() != Phase::Commit || !self.base.crypto.verify_qc(&qc) {
            return;
        }
        if qc.view() > self.base.cview {
            self.enter_view(qc.view(), out);
        }
        self.base.try_commit(qc, from, out);
    }

    fn on_view_change(
        &mut self,
        from: ReplicaId,
        view: View,
        vc: ViewChange,
        out: &mut StepOutput,
    ) {
        if !self.cfg().is_leader(view) || self.vc_done.get(&view).copied().unwrap_or(false) {
            return;
        }
        // Only certificate-carrying messages are usable in the proof.
        if vc.cert.is_none() {
            return;
        }
        let msgs = self.vc_msgs.entry(view).or_default();
        msgs.insert(from, vc);
        if msgs.len() < self.cfg().quorum() {
            return;
        }
        self.vc_done.insert(view, true);
        let msgs = self.vc_msgs.get(&view).expect("exists").clone();
        let mut certs = Vec::with_capacity(msgs.len());
        let mut best: Option<Qc> = None;
        for (sender, m) in &msgs {
            let Some(qc) = m.high_qc.qc() else { continue };
            let cert = VcCert {
                from: *sender,
                high_qc: *qc,
                sig: m.cert.expect("filtered above"),
            };
            if !self.base.crypto.verify_vc_cert(view, &cert) {
                continue;
            }
            if best
                .as_ref()
                .is_none_or(|b| qc_rank_cmp(qc, b) == Ordering::Greater)
            {
                best = Some(*qc);
            }
            certs.push(cert);
        }
        if certs.len() < self.cfg().quorum() {
            return;
        }
        if let Some(qc) = best {
            self.raise_high(&qc);
            self.proof_for_view.insert(view, certs);
            self.propose(out);
        }
    }
}

impl Protocol for Jolteon {
    fn config(&self) -> &Config {
        &self.base.cfg
    }

    fn current_view(&self) -> View {
        self.base.cview
    }

    fn store(&self) -> &BlockStore {
        &self.base.store
    }

    fn mempool_len(&self) -> usize {
        self.base.mempool.len()
    }

    fn maintain_crypto(&mut self, max_verified: usize) -> crate::CryptoCacheStats {
        self.base.maintain_crypto(max_verified)
    }

    fn locked_qc(&self) -> Option<&Qc> {
        self.locked_qc.as_ref()
    }

    fn name(&self) -> &'static str {
        "jolteon"
    }

    fn on_event(&mut self, event: Event) -> StepOutput {
        let mut out = StepOutput::empty();
        match event {
            Event::Start => {
                // Idempotent: a replica that already joined a view
                // (e.g. via a commit certificate that arrived before
                // its start event) must not regress.
                if self.base.cview == View::GENESIS {
                    self.enter_view(View(1), &mut out);
                    if self.cfg().is_leader(View(1)) {
                        self.propose(&mut out);
                    }
                }
            }
            Event::Message(msg) => self.on_message(msg, &mut out),
            Event::Timeout { view } => {
                if view == self.base.cview {
                    self.start_view_change(view.next(), &mut out);
                }
            }
            Event::NewTransactions(txs) => {
                self.base.add_transactions(txs, &mut out);
                if self.cfg().is_leader(self.base.cview) && self.in_flight.is_none() {
                    self.propose(&mut out);
                }
            }
            Event::Heartbeat => {
                if self.cfg().is_leader(self.base.cview) && self.in_flight.is_none() {
                    if self.base.mempool.is_empty() {
                        out.actions.push(Action::SetHeartbeat {
                            delay_ns: self.base.cfg.base_timeout_ns / 4,
                        });
                    }
                    self.propose(&mut out);
                }
            }
            Event::Recovered => {
                // Pre-crash timers died with the process: re-arm the view
                // timer so the replica can time out of a stale view.
                out.actions.push(Action::SetTimer {
                    view: self.base.cview,
                    delay_ns: self.base.pacemaker.delay_for(self.base.cview),
                });
            }
        }
        self.base.finish(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Cluster;
    use crate::ProtocolKind;

    const P0: ReplicaId = ReplicaId(0);
    const P1: ReplicaId = ReplicaId(1);
    const P2: ReplicaId = ReplicaId(2);

    #[test]
    fn normal_case_commits() {
        let mut cl = Cluster::new(ProtocolKind::Jolteon, Config::for_test(4, 1), 1);
        cl.submit_to(P1, 30, 150);
        cl.run_until_idle();
        cl.assert_consistent();
        assert_eq!(cl.total_committed_txs(P0), 30);
    }

    #[test]
    fn view_change_carries_quadratic_proof() {
        let mut cl = Cluster::new(ProtocolKind::Jolteon, Config::for_test(4, 1), 2);
        cl.submit_to(P1, 10, 0);
        cl.run_until_idle();
        cl.crash(P1);
        while cl.min_view() < View(2) {
            assert!(cl.fire_next_timer());
        }
        cl.run_until_idle();
        cl.submit_to(P2, 10, 0);
        cl.run_until_idle();
        cl.assert_consistent();
        assert_eq!(cl.total_committed_txs(P0), 20);
    }

    #[test]
    fn unsafe_snapshot_unlocked_by_proof() {
        // The scenario that stalls the insecure two-phase protocol: a
        // replica locked on a hidden QC. Jolteon's proof convinces it to
        // unlock, so liveness is preserved (at quadratic cost).
        let mut cl = Cluster::new(ProtocolKind::Jolteon, Config::for_test(4, 1), 3);
        cl.submit_to(P1, 10, 0);
        cl.run_until_idle();
        let contested = cl.committed_height(P0) as u64 + 1;
        cl.set_filter(Box::new(move |_f, to, msg: &Message| match &msg.body {
            MsgBody::Proposal(p) if p.phase == Phase::Prepare => {
                !(p.blocks.first().is_some_and(|b| b.height().0 == contested) && to == P2)
            }
            MsgBody::Proposal(p) if p.phase == Phase::Commit => {
                p.justify.qc().is_none_or(|qc| qc.height().0 != contested) || to == P0
            }
            _ => true,
        }));
        cl.submit_to(P1, 10, 0);
        cl.run_until_idle();
        let stale_block = cl.committed_blocks(P0).last().expect("committed").clone();
        cl.crash(P1);
        // Unsafe snapshot: p0's (locked) VIEW-CHANGE never reaches p2;
        // the crashed leader's slot is filled by a crafted Byzantine
        // certificate claiming the stale QC.
        cl.set_filter(Box::new(|from, _to, msg: &Message| {
            !(from == P0 && matches!(msg.body, MsgBody::ViewChange(_)))
        }));
        while cl.min_view() < View(2) {
            assert!(cl.fire_next_timer());
        }
        cl.run_until_idle();
        let cfg = Config::for_test(4, 1);
        let qc_seed = stale_block.vote_seed(Phase::Prepare, View(1));
        let partials: Vec<_> = (0..3)
            .map(|i| cfg.keys.signer(i).sign_partial(&qc_seed.signing_bytes()))
            .collect();
        let stale_qc = Qc::combine(
            qc_seed,
            &partials,
            &cfg.keys,
            marlin_crypto::QcFormat::Threshold,
        )
        .unwrap();
        let lb = stale_block.meta();
        let parsig = cfg
            .keys
            .signer(1)
            .sign_partial(&ViewChange::happy_seed(&lb, View(2)).signing_bytes());
        let cert_bytes = VcCert::signing_bytes(P1, View(2), &stale_qc);
        let cert = cfg.keys.signer(1).sign(&cert_bytes);
        cl.inject(
            P2,
            Message::new(
                P1,
                View(2),
                MsgBody::ViewChange(ViewChange {
                    last_voted: lb,
                    high_qc: Justify::One(stale_qc),
                    parsig,
                    cert: Some(cert),
                }),
            ),
        );
        // p2's proposal extends the lower QC but carries proof of a
        // quorum's certificates — p0 unlocks and votes; progress resumes.
        cl.clear_filter();
        cl.submit_to(P2, 10, 0);
        cl.run_until_idle();
        cl.assert_consistent();
        assert!(cl.total_committed_txs(P2) >= 20);
    }
}
