//! The **insecure** two-phase HotStuff strawman of Section IV-B.
//!
//! Identical to Marlin's normal case (two phases, replicas lock on the
//! `prepareQC` they receive), but its view change simply lets the new
//! leader extend the highest `prepareQC` it collected — with no
//! pre-prepare phase, no happy path, and no way to unlock a replica
//! locked on a QC the leader never saw.
//!
//! As Figure 2b of the paper shows, an *unsafe view-change snapshot*
//! (one missing the most recent `prepareQC`) then leaves a locked
//! replica permanently rejecting the leader's proposals, killing
//! liveness. This module exists so the workspace's tests can reproduce
//! that failure (`figure2b_insecure_two_phase_stalls`) and demonstrate
//! what Marlin fixes. **Never use it for anything but demonstrations.**

use crate::config::Config;
use crate::events::{Action, Event, Note, StepOutput};
use crate::util::{Base, Protocol};
use crate::votes::VoteCollector;
use marlin_types::rank::{block_rank_gt, qc_rank_cmp, qc_rank_ge};
use marlin_types::{
    Block, BlockId, BlockMeta, BlockStore, Decide, Justify, Message, MsgBody, Phase, Proposal, Qc,
    ReplicaId, View, ViewChange, Vote,
};
use std::cmp::Ordering;
use std::collections::HashMap;

/// A replica running the insecure two-phase strawman.
#[derive(Clone, Debug)]
pub struct TwoPhaseInsecure {
    base: Base,
    lb: BlockMeta,
    locked_qc: Option<Qc>,
    high_qc: Qc,
    votes: VoteCollector,
    in_flight: Option<BlockId>,
    vc_msgs: HashMap<View, HashMap<ReplicaId, ViewChange>>,
    vc_done: HashMap<View, bool>,
}

impl TwoPhaseInsecure {
    /// Creates a replica in the pre-start state.
    pub fn new(config: Config) -> Self {
        TwoPhaseInsecure {
            base: Base::new(config),
            lb: BlockMeta::genesis(),
            locked_qc: None,
            high_qc: Qc::genesis(BlockId::GENESIS),
            votes: VoteCollector::new(),
            in_flight: None,
            vc_msgs: HashMap::new(),
            vc_done: HashMap::new(),
        }
    }

    /// The current lock, if any.
    pub fn locked_qc(&self) -> Option<&Qc> {
        self.locked_qc.as_ref()
    }

    fn cfg(&self) -> &Config {
        &self.base.cfg
    }

    fn raise_lock(&mut self, qc: &Qc) {
        let higher = match &self.locked_qc {
            None => true,
            Some(cur) => qc_rank_cmp(qc, cur) == Ordering::Greater,
        };
        if higher {
            self.locked_qc = Some(*qc);
        }
    }

    fn raise_high(&mut self, qc: &Qc) {
        if qc_rank_cmp(qc, &self.high_qc) == Ordering::Greater {
            self.high_qc = *qc;
        }
    }

    fn enter_view(&mut self, view: View, out: &mut StepOutput) {
        self.votes.clear();
        self.in_flight = None;
        let drained = self.base.enter_view(view, out);
        self.vc_msgs.retain(|v, _| *v >= view);
        for msg in drained {
            let sub = self.on_event(Event::Message(msg));
            out.merge(sub);
        }
    }

    fn start_view_change(&mut self, target: View, out: &mut StepOutput) {
        out.actions.push(Action::Note(Note::ViewChangeStarted {
            from_view: self.base.cview,
        }));
        self.enter_view(target, out);
        let parsig = self
            .base
            .crypto
            .sign_seed(&ViewChange::happy_seed(&self.lb, target));
        out.actions.push(Action::Send {
            to: self.cfg().leader_of(target),
            message: Message::new(
                self.cfg().id,
                target,
                MsgBody::ViewChange(ViewChange {
                    last_voted: self.lb,
                    high_qc: Justify::One(self.high_qc),
                    parsig,
                    cert: None,
                }),
            ),
        });
    }

    fn propose(&mut self, out: &mut StepOutput) {
        let view = self.base.cview;
        if self.in_flight.is_some() {
            return;
        }
        // Wait for the new-view decision before extending a QC from an
        // older view (a premature proposal could miss a higher QC).
        let ready = self.high_qc.is_genesis()
            || self.high_qc.view() == view
            || self.vc_done.get(&view).copied().unwrap_or(false);
        if !ready {
            return;
        }
        let qc = self.high_qc;
        let batch = self.base.take_batch();
        let block = Block::new_normal(
            qc.block(),
            qc.block_view(),
            view,
            qc.height().next(),
            batch,
            Justify::One(qc),
        );
        self.base.store_block(&block);
        self.in_flight = Some(block.id());
        out.actions.push(Action::Note(Note::Proposed {
            view,
            height: block.height(),
            phase: Phase::Prepare,
        }));
        out.actions.push(Action::Broadcast {
            message: Message::new(
                self.cfg().id,
                view,
                MsgBody::Proposal(Proposal {
                    phase: Phase::Prepare,
                    blocks: vec![block],
                    justify: Justify::One(qc),
                    vc_proof: Vec::new(),
                }),
            ),
        });
    }

    fn on_message(&mut self, msg: Message, out: &mut StepOutput) {
        if self.base.handle_fetch(&msg, out) {
            return;
        }
        if self.base.handle_sync(&msg, out) {
            return;
        }
        if let MsgBody::Decide(d) = &msg.body {
            self.on_decide(*d, msg.from, out);
            return;
        }
        if msg.view > self.base.cview {
            self.base.buffer_future(msg);
            if let Some(target) = self.base.future_view_change_senders(self.cfg().f + 1) {
                if target > self.base.cview {
                    self.start_view_change(target, out);
                }
            }
            return;
        }
        if msg.view < self.base.cview {
            return;
        }
        match msg.body {
            MsgBody::Proposal(p) if p.phase == Phase::Prepare => {
                self.on_prepare(msg.from, msg.view, p, out)
            }
            MsgBody::Proposal(p) if p.phase == Phase::Commit => {
                self.on_commit(msg.from, msg.view, p, out)
            }
            MsgBody::Vote(v) => self.on_vote(v, out),
            MsgBody::ViewChange(vc) => self.on_view_change(msg.from, msg.view, vc, out),
            _ => {}
        }
    }

    fn on_prepare(&mut self, from: ReplicaId, view: View, p: Proposal, out: &mut StepOutput) {
        if from != self.cfg().leader_of(view) || p.blocks.len() != 1 {
            return;
        }
        let block = &p.blocks[0];
        let Justify::One(qc) = p.justify else { return };
        // The insecure rule: extend any prepareQC whose rank is at least
        // the local lock — the leader need not prove its snapshot is
        // safe, and a replica locked higher simply refuses.
        let valid = block.view() == view
            && block_rank_gt(&block.meta(), &self.lb)
            && qc.phase() == Phase::Prepare
            && block.parent_id() == Some(qc.block())
            && block.height() == qc.height().next()
            && block.pview() == qc.block_view()
            && qc_rank_ge(&qc, self.locked_qc.as_ref())
            && self.base.crypto.verify_qc(&qc);
        if !valid {
            return;
        }
        self.base.store_block(block);
        let seed = block.vote_seed(Phase::Prepare, view);
        let parsig = self.base.crypto.sign_seed(&seed);
        out.actions.push(Action::Send {
            to: from,
            message: Message::new(
                self.cfg().id,
                view,
                MsgBody::Vote(Vote {
                    seed,
                    parsig,
                    locked_qc: None,
                }),
            ),
        });
        self.lb = block.meta();
        self.raise_high(&qc);
        self.raise_lock(&qc);
        self.base.progress_timer(out);
    }

    fn on_commit(&mut self, from: ReplicaId, view: View, p: Proposal, out: &mut StepOutput) {
        if from != self.cfg().leader_of(view) {
            return;
        }
        let Justify::One(qc) = p.justify else { return };
        if qc.phase() != Phase::Prepare || qc.view() != view || !self.base.crypto.verify_qc(&qc) {
            return;
        }
        let seed = marlin_types::QcSeed {
            phase: Phase::Commit,
            ..*qc.seed()
        };
        let parsig = self.base.crypto.sign_seed(&seed);
        out.actions.push(Action::Send {
            to: from,
            message: Message::new(
                self.cfg().id,
                view,
                MsgBody::Vote(Vote {
                    seed,
                    parsig,
                    locked_qc: None,
                }),
            ),
        });
        self.raise_high(&qc);
        self.raise_lock(&qc);
        self.base.progress_timer(out);
    }

    fn on_vote(&mut self, v: Vote, out: &mut StepOutput) {
        if v.seed.view != self.base.cview || Some(v.seed.block) != self.in_flight {
            return;
        }
        let quorum = self.cfg().quorum();
        let Some(qc) =
            crate::votes::add_vote_noted(&mut self.votes, &v, quorum, &mut self.base.crypto, out)
        else {
            return;
        };
        out.actions.push(Action::Note(Note::QcFormed {
            phase: qc.phase(),
            view: qc.view(),
            height: qc.height(),
        }));
        match qc.phase() {
            Phase::Prepare => {
                self.raise_high(&qc);
                out.actions.push(Action::Broadcast {
                    message: Message::new(
                        self.cfg().id,
                        self.base.cview,
                        MsgBody::Proposal(Proposal {
                            phase: Phase::Commit,
                            blocks: Vec::new(),
                            justify: Justify::One(qc),
                            vc_proof: Vec::new(),
                        }),
                    ),
                });
            }
            Phase::Commit => {
                self.in_flight = None;
                out.actions.push(Action::Broadcast {
                    message: Message::new(
                        self.cfg().id,
                        self.base.cview,
                        MsgBody::Decide(Decide { commit_qc: qc }),
                    ),
                });
                if self.base.mempool.is_empty() {
                    out.actions.push(Action::SetHeartbeat {
                        delay_ns: self.base.cfg.base_timeout_ns / 4,
                    });
                } else {
                    self.propose(out);
                }
            }
            _ => {}
        }
    }

    fn on_decide(&mut self, d: Decide, from: ReplicaId, out: &mut StepOutput) {
        let qc = d.commit_qc;
        if qc.phase() != Phase::Commit || !self.base.crypto.verify_qc(&qc) {
            return;
        }
        if qc.view() > self.base.cview {
            self.enter_view(qc.view(), out);
        }
        self.base.try_commit(qc, from, out);
    }

    fn on_view_change(
        &mut self,
        from: ReplicaId,
        view: View,
        vc: ViewChange,
        out: &mut StepOutput,
    ) {
        if !self.cfg().is_leader(view) || self.vc_done.get(&view).copied().unwrap_or(false) {
            return;
        }
        let msgs = self.vc_msgs.entry(view).or_default();
        msgs.insert(from, vc);
        if msgs.len() < self.cfg().quorum() {
            return;
        }
        self.vc_done.insert(view, true);
        // Pick the highest prepareQC in the snapshot — which may miss
        // the most recent one (the unsafe-snapshot flaw).
        let msgs = self.vc_msgs.get(&view).expect("exists").clone();
        let mut best: Option<Qc> = None;
        for m in msgs.values() {
            if let Some(qc) = m.high_qc.qc() {
                if self.base.crypto.verify_qc(qc)
                    && best
                        .as_ref()
                        .is_none_or(|b| qc_rank_cmp(qc, b) == Ordering::Greater)
                {
                    best = Some(*qc);
                }
            }
        }
        if let Some(qc) = best {
            self.raise_high(&qc);
            self.propose(out);
        }
    }
}

impl Protocol for TwoPhaseInsecure {
    fn config(&self) -> &Config {
        &self.base.cfg
    }

    fn current_view(&self) -> View {
        self.base.cview
    }

    fn store(&self) -> &BlockStore {
        &self.base.store
    }

    fn mempool_len(&self) -> usize {
        self.base.mempool.len()
    }

    fn maintain_crypto(&mut self, max_verified: usize) -> crate::CryptoCacheStats {
        self.base.maintain_crypto(max_verified)
    }

    fn locked_qc(&self) -> Option<&Qc> {
        self.locked_qc.as_ref()
    }

    fn name(&self) -> &'static str {
        "two-phase-insecure"
    }

    fn on_event(&mut self, event: Event) -> StepOutput {
        let mut out = StepOutput::empty();
        match event {
            Event::Start => {
                // Idempotent: a replica that already joined a view
                // (e.g. via a commit certificate that arrived before
                // its start event) must not regress.
                if self.base.cview == View::GENESIS {
                    self.enter_view(View(1), &mut out);
                    if self.cfg().is_leader(View(1)) {
                        self.propose(&mut out);
                    }
                }
            }
            Event::Message(msg) => self.on_message(msg, &mut out),
            Event::Timeout { view } => {
                if view == self.base.cview {
                    self.start_view_change(view.next(), &mut out);
                }
            }
            Event::NewTransactions(txs) => {
                self.base.add_transactions(txs, &mut out);
                if self.cfg().is_leader(self.base.cview) && self.in_flight.is_none() {
                    self.propose(&mut out);
                }
            }
            Event::Heartbeat => {
                if self.cfg().is_leader(self.base.cview) && self.in_flight.is_none() {
                    if self.base.mempool.is_empty() {
                        out.actions.push(Action::SetHeartbeat {
                            delay_ns: self.base.cfg.base_timeout_ns / 4,
                        });
                    }
                    self.propose(&mut out);
                }
            }
            Event::Recovered => {
                // Pre-crash timers died with the process: re-arm the view
                // timer so the replica can time out of a stale view.
                out.actions.push(Action::SetTimer {
                    view: self.base.cview,
                    delay_ns: self.base.pacemaker.delay_for(self.base.cview),
                });
            }
        }
        self.base.finish(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Cluster;
    use crate::ProtocolKind;

    #[test]
    fn failure_free_operation_works() {
        let mut cl = Cluster::new(ProtocolKind::TwoPhaseInsecure, Config::for_test(4, 1), 1);
        cl.submit_to(ReplicaId(1), 25, 150);
        cl.run_until_idle();
        cl.assert_consistent();
        assert_eq!(cl.total_committed_txs(ReplicaId(0)), 25);
    }

    #[test]
    fn survives_view_change_with_safe_snapshot() {
        let mut cl = Cluster::new(ProtocolKind::TwoPhaseInsecure, Config::for_test(4, 1), 2);
        cl.submit_to(ReplicaId(1), 10, 0);
        cl.run_until_idle();
        cl.crash(ReplicaId(1));
        while cl.min_view() < View(2) {
            assert!(cl.fire_next_timer());
        }
        cl.run_until_idle();
        cl.submit_to(ReplicaId(2), 10, 0);
        cl.run_until_idle();
        cl.assert_consistent();
        assert_eq!(cl.total_committed_txs(ReplicaId(0)), 20);
    }
}
