//! Basic (non-chained) three-phase HotStuff (PODC 2019), the paper's
//! baseline.
//!
//! Normal case per view/height: **prepare → pre-commit → commit**, each
//! phase one leader broadcast plus a quorum of votes combined into a
//! threshold QC, followed by a `commitQC` dissemination (`Decide`).
//! Replicas store the `prepareQC` when they receive it in the
//! `PRE-COMMIT` message (it becomes their `highQC` for view changes) and
//! become *locked* on the `precommitQC` carried by the `COMMIT`
//! message.
//!
//! View change: replicas send `NEW-VIEW` (here: [`ViewChange`]) carrying
//! their `prepareQC`; the new leader extends the highest one. A replica
//! accepts the new proposal under the standard *safeNode* predicate: the
//! justify QC ranks at least as high as its lock — sound here because a
//! three-phase lock guarantees `n − f` replicas hold the corresponding
//! `prepareQC`, so the leader's snapshot always contains it.

use crate::config::Config;
use crate::events::{Action, Event, Note, StepOutput};
use crate::util::{Base, Protocol};
use crate::votes::VoteCollector;
use marlin_types::rank::{block_rank_gt, qc_rank_cmp, qc_rank_ge};
use marlin_types::{
    Block, BlockId, BlockMeta, BlockStore, Decide, Justify, Message, MsgBody, Phase, Proposal, Qc,
    QcSeed, ReplicaId, View, ViewChange, Vote,
};
use std::cmp::Ordering;
use std::collections::HashMap;

/// A replica running basic HotStuff.
///
/// # Example
///
/// ```
/// use marlin_core::{harness::Cluster, Config, ProtocolKind};
///
/// let mut cluster = Cluster::new(ProtocolKind::HotStuff, Config::for_test(4, 1), 3);
/// cluster.submit_to(1u32.into(), 20, 0);
/// cluster.run_until_idle();
/// assert_eq!(cluster.total_committed_txs(0u32.into()), 20);
/// ```
#[derive(Clone, Debug)]
pub struct HotStuff {
    base: Base,
    /// Last voted block (one vote per rank, as in Marlin).
    lb: BlockMeta,
    /// `lockedQC` — the `precommitQC` received in a COMMIT message.
    locked_qc: Option<Qc>,
    /// `prepareQC` — the highest prepare certificate known; reported in
    /// NEW-VIEW messages.
    high_qc: Qc,
    votes: VoteCollector,
    in_flight: Option<BlockId>,
    vc_msgs: HashMap<View, HashMap<ReplicaId, ViewChange>>,
    vc_done: HashMap<View, bool>,
}

impl HotStuff {
    /// Creates a replica in the pre-start state.
    pub fn new(config: Config) -> Self {
        HotStuff {
            base: Base::new(config),
            lb: BlockMeta::genesis(),
            locked_qc: None,
            high_qc: Qc::genesis(BlockId::GENESIS),
            votes: VoteCollector::new(),
            in_flight: None,
            vc_msgs: HashMap::new(),
            vc_done: HashMap::new(),
        }
    }

    /// The current lock, if any.
    pub fn locked_qc(&self) -> Option<&Qc> {
        self.locked_qc.as_ref()
    }

    /// The highest known `prepareQC`.
    pub fn high_qc(&self) -> &Qc {
        &self.high_qc
    }

    fn cfg(&self) -> &Config {
        &self.base.cfg
    }

    fn raise_lock(&mut self, qc: &Qc) {
        let higher = match &self.locked_qc {
            None => true,
            Some(cur) => qc_rank_cmp(qc, cur) == Ordering::Greater,
        };
        if higher {
            self.locked_qc = Some(*qc);
        }
    }

    fn raise_high(&mut self, qc: &Qc) {
        if qc_rank_cmp(qc, &self.high_qc) == Ordering::Greater {
            self.high_qc = *qc;
        }
    }

    fn enter_view(&mut self, view: View, out: &mut StepOutput) {
        self.votes.clear();
        self.in_flight = None;
        let drained = self.base.enter_view(view, out);
        self.vc_msgs.retain(|v, _| *v >= view);
        for msg in drained {
            let sub = self.on_event(Event::Message(msg));
            out.merge(sub);
        }
    }

    fn start_view_change(&mut self, target: View, out: &mut StepOutput) {
        out.actions.push(Action::Note(Note::ViewChangeStarted {
            from_view: self.base.cview,
        }));
        self.enter_view(target, out);
        let parsig = self
            .base
            .crypto
            .sign_seed(&ViewChange::happy_seed(&self.lb, target));
        out.actions.push(Action::Send {
            to: self.cfg().leader_of(target),
            message: Message::new(
                self.cfg().id,
                target,
                MsgBody::ViewChange(ViewChange {
                    last_voted: self.lb,
                    high_qc: Justify::One(self.high_qc),
                    parsig,
                    cert: None,
                }),
            ),
        });
    }

    fn propose(&mut self, out: &mut StepOutput) {
        let view = self.base.cview;
        if self.in_flight.is_some() {
            return;
        }
        // Wait for the new-view decision before extending a QC from an
        // older view (a premature proposal could miss a higher QC).
        let ready = self.high_qc.is_genesis()
            || self.high_qc.view() == view
            || self.vc_done.get(&view).copied().unwrap_or(false);
        if !ready {
            return;
        }
        let qc = self.high_qc;
        let batch = self.base.take_batch();
        let block = Block::new_normal(
            qc.block(),
            qc.block_view(),
            view,
            qc.height().next(),
            batch,
            Justify::One(qc),
        );
        self.base.store_block(&block);
        self.in_flight = Some(block.id());
        out.actions.push(Action::Note(Note::Proposed {
            view,
            height: block.height(),
            phase: Phase::Prepare,
        }));
        out.actions.push(Action::Broadcast {
            message: Message::new(
                self.cfg().id,
                view,
                MsgBody::Proposal(Proposal {
                    phase: Phase::Prepare,
                    blocks: vec![block],
                    justify: Justify::One(qc),
                    vc_proof: Vec::new(),
                }),
            ),
        });
    }

    fn on_message(&mut self, msg: Message, out: &mut StepOutput) {
        if self.base.handle_fetch(&msg, out) {
            return;
        }
        if self.base.handle_sync(&msg, out) {
            return;
        }
        if let MsgBody::Decide(d) = &msg.body {
            self.on_decide(*d, msg.from, out);
            return;
        }
        if msg.view > self.base.cview {
            self.base.buffer_future(msg);
            if let Some(target) = self.base.future_view_change_senders(self.cfg().f + 1) {
                if target > self.base.cview {
                    self.start_view_change(target, out);
                }
            }
            return;
        }
        if msg.view < self.base.cview {
            return;
        }
        match msg.body {
            MsgBody::Proposal(p) => match p.phase {
                Phase::Prepare => self.on_prepare(msg.from, msg.view, p, out),
                // PRE-COMMIT carries the prepareQC; COMMIT carries the
                // precommitQC.
                Phase::PreCommit | Phase::Commit => {
                    self.on_phase_broadcast(msg.from, msg.view, p, out)
                }
                Phase::PrePrepare => {}
            },
            MsgBody::Vote(v) => self.on_vote(v, out),
            MsgBody::ViewChange(vc) => self.on_view_change(msg.from, msg.view, vc, out),
            _ => {}
        }
    }

    /// Replica handling of a PREPARE proposal (the safeNode check).
    fn on_prepare(&mut self, from: ReplicaId, view: View, p: Proposal, out: &mut StepOutput) {
        if from != self.cfg().leader_of(view) || p.blocks.len() != 1 {
            return;
        }
        let block = &p.blocks[0];
        let Justify::One(qc) = p.justify else { return };
        let valid = block.view() == view
            && block_rank_gt(&block.meta(), &self.lb)
            && qc.phase() == Phase::Prepare
            && block.parent_id() == Some(qc.block())
            && block.height() == qc.height().next()
            && block.pview() == qc.block_view()
            && qc_rank_ge(&qc, self.locked_qc.as_ref())
            && self.base.crypto.verify_qc(&qc);
        if !valid {
            return;
        }
        self.base.store_block(block);
        let seed = block.vote_seed(Phase::Prepare, view);
        let parsig = self.base.crypto.sign_seed(&seed);
        out.actions.push(Action::Send {
            to: from,
            message: Message::new(
                self.cfg().id,
                view,
                MsgBody::Vote(Vote {
                    seed,
                    parsig,
                    locked_qc: None,
                }),
            ),
        });
        self.lb = block.meta();
        self.base.progress_timer(out);
    }

    /// Replica handling of PRE-COMMIT (prepareQC) and COMMIT
    /// (precommitQC) broadcasts.
    fn on_phase_broadcast(
        &mut self,
        from: ReplicaId,
        view: View,
        p: Proposal,
        out: &mut StepOutput,
    ) {
        if from != self.cfg().leader_of(view) {
            return;
        }
        let Justify::One(qc) = p.justify else { return };
        let expected_qc_phase = match p.phase {
            Phase::PreCommit => Phase::Prepare,
            Phase::Commit => Phase::PreCommit,
            _ => return,
        };
        if qc.phase() != expected_qc_phase || qc.view() != view || !self.base.crypto.verify_qc(&qc)
        {
            return;
        }
        let seed = QcSeed {
            phase: p.phase,
            ..*qc.seed()
        };
        let parsig = self.base.crypto.sign_seed(&seed);
        out.actions.push(Action::Send {
            to: from,
            message: Message::new(
                self.cfg().id,
                view,
                MsgBody::Vote(Vote {
                    seed,
                    parsig,
                    locked_qc: None,
                }),
            ),
        });
        match p.phase {
            // Receiving the prepareQC: record it as highQC.
            Phase::PreCommit => self.raise_high(&qc),
            // Receiving the precommitQC: become locked.
            Phase::Commit => self.raise_lock(&qc),
            _ => {}
        }
        self.base.progress_timer(out);
    }

    /// Leader vote handling: prepare → precommit → commit QCs.
    fn on_vote(&mut self, v: Vote, out: &mut StepOutput) {
        if v.seed.view != self.base.cview || Some(v.seed.block) != self.in_flight {
            return;
        }
        let quorum = self.cfg().quorum();
        let Some(qc) =
            crate::votes::add_vote_noted(&mut self.votes, &v, quorum, &mut self.base.crypto, out)
        else {
            return;
        };
        out.actions.push(Action::Note(Note::QcFormed {
            phase: qc.phase(),
            view: qc.view(),
            height: qc.height(),
        }));
        let view = self.base.cview;
        match qc.phase() {
            Phase::Prepare => {
                self.raise_high(&qc);
                out.actions.push(Action::Broadcast {
                    message: Message::new(
                        self.cfg().id,
                        view,
                        MsgBody::Proposal(Proposal {
                            phase: Phase::PreCommit,
                            blocks: Vec::new(),
                            justify: Justify::One(qc),
                            vc_proof: Vec::new(),
                        }),
                    ),
                });
            }
            Phase::PreCommit => {
                out.actions.push(Action::Broadcast {
                    message: Message::new(
                        self.cfg().id,
                        view,
                        MsgBody::Proposal(Proposal {
                            phase: Phase::Commit,
                            blocks: Vec::new(),
                            justify: Justify::One(qc),
                            vc_proof: Vec::new(),
                        }),
                    ),
                });
            }
            Phase::Commit => {
                self.in_flight = None;
                out.actions.push(Action::Broadcast {
                    message: Message::new(
                        self.cfg().id,
                        view,
                        MsgBody::Decide(Decide { commit_qc: qc }),
                    ),
                });
                if self.base.mempool.is_empty() {
                    out.actions.push(Action::SetHeartbeat {
                        delay_ns: self.base.cfg.base_timeout_ns / 4,
                    });
                } else {
                    self.propose(out);
                }
            }
            Phase::PrePrepare => {}
        }
    }

    fn on_decide(&mut self, d: Decide, from: ReplicaId, out: &mut StepOutput) {
        let qc = d.commit_qc;
        if qc.phase() != Phase::Commit || !self.base.crypto.verify_qc(&qc) {
            return;
        }
        if qc.view() > self.base.cview {
            self.enter_view(qc.view(), out);
        }
        self.base.try_commit(qc, from, out);
    }

    /// New-leader handling of NEW-VIEW messages: extend the highest
    /// reported `prepareQC` (linear view change).
    fn on_view_change(
        &mut self,
        from: ReplicaId,
        view: View,
        vc: ViewChange,
        out: &mut StepOutput,
    ) {
        if !self.cfg().is_leader(view) || self.vc_done.get(&view).copied().unwrap_or(false) {
            return;
        }
        let msgs = self.vc_msgs.entry(view).or_default();
        msgs.insert(from, vc);
        if msgs.len() < self.cfg().quorum() {
            return;
        }
        self.vc_done.insert(view, true);
        let msgs = self.vc_msgs.get(&view).expect("exists").clone();
        let mut best: Option<Qc> = None;
        for m in msgs.values() {
            if let Some(qc) = m.high_qc.qc() {
                if qc.phase() == Phase::Prepare
                    && self.base.crypto.verify_qc(qc)
                    && best
                        .as_ref()
                        .is_none_or(|b| qc_rank_cmp(qc, b) == Ordering::Greater)
                {
                    best = Some(*qc);
                }
            }
        }
        if let Some(qc) = best {
            self.raise_high(&qc);
            self.propose(out);
        }
    }
}

impl Protocol for HotStuff {
    fn config(&self) -> &Config {
        &self.base.cfg
    }

    fn current_view(&self) -> View {
        self.base.cview
    }

    fn store(&self) -> &BlockStore {
        &self.base.store
    }

    fn mempool_len(&self) -> usize {
        self.base.mempool.len()
    }

    fn maintain_crypto(&mut self, max_verified: usize) -> crate::CryptoCacheStats {
        self.base.maintain_crypto(max_verified)
    }

    fn locked_qc(&self) -> Option<&Qc> {
        self.locked_qc.as_ref()
    }

    fn name(&self) -> &'static str {
        "hotstuff"
    }

    fn on_event(&mut self, event: Event) -> StepOutput {
        let mut out = StepOutput::empty();
        match event {
            Event::Start => {
                // Idempotent: a replica that already joined a view
                // (e.g. via a commit certificate that arrived before
                // its start event) must not regress.
                if self.base.cview == View::GENESIS {
                    self.enter_view(View(1), &mut out);
                    if self.cfg().is_leader(View(1)) {
                        self.propose(&mut out);
                    }
                }
            }
            Event::Message(msg) => self.on_message(msg, &mut out),
            Event::Timeout { view } => {
                if view == self.base.cview {
                    self.start_view_change(view.next(), &mut out);
                }
            }
            Event::NewTransactions(txs) => {
                self.base.add_transactions(txs, &mut out);
                if self.cfg().is_leader(self.base.cview) && self.in_flight.is_none() {
                    self.propose(&mut out);
                }
            }
            Event::Heartbeat => {
                if self.cfg().is_leader(self.base.cview) && self.in_flight.is_none() {
                    if self.base.mempool.is_empty() {
                        out.actions.push(Action::SetHeartbeat {
                            delay_ns: self.base.cfg.base_timeout_ns / 4,
                        });
                    }
                    self.propose(&mut out);
                }
            }
            Event::Recovered => {
                // Pre-crash timers died with the process: re-arm the view
                // timer so the replica can time out of a stale view.
                out.actions.push(Action::SetTimer {
                    view: self.base.cview,
                    delay_ns: self.base.pacemaker.delay_for(self.base.cview),
                });
            }
        }
        self.base.finish(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Cluster;
    use crate::ProtocolKind;

    const P0: ReplicaId = ReplicaId(0);
    const P1: ReplicaId = ReplicaId(1);
    const P2: ReplicaId = ReplicaId(2);

    #[test]
    fn normal_case_commits() {
        let mut cl = Cluster::new(ProtocolKind::HotStuff, Config::for_test(4, 1), 1);
        cl.submit_to(P1, 40, 150);
        cl.run_until_idle();
        cl.assert_consistent();
        assert_eq!(cl.total_committed_txs(P0), 40);
    }

    #[test]
    fn three_phases_per_block() {
        let mut cl = Cluster::new(ProtocolKind::HotStuff, Config::for_test(4, 1), 2);
        cl.submit_to(P1, 5, 0);
        cl.run_until_idle();
        // For the tx-carrying block there must be Prepare, PreCommit and
        // Commit QCs at the leader.
        let phases: Vec<Phase> = cl
            .notes()
            .iter()
            .filter_map(|(p, n)| match n {
                Note::QcFormed { phase, .. } if *p == P1 => Some(*phase),
                _ => None,
            })
            .collect();
        assert!(phases.contains(&Phase::Prepare));
        assert!(phases.contains(&Phase::PreCommit));
        assert!(phases.contains(&Phase::Commit));
    }

    #[test]
    fn leader_crash_view_change_recovers() {
        let mut cl = Cluster::new(ProtocolKind::HotStuff, Config::for_test(4, 1), 3);
        cl.submit_to(P1, 10, 0);
        cl.run_until_idle();
        cl.crash(P1);
        while cl.min_view() < View(2) {
            assert!(cl.fire_next_timer());
        }
        cl.run_until_idle();
        cl.submit_to(P2, 10, 0);
        cl.run_until_idle();
        cl.assert_consistent();
        assert_eq!(cl.total_committed_txs(P0), 20);
    }

    #[test]
    fn unsafe_snapshot_is_harmless_for_three_phases() {
        // The HotStuff analogue of Figure 2a: hide the newest block's
        // COMMIT phase from two replicas, then view change without the
        // informed replica's NEW-VIEW. With a three-phase rule nothing
        // is locked prematurely and the view change proceeds.
        let mut cl = Cluster::new(ProtocolKind::HotStuff, Config::for_test(4, 1), 4);
        cl.submit_to(P1, 10, 0);
        cl.run_until_idle();
        let committed = cl.committed_height(P0);

        // Suppress the next block's PreCommit/Commit broadcasts to all
        // but p0, then crash the leader: only p0 knows the prepareQC.
        let contested = committed as u64 + 1;
        cl.set_filter(Box::new(move |_f, to, msg: &Message| match &msg.body {
            MsgBody::Proposal(p) if matches!(p.phase, Phase::PreCommit | Phase::Commit) => {
                !(p.justify.qc().is_some_and(|qc| qc.height().0 == contested) && to != P0)
            }
            _ => true,
        }));
        cl.submit_to(P1, 10, 0);
        cl.run_until_idle();
        let stale_block = cl.committed_blocks(P0).last().expect("committed").clone();
        cl.crash(P1);
        // Unsafe snapshot: drop p0's NEW-VIEW; the crashed leader's slot
        // is filled by a crafted Byzantine NEW-VIEW claiming the stale
        // prepareQC (the Figure 2a adversary).
        cl.set_filter(Box::new(|from, _to, msg: &Message| {
            !(from == P0 && matches!(msg.body, MsgBody::ViewChange(_)))
        }));
        while cl.min_view() < View(2) {
            assert!(cl.fire_next_timer());
        }
        cl.run_until_idle();
        let cfg = Config::for_test(4, 1);
        let qc_seed = stale_block.vote_seed(Phase::Prepare, View(1));
        let partials: Vec<_> = (0..3)
            .map(|i| cfg.keys.signer(i).sign_partial(&qc_seed.signing_bytes()))
            .collect();
        let stale_qc = Qc::combine(
            qc_seed,
            &partials,
            &cfg.keys,
            marlin_crypto::QcFormat::Threshold,
        )
        .unwrap();
        let lb = stale_block.meta();
        let parsig = cfg
            .keys
            .signer(1)
            .sign_partial(&ViewChange::happy_seed(&lb, View(2)).signing_bytes());
        cl.inject(
            P2,
            Message::new(
                P1,
                View(2),
                MsgBody::ViewChange(ViewChange {
                    last_voted: lb,
                    high_qc: Justify::One(stale_qc),
                    parsig,
                    cert: None,
                }),
            ),
        );
        // The new leader proposes from the stale prepareQC; p0 is not
        // locked (it never saw a precommitQC), so it accepts and the
        // protocol stays live — the three-phase rule makes the unsafe
        // snapshot harmless.
        cl.clear_filter();
        cl.submit_to(P2, 10, 0);
        cl.run_until_idle();
        cl.assert_consistent();
        assert!(cl.total_committed_txs(P2) >= 20);
    }
}
