//! The [`Protocol`] trait and replica plumbing shared by every protocol
//! implementation (message buffering, mempool, commits, block fetch).

use crate::config::Config;
use crate::crypto_ctx::{CryptoCacheStats, CryptoCtx};
use crate::events::{Action, Event, Note, StepOutput};
use crate::pacemaker::Pacemaker;
use crate::payload::{PayloadOutcome, PayloadPlane};
use marlin_mempool::{Mempool, MempoolConfig};
use marlin_types::{
    Batch, BatchId, Block, BlockId, BlockStore, CommitError, Message, MsgBody, Qc, ReplicaId,
    Transaction, View,
};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// A consensus protocol as a deterministic state machine.
///
/// Implementations only define [`Protocol::on_event`]; drivers call
/// [`Protocol::step`], which additionally routes self-addressed sends
/// and the replica's own copy of broadcasts back into the machine (a
/// leader is also a voter).
pub trait Protocol {
    /// The replica's configuration.
    fn config(&self) -> &Config;

    /// The replica's current view.
    fn current_view(&self) -> View;

    /// The replica's block tree.
    fn store(&self) -> &BlockStore;

    /// The replica's current lock, if the protocol keeps one. Exposed
    /// so cross-replica invariant checkers can relate locks to the
    /// committed chain; the default is lock-free.
    fn locked_qc(&self) -> Option<&Qc> {
        None
    }

    /// Transactions currently resident in the replica's mempool.
    /// Exposed so overload campaigns can assert memory boundedness;
    /// wrapper shims delegate to the wrapped replica.
    fn mempool_len(&self) -> usize {
        0
    }

    /// Handles one event. Drivers should call [`Protocol::step`] instead.
    fn on_event(&mut self, event: Event) -> StepOutput;

    /// Protocol name, e.g. `"marlin"`.
    fn name(&self) -> &'static str;

    /// Bounds the replica's crypto caches (verified-QC set trimmed to
    /// at most `max_verified` entries, oldest first) and reports their
    /// health. Long-running drivers call this periodically so the
    /// caches cannot grow without bound; the default is a no-op for
    /// protocol shims without a crypto context.
    fn maintain_crypto(&mut self, _max_verified: usize) -> CryptoCacheStats {
        CryptoCacheStats::default()
    }

    /// This replica's id.
    fn id(&self) -> ReplicaId {
        self.config().id
    }

    /// Handles `event` and drains all resulting self-deliveries.
    ///
    /// Returned actions contain no `Send` addressed to this replica;
    /// `Broadcast`s remain (for the other replicas) but have already
    /// been applied locally, so drivers must not loop them back.
    fn step(&mut self, event: Event) -> StepOutput {
        let mut result = StepOutput::empty();
        let mut queue = VecDeque::new();
        queue.push_back(event);
        let mut guard = 0usize;
        while let Some(ev) = queue.pop_front() {
            guard += 1;
            assert!(
                guard < 100_000,
                "self-delivery loop runaway in {}",
                self.name()
            );
            let out = self.on_event(ev);
            result.cpu_ns += out.cpu_ns;
            result.crypto_ns += out.crypto_ns;
            result.journal_ns += out.journal_ns;
            for action in out.actions {
                match action {
                    Action::Send { to, message } if to == self.id() => {
                        queue.push_back(Event::Message(message));
                    }
                    Action::Broadcast { ref message } => {
                        queue.push_back(Event::Message(message.clone()));
                        result.actions.push(action);
                    }
                    other => result.actions.push(other),
                }
            }
        }
        result
    }
}

/// How many committed blocks back the in-memory tree keeps before
/// pruning (the paper checkpoints every 5000 blocks; the durable record
/// lives in `marlin-storage`).
const PRUNE_INTERVAL: u64 = 5_000;

/// Payload ticks for which sealing is suspended after a seal expired
/// without its availability quorum. While suspended, proposals carry
/// their batches inline — the degraded-but-live path — instead of
/// immediately re-sealing the requeued transactions into a push that
/// is likely to be lost again.
const PAYLOAD_BACKOFF_TICKS: u32 = 4;

/// State common to every replica implementation.
#[derive(Clone, Debug)]
pub(crate) struct Base {
    pub cfg: Config,
    pub crypto: CryptoCtx,
    pub store: BlockStore,
    pub pacemaker: Pacemaker,
    pub cview: View,
    pub mempool: Mempool,
    /// Payload-dissemination bookkeeping; empty unless
    /// `cfg.dissemination` (see [`crate::payload`]).
    pub(crate) payloads: PayloadPlane,
    /// Remaining payload ticks of the post-expiry sealing backoff
    /// (see [`PAYLOAD_BACKOFF_TICKS`]).
    payload_backoff: u32,
    /// Messages for views we have not entered yet.
    pending_msgs: BTreeMap<View, Vec<Message>>,
    /// Commit certificates whose chains have missing blocks.
    pending_commits: Vec<(Qc, ReplicaId)>,
    /// Outstanding block fetches with an attempt counter: the request is
    /// re-sent periodically so a dropped fetch cannot wedge commits.
    fetching: HashMap<BlockId, u32>,
    /// The highest commit certificate processed so far; served to
    /// recovering replicas that ask for a catch-up.
    pub latest_commit_qc: Option<Qc>,
    commits_since_prune: u64,
    /// Block-sync engine state (snapshot anchors, active run, peer
    /// scores); inert unless `cfg.sync_snapshot_interval > 0`.
    pub(crate) sync: crate::sync::SyncState,
    /// Sync horizon the safety journal should GC below: set when a
    /// snapshot anchor prunes the committed prefix, drained by the
    /// protocol's journal plumbing after the step.
    pub(crate) journal_gc_due: Option<marlin_types::Height>,
}

impl Base {
    pub fn new(cfg: Config) -> Self {
        let crypto = CryptoCtx::new(&cfg);
        let pacemaker = Pacemaker::new(&cfg);
        let mempool = Mempool::new(MempoolConfig {
            capacity: cfg.mempool_capacity,
            priority_fee_threshold: cfg.priority_fee_threshold,
        });
        Base {
            cfg,
            crypto,
            store: BlockStore::new(),
            pacemaker,
            cview: View::GENESIS,
            mempool,
            payloads: PayloadPlane::default(),
            payload_backoff: 0,
            pending_msgs: BTreeMap::new(),
            pending_commits: Vec::new(),
            fetching: HashMap::new(),
            latest_commit_qc: None,
            commits_since_prune: 0,
            sync: Default::default(),
            journal_gc_due: None,
        }
    }

    /// Takes the pending journal-GC horizon, if an anchor set one since
    /// the last call.
    pub fn take_journal_gc(&mut self) -> Option<marlin_types::Height> {
        self.journal_gc_due.take()
    }

    /// Re-arms the current view's failure timer after protocol progress.
    ///
    /// In rotating-leader mode this is a no-op: the rotation timer is
    /// armed once at view entry and must fire on schedule regardless of
    /// progress (progress re-arming would postpone rotation forever).
    pub fn progress_timer(&self, out: &mut StepOutput) {
        if self.pacemaker.rotating() {
            return;
        }
        out.actions.push(Action::SetTimer {
            view: self.cview,
            delay_ns: self.pacemaker.delay_for(self.cview),
        });
    }

    /// Finishes a step: moves the crypto charge into `out`, attributed
    /// to the crypto lane (everything a `CryptoCtx` charges is
    /// cryptographic work).
    pub fn finish(&mut self, mut out: StepOutput) -> StepOutput {
        let crypto_ns = self.crypto.take_charge();
        out.cpu_ns += crypto_ns;
        out.crypto_ns += crypto_ns;
        out
    }

    /// Shared implementation of [`Protocol::maintain_crypto`].
    pub fn maintain_crypto(&mut self, max_verified: usize) -> CryptoCacheStats {
        self.crypto.trim_cache(max_verified);
        self.crypto.cache_stats()
    }

    /// Enters `view`: arms its timer, emits a note, and returns any
    /// buffered messages that are now processable (callers re-feed them
    /// through their handler).
    pub fn enter_view(&mut self, view: View, out: &mut StepOutput) -> Vec<Message> {
        debug_assert!(view > self.cview || self.cview == View::GENESIS);
        self.cview = view;
        out.actions.push(Action::SetTimer {
            view,
            delay_ns: self.pacemaker.delay_for(view),
        });
        out.actions.push(Action::Note(Note::EnteredView {
            view,
            leader: self.cfg.is_leader(view),
        }));
        let mut drained = Vec::new();
        let keep = self.pending_msgs.split_off(&view.next());
        for (_, msgs) in std::mem::replace(&mut self.pending_msgs, keep) {
            drained.extend(msgs);
        }
        drained
    }

    /// Buffers a message for a future view.
    pub fn buffer_future(&mut self, msg: Message) {
        self.pending_msgs.entry(msg.view).or_default().push(msg);
    }

    /// Whether at least `threshold` distinct replicas have buffered
    /// view-change messages for a view above ours — the f+1 join rule.
    pub fn future_view_change_senders(&self, threshold: usize) -> Option<View> {
        let mut senders: HashSet<ReplicaId> = HashSet::new();
        let mut lowest: Option<View> = None;
        for (view, msgs) in self.pending_msgs.iter() {
            for m in msgs {
                if matches!(m.body, MsgBody::ViewChange(_)) {
                    senders.insert(m.from);
                    lowest = Some(lowest.map_or(*view, |l: View| l.min(*view)));
                }
            }
        }
        (senders.len() >= threshold).then_some(lowest.unwrap_or(self.cview.next()))
    }

    /// Drains up to `batch_size` transactions for a new proposal.
    pub fn take_batch(&mut self) -> Batch {
        self.mempool.take(self.cfg.batch_size).into_iter().collect()
    }

    /// Offers transactions to the mempool under its admission rules
    /// (dedup, capacity, fee lanes). With any mempool knob configured,
    /// the admission outcome is emitted as a note — legacy
    /// configurations stay note-free so their deterministic traces are
    /// byte-identical to before admission control existed.
    pub fn add_transactions(&mut self, txs: Vec<Transaction>, out: &mut StepOutput) {
        let before = self.mempool.stats();
        for tx in txs {
            self.mempool.admit(tx);
        }
        if !self.cfg.mempool_configured() {
            return;
        }
        let after = self.mempool.stats();
        out.actions.push(Action::Note(Note::MempoolAdmission {
            admitted: (after.admitted - before.admitted) as usize,
            duplicates: (after.duplicates - before.duplicates) as usize,
            rejected: (after.rejected_full - before.rejected_full) as usize,
            priority: (after.priority_admitted - before.priority_admitted) as usize,
        }));
    }

    /// Whether a proposer has anything to propose: resident mempool
    /// transactions, or payload batches in flight on the dissemination
    /// plane (sealed awaiting their quorum, or ready digests).
    pub fn work_pending(&self) -> bool {
        !self.mempool.is_empty() || self.payloads.has_work()
    }

    /// Seals mempool transactions into digest-addressed batches and
    /// pushes them to all replicas, up to the dissemination window.
    /// No-op unless `cfg.dissemination`.
    pub fn seal_payloads(&mut self, out: &mut StepOutput) {
        if !self.cfg.dissemination || self.payload_backoff > 0 {
            return;
        }
        while !self.mempool.is_empty() && self.payloads.in_flight() < self.cfg.dissemination_window
        {
            let batch = self.take_batch();
            let digest = batch.digest();
            self.crypto.charge_hash(batch.wire_len());
            out.actions.push(Action::Note(Note::PayloadPushed {
                batch: digest,
                txs: batch.len(),
                bytes: batch.wire_len(),
            }));
            out.actions.push(Action::Broadcast {
                message: Message::new(
                    self.cfg.id,
                    self.cview,
                    MsgBody::PayloadPush {
                        digest,
                        batch: batch.clone(),
                    },
                ),
            });
            self.payloads.seal(digest, batch, self.cfg.id);
        }
    }

    /// Drives the payload plane's retransmit/expiry clock (no-op
    /// without dissemination): sealed batches that missed their
    /// availability quorum are pushed again — the push or its acks may
    /// have been lost to more than `f` peers — and seals that stay
    /// unacked past the expiry horizon are abandoned, their
    /// transactions requeued at the front of the mempool so the next
    /// seal (or inline proposal) carries them. Ticked from heartbeats
    /// and view entries; without it a lost push would occupy one of
    /// the `dissemination_window` slots forever and, once every slot
    /// wedged, the replica could never seal — or, as leader, propose —
    /// again.
    pub fn payload_tick(&mut self, out: &mut StepOutput) {
        if !self.cfg.dissemination {
            return;
        }
        self.payload_backoff = self.payload_backoff.saturating_sub(1);
        let tick = self.payloads.tick();
        if !tick.expired.is_empty() {
            self.payload_backoff = PAYLOAD_BACKOFF_TICKS;
        }
        for (digest, batch) in tick.repush {
            out.actions.push(Action::Note(Note::PayloadPushed {
                batch: digest,
                txs: batch.len(),
                bytes: batch.wire_len(),
            }));
            out.actions.push(Action::Broadcast {
                message: Message::new(
                    self.cfg.id,
                    self.cview,
                    MsgBody::PayloadPush { digest, batch },
                ),
            });
        }
        for (digest, batch) in tick.expired {
            out.actions.push(Action::Note(Note::PayloadExpired {
                batch: digest,
                txs: batch.len(),
            }));
            self.mempool.requeue(batch.into_iter().collect());
        }
    }

    /// The batch behind a proposed digest, if resident.
    pub fn payload_batch(&self, digest: &BatchId) -> Option<Batch> {
        self.payloads.batch(digest).cloned()
    }

    /// The next quorum-acked digest to propose, if any.
    pub fn pop_ready_payload(&mut self) -> Option<BatchId> {
        self.payloads.pop_ready()
    }

    /// Requests a missing payload batch from `source` (the proposer).
    pub fn request_payload(&mut self, digest: BatchId, source: ReplicaId, out: &mut StepOutput) {
        out.actions.push(Action::Send {
            to: source,
            message: Message::new(self.cfg.id, self.cview, MsgBody::PayloadRequest { digest }),
        });
    }

    /// Fans a payload fetch out to every replica — the fallback when
    /// the proposer could not serve it. Any member of the availability
    /// quorum holds the batch, and `n − f ≥ f + 1` guarantees an
    /// honest holder exists if the digest was genuinely quorum-acked.
    pub fn broadcast_payload_request(&mut self, digest: BatchId, out: &mut StepOutput) {
        out.actions.push(Action::Broadcast {
            message: Message::new(self.cfg.id, self.cview, MsgBody::PayloadRequest { digest }),
        });
    }

    /// Handles the payload-plane messages shared by all protocols (push,
    /// ack, fetch). Returns [`PayloadOutcome::NotPayload`] for anything
    /// else; see the other variants for the protocol-visible effects.
    pub(crate) fn handle_payload(&mut self, msg: &Message, out: &mut StepOutput) -> PayloadOutcome {
        let mut reply = Vec::new();
        let outcome = self
            .payloads
            .handle(msg, self.cfg.id, self.cfg.quorum(), &mut reply);
        match &msg.body {
            // Receiving a push costs a digest check over the batch.
            MsgBody::PayloadPush { batch, .. } if msg.from != self.cfg.id => {
                self.crypto.charge_hash(batch.wire_len());
            }
            MsgBody::PayloadResponse {
                batch: Some(batch), ..
            } => {
                self.crypto.charge_hash(batch.wire_len());
            }
            _ => {}
        }
        for (to, body) in reply {
            out.actions.push(Action::Send {
                to,
                message: Message::new(self.cfg.id, self.cview, body),
            });
        }
        match outcome {
            PayloadOutcome::QuorumReached => {
                if let MsgBody::PayloadAck { digest } = &msg.body {
                    out.actions
                        .push(Action::Note(Note::PayloadQuorum { batch: *digest }));
                }
            }
            PayloadOutcome::Resolved(digest) => {
                out.actions
                    .push(Action::Note(Note::PayloadFetched { batch: digest }));
            }
            _ => {}
        }
        outcome
    }

    /// Attempts to commit the chain certified by `qc`, fetching missing
    /// blocks from `from` when necessary.
    pub fn try_commit(&mut self, qc: Qc, from: ReplicaId, out: &mut StepOutput) {
        if self
            .latest_commit_qc
            .as_ref()
            .is_none_or(|cur| qc.height() > cur.height())
        {
            self.latest_commit_qc = Some(qc);
        }
        let block = qc.block();
        match self.store.commit(&block) {
            Ok(newly) if newly.is_empty() => {}
            Ok(newly) => {
                self.commits_since_prune += newly.len() as u64;
                let txs = newly.iter().map(|b| b.payload().len()).sum();
                let height = newly.last().expect("nonempty").height();
                out.actions
                    .push(Action::Note(Note::Committed { height, txs }));
                out.actions.push(Action::Commit { blocks: newly });
                self.pacemaker.record_progress(self.cview);
                // Progress: keep the failure timer fresh (no-op when
                // rotating — see `progress_timer`).
                self.progress_timer(out);
                self.record_anchor_if_due(&qc, out);
                if self.commits_since_prune >= PRUNE_INTERVAL {
                    self.commits_since_prune = 0;
                    let keep_from = self
                        .store
                        .get(&self.store.last_committed())
                        .map(|b| marlin_types::Height(b.height().0.saturating_sub(PRUNE_INTERVAL)))
                        .unwrap_or_default();
                    if self.sync_enabled() {
                        // Committed-prefix GC is owned by the snapshot
                        // horizon (`record_anchor_if_due`); this pass
                        // only clears uncommitted fork garbage, so the
                        // serve horizon stays interval-aligned.
                        self.store.prune(keep_from, usize::MAX);
                    } else {
                        self.store.prune(keep_from, 64);
                    }
                }
            }
            Err(CommitError::MissingAncestor { of, parent }) => {
                let wanted = parent.unwrap_or(of);
                self.pending_commits.push((qc, from));
                self.request_block(wanted, from, out);
            }
            Err(CommitError::UnknownBlock(id)) => {
                self.pending_commits.push((qc, from));
                self.request_block(id, from, out);
            }
            Err(CommitError::ConflictsWithCommitted { block }) => {
                // Locally observable evidence of a safety failure
                // elsewhere (e.g. amnesiac restarts re-voting): the
                // replica keeps its original chain and surfaces the
                // conflict for invariant checkers instead of committing.
                out.actions
                    .push(Action::Note(Note::CommitConflict { block }));
            }
        }
    }

    /// Requests a missing block: from `source` when that is a peer, or
    /// from everyone when the requester would otherwise ask itself
    /// (a leader completing its own chain). Requests are re-sent every
    /// few attempts (and broadcast after repeated failures) so a dropped
    /// fetch cannot permanently wedge the commit pipeline.
    fn request_block(&mut self, wanted: BlockId, source: ReplicaId, out: &mut StepOutput) {
        let attempts = self.fetching.entry(wanted).or_insert(0);
        let n = *attempts;
        *attempts += 1;
        if !n.is_multiple_of(4) {
            return;
        }
        let message = Message::new(
            self.cfg.id,
            self.cview,
            MsgBody::FetchRequest { block: wanted },
        );
        if source == self.cfg.id || n >= 8 {
            out.actions.push(Action::Broadcast { message });
        } else {
            out.actions.push(Action::Send {
                to: source,
                message,
            });
        }
    }

    /// Handles the block-synchronisation messages shared by all
    /// protocols. Returns `true` if the message was consumed.
    pub fn handle_fetch(&mut self, msg: &Message, out: &mut StepOutput) -> bool {
        match &msg.body {
            MsgBody::FetchRequest { block } => {
                if let Some(b) = self.store.get(block) {
                    let virtual_parent = b
                        .is_virtual()
                        .then(|| self.store.parent_id_of(block))
                        .flatten();
                    out.actions.push(Action::Send {
                        to: msg.from,
                        message: Message::new(
                            self.cfg.id,
                            self.cview,
                            MsgBody::FetchResponse {
                                block: b.clone(),
                                virtual_parent,
                            },
                        ),
                    });
                }
                true
            }
            MsgBody::FetchResponse {
                block,
                virtual_parent,
            } => {
                self.fetching.remove(&block.id());
                if self.store.contains(&block.id())
                    && !(block.is_virtual() && virtual_parent.is_some())
                {
                    // Duplicate response: avoid re-running the pending
                    // retries for every copy of a broadcast fetch.
                    return true;
                }
                self.crypto.charge_hash(block.wire_len());
                self.store.insert(block.clone());
                if let (true, Some(pid)) = (block.is_virtual(), virtual_parent) {
                    self.store.resolve_virtual_parent(block.id(), *pid);
                }
                let pending = std::mem::take(&mut self.pending_commits);
                for (qc, from) in pending {
                    self.try_commit(qc, from, out);
                }
                true
            }
            _ => false,
        }
    }

    /// Stores a proposed block (charging hashing cost for its bytes).
    pub fn store_block(&mut self, block: &Block) {
        self.crypto.charge_hash(block.wire_len());
        self.store.insert(block.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use marlin_types::{Justify, Phase};

    fn base() -> Base {
        Base::new(Config::for_test(4, 1))
    }

    fn tx(id: u64) -> Transaction {
        Transaction::new(id, 0, Bytes::new(), 0)
    }

    #[test]
    fn enter_view_arms_timer_and_drains_buffered() {
        let mut b = base();
        let m1 = Message::new(
            ReplicaId(1),
            View(2),
            MsgBody::FetchRequest {
                block: BlockId::GENESIS,
            },
        );
        let m2 = Message::new(
            ReplicaId(2),
            View(5),
            MsgBody::FetchRequest {
                block: BlockId::GENESIS,
            },
        );
        b.buffer_future(m1.clone());
        b.buffer_future(m2);
        let mut out = StepOutput::empty();
        let drained = b.enter_view(View(3), &mut out);
        assert_eq!(drained, vec![m1]);
        assert!(matches!(
            out.actions[0],
            Action::SetTimer { view: View(3), .. }
        ));
        // The view-5 message stays buffered.
        let drained = b.enter_view(View(5), &mut StepOutput::empty());
        assert_eq!(drained.len(), 1);
    }

    #[test]
    fn take_batch_respects_batch_size() {
        let mut b = base();
        b.cfg.batch_size = 3;
        let mut out = StepOutput::empty();
        b.add_transactions((1..=10).map(tx).collect(), &mut out);
        // Legacy configuration: admission emits no note.
        assert_eq!(out.notes().count(), 0);
        let batch = b.take_batch();
        assert_eq!(batch.len(), 3);
        assert_eq!(b.mempool.len(), 7);
    }

    #[test]
    fn configured_mempool_reports_admission() {
        let mut b = base();
        b.cfg.mempool_capacity = 2;
        b.mempool = Mempool::new(MempoolConfig {
            capacity: 2,
            priority_fee_threshold: 0,
        });
        let mut out = StepOutput::empty();
        b.add_transactions(vec![tx(1), tx(1), tx(2), tx(3)], &mut out);
        let note = out.notes().next().expect("admission note");
        assert!(matches!(
            note,
            Note::MempoolAdmission {
                admitted: 2,
                duplicates: 1,
                rejected: 1,
                priority: 0,
            }
        ));
    }

    #[test]
    fn commit_of_known_chain_emits_actions() {
        let mut b = base();
        let g = b.store.genesis().clone();
        let block = Block::new_normal(
            g.id(),
            g.view(),
            View(1),
            g.height().next(),
            Batch::empty(),
            Justify::One(Qc::genesis(g.id())),
        );
        b.store_block(&block);
        let qc = Qc::new(
            block.vote_seed(Phase::Commit, View(1)),
            *Qc::genesis(g.id()).sig(),
        );
        let mut out = StepOutput::empty();
        b.try_commit(qc, ReplicaId(1), &mut out);
        assert_eq!(out.committed_blocks().count(), 1);
        assert!(b.store.is_committed(&block.id()));
    }

    #[test]
    fn commit_with_missing_block_fetches_then_retries() {
        let mut b = base();
        let g = b.store.genesis().clone();
        let b1 = Block::new_normal(
            g.id(),
            g.view(),
            View(1),
            g.height().next(),
            Batch::empty(),
            Justify::One(Qc::genesis(g.id())),
        );
        let b2 = Block::new_normal(
            b1.id(),
            b1.view(),
            View(1),
            b1.height().next(),
            Batch::empty(),
            Justify::One(Qc::genesis(g.id())),
        );
        // Replica has b2 but not b1.
        b.store_block(&b2);
        let qc = Qc::new(
            b2.vote_seed(Phase::Commit, View(1)),
            *Qc::genesis(g.id()).sig(),
        );
        let mut out = StepOutput::empty();
        b.try_commit(qc, ReplicaId(3), &mut out);
        assert_eq!(out.committed_blocks().count(), 0);
        let fetch = out.actions.iter().find_map(|a| match a {
            Action::Send { to, message } => match &message.body {
                MsgBody::FetchRequest { block } => Some((*to, *block)),
                _ => None,
            },
            _ => None,
        });
        assert_eq!(fetch, Some((ReplicaId(3), b1.id())));

        // The response completes the pending commit.
        let resp = Message::new(
            ReplicaId(3),
            View(1),
            MsgBody::FetchResponse {
                block: b1.clone(),
                virtual_parent: None,
            },
        );
        let mut out2 = StepOutput::empty();
        assert!(b.handle_fetch(&resp, &mut out2));
        assert_eq!(out2.committed_blocks().count(), 2);
    }

    #[test]
    fn fetch_request_served_from_store() {
        let mut b = base();
        let req = Message::new(
            ReplicaId(2),
            View(1),
            MsgBody::FetchRequest {
                block: BlockId::GENESIS,
            },
        );
        let mut out = StepOutput::empty();
        assert!(b.handle_fetch(&req, &mut out));
        assert!(matches!(
            &out.actions[0],
            Action::Send { to: ReplicaId(2), message } if matches!(message.body, MsgBody::FetchResponse { .. })
        ));
    }

    #[test]
    fn future_vc_join_rule_counts_distinct_senders() {
        let mut b = base();
        b.cview = View(1);
        let keys = std::sync::Arc::clone(&b.cfg.keys);
        let vc = move |from: u32, view: u64| {
            Message::new(
                ReplicaId(from),
                View(view),
                MsgBody::ViewChange(marlin_types::ViewChange {
                    last_voted: marlin_types::BlockMeta::genesis(),
                    high_qc: Justify::None,
                    parsig: keys.signer(from as usize).sign_partial(b"x"),
                    cert: None,
                }),
            )
        };
        b.buffer_future(vc(1, 2));
        assert!(b.future_view_change_senders(2).is_none());
        b.buffer_future(vc(1, 2)); // duplicate sender does not count twice
        assert!(b.future_view_change_senders(2).is_none());
        b.buffer_future(vc(2, 3));
        assert_eq!(b.future_view_change_senders(2), Some(View(2)));
    }
}
