//! Events consumed and actions produced by the protocol state machines.

use marlin_types::{Block, Message, ReplicaId, Transaction, View};

// The structured trace vocabulary lives in `marlin-telemetry` (so the
// telemetry pipeline can consume it without depending on the protocol
// crate); re-exported here because protocols *produce* these notes.
pub use marlin_telemetry::{Note, VcCase};

/// An input to a replica's state machine.
///
/// `Message` dwarfs the other variants, but events are consumed in
/// place, never queued in bulk, so boxing would only add indirection.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum Event {
    /// Bootstraps the replica: enter view 1 and, if leader, propose.
    Start,
    /// A message arrived from the network.
    Message(Message),
    /// The timer armed for `view` fired. Stale timeouts (for views the
    /// replica has already left) are ignored.
    Timeout {
        /// The view the timer was armed for.
        view: View,
    },
    /// New client transactions for the replica's mempool.
    NewTransactions(Vec<Transaction>),
    /// A heartbeat armed via [`Action::SetHeartbeat`] fired; idle
    /// leaders use it to pace empty proposals.
    Heartbeat,
    /// The replica rejoined after a crash (its state either survived in
    /// memory, was reconstructed from a durable journal, or was lost).
    /// Handlers re-arm the view timer for the *current* view — any
    /// pre-crash timer is dead — and may solicit state they missed
    /// (Marlin broadcasts a `CATCH-UP` request).
    Recovered,
}

/// An output of a replica's state machine.
#[derive(Clone, Debug)]
pub enum Action {
    /// Send `message` to replica `to`.
    Send {
        /// Destination replica.
        to: ReplicaId,
        /// The message.
        message: Message,
    },
    /// Send `message` to every other replica (the sender processes its
    /// own copy internally; drivers must not loop it back).
    Broadcast {
        /// The message.
        message: Message,
    },
    /// Deliver newly committed blocks to the application, oldest first.
    Commit {
        /// The committed blocks.
        blocks: Vec<Block>,
    },
    /// Arm (or re-arm) the view timer: fire [`Event::Timeout`] for
    /// `view` after `delay_ns` of simulated time.
    SetTimer {
        /// View the timer belongs to.
        view: View,
        /// Delay until firing, in simulated nanoseconds.
        delay_ns: u64,
    },
    /// Fire [`Event::Heartbeat`] after `delay_ns` of simulated time.
    SetHeartbeat {
        /// Delay until firing, in simulated nanoseconds.
        delay_ns: u64,
    },
    /// A trace note for tests, examples, and benchmarks.
    Note(Note),
}

/// The result of one state-machine step.
#[derive(Clone, Debug, Default)]
pub struct StepOutput {
    /// Actions for the driver, in order.
    pub actions: Vec<Action>,
    /// Total simulated CPU nanoseconds consumed. Always the sum of the
    /// per-lane charges below plus any uncategorized consensus work, so
    /// drivers that model a single CPU can keep using this scalar.
    pub cpu_ns: u64,
    /// Portion of `cpu_ns` spent in cryptographic operations; drivers
    /// with a multi-lane CPU model run it on the crypto worker lanes.
    pub crypto_ns: u64,
    /// Portion of `cpu_ns` spent on journal / storage IO; drivers with
    /// a multi-lane CPU model run it on the IO lane.
    pub journal_ns: u64,
}

impl StepOutput {
    /// An empty step.
    pub fn empty() -> Self {
        StepOutput::default()
    }

    /// Appends another step's actions and cost.
    pub fn merge(&mut self, other: StepOutput) {
        self.actions.extend(other.actions);
        self.cpu_ns += other.cpu_ns;
        self.crypto_ns += other.crypto_ns;
        self.journal_ns += other.journal_ns;
    }

    /// CPU nanoseconds not attributed to the crypto or journal lanes
    /// (protocol bookkeeping that must run on the consensus lane).
    pub fn consensus_ns(&self) -> u64 {
        self.cpu_ns
            .saturating_sub(self.crypto_ns)
            .saturating_sub(self.journal_ns)
    }

    /// Iterates over the blocks committed in this step, oldest first.
    pub fn committed_blocks(&self) -> impl Iterator<Item = &Block> {
        self.actions.iter().flat_map(|a| match a {
            Action::Commit { blocks } => blocks.iter(),
            _ => [].iter(),
        })
    }

    /// Iterates over trace notes emitted in this step.
    pub fn notes(&self) -> impl Iterator<Item = &Note> {
        self.actions.iter().filter_map(|a| match a {
            Action::Note(n) => Some(n),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_concatenates() {
        let mut a = StepOutput {
            actions: vec![Action::Note(Note::HappyPathVc { view: View(1) })],
            cpu_ns: 5,
            crypto_ns: 4,
            journal_ns: 0,
        };
        let b = StepOutput {
            actions: vec![Action::SetTimer {
                view: View(2),
                delay_ns: 7,
            }],
            cpu_ns: 3,
            crypto_ns: 1,
            journal_ns: 2,
        };
        a.merge(b);
        assert_eq!(a.actions.len(), 2);
        assert_eq!(a.cpu_ns, 8);
        assert_eq!(a.crypto_ns, 5);
        assert_eq!(a.journal_ns, 2);
        assert_eq!(a.consensus_ns(), 1);
    }

    #[test]
    fn consensus_lane_never_underflows() {
        let out = StepOutput {
            actions: vec![],
            cpu_ns: 3,
            crypto_ns: 2,
            journal_ns: 2,
        };
        assert_eq!(out.consensus_ns(), 0);
    }

    #[test]
    fn accessors_filter_by_kind() {
        let out = StepOutput {
            actions: vec![
                Action::Note(Note::HappyPathVc { view: View(3) }),
                Action::Commit {
                    blocks: vec![Block::genesis()],
                },
            ],
            ..StepOutput::default()
        };
        assert_eq!(out.committed_blocks().count(), 1);
        assert_eq!(out.notes().count(), 1);
    }
}
