//! Replica configuration.

use marlin_crypto::{CostModel, KeyStore, QcFormat};
use marlin_types::ReplicaId;
use std::sync::Arc;

/// Which protocol a replica runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Marlin (two-phase, linear view change) — the paper's protocol.
    Marlin,
    /// Basic three-phase HotStuff.
    HotStuff,
    /// Chained (pipelined) Marlin.
    ChainedMarlin,
    /// Chained (pipelined) HotStuff.
    ChainedHotStuff,
    /// Jolteon-style two-phase protocol with a quadratic view change.
    Jolteon,
    /// The insecure two-phase HotStuff strawman of Section IV-B.
    TwoPhaseInsecure,
    /// The four-phase "half-baked attempt" of Section IV-D (linear view
    /// change without virtual blocks) — an ablation.
    MarlinFourPhase,
}

impl ProtocolKind {
    /// Human-readable protocol name.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Marlin => "marlin",
            ProtocolKind::HotStuff => "hotstuff",
            ProtocolKind::ChainedMarlin => "chained-marlin",
            ProtocolKind::ChainedHotStuff => "chained-hotstuff",
            ProtocolKind::Jolteon => "jolteon",
            ProtocolKind::TwoPhaseInsecure => "two-phase-insecure",
            ProtocolKind::MarlinFourPhase => "marlin-four-phase",
        }
    }
}

/// Static configuration shared by all protocol implementations.
///
/// # Example
///
/// ```
/// use marlin_core::Config;
///
/// let mut cfg = Config::for_test(4, 1);
/// cfg.batch_size = 200;
/// assert_eq!(cfg.quorum(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct Config {
    /// This replica's id.
    pub id: ReplicaId,
    /// Total number of replicas `n ≥ 3f + 1`.
    pub n: usize,
    /// Fault tolerance `f`.
    pub f: usize,
    /// The system key material (trusted setup output).
    pub keys: Arc<KeyStore>,
    /// CPU cost model for cryptographic operations.
    pub cost: CostModel,
    /// Wire format for quorum certificates.
    pub qc_format: QcFormat,
    /// Maximum transactions per proposed block.
    pub batch_size: usize,
    /// Base view timeout in simulated nanoseconds.
    pub base_timeout_ns: u64,
    /// Exponential backoff cap: timeout doubles per consecutive failed
    /// view up to `base << max_backoff_exp`.
    pub max_backoff_exp: u32,
    /// Rotating-leader mode (the paper's Section VI "performance under
    /// failures" experiment): when set, a leader voluntarily hands over
    /// after this many simulated nanoseconds even without failures.
    pub rotation_interval_ns: Option<u64>,
    /// Verify vote shares in amortized batches at quorum-trigger points
    /// instead of one stand-alone verification per arriving share.
    pub batch_verify: bool,
    /// Size of the simulated crypto worker pool. Combine/assembly
    /// charges divide across workers, and multi-lane drivers spread
    /// independent crypto charges over this many lanes. `1` reproduces
    /// the historical single-lane timing exactly.
    pub crypto_workers: usize,
    /// Charge the write-ahead journal's modeled IO latency to the step
    /// (on the journal lane) instead of only reporting it as a note.
    /// Off by default: folding IO into the schedule perturbs the
    /// deterministic timings the fault campaign pins.
    pub charge_journal: bool,
    /// Record a self-certifying snapshot anchor (and prune committed
    /// prefixes one interval behind it) every this many commits.
    /// `0` disables block sync + snapshots entirely, which keeps every
    /// pre-existing deterministic fingerprint bit-identical.
    pub sync_snapshot_interval: u64,
    /// Blocks per ranged sync request when a lagging replica fetches
    /// the committed chain from its peers.
    pub sync_range_size: u64,
    /// Commit-height gap beyond which a replica stops trying to commit
    /// block-by-block and starts a ranged sync instead.
    pub sync_lag_threshold: u64,
    /// Maximum resident mempool transactions across both lanes. `0`
    /// keeps the legacy unbounded queue (and every pre-existing
    /// deterministic fingerprint bit-identical); nonzero turns on
    /// explicit admission control — an arrival over capacity is
    /// rejected with a retryable backpressure signal instead of being
    /// queued, which is what keeps goodput at its peak past saturation.
    pub mempool_capacity: usize,
    /// Minimum fee bid (the first payload byte) for the mempool's
    /// priority lane; `0` disables fee lanes.
    pub priority_fee_threshold: u8,
    /// Decouple payload dissemination from proposals: admitted
    /// transactions are sealed into digest-addressed batches and pushed
    /// to all replicas ahead of the proposal, and the leader proposes a
    /// digest (with a fetch-by-digest fallback) only once a quorum has
    /// acknowledged holding the batch. Off by default; when off, the
    /// normal case proposes whole blocks exactly as before.
    pub dissemination: bool,
    /// Maximum sealed batches in flight (pushed, awaiting their
    /// availability quorum or proposal) per replica. Two keeps the
    /// push pipe full without building a deep sealed backlog: batches
    /// sealed long before their proposal slot age in the payload store
    /// and inflate end-to-end latency under overload.
    pub dissemination_window: usize,
}

impl Config {
    /// A configuration suitable for unit tests: zero crypto cost,
    /// threshold QCs, small batches, 100 ms base timeout.
    pub fn for_test(n: usize, f: usize) -> Self {
        Config {
            id: ReplicaId(0),
            n,
            f,
            keys: Arc::new(KeyStore::generate(n, f, 0xBEEF)),
            cost: CostModel::zero(),
            qc_format: QcFormat::Threshold,
            batch_size: 100,
            base_timeout_ns: 100_000_000,
            max_backoff_exp: 6,
            rotation_interval_ns: None,
            batch_verify: false,
            crypto_workers: 1,
            charge_journal: false,
            sync_snapshot_interval: 0,
            sync_range_size: 16,
            sync_lag_threshold: 64,
            mempool_capacity: 0,
            priority_fee_threshold: 0,
            dissemination: false,
            dissemination_window: 2,
        }
    }

    /// Whether any mempool/dissemination knob departs from the legacy
    /// synthetic-workload defaults. Admission telemetry is only emitted
    /// when this holds, so legacy traces stay byte-identical.
    pub fn mempool_configured(&self) -> bool {
        self.mempool_capacity > 0 || self.priority_fee_threshold > 0 || self.dissemination
    }

    /// The same configuration bound to replica `id`.
    pub fn with_id(&self, id: ReplicaId) -> Self {
        Config { id, ..self.clone() }
    }

    /// Quorum size `n − f`.
    pub fn quorum(&self) -> usize {
        self.n - self.f
    }

    /// The leader of `view` (round-robin).
    pub fn leader_of(&self, view: marlin_types::View) -> ReplicaId {
        ReplicaId::leader_of(view, self.n)
    }

    /// Whether this replica leads `view`.
    pub fn is_leader(&self, view: marlin_types::View) -> bool {
        self.leader_of(view) == self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marlin_types::View;

    #[test]
    fn quorum_math() {
        let c = Config::for_test(4, 1);
        assert_eq!(c.quorum(), 3);
        let c = Config::for_test(31, 10);
        assert_eq!(c.quorum(), 21);
    }

    #[test]
    fn leadership_rotates() {
        let c = Config::for_test(4, 1).with_id(ReplicaId(2));
        assert!(c.is_leader(View(2)));
        assert!(c.is_leader(View(6)));
        assert!(!c.is_leader(View(3)));
        assert_eq!(c.leader_of(View(5)), ReplicaId(1));
    }

    #[test]
    fn protocol_names() {
        assert_eq!(ProtocolKind::Marlin.name(), "marlin");
        assert_eq!(ProtocolKind::ChainedHotStuff.name(), "chained-hotstuff");
    }
}
