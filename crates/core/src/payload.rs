//! The payload plane: Narwhal-style batch dissemination decoupled from
//! proposals.
//!
//! With [`crate::Config::dissemination`] on, a replica seals admitted
//! transactions into digest-addressed batches, pushes each batch to all
//! peers (`PAYLOAD-PUSH`), and collects availability acknowledgements
//! (`PAYLOAD-ACK`). Once `n − f` replicas — the pusher included — hold
//! a batch, its digest is *ready*: a leader proposes the digest instead
//! of the batch, shrinking its egress per committed transaction from
//! O(batch) to O(digest). A replica that receives a digest it cannot
//! resolve fetches it (`PAYLOAD-REQUEST` / `PAYLOAD-RESPONSE`) — the
//! fallback that keeps the digest path safe when a push was lost.
//!
//! This module tracks only availability bookkeeping; the consensus
//! protocols decide when to seal and what to propose.

use marlin_types::{Batch, BatchId, Message, MsgBody, ReplicaId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Resolved batches kept around for digest proposals and fetch serving,
/// beyond the ones still sealed or ready (which are never evicted).
const STORE_CAP: usize = 128;

/// What [`PayloadPlane::handle`] did with a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PayloadOutcome {
    /// Not a payload-plane message; the caller keeps dispatching.
    NotPayload,
    /// Consumed with no protocol-visible state change.
    Consumed,
    /// A fetched batch arrived: digest proposals buffered on this
    /// digest can now be replayed.
    Resolved(BatchId),
    /// One of our sealed batches reached its availability quorum; a
    /// leader with nothing in flight should propose.
    QuorumReached,
}

/// Per-replica payload-plane state. Inert (and empty) unless
/// dissemination is enabled.
#[derive(Clone, Debug, Default)]
pub(crate) struct PayloadPlane {
    /// Digest-addressed batches this replica holds (own and pushed).
    store: HashMap<BatchId, Batch>,
    /// Insertion order of `store`, for FIFO eviction.
    order: VecDeque<BatchId>,
    /// Own sealed batches awaiting their availability quorum: which
    /// replicas acked (the pusher self-acks at seal time).
    sealed: HashMap<BatchId, HashSet<ReplicaId>>,
    /// Seal order, so digests are proposed in the order clients
    /// submitted their transactions.
    sealed_order: VecDeque<BatchId>,
    /// Own quorum-acked digests, ready to propose (FIFO).
    ready: VecDeque<BatchId>,
}

impl PayloadPlane {
    /// The batch behind `digest`, if this replica holds it.
    pub fn batch(&self, digest: &BatchId) -> Option<&Batch> {
        self.store.get(digest)
    }

    /// Whether any sealed batch is awaiting its quorum or a ready
    /// digest is awaiting proposal.
    pub fn has_work(&self) -> bool {
        !self.sealed.is_empty() || !self.ready.is_empty()
    }

    /// Sealed batches in flight (pushed, not yet proposed).
    pub fn in_flight(&self) -> usize {
        self.sealed.len() + self.ready.len()
    }

    /// The next quorum-acked digest to propose, if any.
    pub fn pop_ready(&mut self) -> Option<BatchId> {
        self.ready.pop_front()
    }

    /// Records a locally sealed batch: stores it, self-acks, and
    /// starts waiting for peer acks. The caller broadcasts the push.
    pub fn seal(&mut self, digest: BatchId, batch: Batch, me: ReplicaId) {
        self.insert(digest, batch);
        self.sealed.entry(digest).or_default().insert(me);
        self.sealed_order.push_back(digest);
    }

    /// Stores a batch under its digest, evicting the oldest evictable
    /// entry over capacity. Sealed and ready digests are pinned: they
    /// are needed verbatim for an upcoming proposal.
    fn insert(&mut self, digest: BatchId, batch: Batch) {
        if self.store.insert(digest, batch).is_none() {
            self.order.push_back(digest);
        }
        while self.order.len() > STORE_CAP {
            let Some(idx) = self
                .order
                .iter()
                .position(|d| !self.sealed.contains_key(d) && !self.ready.contains(d))
            else {
                break;
            };
            let evict = self.order.remove(idx).expect("index in range");
            self.store.remove(&evict);
        }
    }

    /// Records `from`'s ack for `digest`; returns `true` when this ack
    /// completes the availability quorum and moves the digest to ready.
    pub fn ack(&mut self, digest: BatchId, from: ReplicaId, quorum: usize) -> bool {
        let Some(acks) = self.sealed.get_mut(&digest) else {
            return false; // unknown or already-ready digest: stale ack
        };
        acks.insert(from);
        if acks.len() < quorum {
            return false;
        }
        self.sealed.remove(&digest);
        self.sealed_order.retain(|d| d != &digest);
        self.ready.push_back(digest);
        true
    }

    /// Handles the four payload-plane messages. `me` filters loopback
    /// copies of our own broadcasts; `quorum` is `n − f`.
    pub fn handle(
        &mut self,
        msg: &Message,
        me: ReplicaId,
        quorum: usize,
        reply: &mut Vec<(ReplicaId, MsgBody)>,
    ) -> PayloadOutcome {
        match &msg.body {
            MsgBody::PayloadPush { digest, batch } => {
                if msg.from != me && batch.digest() == *digest {
                    self.insert(*digest, batch.clone());
                    reply.push((msg.from, MsgBody::PayloadAck { digest: *digest }));
                }
                PayloadOutcome::Consumed
            }
            MsgBody::PayloadAck { digest } => {
                if self.ack(*digest, msg.from, quorum) {
                    PayloadOutcome::QuorumReached
                } else {
                    PayloadOutcome::Consumed
                }
            }
            MsgBody::PayloadRequest { digest } => {
                reply.push((
                    msg.from,
                    MsgBody::PayloadResponse {
                        digest: *digest,
                        batch: self.store.get(digest).cloned(),
                    },
                ));
                PayloadOutcome::Consumed
            }
            MsgBody::PayloadResponse { digest, batch } => match batch {
                Some(b) if b.digest() == *digest && !self.store.contains_key(digest) => {
                    self.insert(*digest, b.clone());
                    PayloadOutcome::Resolved(*digest)
                }
                _ => PayloadOutcome::Consumed,
            },
            _ => PayloadOutcome::NotPayload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use marlin_types::{Transaction, View};

    fn batch(tag: u8) -> Batch {
        (0..3)
            .map(|i| Transaction::new(u64::from(tag) << 8 | i, 0, Bytes::from(vec![tag; 4]), 0))
            .collect()
    }

    fn push(from: u32, b: &Batch) -> Message {
        Message::new(
            ReplicaId(from),
            View(1),
            MsgBody::PayloadPush {
                digest: b.digest(),
                batch: b.clone(),
            },
        )
    }

    #[test]
    fn push_is_stored_and_acked() {
        let mut p = PayloadPlane::default();
        let b = batch(1);
        let mut reply = Vec::new();
        let out = p.handle(&push(2, &b), ReplicaId(0), 3, &mut reply);
        assert_eq!(out, PayloadOutcome::Consumed);
        assert_eq!(p.batch(&b.digest()), Some(&b));
        assert!(
            matches!(reply.as_slice(), [(ReplicaId(2), MsgBody::PayloadAck { digest })] if *digest == b.digest())
        );
    }

    #[test]
    fn lying_digest_is_dropped_without_ack() {
        let mut p = PayloadPlane::default();
        let b = batch(1);
        let lie = Message::new(
            ReplicaId(2),
            View(1),
            MsgBody::PayloadPush {
                digest: batch(9).digest(),
                batch: b.clone(),
            },
        );
        let mut reply = Vec::new();
        p.handle(&lie, ReplicaId(0), 3, &mut reply);
        assert!(reply.is_empty());
        assert!(p.batch(&b.digest()).is_none());
    }

    #[test]
    fn quorum_of_acks_readies_the_digest() {
        let mut p = PayloadPlane::default();
        let b = batch(1);
        let d = b.digest();
        p.seal(d, b, ReplicaId(0)); // self-ack = 1
        assert!(p.has_work());
        assert!(!p.ack(d, ReplicaId(1), 3));
        assert!(p.ack(d, ReplicaId(2), 3));
        assert_eq!(p.pop_ready(), Some(d));
        assert_eq!(p.pop_ready(), None);
        assert!(!p.has_work());
        // Acks after the quorum (or for foreign digests) are stale.
        assert!(!p.ack(d, ReplicaId(3), 3));
    }

    #[test]
    fn request_is_served_and_response_resolves() {
        let mut holder = PayloadPlane::default();
        let b = batch(1);
        let d = b.digest();
        holder.seal(d, b.clone(), ReplicaId(1));
        let req = Message::new(ReplicaId(0), View(1), MsgBody::PayloadRequest { digest: d });
        let mut reply = Vec::new();
        holder.handle(&req, ReplicaId(1), 3, &mut reply);
        let (to, body) = reply.pop().expect("served");
        assert_eq!(to, ReplicaId(0));

        let mut fetcher = PayloadPlane::default();
        let resp = Message::new(ReplicaId(1), View(1), body);
        let out = fetcher.handle(&resp, ReplicaId(0), 3, &mut Vec::new());
        assert_eq!(out, PayloadOutcome::Resolved(d));
        assert_eq!(fetcher.batch(&d), Some(&b));
    }

    #[test]
    fn eviction_spares_sealed_and_ready_batches() {
        let mut p = PayloadPlane::default();
        let pinned = batch(0);
        p.seal(pinned.digest(), pinned.clone(), ReplicaId(0));
        for tag in 1..=255u8 {
            let b = batch(tag);
            let mut reply = Vec::new();
            p.handle(&push(1, &b), ReplicaId(0), 3, &mut reply);
        }
        assert!(p.store.len() <= STORE_CAP + 1);
        assert_eq!(p.batch(&pinned.digest()), Some(&pinned));
        // The oldest unpinned batch was evicted.
        assert!(p.batch(&batch(1).digest()).is_none());
    }
}
