//! The payload plane: Narwhal-style batch dissemination decoupled from
//! proposals.
//!
//! With [`crate::Config::dissemination`] on, a replica seals admitted
//! transactions into digest-addressed batches, pushes each batch to all
//! peers (`PAYLOAD-PUSH`), and collects availability acknowledgements
//! (`PAYLOAD-ACK`). Once `n − f` replicas — the pusher included — hold
//! a batch, its digest is *ready*: a leader proposes the digest instead
//! of the batch, shrinking its egress per committed transaction from
//! O(batch) to O(digest). A replica that receives a digest it cannot
//! resolve fetches it (`PAYLOAD-REQUEST` / `PAYLOAD-RESPONSE`) — the
//! fallback that keeps the digest path safe when a push was lost.
//!
//! This module tracks only availability bookkeeping; the consensus
//! protocols decide when to seal and what to propose.

use marlin_types::{Batch, BatchId, Message, MsgBody, ReplicaId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Resolved batches kept around for digest proposals and fetch serving,
/// beyond the ones still sealed or ready (which are never evicted).
const STORE_CAP: usize = 128;

/// *Silent* ticks of [`PayloadPlane::tick`] before a sealed batch that
/// has not reached its availability quorum is retransmitted. A seal's
/// clock counts silence, not absolute age — every fresh ack resets it —
/// so under congestion (acks merely delayed, nothing lost) no bandwidth
/// is wasted re-pushing batches the network is still delivering. Ticks
/// arrive at heartbeat cadence (a quarter of the view timeout).
const REPUSH_EVERY: u32 = 2;

/// Silent ticks after which an unacked seal is abandoned and its
/// transactions handed back for the inline-proposal path. A lost push
/// to more than `f` peers must not occupy a dissemination-window slot
/// forever — and at heartbeat cadence, three ticks keep the fallback
/// inside one view timeout, so a wedged leader recovers without losing
/// its view. Expiry requires total silence for the whole window: a
/// single in-flight ack buys the seal another three ticks.
const EXPIRE_AFTER: u32 = 3;

/// What [`PayloadPlane::handle`] did with a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PayloadOutcome {
    /// Not a payload-plane message; the caller keeps dispatching.
    NotPayload,
    /// Consumed with no protocol-visible state change.
    Consumed,
    /// A fetched batch arrived: digest proposals buffered on this
    /// digest can now be replayed.
    Resolved(BatchId),
    /// A fetch target answered that it no longer holds the batch
    /// (evicted, or crashed and restarted): the caller should retry
    /// against the availability quorum instead of waiting forever.
    Unavailable(BatchId),
    /// One of our sealed batches reached its availability quorum; a
    /// leader with nothing in flight should propose.
    QuorumReached,
}

/// A sealed batch awaiting its availability quorum.
#[derive(Clone, Debug, Default)]
struct Seal {
    /// Replicas that acked the push (the pusher self-acks at seal time).
    acks: HashSet<ReplicaId>,
    /// Ticks since the last progress (sealing or a fresh ack), for
    /// retransmission and expiry.
    age: u32,
}

/// What one retransmit/expiry tick decided (see [`PayloadPlane::tick`]).
#[derive(Clone, Debug, Default)]
pub(crate) struct PayloadTick {
    /// Sealed batches overdue for a retransmission: push them again.
    pub repush: Vec<(BatchId, Batch)>,
    /// Seals abandoned after [`EXPIRE_AFTER`] ticks without a quorum;
    /// their transactions belong back in the mempool.
    pub expired: Vec<(BatchId, Batch)>,
}

/// Per-replica payload-plane state. Inert (and empty) unless
/// dissemination is enabled.
#[derive(Clone, Debug, Default)]
pub(crate) struct PayloadPlane {
    /// Digest-addressed batches this replica holds (own and pushed).
    store: HashMap<BatchId, Batch>,
    /// Insertion order of `store`, for FIFO eviction.
    order: VecDeque<BatchId>,
    /// Own sealed batches awaiting their availability quorum.
    sealed: HashMap<BatchId, Seal>,
    /// Seal order, so digests are proposed in the order clients
    /// submitted their transactions.
    sealed_order: VecDeque<BatchId>,
    /// Own quorum-acked digests, ready to propose (FIFO).
    ready: VecDeque<BatchId>,
}

impl PayloadPlane {
    /// The batch behind `digest`, if this replica holds it.
    pub fn batch(&self, digest: &BatchId) -> Option<&Batch> {
        self.store.get(digest)
    }

    /// Whether any sealed batch is awaiting its quorum or a ready
    /// digest is awaiting proposal.
    pub fn has_work(&self) -> bool {
        !self.sealed.is_empty() || !self.ready.is_empty()
    }

    /// Sealed batches in flight (pushed, not yet proposed).
    pub fn in_flight(&self) -> usize {
        self.sealed.len() + self.ready.len()
    }

    /// The next quorum-acked digest to propose, if any. The popped
    /// digest's eviction slot is refreshed to youngest: it leaves the
    /// pinned `ready` set here, but lagging replicas are about to fetch
    /// exactly this batch, so it must not be the next FIFO victim.
    pub fn pop_ready(&mut self) -> Option<BatchId> {
        let digest = self.ready.pop_front()?;
        if let Some(idx) = self.order.iter().position(|d| d == &digest) {
            self.order.remove(idx);
            self.order.push_back(digest);
        }
        Some(digest)
    }

    /// Records a locally sealed batch: stores it, self-acks, and
    /// starts waiting for peer acks. The caller broadcasts the push.
    pub fn seal(&mut self, digest: BatchId, batch: Batch, me: ReplicaId) {
        self.insert(digest, batch);
        self.sealed.entry(digest).or_default().acks.insert(me);
        self.sealed_order.push_back(digest);
    }

    /// Stores a batch under its digest, evicting the oldest evictable
    /// entry over capacity. Sealed and ready digests are pinned: they
    /// are needed verbatim for an upcoming proposal. First write wins —
    /// a digest already resident keeps its original batch, so a later
    /// (potentially adversarial) push can never swap the bytes behind a
    /// digest other parts of the replica already rely on.
    fn insert(&mut self, digest: BatchId, batch: Batch) {
        if let std::collections::hash_map::Entry::Vacant(slot) = self.store.entry(digest) {
            slot.insert(batch);
            self.order.push_back(digest);
        }
        while self.order.len() > STORE_CAP {
            let Some(idx) = self
                .order
                .iter()
                .position(|d| !self.sealed.contains_key(d) && !self.ready.contains(d))
            else {
                break;
            };
            let evict = self.order.remove(idx).expect("index in range");
            self.store.remove(&evict);
        }
    }

    /// Records `from`'s ack for `digest`; returns `true` when this ack
    /// completes the availability quorum and moves the digest to ready.
    /// A fresh ack is progress and resets the seal's retransmit/expiry
    /// clock (a duplicate from the same replica does not, so a Byzantine
    /// trickler buys a seal at most one extension).
    pub fn ack(&mut self, digest: BatchId, from: ReplicaId, quorum: usize) -> bool {
        let Some(seal) = self.sealed.get_mut(&digest) else {
            return false; // unknown or already-ready digest: stale ack
        };
        if seal.acks.insert(from) {
            seal.age = 0;
        }
        if seal.acks.len() < quorum {
            return false;
        }
        self.sealed.remove(&digest);
        self.sealed_order.retain(|d| d != &digest);
        self.ready.push_back(digest);
        true
    }

    /// Advances the retransmit/expiry clock one tick: sealed batches
    /// that missed their quorum for [`REPUSH_EVERY`] ticks are returned
    /// for retransmission, and seals older than [`EXPIRE_AFTER`] ticks
    /// are abandoned — unpinned, dropped from the store, and their
    /// batches returned so the caller can requeue the transactions.
    /// Without this, one lost push could occupy a dissemination-window
    /// slot forever and wedge sealing (and leader proposals) for good.
    pub fn tick(&mut self) -> PayloadTick {
        let mut out = PayloadTick::default();
        let mut expired: Vec<BatchId> = Vec::new();
        for digest in self.sealed_order.iter() {
            let seal = self
                .sealed
                .get_mut(digest)
                .expect("sealed_order tracks sealed");
            seal.age += 1;
            if seal.age >= EXPIRE_AFTER {
                expired.push(*digest);
            } else if seal.age.is_multiple_of(REPUSH_EVERY) {
                if let Some(batch) = self.store.get(digest) {
                    out.repush.push((*digest, batch.clone()));
                }
            }
        }
        for digest in expired {
            self.sealed.remove(&digest);
            self.sealed_order.retain(|d| d != &digest);
            self.order.retain(|d| d != &digest);
            if let Some(batch) = self.store.remove(&digest) {
                out.expired.push((digest, batch));
            }
        }
        out
    }

    /// Handles the four payload-plane messages. `me` filters loopback
    /// copies of our own broadcasts; `quorum` is `n − f`.
    pub fn handle(
        &mut self,
        msg: &Message,
        me: ReplicaId,
        quorum: usize,
        reply: &mut Vec<(ReplicaId, MsgBody)>,
    ) -> PayloadOutcome {
        match &msg.body {
            MsgBody::PayloadPush { digest, batch } => {
                if msg.from != me && batch.digest() == *digest {
                    self.insert(*digest, batch.clone());
                    reply.push((msg.from, MsgBody::PayloadAck { digest: *digest }));
                }
                PayloadOutcome::Consumed
            }
            MsgBody::PayloadAck { digest } => {
                if self.ack(*digest, msg.from, quorum) {
                    PayloadOutcome::QuorumReached
                } else {
                    PayloadOutcome::Consumed
                }
            }
            MsgBody::PayloadRequest { digest } => {
                // `from == me` is the loopback copy of our own broadcast
                // fetch: answering it would only bounce a useless
                // `None` response back into the fetch path.
                if msg.from != me {
                    reply.push((
                        msg.from,
                        MsgBody::PayloadResponse {
                            digest: *digest,
                            batch: self.store.get(digest).cloned(),
                        },
                    ));
                }
                PayloadOutcome::Consumed
            }
            MsgBody::PayloadResponse { digest, batch } => match batch {
                Some(b) if b.digest() == *digest && !self.store.contains_key(digest) => {
                    self.insert(*digest, b.clone());
                    PayloadOutcome::Resolved(*digest)
                }
                Some(_) => PayloadOutcome::Consumed,
                None => PayloadOutcome::Unavailable(*digest),
            },
            _ => PayloadOutcome::NotPayload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use marlin_types::{Transaction, View};

    fn batch(tag: u8) -> Batch {
        (0..3)
            .map(|i| Transaction::new(u64::from(tag) << 8 | i, 0, Bytes::from(vec![tag; 4]), 0))
            .collect()
    }

    fn push(from: u32, b: &Batch) -> Message {
        Message::new(
            ReplicaId(from),
            View(1),
            MsgBody::PayloadPush {
                digest: b.digest(),
                batch: b.clone(),
            },
        )
    }

    #[test]
    fn push_is_stored_and_acked() {
        let mut p = PayloadPlane::default();
        let b = batch(1);
        let mut reply = Vec::new();
        let out = p.handle(&push(2, &b), ReplicaId(0), 3, &mut reply);
        assert_eq!(out, PayloadOutcome::Consumed);
        assert_eq!(p.batch(&b.digest()), Some(&b));
        assert!(
            matches!(reply.as_slice(), [(ReplicaId(2), MsgBody::PayloadAck { digest })] if *digest == b.digest())
        );
    }

    #[test]
    fn lying_digest_is_dropped_without_ack() {
        let mut p = PayloadPlane::default();
        let b = batch(1);
        let lie = Message::new(
            ReplicaId(2),
            View(1),
            MsgBody::PayloadPush {
                digest: batch(9).digest(),
                batch: b.clone(),
            },
        );
        let mut reply = Vec::new();
        p.handle(&lie, ReplicaId(0), 3, &mut reply);
        assert!(reply.is_empty());
        assert!(p.batch(&b.digest()).is_none());
    }

    #[test]
    fn quorum_of_acks_readies_the_digest() {
        let mut p = PayloadPlane::default();
        let b = batch(1);
        let d = b.digest();
        p.seal(d, b, ReplicaId(0)); // self-ack = 1
        assert!(p.has_work());
        assert!(!p.ack(d, ReplicaId(1), 3));
        assert!(p.ack(d, ReplicaId(2), 3));
        assert_eq!(p.pop_ready(), Some(d));
        assert_eq!(p.pop_ready(), None);
        assert!(!p.has_work());
        // Acks after the quorum (or for foreign digests) are stale.
        assert!(!p.ack(d, ReplicaId(3), 3));
    }

    #[test]
    fn request_is_served_and_response_resolves() {
        let mut holder = PayloadPlane::default();
        let b = batch(1);
        let d = b.digest();
        holder.seal(d, b.clone(), ReplicaId(1));
        let req = Message::new(ReplicaId(0), View(1), MsgBody::PayloadRequest { digest: d });
        let mut reply = Vec::new();
        holder.handle(&req, ReplicaId(1), 3, &mut reply);
        let (to, body) = reply.pop().expect("served");
        assert_eq!(to, ReplicaId(0));

        let mut fetcher = PayloadPlane::default();
        let resp = Message::new(ReplicaId(1), View(1), body);
        let out = fetcher.handle(&resp, ReplicaId(0), 3, &mut Vec::new());
        assert_eq!(out, PayloadOutcome::Resolved(d));
        assert_eq!(fetcher.batch(&d), Some(&b));
    }

    #[test]
    fn insert_keeps_the_first_batch_for_a_digest() {
        let mut p = PayloadPlane::default();
        let first = batch(1);
        let d = first.digest();
        p.insert(d, first.clone());
        p.insert(d, batch(2)); // same key, different bytes: ignored
        assert_eq!(p.batch(&d), Some(&first));
        assert_eq!(p.order.iter().filter(|x| **x == d).count(), 1);
    }

    #[test]
    fn unacked_seal_is_repushed_then_expired() {
        let mut p = PayloadPlane::default();
        let b = batch(1);
        let d = b.digest();
        p.seal(d, b.clone(), ReplicaId(0));
        let mut repushes = 0;
        let mut expired = Vec::new();
        for _ in 0..EXPIRE_AFTER {
            let tick = p.tick();
            repushes += tick.repush.len();
            expired.extend(tick.expired);
        }
        assert!(repushes >= 1, "a stalled seal must be retransmitted");
        assert_eq!(expired, vec![(d, b)], "then abandoned with its batch");
        assert!(!p.has_work(), "the window slot is free again");
        assert!(
            p.batch(&d).is_none(),
            "expired seals are unpinned and dropped"
        );
        // Expiry of one seal leaves a younger one untouched.
        let fresh = batch(2);
        p.seal(fresh.digest(), fresh, ReplicaId(0));
        assert!(p.tick().expired.is_empty());
        assert!(p.has_work());
    }

    #[test]
    fn acked_quorum_stops_the_expiry_clock() {
        let mut p = PayloadPlane::default();
        let b = batch(1);
        let d = b.digest();
        p.seal(d, b, ReplicaId(0));
        assert!(p.ack(d, ReplicaId(1), 2));
        for _ in 0..2 * EXPIRE_AFTER {
            let tick = p.tick();
            assert!(tick.repush.is_empty() && tick.expired.is_empty());
        }
        assert_eq!(p.pop_ready(), Some(d));
    }

    #[test]
    fn a_fresh_ack_resets_the_expiry_clock() {
        let mut p = PayloadPlane::default();
        let b = batch(1);
        let d = b.digest();
        p.seal(d, b, ReplicaId(0));
        p.tick();
        p.tick(); // one silent tick short of expiry
                  // A below-quorum ack is progress (the network is delivering,
                  // just slowly): the silence clock restarts.
        assert!(!p.ack(d, ReplicaId(1), 3));
        assert!(p.tick().expired.is_empty());
        assert!(p.tick().expired.is_empty());
        // A duplicate ack is not progress: silence resumes and the
        // seal expires on schedule.
        assert!(!p.ack(d, ReplicaId(1), 3));
        assert_eq!(p.tick().expired.len(), 1);
        assert!(!p.has_work());
    }

    #[test]
    fn pop_ready_refreshes_the_eviction_slot() {
        let mut p = PayloadPlane::default();
        let proposed = batch(0);
        let d = proposed.digest();
        p.seal(d, proposed.clone(), ReplicaId(0));
        // Older foreign batches arrive while the seal collects acks.
        for tag in 1..=100u8 {
            p.handle(&push(1, &batch(tag)), ReplicaId(0), 3, &mut Vec::new());
        }
        assert!(p.ack(d, ReplicaId(1), 2));
        assert_eq!(p.pop_ready(), Some(d));
        // The digest is no longer pinned, but popping moved it to the
        // young end of the FIFO: a store-churn burst evicts the older
        // foreign batches first, so fetches for the just-proposed
        // digest can still be served to lagging replicas.
        for tag in 101..=200u8 {
            p.handle(&push(1, &batch(tag)), ReplicaId(0), 3, &mut Vec::new());
        }
        assert_eq!(p.batch(&d), Some(&proposed));
        assert!(p.batch(&batch(1).digest()).is_none());
    }

    #[test]
    fn own_broadcast_request_is_not_answered() {
        let mut p = PayloadPlane::default();
        let req = Message::new(
            ReplicaId(0),
            View(1),
            MsgBody::PayloadRequest {
                digest: batch(1).digest(),
            },
        );
        let mut reply = Vec::new();
        assert_eq!(
            p.handle(&req, ReplicaId(0), 3, &mut reply),
            PayloadOutcome::Consumed
        );
        assert!(reply.is_empty());
    }

    #[test]
    fn missing_batch_response_reports_unavailable() {
        let mut p = PayloadPlane::default();
        let d = batch(1).digest();
        let resp = Message::new(
            ReplicaId(2),
            View(1),
            MsgBody::PayloadResponse {
                digest: d,
                batch: None,
            },
        );
        assert_eq!(
            p.handle(&resp, ReplicaId(0), 3, &mut Vec::new()),
            PayloadOutcome::Unavailable(d)
        );
    }

    #[test]
    fn eviction_spares_sealed_and_ready_batches() {
        let mut p = PayloadPlane::default();
        let pinned = batch(0);
        p.seal(pinned.digest(), pinned.clone(), ReplicaId(0));
        for tag in 1..=255u8 {
            let b = batch(tag);
            let mut reply = Vec::new();
            p.handle(&push(1, &b), ReplicaId(0), 3, &mut reply);
        }
        assert!(p.store.len() <= STORE_CAP + 1);
        assert_eq!(p.batch(&pinned.digest()), Some(&pinned));
        // The oldest unpinned batch was evicted.
        assert!(p.batch(&batch(1).digest()).is_none());
    }
}
