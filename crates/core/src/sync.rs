//! Ranged block sync for lagging replicas: snapshot anchors, pipelined
//! range requests across peers, certified-prefix verification, and peer
//! scoring.
//!
//! A replica that falls far behind the committed tip (a long crash, a
//! cold start) cannot rejoin through the one-block-at-a-time fetch path
//! — and every replica's block tree would grow without bound while it
//! tried. This module gives [`Base`] a sync engine:
//!
//! * **Snapshot anchors.** Every `sync_snapshot_interval` commits whose
//!   tip height is a multiple of the interval, [`Base::try_commit`]
//!   records a *self-certifying anchor* — the tip block together with
//!   the commit-phase QC that certifies exactly that block — persists
//!   it through a [`SnapshotStore`], and prunes the committed prefix
//!   **one full interval behind** the anchor. The lag keeps every
//!   honest replica able to serve ranges to peers whose anchor is up to
//!   one interval older, and bounds resident state to about two
//!   intervals.
//! * **The sync run.** When a verified `commitQC` arrives whose height
//!   exceeds the replica's tip by more than `sync_lag_threshold`, the
//!   replica stops committing block-by-block and starts a run: first
//!   (if the gap exceeds one snapshot interval) it broadcasts a
//!   [`MsgBody::SnapshotRequest`] and verifies the returned anchor with
//!   one QC check, then it splits the remaining gap into
//!   `sync_range_size` chunks and pipelines
//!   [`MsgBody::BlockRangeRequest`]s across all peers.
//! * **Certified-prefix verification.** Fetched blocks are staged, not
//!   applied. Once every chunk is in, the run walks **top-down from the
//!   target QC**: the QC binds the tip block's id, and each block's id
//!   covers its parent link and justify, so one signature check
//!   authenticates the whole prefix. Committed chains can contain
//!   *virtual* blocks (no parent hash); the block above a virtual block
//!   carries `Justify::Two(_, vc)` whose `vc` is a verifiable
//!   `prepareQC` binding the virtual block's parent, so the walk stays
//!   cryptographically grounded across them. The first mismatching
//!   height identifies the chunk — and therefore the peer — that lied.
//! * **Peer scoring.** A peer that misses a chunk deadline, serves a
//!   short range, or serves blocks that fail verification is demoted:
//!   its demerit count rises and it is banned for exponentially longer
//!   (capped). Its chunks return to the pending pool and are re-issued
//!   to other peers; if every peer is banned, bans are ignored rather
//!   than wedging the node.
//!
//! The engine is driven by the same clockless [`Action::SetHeartbeat`]
//! tick the idle-leader path uses: while a run is active the replica
//! re-arms a fast heartbeat and counts deadlines in ticks, so the state
//! machine stays sans-io and deterministic under simulation.

use crate::events::{Action, Note, StepOutput};
use crate::util::Base;
use bytes::BytesMut;
use marlin_storage::SnapshotStore;
use marlin_types::codec::{get_block_full, get_qc, put_block_full, put_qc};
use marlin_types::{Block, BlockId, BlockStore, Height, Message, MsgBody, Phase, Qc, ReplicaId};
use std::collections::{BTreeMap, HashMap};

/// Hard cap on blocks served per range response, whatever the request
/// asked for (an untrusted peer must not make us assemble a huge
/// message).
const MAX_RANGE_SERVE: u64 = 512;

/// Ticks a peer gets to answer a range request before the chunk is
/// re-assigned and the peer demoted.
const CHUNK_DEADLINE_TICKS: u64 = 4;

/// Ticks the snapshot phase waits before falling back to pure ranged
/// sync from the current tip.
const SNAPSHOT_DEADLINE_TICKS: u64 = 4;

/// Outstanding chunks per peer: keeps the fetch pipelined without
/// letting one peer absorb the whole run.
const MAX_INFLIGHT_PER_PEER: usize = 4;

/// First ban length; doubles per demerit up to [`BAN_CAP_TICKS`].
const BAN_BASE_TICKS: u64 = 8;

/// Longest ban an abusive peer can earn.
const BAN_CAP_TICKS: u64 = 256;

/// Sync-engine state owned by [`Base`]. Default-constructed inert; the
/// engine only acts when `Config::sync_snapshot_interval > 0`.
#[derive(Clone, Debug, Default)]
pub(crate) struct SyncState {
    /// Durable anchor storage, when the replica runs on a disk.
    snapshots: Option<SnapshotStore>,
    /// Newest self-certifying anchor (recorded locally or installed
    /// from a peer); served to [`MsgBody::SnapshotRequest`]s.
    latest_anchor: Option<(Block, Qc)>,
    /// The active sync run, if any.
    run: Option<SyncRun>,
    /// Peer scoring across runs.
    peers: HashMap<ReplicaId, PeerScore>,
    /// Tick counter (advanced by heartbeats while a run is active).
    tick: u64,
    /// Round-robin cursor for chunk assignment.
    rotation: usize,
}

#[derive(Clone, Debug)]
struct SyncRun {
    /// The verified commit QC this run syncs toward.
    target: Qc,
    /// Waiting for a usable snapshot anchor before building chunks.
    awaiting_snapshot: bool,
    /// Tick by which the snapshot phase gives up.
    snapshot_deadline: u64,
    /// The gap partition; covers `(tip, target]` once built.
    chunks: Vec<Chunk>,
    /// Fetched blocks by height, staged until the certified walk.
    staged: BTreeMap<u64, Block>,
}

#[derive(Clone, Debug)]
struct Chunk {
    from: u64,
    to: u64,
    state: ChunkState,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ChunkState {
    Pending,
    InFlight { peer: ReplicaId, deadline: u64 },
    Done { peer: ReplicaId },
}

#[derive(Clone, Copy, Debug, Default)]
struct PeerScore {
    demerits: u32,
    banned_until: u64,
}

fn encode_anchor(block: &Block, qc: &Qc) -> Vec<u8> {
    let mut buf = BytesMut::new();
    put_block_full(&mut buf, block);
    put_qc(&mut buf, qc);
    buf.to_vec()
}

fn decode_anchor(payload: &[u8]) -> Option<(Block, Qc)> {
    let mut buf = payload;
    let block = get_block_full(&mut buf).ok()?;
    let qc = get_qc(&mut buf).ok()?;
    buf.is_empty().then_some((block, qc))
}

/// Absolute height of the committed tip (position equals height along
/// the committed chain).
fn tip_of(store: &BlockStore) -> u64 {
    (store.committed_offset() + store.committed_chain().len() - 1) as u64
}

fn push_chunks(chunks: &mut Vec<Chunk>, lo: u64, hi: u64, range: u64) {
    let range = range.max(1);
    let mut h = lo;
    while h <= hi {
        let to = (h + range - 1).min(hi);
        chunks.push(Chunk {
            from: h,
            to,
            state: ChunkState::Pending,
        });
        h = to + 1;
    }
}

/// What a range response did to the run (computed under the run borrow,
/// acted on after it ends).
enum RangeOutcome {
    Bad,
    Staged { complete: bool },
}

impl Base {
    /// Whether the sync/snapshot subsystem is active.
    pub fn sync_enabled(&self) -> bool {
        self.cfg.sync_snapshot_interval > 0
    }

    /// Whether a sync run is currently in progress.
    pub fn sync_active(&self) -> bool {
        self.sync.run.is_some()
    }

    /// Attaches durable anchor storage and — trusted, it is the
    /// replica's own disk — installs the persisted anchor if it is
    /// ahead of the (journal-rebuilt) committed tip. Called on the
    /// recovery path before `Event::Recovered`.
    pub fn attach_snapshot_store(&mut self, snapshots: SnapshotStore) {
        if let Some((block, qc)) = snapshots.latest().and_then(decode_anchor) {
            if block.height().0 > tip_of(&self.store) {
                self.store.install_anchor(block.clone());
            }
            if self
                .latest_commit_qc
                .as_ref()
                .is_none_or(|cur| qc.height() > cur.height())
            {
                self.latest_commit_qc = Some(qc);
            }
            self.sync.latest_anchor = Some((block, qc));
        }
        self.sync.snapshots = Some(snapshots);
    }

    /// Handles the four sync wire messages (serving side for everyone,
    /// requester side when a run is active). Returns `true` if the
    /// message was consumed.
    pub fn handle_sync(&mut self, msg: &Message, out: &mut StepOutput) -> bool {
        match &msg.body {
            MsgBody::SnapshotRequest => {
                // Own broadcast copies loop back through `step`; never
                // answer ourselves.
                if msg.from != self.cfg.id {
                    out.actions.push(Action::Send {
                        to: msg.from,
                        message: Message::new(
                            self.cfg.id,
                            self.cview,
                            MsgBody::SnapshotResponse {
                                snapshot: self.sync.latest_anchor.clone(),
                            },
                        ),
                    });
                }
                true
            }
            MsgBody::SnapshotResponse { snapshot } => {
                self.on_snapshot_response(msg.from, snapshot.as_ref(), out);
                true
            }
            MsgBody::BlockRangeRequest {
                from_height,
                to_height,
            } => {
                self.serve_range(msg.from, from_height.0, to_height.0, out);
                true
            }
            MsgBody::BlockRangeResponse {
                from_height,
                blocks,
            } => {
                self.on_range_response(msg.from, from_height.0, blocks, out);
                true
            }
            _ => false,
        }
    }

    /// Considers starting (or feeding) a sync run for a **verified**
    /// commit QC. Returns `true` if the certificate was consumed by the
    /// sync engine — the caller must then skip its normal commit path.
    pub fn maybe_start_sync(&mut self, qc: &Qc, out: &mut StepOutput) -> bool {
        if !self.sync_enabled() || qc.phase() != Phase::Commit {
            return false;
        }
        if let Some(run) = self.sync.run.as_mut() {
            // Already syncing: chase a higher tip instead of committing.
            if qc.height() > run.target.height() {
                let old = run.target.height().0;
                run.target = *qc;
                if !run.awaiting_snapshot {
                    push_chunks(
                        &mut run.chunks,
                        old + 1,
                        qc.height().0,
                        self.cfg.sync_range_size,
                    );
                }
            }
            self.raise_latest_commit_qc(qc);
            self.dispatch(out);
            return true;
        }
        let tip = tip_of(&self.store);
        if qc.height().0.saturating_sub(tip) <= self.cfg.sync_lag_threshold {
            return false;
        }
        self.raise_latest_commit_qc(qc);
        // A gap deeper than one snapshot interval is worth a snapshot
        // jump; shallower gaps go straight to ranged fetch.
        let wants_snapshot = qc.height().0 - tip > self.cfg.sync_snapshot_interval;
        let mut run = SyncRun {
            target: *qc,
            awaiting_snapshot: wants_snapshot,
            snapshot_deadline: self.sync.tick + SNAPSHOT_DEADLINE_TICKS,
            chunks: Vec::new(),
            staged: BTreeMap::new(),
        };
        if wants_snapshot {
            out.actions.push(Action::Broadcast {
                message: Message::new(self.cfg.id, self.cview, MsgBody::SnapshotRequest),
            });
        } else {
            push_chunks(
                &mut run.chunks,
                tip + 1,
                qc.height().0,
                self.cfg.sync_range_size,
            );
        }
        out.actions.push(Action::Note(Note::SyncStarted {
            from: Height(tip),
            target: qc.height(),
        }));
        self.sync.run = Some(run);
        self.dispatch(out);
        self.arm_tick(out);
        true
    }

    /// Advances the sync engine by one heartbeat tick: snapshot-phase
    /// fallback, chunk deadlines, re-dispatch, re-arm. A no-op without
    /// an active run.
    pub fn sync_tick(&mut self, out: &mut StepOutput) {
        if self.sync.run.is_none() {
            return;
        }
        self.sync.tick += 1;
        let tick = self.sync.tick;
        let tip = tip_of(&self.store);
        let range = self.cfg.sync_range_size;
        let mut late: Vec<ReplicaId> = Vec::new();
        {
            let run = self.sync.run.as_mut().expect("checked above");
            if run.awaiting_snapshot && tick >= run.snapshot_deadline {
                // No usable anchor arrived: sync the whole gap by
                // ranges instead of wedging on the snapshot phase.
                run.awaiting_snapshot = false;
                if run.chunks.is_empty() {
                    push_chunks(&mut run.chunks, tip + 1, run.target.height().0, range);
                }
            }
            for c in run.chunks.iter_mut() {
                if let ChunkState::InFlight { peer, deadline } = c.state {
                    if tick >= deadline {
                        late.push(peer);
                        c.state = ChunkState::Pending;
                    }
                }
            }
        }
        late.sort_unstable_by_key(|p| p.0);
        late.dedup();
        for peer in late {
            self.demote(peer, out);
        }
        self.dispatch(out);
        self.arm_tick(out);
    }

    /// Records a self-certifying snapshot anchor when the committed tip
    /// crosses a snapshot-interval boundary, persists it, and prunes
    /// the committed prefix one interval behind it. Called from
    /// [`Base::try_commit`] with the QC that certified the new tip.
    pub(crate) fn record_anchor_if_due(&mut self, qc: &Qc, _out: &mut StepOutput) {
        let interval = self.cfg.sync_snapshot_interval;
        let h = qc.height().0;
        if interval == 0 || h == 0 || !h.is_multiple_of(interval) {
            return;
        }
        if self
            .sync
            .latest_anchor
            .as_ref()
            .is_some_and(|(b, _)| b.height().0 >= h)
        {
            return;
        }
        let Some(block) = self.store.get(&qc.block()).cloned() else {
            return;
        };
        debug_assert_eq!(qc.block(), block.id());
        if let Some(s) = self.sync.snapshots.as_mut() {
            // Persistence failure is not fatal: recovery just falls
            // back to the previous generation (or the journal replay).
            let _ = s.save(&encode_anchor(&block, qc));
        }
        self.sync.latest_anchor = Some((block, *qc));
        // Prune a full interval behind the anchor, not at it: honest
        // peers up to one interval behind can still be served ranges,
        // and resident state stays bounded to about two intervals.
        self.store
            .prune_committed_before(Height(h.saturating_sub(interval)));
        // The safety journal bounds its disk to the same horizon: any
        // generation still referencing pruned history gets folded away
        // (drained by the protocol's journal plumbing).
        self.journal_gc_due = Some(Height(h.saturating_sub(interval)));
    }

    fn raise_latest_commit_qc(&mut self, qc: &Qc) {
        if self
            .latest_commit_qc
            .as_ref()
            .is_none_or(|cur| qc.height() > cur.height())
        {
            self.latest_commit_qc = Some(*qc);
        }
    }

    fn serve_range(&mut self, to: ReplicaId, lo: u64, hi: u64, out: &mut StepOutput) {
        if to == self.cfg.id {
            return;
        }
        let hi = hi.min(lo.saturating_add(MAX_RANGE_SERVE - 1));
        let mut blocks = Vec::new();
        let mut h = lo;
        while h <= hi {
            match self.store.block_at_height(Height(h)) {
                Some(b) => blocks.push(b.clone()),
                // Pruned away or not committed yet: answer the prefix
                // we have (possibly empty) — the requester re-asks
                // elsewhere.
                None => break,
            }
            h += 1;
        }
        out.actions.push(Action::Send {
            to,
            message: Message::new(
                self.cfg.id,
                self.cview,
                MsgBody::BlockRangeResponse {
                    from_height: Height(lo),
                    blocks,
                },
            ),
        });
    }

    fn on_snapshot_response(
        &mut self,
        from: ReplicaId,
        snapshot: Option<&(Block, Qc)>,
        out: &mut StepOutput,
    ) {
        let awaiting = self
            .sync
            .run
            .as_ref()
            .is_some_and(|run| run.awaiting_snapshot);
        if !awaiting {
            return;
        }
        // A peer with no anchor answers None; that is honest (it may
        // simply be young) and costs it nothing.
        let Some((block, qc)) = snapshot else { return };
        let tip = tip_of(&self.store);
        let valid = qc.phase() == Phase::Commit
            && qc.block() == block.id()
            && qc.height() == block.height()
            && block.height().0 > tip
            && self.crypto.verify_qc(qc);
        if !valid {
            self.demote(from, out);
            return;
        }
        let bytes = block.wire_len() + qc.wire_len();
        self.crypto.charge_hash(block.wire_len());
        self.store.install_anchor(block.clone());
        self.raise_latest_commit_qc(qc);
        if let Some(s) = self.sync.snapshots.as_mut() {
            let _ = s.save(&encode_anchor(block, qc));
        }
        self.sync.latest_anchor = Some((block.clone(), *qc));
        out.actions.push(Action::Note(Note::SyncSnapshotInstalled {
            height: block.height(),
            bytes,
        }));
        let anchor_h = block.height().0;
        let range = self.cfg.sync_range_size;
        let finished = {
            let run = self.sync.run.as_mut().expect("awaiting implies run");
            run.awaiting_snapshot = false;
            if anchor_h >= run.target.height().0 {
                true
            } else {
                run.chunks.clear();
                run.staged.clear();
                push_chunks(&mut run.chunks, anchor_h + 1, run.target.height().0, range);
                false
            }
        };
        if finished {
            // The anchor alone reached (or passed) the target tip.
            self.sync.run = None;
            out.actions.push(Action::Note(Note::SyncCompleted {
                height: Height(anchor_h),
            }));
        } else {
            self.dispatch(out);
        }
    }

    fn on_range_response(
        &mut self,
        from: ReplicaId,
        lo: u64,
        blocks: &[Block],
        out: &mut StepOutput,
    ) {
        let outcome = {
            let Some(run) = self.sync.run.as_mut() else {
                return;
            };
            if run.awaiting_snapshot {
                return;
            }
            let Some(idx) = run.chunks.iter().position(|c| {
                c.from == lo && matches!(c.state, ChunkState::InFlight { peer, .. } if peer == from)
            }) else {
                // Late, duplicate, or unsolicited response.
                return;
            };
            let expect = run.chunks[idx].to - run.chunks[idx].from + 1;
            let shaped = blocks.len() as u64 == expect
                && blocks
                    .iter()
                    .enumerate()
                    .all(|(i, b)| b.height().0 == lo + i as u64);
            if shaped {
                for b in blocks {
                    run.staged.insert(b.height().0, b.clone());
                }
                run.chunks[idx].state = ChunkState::Done { peer: from };
                RangeOutcome::Staged {
                    complete: run
                        .chunks
                        .iter()
                        .all(|c| matches!(c.state, ChunkState::Done { .. })),
                }
            } else {
                run.chunks[idx].state = ChunkState::Pending;
                RangeOutcome::Bad
            }
        };
        match outcome {
            RangeOutcome::Bad => {
                self.demote(from, out);
                self.dispatch(out);
            }
            RangeOutcome::Staged { complete } => {
                let total: usize = blocks.iter().map(Block::wire_len).sum();
                self.crypto.charge_hash(total);
                out.actions.push(Action::Note(Note::SyncRangeFetched {
                    from: Height(lo),
                    count: blocks.len(),
                }));
                if complete {
                    self.finish_run(out);
                } else {
                    self.dispatch(out);
                }
            }
        }
    }

    /// Every chunk is staged: verify the whole prefix top-down against
    /// the target QC, then apply and commit it. On a verification
    /// failure the offending chunk's supplier is demoted and the chunk
    /// re-fetched; the rest of the staging area survives.
    fn finish_run(&mut self, out: &mut StepOutput) {
        let Some(run) = self.sync.run.take() else {
            return;
        };
        let tip_h = tip_of(&self.store);
        let tip_id = self.store.last_committed();
        let target_h = run.target.height().0;
        if target_h <= tip_h {
            // The tip moved past the target while chunks were in
            // flight (e.g. a newer anchor): nothing left to apply.
            return;
        }

        // Top-down certified walk. `expected` is the id height `h` must
        // have, grounded in the verified target QC.
        let mut expected = run.target.block();
        let mut resolutions: Vec<(BlockId, BlockId)> = Vec::new();
        let mut bad_height: Option<u64> = None;
        let mut abort = false;
        let mut h = target_h;
        while h > tip_h {
            let Some(b) = run.staged.get(&h) else {
                // Coverage hole (tip moved under the run): abort and
                // let the next decide restart cleanly.
                abort = true;
                break;
            };
            if b.id() != expected {
                bad_height = Some(h);
                break;
            }
            // The id covers parent link and justify, so everything
            // below comes from an authenticated block.
            let parent = if b.is_virtual() {
                // The committed block above a virtual block carries
                // `Justify::Two(_, vc)` where `vc` is a prepareQC
                // binding the virtual block's parent. For `h == target`
                // there is no block above — an (unusual) virtual tip
                // cannot anchor the walk, so retry on a later target.
                let vc = (h < target_h)
                    .then(|| run.staged.get(&(h + 1)))
                    .flatten()
                    .and_then(|above| above.justify().vc());
                match vc {
                    Some(vc)
                        if vc.height().0 + 1 == h
                            && vc.phase() == Phase::Prepare
                            && self.crypto.verify_qc(vc) =>
                    {
                        resolutions.push((b.id(), vc.block()));
                        vc.block()
                    }
                    _ => {
                        abort = true;
                        break;
                    }
                }
            } else {
                b.parent_id().expect("normal blocks carry a hash link")
            };
            if h == tip_h + 1 {
                if parent != tip_id {
                    // An authenticated prefix that does not extend our
                    // committed tip would mean our own chain forked —
                    // impossible under an honest quorum. Conservative
                    // abort.
                    abort = true;
                }
                break;
            }
            expected = parent;
            h -= 1;
        }

        if let Some(bad) = bad_height {
            // Re-stage: blame the supplier of the first mismatching
            // height, clear exactly its chunk, and re-fetch it.
            let mut run = run;
            let mut cheat: Option<ReplicaId> = None;
            for c in run.chunks.iter_mut() {
                if c.from <= bad && bad <= c.to {
                    if let ChunkState::Done { peer } = c.state {
                        cheat = Some(peer);
                    }
                    for height in c.from..=c.to {
                        run.staged.remove(&height);
                    }
                    c.state = ChunkState::Pending;
                    break;
                }
            }
            self.sync.run = Some(run);
            if let Some(peer) = cheat {
                self.demote(peer, out);
            }
            self.dispatch(out);
            self.arm_tick(out);
            return;
        }
        if abort {
            return;
        }

        for b in run.staged.values() {
            self.store.insert(b.clone());
        }
        for (virtual_id, parent_id) in resolutions {
            self.store.resolve_virtual_parent(virtual_id, parent_id);
        }
        let me = self.cfg.id;
        self.try_commit(run.target, me, out);
        out.actions.push(Action::Note(Note::SyncCompleted {
            height: Height(tip_of(&self.store)),
        }));
    }

    /// Assigns pending chunks to eligible (non-banned) peers round-
    /// robin, bounded per peer. If every peer is banned, bans are
    /// ignored — a sync run must never wedge.
    fn dispatch(&mut self, out: &mut StepOutput) {
        let tick = self.sync.tick;
        let me = self.cfg.id;
        let cview = self.cview;
        let all: Vec<ReplicaId> = (0..self.cfg.n as u32)
            .map(ReplicaId)
            .filter(|r| *r != me)
            .collect();
        let mut eligible: Vec<ReplicaId> = all
            .iter()
            .copied()
            .filter(|r| {
                self.sync
                    .peers
                    .get(r)
                    .is_none_or(|s| s.banned_until <= tick)
            })
            .collect();
        if eligible.is_empty() {
            eligible = all;
        }
        let mut rotation = self.sync.rotation;
        let Some(run) = self.sync.run.as_mut() else {
            return;
        };
        if run.awaiting_snapshot {
            return;
        }
        let mut inflight: HashMap<ReplicaId, usize> = HashMap::new();
        for c in &run.chunks {
            if let ChunkState::InFlight { peer, .. } = c.state {
                *inflight.entry(peer).or_default() += 1;
            }
        }
        for c in run.chunks.iter_mut() {
            if c.state != ChunkState::Pending {
                continue;
            }
            let mut chosen = None;
            for k in 0..eligible.len() {
                let cand = eligible[(rotation + k) % eligible.len()];
                if inflight.get(&cand).copied().unwrap_or(0) < MAX_INFLIGHT_PER_PEER {
                    chosen = Some(cand);
                    rotation = (rotation + k + 1) % eligible.len();
                    break;
                }
            }
            let Some(peer) = chosen else {
                // Every eligible peer is saturated; the rest of the
                // pool waits for completions or the next tick.
                break;
            };
            *inflight.entry(peer).or_default() += 1;
            c.state = ChunkState::InFlight {
                peer,
                deadline: tick + CHUNK_DEADLINE_TICKS,
            };
            out.actions.push(Action::Send {
                to: peer,
                message: Message::new(
                    me,
                    cview,
                    MsgBody::BlockRangeRequest {
                        from_height: Height(c.from),
                        to_height: Height(c.to),
                    },
                ),
            });
        }
        self.sync.rotation = rotation;
    }

    fn demote(&mut self, peer: ReplicaId, out: &mut StepOutput) {
        let tick = self.sync.tick;
        let score = self.sync.peers.entry(peer).or_default();
        score.demerits += 1;
        let ban = (BAN_BASE_TICKS << (score.demerits - 1).min(5)).min(BAN_CAP_TICKS);
        score.banned_until = tick + ban;
        out.actions
            .push(Action::Note(Note::SyncPeerDemoted { peer }));
    }

    fn arm_tick(&self, out: &mut StepOutput) {
        out.actions.push(Action::SetHeartbeat {
            delay_ns: (self.cfg.base_timeout_ns / 8).max(1),
        });
    }
}
