//! View timers: failure timeouts with exponential backoff, plus the
//! optional rotating-leader mode.

use crate::config::Config;
use marlin_types::View;

/// Computes view-timer delays.
///
/// * In the default mode, a view's timer is the base timeout doubled for
///   each consecutive view that failed to make progress (capped), the
///   standard partial-synchrony pacemaker.
/// * In rotating-leader mode (the paper's Section VI failure
///   experiment), leaders hand over on a fixed interval; the timer is
///   the rotation interval, and backoff still applies while no progress
///   is made so crashed leaders are skipped increasingly fast.
#[derive(Clone, Debug)]
pub struct Pacemaker {
    base_ns: u64,
    max_backoff_exp: u32,
    rotation_ns: Option<u64>,
    /// The highest view in which progress (a commit) was observed.
    last_progress_view: View,
}

impl Pacemaker {
    /// Creates a pacemaker from the replica configuration.
    pub fn new(config: &Config) -> Self {
        Pacemaker {
            base_ns: config.base_timeout_ns,
            max_backoff_exp: config.max_backoff_exp,
            rotation_ns: config.rotation_interval_ns,
            last_progress_view: View::GENESIS,
        }
    }

    /// Records that `view` made progress (committed something); resets
    /// the backoff for subsequent views.
    pub fn record_progress(&mut self, view: View) {
        if view > self.last_progress_view {
            self.last_progress_view = view;
        }
    }

    /// The timer delay for `view`.
    pub fn delay_for(&self, view: View) -> u64 {
        let failed_views = view.gap(self.last_progress_view).saturating_sub(1);
        let exp = (failed_views as u32).min(self.max_backoff_exp);
        let backoff = self.base_ns << exp;
        match self.rotation_ns {
            // Rotation fires at the fixed interval while progressing, but
            // backs off like the failure timer when views are failing.
            Some(rot) if failed_views == 0 => rot,
            _ => backoff,
        }
    }

    /// Whether rotating-leader mode is active.
    pub fn rotating(&self) -> bool {
        self.rotation_ns.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;

    fn pm(rotation: Option<u64>) -> Pacemaker {
        let mut cfg = Config::for_test(4, 1);
        cfg.base_timeout_ns = 100;
        cfg.max_backoff_exp = 3;
        cfg.rotation_interval_ns = rotation;
        Pacemaker::new(&cfg)
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut p = pm(None);
        p.record_progress(View(5));
        assert_eq!(p.delay_for(View(6)), 100);
        assert_eq!(p.delay_for(View(7)), 200);
        assert_eq!(p.delay_for(View(8)), 400);
        assert_eq!(p.delay_for(View(9)), 800);
        // Capped at base << 3.
        assert_eq!(p.delay_for(View(20)), 800);
    }

    #[test]
    fn progress_resets_backoff() {
        let mut p = pm(None);
        p.record_progress(View(2));
        assert_eq!(p.delay_for(View(5)), 400);
        p.record_progress(View(5));
        assert_eq!(p.delay_for(View(6)), 100);
        // Progress never regresses.
        p.record_progress(View(3));
        assert_eq!(p.delay_for(View(6)), 100);
    }

    #[test]
    fn rotation_mode_uses_interval_when_progressing() {
        let mut p = pm(Some(1_000));
        assert!(p.rotating());
        p.record_progress(View(4));
        assert_eq!(p.delay_for(View(5)), 1_000);
        // A failing view falls back to the failure timer.
        assert_eq!(p.delay_for(View(6)), 200);
    }
}
