//! The Marlin protocol (Section V of the paper): two-phase normal case,
//! two- or three-phase linear view change.
//!
//! ## Normal case (Figure 6/7)
//!
//! * **Prepare** — the leader proposes a block extending the block of its
//!   `highQC` (Case N1) or re-broadcasts the block certified by a fresh
//!   `pre-prepareQC` after a view change (Case N2). Replicas validate
//!   against their `lockedQC` via the rank rules, vote, and — when the
//!   justify is a `prepareQC` — lock on it.
//! * **Commit** — the leader combines `n − f` prepare votes into a
//!   `prepareQC`, broadcasts it, collects commit votes into a
//!   `commitQC`, and disseminates it; replicas lock on the `prepareQC`
//!   and deliver on the `commitQC`.
//!
//! ## View change (Figure 9)
//!
//! Replicas that time out send `VIEW-CHANGE` messages carrying their
//! last voted block `lb`, their `highQC`, and a partial signature that
//! enables the **happy path**: if all `n − f` view-change messages agree
//! on `lb`, the leader combines the partials directly into a
//! `prepareQC` and skips straight to the prepare phase (two-phase view
//! change). Otherwise the leader runs the **pre-prepare** phase with the
//! leader cases V1/V2/V3 (virtual and shadow blocks) and replicas answer
//! under cases R1/R2/R3; the resulting `pre-prepareQC` unlocks any
//! locked replica with linear communication.

use crate::config::Config;
use crate::events::{Action, Event, Note, StepOutput, VcCase};
use crate::journal::SafetyJournal;
use crate::util::{Base, Protocol};
use crate::votes::VoteCollector;
use marlin_storage::SnapshotStore;
use marlin_types::rank::{block_rank_gt, highest_block, qc_rank_cmp, qc_rank_ge};
use marlin_types::{
    Block, BlockId, BlockKind, BlockMeta, BlockStore, Decide, Justify, Message, MsgBody, Phase,
    Proposal, Qc, ReplicaId, View, ViewChange, Vote,
};
use std::cmp::Ordering;
use std::collections::HashMap;

/// A digest proposal parked while its batch is fetched.
#[derive(Clone, Debug)]
struct PendingDigest {
    /// The proposing leader (and first fetch target).
    from: ReplicaId,
    /// View of the proposal; stale entries are purged on view entry.
    view: View,
    /// The proposal's justify, replayed once the batch resolves.
    justify: Justify,
    /// The fetch was already fanned out to all replicas after the
    /// proposer answered `None` — don't broadcast again per response.
    fanned_out: bool,
}

/// Per-view leader state for the view-change pre-prepare phase.
#[derive(Clone, Debug, Default)]
struct VcRound {
    /// Received `VIEW-CHANGE` messages, one per sender.
    msgs: HashMap<ReplicaId, ViewChange>,
    /// Set once the leader has acted on a quorum.
    decided: bool,
    /// Blocks proposed in the pre-prepare phase (normal first).
    candidates: Vec<BlockId>,
    /// A `prepareQC` attached by a Case R2 voter, validating the
    /// virtual candidate's parent.
    virtual_vc: Option<Qc>,
    /// A pre-prepareQC for the virtual candidate formed before its
    /// validating `vc` arrived.
    stashed_virtual_qc: Option<Qc>,
    /// Set once the leader moved on to the prepare phase.
    advanced: bool,
}

/// A replica running Marlin.
///
/// # Example
///
/// ```
/// use marlin_core::{marlin::Marlin, Config, Event, Protocol};
///
/// let cfg = Config::for_test(4, 1);
/// let mut replica = Marlin::new(cfg.with_id(0u32.into()));
/// let out = replica.step(Event::Start);
/// // Replica 1 leads view 1; replica 0 just arms its timer.
/// assert!(!out.actions.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct Marlin {
    base: Base,
    /// Metadata of the last block voted in a prepare phase (`lb`).
    lb: BlockMeta,
    /// The lock (`lockedQC`); `None` until the first lock.
    locked_qc: Option<Qc>,
    /// `highQC` — what this replica reports in `VIEW-CHANGE` messages.
    high_qc: Justify,
    /// Leader: vote shares per seed.
    votes: VoteCollector,
    /// Leader: the block currently going through prepare/commit.
    in_flight: Option<BlockId>,
    /// Leader: view-change rounds by view.
    vc_rounds: HashMap<View, VcRound>,
    /// Highest view each peer attested in a `CATCH-UP` response. With
    /// linear view changes a lagging replica never overhears
    /// `VIEW-CHANGE` traffic (it flows only to the new leader), so
    /// rejoining after a crash needs explicit view attestations: once
    /// `f + 1` distinct peers claim views above ours, at least one of
    /// them is honest and that view is safe to join.
    peer_views: HashMap<ReplicaId, View>,
    /// A broadcast `CATCH-UP` request is awaiting its first response
    /// (drives the catch-up round-trip telemetry).
    catch_up_outstanding: bool,
    /// Digest proposals whose batch is still being fetched, replayed
    /// when the `PAYLOAD-RESPONSE` arrives. Bounded: one per digest,
    /// and entries for views we have left are purged on view entry.
    pending_digests: HashMap<marlin_types::BatchId, PendingDigest>,
    /// Write-ahead safety journal; `None` runs without durability.
    journal: Option<SafetyJournal>,
}

impl Marlin {
    /// Creates a replica in the pre-start state; feed [`Event::Start`].
    pub fn new(config: Config) -> Self {
        let base = Base::new(config);
        let genesis_qc = Qc::genesis(BlockId::GENESIS);
        Marlin {
            base,
            lb: BlockMeta::genesis(),
            locked_qc: None,
            high_qc: Justify::One(genesis_qc),
            votes: VoteCollector::new(),
            in_flight: None,
            vc_rounds: HashMap::new(),
            peer_views: HashMap::new(),
            catch_up_outstanding: false,
            pending_digests: HashMap::new(),
            journal: None,
        }
    }

    /// Creates a replica that write-ahead journals every safety-state
    /// transition (view entries, `lb`, lock and `highQC` raises) to
    /// `journal` *before* the corresponding vote can leave the replica.
    pub fn with_journal(config: Config, journal: SafetyJournal) -> Self {
        let mut replica = Marlin::new(config);
        replica.journal = Some(journal);
        replica
    }

    /// Creates a replica whose safety state is reconstructed from a
    /// durable journal (amnesia-safe restart): it resumes in the
    /// journaled view with the journaled `lb`, lock and `highQC`, so it
    /// cannot re-vote in a slot it voted in before the crash. Feed
    /// [`Event::Recovered`] to re-arm timers and solicit commits formed
    /// while the replica was down.
    pub fn recover(config: Config, journal: SafetyJournal) -> Self {
        let snapshot = *journal.state();
        let mut replica = Marlin::with_journal(config, journal);
        replica.lb = snapshot.last_voted;
        replica.locked_qc = snapshot.locked_qc;
        if !matches!(snapshot.high_qc, Justify::None) {
            replica.high_qc = snapshot.high_qc;
        }
        if snapshot.view > View::GENESIS {
            replica.base.cview = snapshot.view;
        }
        replica
    }

    /// Attaches durable snapshot-anchor storage: the replica records
    /// its periodic sync anchors there and, on construction, installs
    /// the persisted anchor if it is ahead of the journal-rebuilt tip
    /// (a cold or long-crashed replica rejoins from the anchor instead
    /// of replaying the whole chain). Chain with [`Marlin::recover`]
    /// for crash recovery.
    #[must_use]
    pub fn with_snapshots(mut self, snapshots: SnapshotStore) -> Self {
        self.base.attach_snapshot_store(snapshots);
        self
    }

    /// The attached safety journal, if any.
    pub fn journal(&self) -> Option<&SafetyJournal> {
        self.journal.as_ref()
    }

    /// Whether a catch-up sync run is currently in progress.
    pub fn sync_active(&self) -> bool {
        self.base.sync_active()
    }

    /// The current lock, if any.
    pub fn locked_qc(&self) -> Option<&Qc> {
        self.locked_qc.as_ref()
    }

    /// The replica's `highQC`.
    pub fn high_qc(&self) -> &Justify {
        &self.high_qc
    }

    /// Metadata of the last voted block.
    pub fn last_voted(&self) -> &BlockMeta {
        &self.lb
    }

    // ------------------------------------------------------- helpers --

    fn cfg(&self) -> &Config {
        &self.base.cfg
    }

    fn quorum(&self) -> usize {
        self.base.cfg.quorum()
    }

    /// Block metadata reconstructed from a QC (rank_boost is only needed
    /// on the left of `block_rank_gt`, so `false` is conservative here).
    fn meta_of_qc(qc: &Qc) -> BlockMeta {
        BlockMeta {
            id: qc.block(),
            view: qc.block_view(),
            height: qc.height(),
            pview: qc.pview(),
            kind: qc.block_kind(),
            rank_boost: false,
        }
    }

    /// Adds a vote share, with first-share telemetry
    /// (see [`crate::votes::add_vote_noted`]).
    fn add_vote(&mut self, v: &Vote, out: &mut StepOutput) -> Option<Qc> {
        crate::votes::add_vote_noted(
            &mut self.votes,
            v,
            self.base.cfg.quorum(),
            &mut self.base.crypto,
            out,
        )
    }

    /// Raises the lock to `qc` if it outranks the current lock.
    fn raise_lock(&mut self, qc: &Qc) {
        let higher = match &self.locked_qc {
            None => true,
            Some(cur) => qc_rank_cmp(qc, cur) == Ordering::Greater,
        };
        if higher {
            self.locked_qc = Some(*qc);
        }
    }

    /// Write-ahead check for votes that change no block-level safety
    /// state (pre-prepare votes, view-change shares): the current view
    /// must be durable. Returns `false` — abstain — when the journal
    /// cannot be written; abstention is always safe.
    fn journal_view_durable(&mut self, view: View, phase: Phase, out: &mut StepOutput) -> bool {
        match self.journal.as_mut() {
            None => true,
            Some(j) => match j.log_view(view) {
                Ok(()) => true,
                Err(_) => {
                    out.actions.push(Action::Note(Note::VoteWithheld { phase }));
                    false
                }
            },
        }
    }

    /// Enters `view` and reprocesses any buffered messages.
    fn enter_view(&mut self, view: View, out: &mut StepOutput) {
        self.votes.clear();
        self.in_flight = None;
        // Durable before actionable: a replica recovering from its
        // journal must not re-enter an older view. Failure here is
        // tolerated (view regression costs liveness, not safety — votes
        // are guarded by the separately-journaled `lb` and lock).
        if let Some(j) = self.journal.as_mut() {
            let _ = j.log_view(view);
        }
        let drained = self.base.enter_view(view, out);
        self.vc_rounds.retain(|v, _| *v >= view);
        // Fetches for digests proposed in views we just left will never
        // be replayed; their slots must not crowd out future fetches.
        self.pending_digests.retain(|_, p| p.view >= view);
        // View entry is also a retransmission opportunity for sealed
        // batches whose availability quorum stalled in the old view.
        self.base.payload_tick(out);
        for msg in drained {
            let sub = self.on_event(Event::Message(msg));
            out.merge(sub);
        }
    }

    /// Times out of the current view and joins the view change for
    /// `target` (normally `cview + 1`).
    fn start_view_change(&mut self, target: View, out: &mut StepOutput) {
        out.actions.push(Action::Note(Note::ViewChangeStarted {
            from_view: self.base.cview,
        }));
        self.enter_view(target, out);
        let parsig = self
            .base
            .crypto
            .sign_seed(&ViewChange::happy_seed(&self.lb, target));
        let msg = Message::new(
            self.cfg().id,
            target,
            MsgBody::ViewChange(ViewChange {
                last_voted: self.lb,
                high_qc: self.high_qc,
                parsig,
                cert: None,
            }),
        );
        // The happy-path share inside a VIEW-CHANGE is combinable into a
        // prepareQC for `lb`, so it is write-ahead journaled like any
        // other vote: the target view must be durable before it is sent.
        if !self.journal_view_durable(target, Phase::Prepare, out) {
            return;
        }
        out.actions.push(Action::Send {
            to: self.cfg().leader_of(target),
            message: msg,
        });
    }

    /// Leader: proposes per the normal-case rules (N1/N2).
    ///
    /// A leader may only propose once it holds a justify that is valid
    /// for the current view (the genesis QC, a prepareQC formed in this
    /// view — including the happy-path view-change QC — or a fresh
    /// pre-prepareQC). Proposing earlier (e.g. when client transactions
    /// arrive before the view change completes) would be rejected by
    /// every replica and stall the view.
    fn propose(&mut self, out: &mut StepOutput) {
        let view = self.base.cview;
        debug_assert!(self.cfg().is_leader(view));
        if self.in_flight.is_some() {
            return;
        }
        if let Some(qc) = self.high_qc.qc() {
            if !qc.is_genesis() && qc.view() != view {
                return; // the view change has not completed yet
            }
        }
        let (block, justify) = match self.high_qc {
            Justify::One(qc) if qc.phase() == Phase::Prepare => {
                // Case N1 with dissemination: propose a digest the
                // availability quorum already holds, not the batch.
                if self.base.cfg.dissemination {
                    self.base.seal_payloads(out);
                    if self.propose_digest(qc, out) {
                        return;
                    }
                    if self.base.payloads.has_work() {
                        // Sealed batches are still collecting acks;
                        // proposing their transactions inline now would
                        // double-spend the batch. The quorum ack
                        // re-triggers this proposal — and the heartbeat
                        // keeps the payload tick (retransmit, expiry)
                        // running so lost pushes cannot leave the
                        // leader silent until the view times out.
                        out.actions.push(Action::SetHeartbeat {
                            delay_ns: self.base.cfg.base_timeout_ns / 4,
                        });
                        return;
                    }
                }
                // Case N1: extend the block of highQC.
                let batch = self.base.take_batch();
                let block = Block::new_normal(
                    qc.block(),
                    qc.block_view(),
                    view,
                    qc.height().next(),
                    batch,
                    Justify::One(qc),
                );
                self.base.store_block(&block);
                (block, self.high_qc)
            }
            Justify::One(pre) | Justify::Two(pre, _) => {
                // Case N2: re-broadcast the pre-prepared block.
                let Some(block) = self.base.store.get(&pre.block()).cloned() else {
                    debug_assert!(false, "leader lost its own pre-prepared block");
                    return;
                };
                (block, self.high_qc)
            }
            Justify::None => return,
        };
        self.in_flight = Some(block.id());
        out.actions.push(Action::Note(Note::Proposed {
            view,
            height: block.height(),
            phase: Phase::Prepare,
        }));
        out.actions.push(Action::Broadcast {
            message: Message::new(
                self.cfg().id,
                view,
                MsgBody::Proposal(Proposal {
                    phase: Phase::Prepare,
                    blocks: vec![block],
                    justify,
                    vc_proof: Vec::new(),
                }),
            ),
        });
    }

    /// Leader: proposes the next quorum-acked digest (Case N1 with
    /// dissemination on). The full block is reconstructed and stored
    /// locally — only the broadcast shrinks to digest size. Returns
    /// `false` when no digest is ready.
    fn propose_digest(&mut self, qc: Qc, out: &mut StepOutput) -> bool {
        let view = self.base.cview;
        let Some(digest) = self.base.pop_ready_payload() else {
            return false;
        };
        let batch = self
            .base
            .payload_batch(&digest)
            .expect("ready digests are pinned in the payload store");
        let block = Block::new_normal(
            qc.block(),
            qc.block_view(),
            view,
            qc.height().next(),
            batch,
            Justify::One(qc),
        );
        self.base.store_block(&block);
        self.in_flight = Some(block.id());
        out.actions.push(Action::Note(Note::Proposed {
            view,
            height: block.height(),
            phase: Phase::Prepare,
        }));
        out.actions.push(Action::Broadcast {
            message: Message::new(
                self.cfg().id,
                view,
                MsgBody::DigestProposal {
                    digest,
                    justify: Justify::One(qc),
                },
            ),
        });
        true
    }

    /// Keeps the heartbeat armed while this replica has sealed batches
    /// in flight, so the payload plane's retransmit/expiry clock keeps
    /// ticking. Leaders get heartbeats from the proposal path anyway;
    /// this covers non-leaders, whose seals would otherwise never age
    /// (and a lost push would wedge their dissemination window until
    /// the next time they lead). No-op without dissemination:
    /// `has_work` is only ever true once batches are sealed.
    fn arm_payload_heartbeat(&mut self, out: &mut StepOutput) {
        if self.base.payloads.has_work() {
            out.actions.push(Action::SetHeartbeat {
                delay_ns: self.base.cfg.base_timeout_ns / 4,
            });
        }
    }

    /// Replica: resolves a digest proposal into the full block (the
    /// batch was pushed ahead of the proposal) and runs the normal
    /// Case N1 validation. A digest we cannot resolve is fetched from
    /// the proposer and the proposal replayed on response.
    fn on_digest_proposal(
        &mut self,
        from: ReplicaId,
        view: View,
        digest: marlin_types::BatchId,
        justify: Justify,
        out: &mut StepOutput,
    ) {
        if from != self.cfg().leader_of(view) {
            return;
        }
        let Some(batch) = self.base.payload_batch(&digest) else {
            if self.pending_digests.len() < 32 {
                self.pending_digests.insert(
                    digest,
                    PendingDigest {
                        from,
                        view,
                        justify,
                        fanned_out: false,
                    },
                );
                self.base.request_payload(digest, from, out);
            }
            return;
        };
        let Justify::One(qc) = justify else { return };
        let block = Block::new_normal(
            qc.block(),
            qc.block_view(),
            view,
            qc.height().next(),
            batch,
            justify,
        );
        // The leader loops its own broadcast back through this path;
        // `on_prepare_proposal` applies the full N1 rank/justify rules.
        self.on_prepare_proposal(
            from,
            view,
            Proposal {
                phase: Phase::Prepare,
                blocks: vec![block],
                justify,
                vc_proof: Vec::new(),
            },
            out,
        );
    }

    // ------------------------------------------------- message paths --

    fn on_message(&mut self, msg: Message, out: &mut StepOutput) {
        if self.base.handle_fetch(&msg, out) {
            return;
        }
        // Sync traffic (snapshot/range requests and responses) is
        // view-independent on both the serving and the fetching side.
        if self.base.handle_sync(&msg, out) {
            return;
        }
        // Payload-plane traffic (push/ack/fetch) is view-independent:
        // batches outlive the view they were sealed in.
        match self.base.handle_payload(&msg, out) {
            crate::payload::PayloadOutcome::NotPayload => {}
            crate::payload::PayloadOutcome::Consumed => return,
            crate::payload::PayloadOutcome::QuorumReached => {
                // A digest became proposable; an idle leader proposes.
                if self.cfg().is_leader(self.base.cview) && self.in_flight.is_none() {
                    self.propose(out);
                }
                return;
            }
            crate::payload::PayloadOutcome::Resolved(digest) => {
                if let Some(p) = self.pending_digests.remove(&digest) {
                    if p.view == self.base.cview {
                        self.on_digest_proposal(p.from, p.view, digest, p.justify, out);
                    }
                }
                return;
            }
            crate::payload::PayloadOutcome::Unavailable(digest) => {
                // The fetch target no longer holds the batch (evicted,
                // or crashed and restarted). The proposer is not the
                // only replica that can serve it — every member of the
                // availability quorum stored the push — so fan the
                // fetch out to all replicas once instead of wedging
                // this digest (and, at 32 wedged entries, the whole
                // fallback path) until the view changes.
                if let Some(p) = self.pending_digests.get_mut(&digest) {
                    if p.view == self.base.cview && !p.fanned_out {
                        p.fanned_out = true;
                        self.base.broadcast_payload_request(digest, out);
                    }
                }
                return;
            }
        }
        // Decides are valid whenever the commitQC verifies.
        if let MsgBody::Decide(d) = &msg.body {
            self.on_decide(*d, msg.from, out);
            return;
        }
        // Catch-up (crash recovery) messages are likewise
        // view-independent: a recovering replica may be views behind.
        if let MsgBody::CatchUpRequest { last_committed } = &msg.body {
            if msg.from == self.cfg().id {
                return; // our own broadcast, looped back
            }
            // Always answer: even with no newer commit to serve, the
            // response header carries our current view, which is the
            // attestation a recovering replica needs to resynchronize
            // (commits may have stopped precisely because it was down).
            let commit_qc = self
                .base
                .latest_commit_qc
                .filter(|qc| qc.height() > *last_committed);
            out.actions.push(Action::Note(Note::CatchUpServed {
                view: self.base.cview,
                newer: commit_qc.is_some(),
            }));
            out.actions.push(Action::Send {
                to: msg.from,
                message: Message::new(
                    self.cfg().id,
                    self.base.cview,
                    MsgBody::CatchUpResponse { commit_qc },
                ),
            });
            return;
        }
        if let MsgBody::CatchUpResponse { commit_qc } = &msg.body {
            // The first response closes the catch-up round trip.
            if self.catch_up_outstanding {
                self.catch_up_outstanding = false;
                out.actions.push(Action::Note(Note::CatchUpCompleted {
                    view: self.base.cview,
                }));
            }
            // A served commit certificate is handled exactly like a
            // DECIDE: verify, sync views, commit (fetching blocks).
            if let Some(qc) = commit_qc {
                self.on_decide(Decide { commit_qc: *qc }, msg.from, out);
            }
            self.note_peer_view(msg.from, msg.view, out);
            return;
        }
        if msg.view > self.base.cview {
            self.base.buffer_future(msg);
            // f+1 join rule: if a quorum minority is already view
            // changing above us, join them without waiting for our timer.
            if let Some(target) = self.base.future_view_change_senders(self.cfg().f + 1) {
                if target > self.base.cview {
                    self.start_view_change(target, out);
                }
            }
            return;
        }
        if msg.view < self.base.cview {
            return; // stale
        }
        match msg.body {
            MsgBody::Proposal(p) => match p.phase {
                Phase::Prepare => self.on_prepare_proposal(msg.from, msg.view, p, out),
                Phase::Commit => self.on_commit_proposal(msg.from, msg.view, p, out),
                Phase::PrePrepare => self.on_pre_prepare_proposal(msg.from, msg.view, p, out),
                Phase::PreCommit => {} // not part of Marlin
            },
            MsgBody::Vote(v) => match v.seed.phase {
                Phase::Prepare => self.on_prepare_vote(v, out),
                Phase::Commit => self.on_commit_vote(v, out),
                Phase::PrePrepare => self.on_pre_prepare_vote(v, out),
                Phase::PreCommit => {}
            },
            MsgBody::ViewChange(vc) => self.on_view_change(msg.from, msg.view, vc, out),
            MsgBody::DigestProposal { digest, justify } => {
                self.on_digest_proposal(msg.from, msg.view, digest, justify, out)
            }
            MsgBody::Decide(_)
            | MsgBody::FetchRequest { .. }
            | MsgBody::FetchResponse { .. }
            | MsgBody::CatchUpRequest { .. }
            | MsgBody::CatchUpResponse { .. }
            | MsgBody::SnapshotRequest
            | MsgBody::SnapshotResponse { .. }
            | MsgBody::BlockRangeRequest { .. }
            | MsgBody::BlockRangeResponse { .. }
            | MsgBody::PayloadPush { .. }
            | MsgBody::PayloadAck { .. }
            | MsgBody::PayloadRequest { .. }
            | MsgBody::PayloadResponse { .. } => {
                unreachable!("handled above")
            }
        }
    }

    /// Replica handling of a normal-case `PREPARE` proposal (Cases N1/N2).
    fn on_prepare_proposal(
        &mut self,
        from: ReplicaId,
        view: View,
        p: Proposal,
        out: &mut StepOutput,
    ) {
        if from != self.cfg().leader_of(view) || p.blocks.len() != 1 {
            return;
        }
        let block = &p.blocks[0];
        if block.view() != view {
            return;
        }
        // The proposal must outrank the last voted block.
        if !block_rank_gt(&block.meta(), &self.lb) {
            return;
        }
        let Some(qc) = p.justify.qc().copied() else {
            return;
        };
        if !self.base.crypto.verify_justify(&p.justify) {
            return;
        }

        let mut locked_attachment = None;
        let valid = match (&p.justify, qc.phase()) {
            // Case N1: justify is the prepareQC of the parent.
            (Justify::One(_), Phase::Prepare) => {
                block.parent_id() == Some(qc.block())
                    && block.height() == qc.height().next()
                    && block.pview() == qc.block_view()
                    && (qc.is_genesis() || qc.view() == view)
                    && qc_rank_ge(&qc, self.locked_qc.as_ref())
            }
            // Case N2: justify is a pre-prepareQC for this very block.
            (justify, Phase::PrePrepare) => {
                let base_ok = block.id() == qc.block()
                    && qc.view() == view
                    && qc_rank_ge(&qc, self.locked_qc.as_ref());
                match justify {
                    Justify::One(_) => base_ok && qc.block_kind() == BlockKind::Normal,
                    Justify::Two(_, vc) => {
                        let ok = base_ok
                            && qc.block_kind() == BlockKind::Virtual
                            && vc.phase() == Phase::Prepare
                            && vc.view() == qc.pview()
                            && vc.height() == qc.height().prev();
                        if ok {
                            locked_attachment = Some(*vc);
                        }
                        ok
                    }
                    Justify::None => false,
                }
            }
            _ => false,
        };
        if !valid {
            return;
        }

        self.base.store_block(block);
        if let Some(vc) = locked_attachment {
            self.base
                .store
                .resolve_virtual_parent(block.id(), vc.block());
        }
        // Write-ahead voting: every safety delta this vote implies (the
        // new `lb`, the justify as `highQC`, any lock raise) must be
        // durable before the vote can reach the wire. On a failed append
        // the replica abstains, and its in-memory state must not outrun
        // the journal either.
        if let Some(j) = self.journal.as_mut() {
            let mut res = j.log_last_voted(&block.meta());
            if res.is_ok() {
                res = j.log_high_qc(&p.justify);
            }
            if res.is_ok() {
                if let (Justify::One(jqc), Phase::Prepare) = (&p.justify, qc.phase()) {
                    res = j.log_lock(jqc);
                }
            }
            if res.is_err() {
                out.actions.push(Action::Note(Note::VoteWithheld {
                    phase: Phase::Prepare,
                }));
                return;
            }
        }
        let seed = block.vote_seed(Phase::Prepare, view);
        let parsig = self.base.crypto.sign_seed(&seed);
        out.actions.push(Action::Send {
            to: from,
            message: Message::new(
                self.cfg().id,
                view,
                MsgBody::Vote(Vote {
                    seed,
                    parsig,
                    locked_qc: None,
                }),
            ),
        });
        self.lb = block.meta();
        self.high_qc = p.justify;
        if let (Justify::One(jqc), Phase::Prepare) = (&p.justify, qc.phase()) {
            self.raise_lock(jqc);
        }
        // A valid proposal is progress: keep the view timer fresh.
        self.base.progress_timer(out);
    }

    /// Leader handling of prepare votes → forms the `prepareQC`.
    fn on_prepare_vote(&mut self, v: Vote, out: &mut StepOutput) {
        if v.seed.view != self.base.cview || Some(v.seed.block) != self.in_flight {
            return;
        }
        if let Some(qc) = self.add_vote(&v, out) {
            out.actions.push(Action::Note(Note::QcFormed {
                phase: Phase::Prepare,
                view: qc.view(),
                height: qc.height(),
            }));
            self.high_qc = Justify::One(qc);
            out.actions.push(Action::Broadcast {
                message: Message::new(
                    self.cfg().id,
                    self.base.cview,
                    MsgBody::Proposal(Proposal {
                        phase: Phase::Commit,
                        blocks: Vec::new(),
                        justify: Justify::One(qc),
                        vc_proof: Vec::new(),
                    }),
                ),
            });
        }
    }

    /// Replica handling of a `COMMIT` broadcast (carrying a `prepareQC`).
    fn on_commit_proposal(
        &mut self,
        from: ReplicaId,
        view: View,
        p: Proposal,
        out: &mut StepOutput,
    ) {
        if from != self.cfg().leader_of(view) {
            return;
        }
        let Justify::One(qc) = p.justify else { return };
        if qc.phase() != Phase::Prepare || qc.view() != view {
            return;
        }
        if !self.base.crypto.verify_qc(&qc) {
            return;
        }
        // Write-ahead: the lock raise implied by this commit vote must
        // be durable before the vote is emitted.
        if let Some(j) = self.journal.as_mut() {
            let mut res = j.log_high_qc(&Justify::One(qc));
            if res.is_ok() {
                res = j.log_lock(&qc);
            }
            if res.is_err() {
                out.actions.push(Action::Note(Note::VoteWithheld {
                    phase: Phase::Commit,
                }));
                return;
            }
        }
        let seed = marlin_types::QcSeed {
            phase: Phase::Commit,
            ..*qc.seed()
        };
        let parsig = self.base.crypto.sign_seed(&seed);
        out.actions.push(Action::Send {
            to: from,
            message: Message::new(
                self.cfg().id,
                view,
                MsgBody::Vote(Vote {
                    seed,
                    parsig,
                    locked_qc: None,
                }),
            ),
        });
        self.high_qc = Justify::One(qc);
        self.raise_lock(&qc);
        self.base.progress_timer(out);
    }

    /// Leader handling of commit votes → forms the `commitQC`, decides,
    /// and proposes the next block.
    fn on_commit_vote(&mut self, v: Vote, out: &mut StepOutput) {
        if v.seed.view != self.base.cview || Some(v.seed.block) != self.in_flight {
            return;
        }
        if let Some(qc) = self.add_vote(&v, out) {
            out.actions.push(Action::Note(Note::QcFormed {
                phase: Phase::Commit,
                view: qc.view(),
                height: qc.height(),
            }));
            self.in_flight = None;
            out.actions.push(Action::Broadcast {
                message: Message::new(
                    self.cfg().id,
                    self.base.cview,
                    MsgBody::Decide(Decide { commit_qc: qc }),
                ),
            });
            // Next proposal: highQC is the prepareQC for the decided
            // block, so Case N1 extends it. Pace empty proposals.
            if self.base.work_pending() {
                self.propose(out);
            } else {
                out.actions.push(Action::SetHeartbeat {
                    delay_ns: self.base.cfg.base_timeout_ns / 4,
                });
            }
        }
    }

    /// Anyone handling a `commitQC` dissemination.
    fn on_decide(&mut self, d: Decide, from: ReplicaId, out: &mut StepOutput) {
        let qc = d.commit_qc;
        if qc.phase() != Phase::Commit || !self.base.crypto.verify_qc(&qc) {
            return;
        }
        // A commitQC from a future view is also a view-synchronisation
        // signal: join that view (without a VIEW-CHANGE — we missed it).
        if qc.view() > self.base.cview {
            self.enter_view(qc.view(), out);
        }
        // Deep lag goes through the sync engine (snapshot + ranged
        // fetch) rather than the one-block-at-a-time commit path.
        if self.base.maybe_start_sync(&qc, out) {
            return;
        }
        self.base.try_commit(qc, from, out);
    }

    // --------------------------------------------------- view change --

    fn on_timeout(&mut self, view: View, out: &mut StepOutput) {
        if view != self.base.cview {
            return; // stale timer
        }
        self.start_view_change(view.next(), out);
    }

    /// Handles rejoin after a crash: re-arms the view timer (any
    /// pre-crash timer is dead), asks peers for commit certificates
    /// formed while this replica was down, and — when it leads the
    /// current view with a snapshot usable without crash-lost blocks —
    /// re-proposes.
    fn on_recovered(&mut self, out: &mut StepOutput) {
        let view = self.base.cview;
        out.actions.push(Action::SetTimer {
            view,
            delay_ns: self.base.pacemaker.delay_for(view),
        });
        let last_committed = self
            .base
            .store
            .get(&self.base.store.last_committed())
            .map(|b| b.height())
            .unwrap_or_default();
        self.catch_up_outstanding = true;
        out.actions
            .push(Action::Note(Note::CatchUpRequested { view }));
        out.actions.push(Action::Broadcast {
            message: Message::new(
                self.cfg().id,
                view,
                MsgBody::CatchUpRequest { last_committed },
            ),
        });
        // Case N1 needs only the QC's metadata; Case N2 would need the
        // pre-prepared block itself, which did not survive the crash.
        if self.cfg().is_leader(view)
            && matches!(&self.high_qc, Justify::One(qc) if qc.phase() == Phase::Prepare)
        {
            self.propose(out);
        }
    }

    /// Records a peer's attested view and joins the highest view that
    /// `f + 1` distinct peers have reached, if it is above ours.
    ///
    /// Taking the `(f + 1)`-th highest claim bounds the jump to a view
    /// some *honest* replica actually entered — up to `f` Byzantine
    /// responders can inflate their own claims but cannot drag us past
    /// every honest peer. This closes the post-crash resynchronization
    /// gap: with linear view changes there is no overheard
    /// `VIEW-CHANGE` traffic to trigger the f+1 join rule, so a
    /// recovered replica would otherwise trail its peers' timer backoff
    /// forever.
    fn note_peer_view(&mut self, from: ReplicaId, view: View, out: &mut StepOutput) {
        if from == self.cfg().id {
            return;
        }
        let slot = self.peer_views.entry(from).or_default();
        *slot = (*slot).max(view);
        let mut above: Vec<View> = self
            .peer_views
            .values()
            .copied()
            .filter(|v| *v > self.base.cview)
            .collect();
        if above.len() <= self.cfg().f {
            return;
        }
        above.sort_unstable_by(|a, b| b.cmp(a));
        let target = above[self.cfg().f];
        self.start_view_change(target, out);
    }

    /// New leader: collect `VIEW-CHANGE` messages for `view`.
    fn on_view_change(
        &mut self,
        from: ReplicaId,
        view: View,
        vc: ViewChange,
        out: &mut StepOutput,
    ) {
        if !self.cfg().is_leader(view) {
            return;
        }
        let quorum = self.quorum();
        let round = self.vc_rounds.entry(view).or_default();
        if round.decided {
            return;
        }
        round.msgs.insert(from, vc);
        if round.msgs.len() < quorum {
            return;
        }
        round.decided = true;
        // Move the collected messages out instead of deep-cloning the
        // map (`decided` above keeps later arrivals from re-entering).
        // Sorting by sender makes the leader's case analysis independent
        // of HashMap iteration order.
        let mut msgs: Vec<(ReplicaId, ViewChange)> =
            std::mem::take(&mut round.msgs).into_iter().collect();
        msgs.sort_unstable_by_key(|(id, _)| *id);
        self.run_pre_prepare(view, msgs, out);
    }

    /// The leader's pre-prepare decision (happy path or Cases V1/V2/V3).
    fn run_pre_prepare(
        &mut self,
        view: View,
        msgs: Vec<(ReplicaId, ViewChange)>,
        out: &mut StepOutput,
    ) {
        // Happy path: unanimous last-voted block.
        let first_lb = msgs[0].1.last_voted;
        if msgs.iter().all(|(_, m)| m.last_voted.id == first_lb.id) {
            let seed = ViewChange::happy_seed(&first_lb, view);
            let valid: Vec<_> = msgs
                .iter()
                .filter(|(_, m)| self.base.crypto.verify_partial(&seed, &m.parsig))
                .map(|(_, m)| m.parsig)
                .collect();
            // If the unanimous lb is a virtual block, its parent must
            // stay resolvable: extending it is only safe when some
            // view-change message carried the resolving `vc`. With no
            // such vc in the snapshot the happy path would propose a
            // block whose virtual parent no replica can ever resolve —
            // fall through to the unhappy pre-prepare path instead.
            let resolving_vc = Self::find_virtual_vc(&first_lb, &msgs);
            let resolvable = first_lb.kind != BlockKind::Virtual || resolving_vc.is_some();
            if valid.len() >= self.quorum() && resolvable {
                if let Some(qc) = self.base.crypto.combine(seed, &valid) {
                    out.actions.push(Action::Note(Note::HappyPathVc { view }));
                    if let (BlockKind::Virtual, Some(vc)) = (first_lb.kind, resolving_vc) {
                        self.base
                            .store
                            .resolve_virtual_parent(first_lb.id, vc.block());
                    }
                    self.high_qc = Justify::One(qc);
                    self.propose(out);
                    return;
                }
            }
        }

        // Unhappy path: find the highest-ranked QC(s) across all justify
        // fields (verifying each — this is the leader's O(n) pairing /
        // O(n²) conventional-verification cost from Table I).
        let mut qcs: Vec<(Qc, Option<Qc>)> = Vec::new();
        for (_, m) in &msgs {
            if !self.base.crypto.verify_justify(&m.high_qc) {
                continue;
            }
            match m.high_qc {
                Justify::One(qc) => {
                    // An unpaired pre-prepareQC over a *virtual* block
                    // is unusable: extending it needs the resolving
                    // `vc`, which honest replicas always report as a
                    // `Justify::Two` pair.
                    if qc.phase() != Phase::PrePrepare || qc.block_kind() != BlockKind::Virtual {
                        qcs.push((qc, None));
                    }
                }
                Justify::Two(pre, vc) => {
                    // Apply the pairing rule replicas enforce
                    // (`pair_ok`): a mismatched pair would yield a
                    // proposal every honest replica rejects.
                    let pair_ok = pre.block_kind() == BlockKind::Virtual
                        && vc.phase() == Phase::Prepare
                        && vc.view() == pre.pview()
                        && vc.height() == pre.height().prev();
                    if pair_ok {
                        qcs.push((pre, Some(vc)));
                    }
                    qcs.push((vc, None));
                }
                Justify::None => {}
            }
        }
        if qcs.is_empty() {
            return; // nothing valid; the next timeout retries
        }
        let top_rank = qcs
            .iter()
            .map(|(qc, _)| qc)
            .max_by(|a, b| qc_rank_cmp(a, b))
            .copied()
            .expect("nonempty");
        let top: Vec<(Qc, Option<Qc>)> = qcs
            .iter()
            .filter(|(qc, _)| qc_rank_cmp(qc, &top_rank) == Ordering::Equal)
            .cloned()
            .collect();
        let metas: Vec<BlockMeta> = msgs.iter().map(|(_, m)| m.last_voted).collect();
        let bv = *highest_block(metas.iter()).expect("quorum is nonempty");

        let batch = self.base.take_batch();
        let round = self.vc_rounds.entry(view).or_default();
        round.candidates.clear();
        let mut blocks: Vec<Block> = Vec::new();

        let (first, first_vc) = top[0];
        if first.phase() == Phase::Prepare {
            let qc = first;
            let parent_meta = Self::meta_of_qc(&qc);
            if block_rank_gt(&bv, &parent_meta) {
                // Case V1: normal + virtual shadow blocks.
                out.actions.push(Action::Note(Note::UnhappyPathVc {
                    view,
                    case: VcCase::V1,
                }));
                let b1 = Block::new_normal(
                    qc.block(),
                    qc.block_view(),
                    view,
                    qc.height().next(),
                    batch.clone(),
                    Justify::One(qc),
                );
                let b2 = Block::new_virtual(
                    qc.block_view(),
                    view,
                    qc.height().plus(2),
                    batch,
                    Justify::One(qc),
                );
                blocks.push(b1);
                blocks.push(b2);
            } else {
                // Case V2 with a prepareQC: certain-safe snapshot.
                out.actions.push(Action::Note(Note::UnhappyPathVc {
                    view,
                    case: VcCase::V2,
                }));
                let b = Block::new_normal(
                    qc.block(),
                    qc.block_view(),
                    view,
                    qc.height().next(),
                    batch,
                    Justify::One(qc),
                );
                blocks.push(b);
            }
        } else if top
            .iter()
            .map(|(qc, _)| qc.block())
            .collect::<std::collections::HashSet<_>>()
            .len()
            == 1
        {
            // Case V2 with a single pre-prepareQC.
            out.actions.push(Action::Note(Note::UnhappyPathVc {
                view,
                case: VcCase::V2,
            }));
            // All top entries certify the same block; the resolving vc
            // may ride on any of them, not necessarily the first.
            let vc_any = first_vc.or_else(|| top.iter().find_map(|(_, vc)| *vc));
            let justify = match (first.block_kind(), vc_any) {
                (BlockKind::Virtual, Some(vc)) => Justify::Two(first, vc),
                _ => Justify::One(first),
            };
            let b = Block::new_normal(
                first.block(),
                first.block_view(),
                view,
                first.height().next(),
                batch,
                justify,
            );
            blocks.push(b);
        } else {
            // Case V3: two pre-prepareQCs of equal rank (normal+virtual).
            out.actions.push(Action::Note(Note::UnhappyPathVc {
                view,
                case: VcCase::V3,
            }));
            let normal = top
                .iter()
                .find(|(qc, _)| qc.block_kind() == BlockKind::Normal);
            let virt = top
                .iter()
                .find(|(qc, _)| qc.block_kind() == BlockKind::Virtual);
            if let Some((qc1, _)) = normal {
                blocks.push(Block::new_normal(
                    qc1.block(),
                    qc1.block_view(),
                    view,
                    qc1.height().next(),
                    batch.clone(),
                    Justify::One(*qc1),
                ));
            }
            if let Some((qc2, Some(vc))) = virt {
                blocks.push(Block::new_normal(
                    qc2.block(),
                    qc2.block_view(),
                    view,
                    qc2.height().next(),
                    batch,
                    Justify::Two(*qc2, *vc),
                ));
            }
            if blocks.is_empty() {
                return;
            }
        }

        for b in &blocks {
            self.base.store_block(b);
            if let Justify::Two(pre, vc) = b.justify() {
                // Make the virtual grandparent resolvable.
                self.base
                    .store
                    .resolve_virtual_parent(pre.block(), vc.block());
            }
            let round = self.vc_rounds.entry(view).or_default();
            round.candidates.push(b.id());
        }
        out.actions.push(Action::Broadcast {
            message: Message::new(
                self.cfg().id,
                view,
                MsgBody::Proposal(Proposal {
                    phase: Phase::PrePrepare,
                    blocks,
                    justify: Justify::None,
                    vc_proof: Vec::new(),
                }),
            ),
        });
    }

    /// Finds the `vc` accompanying a virtual `lb` in any view-change
    /// message's `(qc, vc)` pair, for parent resolution.
    fn find_virtual_vc(lb: &BlockMeta, msgs: &[(ReplicaId, ViewChange)]) -> Option<Qc> {
        msgs.iter().find_map(|(_, m)| match m.high_qc {
            Justify::Two(pre, vc) if pre.block() == lb.id => Some(vc),
            Justify::One(qc) if qc.block() == lb.id && qc.phase() == Phase::Prepare => None,
            _ => None,
        })
    }

    /// Replica handling of a `PRE-PREPARE` proposal (Cases R1/R2/R3).
    fn on_pre_prepare_proposal(
        &mut self,
        from: ReplicaId,
        view: View,
        p: Proposal,
        out: &mut StepOutput,
    ) {
        if from != self.cfg().leader_of(view) || p.blocks.is_empty() || p.blocks.len() > 2 {
            return;
        }
        let mut progressed = false;
        for block in &p.blocks {
            if block.view() != view {
                continue;
            }
            let justify = *block.justify();
            let Some(qc) = justify.qc().copied() else {
                continue;
            };
            // The justify must have been formed before this view.
            if qc.view() >= view {
                continue;
            }
            if !self.base.crypto.verify_justify(&justify) {
                continue;
            }
            // Structural validity.
            let structural = match block.kind() {
                BlockKind::Normal => {
                    block.parent_id() == Some(qc.block())
                        && block.height() == qc.height().next()
                        && block.pview() == qc.block_view()
                }
                BlockKind::Virtual => {
                    qc.phase() == Phase::Prepare
                        && block.height() == qc.height().plus(2)
                        && block.pview() == qc.block_view()
                        && matches!(justify, Justify::One(_))
                }
            };
            if !structural {
                continue;
            }
            // (qc, vc) pairs must be internally consistent.
            if let Justify::Two(pre, vc) = &justify {
                let pair_ok = pre.block_kind() == BlockKind::Virtual
                    && vc.phase() == Phase::Prepare
                    && vc.view() == pre.pview()
                    && vc.height() == pre.height().prev();
                if !pair_ok {
                    continue;
                }
                self.base
                    .store
                    .resolve_virtual_parent(pre.block(), vc.block());
            }

            // Voting cases.
            let mut attach = None;
            let r1 = qc_rank_ge(&qc, self.locked_qc.as_ref());
            let r2 = !r1
                && block.kind() == BlockKind::Virtual
                && qc.phase() == Phase::Prepare
                && self
                    .locked_qc
                    .as_ref()
                    .is_some_and(|l| l.view() == qc.view() && l.height() == qc.height().next());
            let r3 = !r1
                && !r2
                && qc.phase() == Phase::PrePrepare
                && self
                    .locked_qc
                    .as_ref()
                    .is_some_and(|l| l.block() == qc.block());
            if r2 {
                attach = self.locked_qc;
            }
            if !(r1 || r2 || r3) {
                continue;
            }
            // Write-ahead: a pre-prepare vote changes no block-level
            // safety state, but the view it is cast in must be durable.
            if !self.journal_view_durable(view, Phase::PrePrepare, out) {
                continue;
            }

            self.base.store_block(block);
            let seed = block.vote_seed(Phase::PrePrepare, view);
            let parsig = self.base.crypto.sign_seed(&seed);
            out.actions.push(Action::Send {
                to: from,
                message: Message::new(
                    self.cfg().id,
                    view,
                    MsgBody::Vote(Vote {
                        seed,
                        parsig,
                        locked_qc: attach,
                    }),
                ),
            });
            progressed = true;
        }
        if progressed {
            self.base.progress_timer(out);
        }
    }

    /// Leader handling of pre-prepare votes → forms the `pre-prepareQC`
    /// and advances to the prepare phase.
    fn on_pre_prepare_vote(&mut self, v: Vote, out: &mut StepOutput) {
        let view = self.base.cview;
        if v.seed.view != view || !self.cfg().is_leader(view) {
            return;
        }
        let Some(round) = self.vc_rounds.get_mut(&view) else {
            return;
        };
        if round.advanced || !round.candidates.contains(&v.seed.block) {
            return;
        }
        // Record a validating prepareQC from a Case R2 voter. Only a
        // vc that resolves this round's *virtual candidate* counts: it
        // must certify the candidate's parent slot (the `pair_ok` rule
        // every replica later applies to `Justify::Two`). An unrelated
        // prepareQC — e.g. one attached by a Byzantine voter — must not
        // occupy the slot, and matching attachments keep being accepted
        // rather than latching whichever arrived first.
        if let Some(vc) = v.locked_qc {
            let virt = round
                .candidates
                .iter()
                .find_map(|id| self.base.store.get(id).filter(|b| b.is_virtual()))
                .map(|b| (b.pview(), b.height()));
            if let Some((pview, height)) = virt {
                let fits = vc.phase() == Phase::Prepare
                    && vc.view() == pview
                    && vc.height() == height.prev()
                    && self.base.crypto.verify_qc(&vc);
                if fits {
                    let round = self.vc_rounds.get_mut(&view).expect("exists");
                    round.virtual_vc = Some(vc);
                }
            }
        }
        if let Some(qc) = self.add_vote(&v, out) {
            out.actions.push(Action::Note(Note::QcFormed {
                phase: Phase::PrePrepare,
                view: qc.view(),
                height: qc.height(),
            }));
            let round = self.vc_rounds.get_mut(&view).expect("exists");
            match qc.block_kind() {
                BlockKind::Normal => {
                    round.advanced = true;
                    self.high_qc = Justify::One(qc);
                    self.propose(out);
                }
                BlockKind::Virtual => match round.virtual_vc {
                    Some(vc) => {
                        round.advanced = true;
                        self.base
                            .store
                            .resolve_virtual_parent(qc.block(), vc.block());
                        self.high_qc = Justify::Two(qc, vc);
                        self.propose(out);
                    }
                    None => {
                        // Wait for a vc or for the normal candidate's QC.
                        round.stashed_virtual_qc = Some(qc);
                    }
                },
            }
        } else if let Some(round) = self.vc_rounds.get_mut(&view) {
            // A stashed virtual QC becomes usable once a vc arrives.
            if !round.advanced {
                if let (Some(pre), Some(vc)) = (round.stashed_virtual_qc, round.virtual_vc) {
                    round.advanced = true;
                    self.base
                        .store
                        .resolve_virtual_parent(pre.block(), vc.block());
                    self.high_qc = Justify::Two(pre, vc);
                    self.propose(out);
                }
            }
        }
    }
}

impl Protocol for Marlin {
    fn config(&self) -> &Config {
        &self.base.cfg
    }

    fn current_view(&self) -> View {
        self.base.cview
    }

    fn store(&self) -> &BlockStore {
        &self.base.store
    }

    fn mempool_len(&self) -> usize {
        self.base.mempool.len()
    }

    fn maintain_crypto(&mut self, max_verified: usize) -> crate::CryptoCacheStats {
        self.base.maintain_crypto(max_verified)
    }

    fn locked_qc(&self) -> Option<&Qc> {
        self.locked_qc.as_ref()
    }

    fn name(&self) -> &'static str {
        "marlin"
    }

    fn on_event(&mut self, event: Event) -> StepOutput {
        let mut out = StepOutput::empty();
        match event {
            Event::Start => {
                // Idempotent: a replica that already joined a view
                // (e.g. via a commit certificate that arrived before
                // its start event) must not regress.
                if self.base.cview == View::GENESIS {
                    self.enter_view(View(1), &mut out);
                    if self.cfg().is_leader(View(1)) {
                        self.propose(&mut out);
                    }
                }
            }
            Event::Message(msg) => self.on_message(msg, &mut out),
            Event::Timeout { view } => self.on_timeout(view, &mut out),
            Event::NewTransactions(txs) => {
                self.base.add_transactions(txs, &mut out);
                // Push freshly admitted payloads ahead of leadership:
                // dissemination overlaps with whatever is in flight.
                self.base.seal_payloads(&mut out);
                if self.cfg().is_leader(self.base.cview) && self.in_flight.is_none() {
                    self.propose(&mut out);
                }
                self.arm_payload_heartbeat(&mut out);
            }
            Event::Heartbeat => {
                // Drive the sync engine first: deadlines, re-dispatch,
                // re-arm (no-op without an active run).
                self.base.sync_tick(&mut out);
                // Then the payload plane's retransmit/expiry clock, so
                // stalled seals are re-pushed and eventually abandoned.
                self.base.payload_tick(&mut out);
                if self.cfg().is_leader(self.base.cview) && self.in_flight.is_none() {
                    if !self.base.work_pending() {
                        out.actions.push(Action::SetHeartbeat {
                            delay_ns: self.base.cfg.base_timeout_ns / 4,
                        });
                    }
                    self.propose(&mut out);
                }
                self.arm_payload_heartbeat(&mut out);
            }
            Event::Recovered => self.on_recovered(&mut out),
        }
        // A new snapshot anchor pruned the committed prefix this step:
        // let the journal fold away history below the same horizon so
        // long-lived nodes bound journal disk alongside block residency.
        if let Some(horizon) = self.base.take_journal_gc() {
            if let Some(j) = self.journal.as_mut() {
                let _ = j.gc_below(horizon);
            }
        }
        // Report the step's write-ahead journal IO (appends, bytes,
        // modeled latency). Reported, and charged to the journal lane
        // only when `charge_journal` opts in: folding the modeled cost
        // into the default schedule would perturb the deterministic
        // timings the fault-injection campaign pins by fingerprint.
        if let Some(j) = self.journal.as_mut() {
            let io = j.take_io();
            if io.appends > 0 {
                if self.base.cfg.charge_journal {
                    out.cpu_ns += io.cost_ns;
                    out.journal_ns += io.cost_ns;
                }
                out.actions.push(Action::Note(Note::JournalWrite {
                    appends: io.appends,
                    bytes: io.bytes,
                    cost_ns: io.cost_ns,
                }));
            }
        }
        self.base.finish(out)
    }
}
