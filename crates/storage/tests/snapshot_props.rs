//! Property tests for the generational snapshot store: random save
//! schedules interleaved with random torn writes and crash/reopen
//! points, mirroring the safety-journal discipline.
//!
//! Invariants:
//!
//! * **newest-acknowledged wins** — after any crash/reopen, `latest()`
//!   is exactly the payload of the last `save` that returned `Ok`
//!   (acknowledgement is a durability promise);
//! * **torn fallback** — a save torn mid-write errors and the reopened
//!   store falls back to the previous acknowledged generation, never a
//!   CRC-broken fragment;
//! * **bounded footprint** — at most two `state-snapshot.*` files exist
//!   on disk at any reopen point, regardless of schedule length.

#![recursion_limit = "256"]

use marlin_storage::{Disk, SharedDisk, SnapshotStore, SNAPSHOT_FILE};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    /// Save a payload derived from this tag.
    Save(u8),
    /// Tear the next disk write after this many bytes, then save.
    TornSave(u8, usize),
    /// Crash (drop unsynced writes) and reopen the store.
    CrashReopen,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<u8>().prop_map(Op::Save),
        2 => (any::<u8>(), 0usize..12).prop_map(|(t, cut)| Op::TornSave(t, cut)),
        2 => Just(Op::CrashReopen),
    ]
}

fn payload(tag: u8) -> Vec<u8> {
    // Long enough that every tear point in 0..12 lands inside the
    // frame (8-byte header + payload).
    vec![tag; 9]
}

fn snapshot_files(disk: &SharedDisk) -> usize {
    disk.list()
        .expect("list")
        .into_iter()
        .filter(|f| f.starts_with(SNAPSHOT_FILE))
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_tears_and_crashes_never_lose_an_acknowledged_snapshot(
        ops in prop::collection::vec(arb_op(), 1..40),
    ) {
        let disk = SharedDisk::new();
        let mut store = SnapshotStore::open(disk.clone()).expect("open");
        // The last payload whose save returned Ok — what recovery must
        // reproduce exactly.
        let mut acknowledged: Option<Vec<u8>> = None;

        for op in &ops {
            match op {
                Op::Save(tag) => {
                    store.save(&payload(*tag)).expect("untorn save");
                    acknowledged = Some(payload(*tag));
                }
                Op::TornSave(tag, cut) => {
                    disk.tear_next_write_after(*cut);
                    prop_assert!(
                        store.save(&payload(*tag)).is_err(),
                        "a torn save must error, not acknowledge"
                    );
                }
                Op::CrashReopen => {
                    disk.crash();
                    store = SnapshotStore::open(disk.clone()).expect("reopen");
                    prop_assert_eq!(
                        store.latest(),
                        acknowledged.as_deref(),
                        "recovery must yield exactly the last acknowledged snapshot"
                    );
                    // Open garbage-collects every non-chosen straggler.
                    let snaps = snapshot_files(&disk);
                    prop_assert!(snaps <= 1, "reopen left {} snapshot files", snaps);
                }
            }
            // Steady state keeps current + fallback generations, plus at
            // most one torn fragment awaiting the next save's cleanup.
            let snaps = snapshot_files(&disk);
            prop_assert!(snaps <= 3, "snapshot footprint unbounded: {} files", snaps);
        }

        // Final crash/reopen: the end state always recovers too.
        disk.crash();
        let reopened = SnapshotStore::open(disk).expect("final reopen");
        prop_assert_eq!(reopened.latest(), acknowledged.as_deref());
    }

    /// Random truncation of the newest generation file itself (not just
    /// the write stream): replay must fall back to the previous
    /// generation rather than serving a CRC-broken prefix.
    #[test]
    fn truncated_newest_generation_falls_back(
        tag_a in any::<u8>(),
        tag_b in any::<u8>(),
        keep in 0usize..17,
    ) {
        prop_assume!(tag_a != tag_b);
        let disk = SharedDisk::new();
        let mut store = SnapshotStore::open(disk.clone()).expect("open");
        store.save(&payload(tag_a)).expect("first save");
        // The second save is torn after `keep` bytes of its 17-byte
        // frame — everything from a 0-byte stub to one byte short of
        // intact.
        disk.tear_next_write_after(keep);
        prop_assert!(store.save(&payload(tag_b)).is_err());
        disk.crash();
        let reopened = SnapshotStore::open(disk).expect("reopen");
        prop_assert_eq!(
            reopened.latest(),
            Some(&payload(tag_a)[..]),
            "torn newest generation must fall back, not win"
        );
    }
}
