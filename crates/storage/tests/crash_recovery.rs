//! Property-based crash-recovery tests: whatever sequence of operations
//! runs, and wherever a crash lands, the store reopens consistently —
//! flushed (synced) data is always intact, and the WAL's torn tail only
//! ever loses the most recent unsynced writes.

use marlin_storage::{IoCostModel, KvStore, MemDisk, StoreConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    Put(u16, Vec<u8>),
    Delete(u16),
    Flush,
    Checkpoint,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u16>(), prop::collection::vec(any::<u8>(), 0..64)).prop_map(|(k, v)| Op::Put(k, v)),
        2 => any::<u16>().prop_map(Op::Delete),
        1 => Just(Op::Flush),
        1 => Just(Op::Checkpoint),
    ]
}

fn config() -> StoreConfig {
    StoreConfig {
        memtable_flush_bytes: 512,
        max_segments: 3,
        cost: IoCostModel::zero(),
    }
}

fn key(k: u16) -> Vec<u8> {
    k.to_be_bytes().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Applying operations and reopening (clean shutdown, WAL intact)
    /// yields exactly the model's state.
    #[test]
    fn clean_reopen_preserves_everything(ops in prop::collection::vec(arb_op(), 1..60)) {
        let mut db = KvStore::open(MemDisk::new(), config()).unwrap();
        let mut model: BTreeMap<u16, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    db.put(key(*k), v.clone()).unwrap();
                    model.insert(*k, v.clone());
                }
                Op::Delete(k) => {
                    db.delete(key(*k)).unwrap();
                    model.remove(k);
                }
                Op::Flush => db.flush().unwrap(),
                Op::Checkpoint => db.checkpoint().unwrap(),
            }
        }
        let disk = db.into_disk();
        let mut db = KvStore::open(disk, config()).unwrap();
        for (k, v) in &model {
            let got = db.get(&key(*k)).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        // A few absent keys stay absent.
        for k in [0u16, 7, 999] {
            if !model.contains_key(&k) {
                prop_assert_eq!(db.get(&key(k)).unwrap(), None);
            }
        }
    }

    /// Crashing (losing all unsynced bytes) and reopening never corrupts
    /// the store, and everything written before the last explicit flush
    /// survives.
    #[test]
    fn crash_preserves_flushed_state(
        before in prop::collection::vec(arb_op(), 1..40),
        after in prop::collection::vec(arb_op(), 0..20),
    ) {
        let mut db = KvStore::open(MemDisk::new(), config()).unwrap();
        let mut durable: BTreeMap<u16, Vec<u8>> = BTreeMap::new();
        for op in &before {
            match op {
                Op::Put(k, v) => {
                    db.put(key(*k), v.clone()).unwrap();
                    durable.insert(*k, v.clone());
                }
                Op::Delete(k) => {
                    db.delete(key(*k)).unwrap();
                    durable.remove(k);
                }
                Op::Flush => db.flush().unwrap(),
                Op::Checkpoint => db.checkpoint().unwrap(),
            }
        }
        // Durability point.
        db.flush().unwrap();
        // Unsynced tail that the crash may destroy.
        for op in &after {
            match op {
                Op::Put(k, v) => db.put(key(*k), v.clone()).unwrap(),
                Op::Delete(k) => db.delete(key(*k)).unwrap(),
                Op::Flush | Op::Checkpoint => {} // keep the tail unsynced
            }
        }
        let disk = db.into_disk().crash();
        let mut db = KvStore::open(disk, config()).unwrap();
        for (k, v) in &durable {
            let got = db.get(&key(*k)).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v), "flushed key {} lost after crash", k);
        }
    }

    /// A torn WAL tail (partial final record) is silently discarded:
    /// reopening succeeds and all earlier records replay.
    #[test]
    fn torn_wal_tail_recovers(
        keep in prop::collection::vec((any::<u16>(), prop::collection::vec(any::<u8>(), 1..32)), 1..20),
        torn_at in 1usize..20,
    ) {
        let mut db = KvStore::open(MemDisk::new(), config()).unwrap();
        // Big memtable: everything stays in the WAL.
        for (k, v) in &keep {
            db.put(key(*k), v.clone()).unwrap();
        }
        let mut disk = db.into_disk();
        // Tear the next append partway through.
        use marlin_storage::Disk;
        disk.tear_next_write_after(torn_at.min(8));
        let _ = disk.append("wal", &[0xFF; 64]);
        let mut db = KvStore::open(disk, config()).unwrap();
        let mut model = BTreeMap::new();
        for (k, v) in &keep {
            model.insert(*k, v.clone());
        }
        for (k, v) in &model {
            let got = db.get(&key(*k)).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v));
        }
    }
}
