//! I/O cost model for the discrete-event simulation.

/// Simulated nanosecond costs for storage operations, approximating a
/// datacenter SSD with an OS page cache in front of it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoCostModel {
    /// Per-byte cost of appending to the WAL.
    pub wal_write_ns_per_byte: u64,
    /// Fixed cost of a WAL record (syscall + latch).
    pub wal_write_base_ns: u64,
    /// Per-byte cost of writing a segment during flush/compaction.
    pub segment_write_ns_per_byte: u64,
    /// Per-byte cost of reads that miss the memtable.
    pub read_ns_per_byte: u64,
    /// Fixed cost of a durability sync.
    pub sync_ns: u64,
}

impl IoCostModel {
    /// Free I/O (protocol-logic tests).
    pub fn zero() -> Self {
        IoCostModel {
            wal_write_ns_per_byte: 0,
            wal_write_base_ns: 0,
            segment_write_ns_per_byte: 0,
            read_ns_per_byte: 0,
            sync_ns: 0,
        }
    }

    /// An NVMe-class device: ~2 GB/s sequential writes, ~10 µs sync.
    pub fn ssd() -> Self {
        IoCostModel {
            wal_write_ns_per_byte: 1,
            wal_write_base_ns: 2_000,
            segment_write_ns_per_byte: 1,
            read_ns_per_byte: 1,
            sync_ns: 10_000,
        }
    }

    /// Cost of a WAL append of `len` payload bytes.
    pub fn wal_append(&self, len: usize) -> u64 {
        self.wal_write_base_ns + self.wal_write_ns_per_byte * len as u64
    }

    /// Cost of writing `len` segment bytes.
    pub fn segment_write(&self, len: usize) -> u64 {
        self.segment_write_ns_per_byte * len as u64
    }

    /// Cost of reading `len` bytes from disk.
    pub fn read(&self, len: usize) -> u64 {
        self.read_ns_per_byte * len as u64
    }
}

impl Default for IoCostModel {
    fn default() -> Self {
        Self::ssd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_free() {
        let m = IoCostModel::zero();
        assert_eq!(m.wal_append(1000), 0);
        assert_eq!(m.segment_write(1000), 0);
        assert_eq!(m.read(1000), 0);
    }

    #[test]
    fn ssd_scales_with_size() {
        let m = IoCostModel::ssd();
        assert!(m.wal_append(1000) > m.wal_append(10));
        assert_eq!(m.segment_write(4096), 4096);
        assert_eq!(m.wal_append(0), m.wal_write_base_ns);
    }
}
