//! CRC-32 (IEEE 802.3), table-driven — integrity checks for WAL records
//! and segments.

/// Lazily built CRC table for polynomial `0xEDB88320`.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// Computes the CRC-32 checksum of `data`.
///
/// # Example
///
/// ```
/// // Standard check value for "123456789".
/// assert_eq!(marlin_storage::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = crc32(b"payload");
        let mut data = b"payload".to_vec();
        data[3] ^= 0x01;
        assert_ne!(crc32(&data), base);
    }
}
