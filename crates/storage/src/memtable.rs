//! The in-memory write buffer.

use std::collections::BTreeMap;

/// A sorted in-memory table of pending writes; `None` values are
/// tombstones (deletions awaiting compaction).
#[derive(Clone, Debug, Default)]
pub struct MemTable {
    entries: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    approx_bytes: usize,
}

impl MemTable {
    /// An empty memtable.
    pub fn new() -> Self {
        MemTable::default()
    }

    /// Buffers a write.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) {
        self.approx_bytes += key.len() + value.len() + 16;
        self.entries.insert(key, Some(value));
    }

    /// Buffers a deletion (tombstone).
    pub fn delete(&mut self, key: Vec<u8>) {
        self.approx_bytes += key.len() + 16;
        self.entries.insert(key, None);
    }

    /// Looks a key up. `None` = not present here; `Some(None)` =
    /// tombstoned; `Some(Some(v))` = live value.
    pub fn get(&self, key: &[u8]) -> Option<Option<&[u8]>> {
        self.entries.get(key).map(|v| v.as_deref())
    }

    /// Number of buffered entries (including tombstones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Drains all entries in key order (for a segment flush).
    pub fn drain_sorted(&mut self) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        self.approx_bytes = 0;
        std::mem::take(&mut self.entries).into_iter().collect()
    }

    /// Iterates entries in key order without draining.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<u8>, &Option<Vec<u8>>)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut m = MemTable::new();
        assert!(m.is_empty());
        m.put(b"k".to_vec(), b"v1".to_vec());
        assert_eq!(m.get(b"k"), Some(Some(&b"v1"[..])));
        m.put(b"k".to_vec(), b"v2".to_vec());
        assert_eq!(m.get(b"k"), Some(Some(&b"v2"[..])));
        m.delete(b"k".to_vec());
        assert_eq!(m.get(b"k"), Some(None));
        assert_eq!(m.get(b"absent"), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn drain_is_sorted_and_empties() {
        let mut m = MemTable::new();
        m.put(b"b".to_vec(), b"2".to_vec());
        m.put(b"a".to_vec(), b"1".to_vec());
        m.delete(b"c".to_vec());
        let drained = m.drain_sorted();
        let keys: Vec<&[u8]> = drained.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![&b"a"[..], &b"b"[..], &b"c"[..]]);
        assert!(m.is_empty());
        assert_eq!(m.approx_bytes(), 0);
    }

    #[test]
    fn approx_bytes_grows() {
        let mut m = MemTable::new();
        let before = m.approx_bytes();
        m.put(vec![0; 100], vec![0; 900]);
        assert!(m.approx_bytes() >= before + 1000);
    }
}
