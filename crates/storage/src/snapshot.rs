//! Generational, torn-write-tolerant application-state snapshots.
//!
//! A [`SnapshotStore`] persists an opaque snapshot payload (the caller
//! decides what a "snapshot" is — consensus keeps a self-certifying
//! block/QC anchor there) with the same crash discipline as the safety
//! journal:
//!
//! * each save writes a **fresh generation** file
//!   (`state-snapshot.<n>`) under the [`Wal`] framing (`len: u32 LE |
//!   crc: u32 LE | payload`), so a torn write corrupts only the
//!   generation being written, never an acknowledged one;
//! * the **previous generation is retained** until the next save, so
//!   recovery after a torn newest generation falls back to the last
//!   intact snapshot instead of losing snapshot state entirely;
//! * [`SnapshotStore::open`] picks the newest generation with an intact
//!   CRC-framed record and garbage-collects every other straggler,
//!   which keeps on-disk snapshot state bounded to at most two
//!   generations regardless of run length.

use crate::disk::{Disk, SharedDisk};
use crate::wal::Wal;
use std::io;

/// Base name of the snapshot files; generations append `.<n>`.
pub const SNAPSHOT_FILE: &str = "state-snapshot";

fn gen_file(gen: u64) -> String {
    format!("{SNAPSHOT_FILE}.{gen}")
}

/// Durable generational snapshot storage (see the module docs).
#[derive(Clone, Debug)]
pub struct SnapshotStore {
    disk: SharedDisk,
    /// Newest generation holding an intact snapshot (the next save
    /// writes `gen + 1`).
    gen: u64,
    /// The newest intact snapshot payload, if any.
    latest: Option<Vec<u8>>,
    /// Total framed bytes written through this handle (telemetry).
    bytes_written: u64,
}

impl SnapshotStore {
    /// Opens (or creates) the snapshot store on `disk`, recovering the
    /// newest generation with an intact record. Torn or undecodable
    /// newer generations are skipped — recovery falls back to the
    /// previous intact one — and every non-chosen generation file is
    /// removed.
    ///
    /// # Errors
    ///
    /// Propagates disk errors.
    pub fn open(disk: SharedDisk) -> io::Result<Self> {
        let mut disk = disk;
        let mut gens: Vec<u64> = disk
            .list()?
            .iter()
            .filter_map(|name| {
                name.strip_prefix(SNAPSHOT_FILE)
                    .and_then(|rest| rest.strip_prefix('.'))
                    .and_then(|g| g.parse().ok())
            })
            .collect();
        gens.sort_unstable();

        let mut chosen: Option<(u64, Vec<u8>)> = None;
        for &g in gens.iter().rev() {
            let (records, _tail_clean) = Wal::replay_named_checked(&disk, &gen_file(g))?;
            // A save writes exactly one record per generation; if a
            // hostile or torn file somehow holds several intact frames,
            // the last one is the newest acknowledged payload.
            if let Some(payload) = records.into_iter().last() {
                chosen = Some((g, payload));
                break;
            }
        }
        let gen = chosen
            .as_ref()
            .map(|(g, _)| *g)
            .or_else(|| gens.last().copied())
            .unwrap_or(0);
        for &g in &gens {
            if Some(g) != chosen.as_ref().map(|(c, _)| *c) {
                disk.remove(&gen_file(g))?;
            }
        }
        Ok(SnapshotStore {
            disk,
            gen,
            latest: chosen.map(|(_, payload)| payload),
            bytes_written: 0,
        })
    }

    /// The newest intact snapshot payload, if any was ever saved.
    pub fn latest(&self) -> Option<&[u8]> {
        self.latest.as_deref()
    }

    /// Total framed bytes durably written through this handle.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Durably saves `payload` as a new snapshot generation, then
    /// retires everything older than the *previous* generation (the
    /// previous one is kept as the torn-write fallback). Returns the
    /// framed bytes written.
    ///
    /// # Errors
    ///
    /// Propagates disk errors; on error the previously acknowledged
    /// snapshot is still intact and recoverable.
    pub fn save(&mut self, payload: &[u8]) -> io::Result<usize> {
        let next = self.gen + 1;
        let target = gen_file(next);
        // A torn earlier attempt may have left a fragment; appending
        // after it would hide the new record from replay.
        self.disk.remove(&target)?;
        Wal::append_named(&mut self.disk, &target, payload)?;
        self.disk.sync()?;
        // The new generation is durable: drop everything older than the
        // one it replaces.
        let retired = gen_file(self.gen.saturating_sub(1));
        if self.gen > 0 {
            self.disk.remove(&retired)?;
        }
        self.gen = next;
        self.latest = Some(payload.to_vec());
        let framed = payload.len() + 8;
        self.bytes_written += framed as u64;
        Ok(framed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_empty_has_no_snapshot() {
        let store = SnapshotStore::open(SharedDisk::new()).unwrap();
        assert_eq!(store.latest(), None);
    }

    #[test]
    fn save_and_recover_after_crash() {
        let disk = SharedDisk::new();
        let mut store = SnapshotStore::open(disk.clone()).unwrap();
        store.save(b"alpha").unwrap();
        store.save(b"beta").unwrap();
        assert_eq!(store.latest(), Some(&b"beta"[..]));
        disk.crash();
        let reopened = SnapshotStore::open(disk).unwrap();
        assert_eq!(reopened.latest(), Some(&b"beta"[..]));
    }

    #[test]
    fn torn_save_falls_back_to_previous_generation() {
        let disk = SharedDisk::new();
        let mut store = SnapshotStore::open(disk.clone()).unwrap();
        store.save(b"alpha").unwrap();
        disk.tear_next_write_after(5); // tears inside the 8-byte header
        assert!(store.save(b"beta").is_err());
        disk.crash();
        let reopened = SnapshotStore::open(disk.clone()).unwrap();
        assert_eq!(reopened.latest(), Some(&b"alpha"[..]));
        // The straggler torn generation was garbage-collected.
        let snap_files: Vec<String> = disk
            .list()
            .unwrap()
            .into_iter()
            .filter(|f| f.starts_with(SNAPSHOT_FILE))
            .collect();
        assert_eq!(snap_files.len(), 1, "{snap_files:?}");
    }

    #[test]
    fn disk_footprint_stays_bounded() {
        let disk = SharedDisk::new();
        let mut store = SnapshotStore::open(disk.clone()).unwrap();
        for i in 0..100u32 {
            store.save(&i.to_le_bytes()).unwrap();
        }
        let snap_files: Vec<String> = disk
            .list()
            .unwrap()
            .into_iter()
            .filter(|f| f.starts_with(SNAPSHOT_FILE))
            .collect();
        // Current + previous-generation fallback, never more.
        assert!(snap_files.len() <= 2, "{snap_files:?}");
        assert!(store.bytes_written() > 0);
    }

    #[test]
    fn save_after_torn_attempt_truncates_the_fragment() {
        let disk = SharedDisk::new();
        let mut store = SnapshotStore::open(disk.clone()).unwrap();
        store.save(b"alpha").unwrap();
        disk.tear_next_write_after(3);
        assert!(store.save(b"beta").is_err());
        // The retried save must not append behind the torn fragment.
        store.save(b"gamma").unwrap();
        disk.crash();
        let reopened = SnapshotStore::open(disk).unwrap();
        assert_eq!(reopened.latest(), Some(&b"gamma"[..]));
    }
}
