//! A log-structured key-value store — the reproduction's stand-in for
//! the LevelDB instance the paper's evaluation writes committed state
//! to ("our implementation writes data into the database rather than
//! into memory and we run checkpointing in the backend", Section VI).
//!
//! Architecture (a deliberately compact LSM):
//!
//! * a **write-ahead log** ([`Wal`]) makes every acknowledged write
//!   durable before it is applied;
//! * an in-memory **memtable** ([`MemTable`]) absorbs writes;
//! * on flush, the memtable becomes an immutable sorted **segment**
//!   ([`Segment`]); reads consult the memtable, then segments
//!   newest-first;
//! * **compaction** merges segments; [`KvStore::checkpoint`] (the
//!   paper's every-5000-blocks garbage collection) flushes, compacts to
//!   one segment, and truncates the log.
//!
//! Storage is parameterised over a [`Disk`] so the test suite can run
//! against an in-memory disk with *fault injection* (torn writes at a
//! byte boundary) to property-test crash recovery, while examples can
//! use the real filesystem via [`FileDisk`]. An [`IoCostModel`] charges
//! simulated nanoseconds per operation so the discrete-event simulation
//! feels database pressure the way the paper's testbed does.
//!
//! # Example
//!
//! ```
//! use marlin_storage::{KvStore, MemDisk, StoreConfig};
//!
//! let mut db = KvStore::open(MemDisk::new(), StoreConfig::default()).unwrap();
//! db.put(b"height/1".to_vec(), b"block-one".to_vec()).unwrap();
//! assert_eq!(db.get(b"height/1").unwrap().as_deref(), Some(&b"block-one"[..]));
//! db.checkpoint().unwrap();
//! assert_eq!(db.get(b"height/1").unwrap().as_deref(), Some(&b"block-one"[..]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod crc;
mod disk;
mod memtable;
mod segment;
mod snapshot;
mod store;
mod wal;

pub use cost::IoCostModel;
pub use crc::crc32;
pub use disk::{Disk, FileDisk, MemDisk, SharedDisk};
pub use memtable::MemTable;
pub use segment::Segment;
pub use snapshot::{SnapshotStore, SNAPSHOT_FILE};
pub use store::{KvStore, StoreConfig, StoreError};
pub use wal::Wal;
