//! The write-ahead log.

use crate::crc::crc32;
use crate::disk::Disk;
use std::io;

/// Name of the log file on the disk.
pub const WAL_FILE: &str = "wal";

/// An append-only record log with per-record CRCs.
///
/// Record format: `len: u32 | crc: u32 | payload`. Replay stops at the
/// first truncated or corrupt record, so a torn tail (crash mid-append)
/// loses only unacknowledged records.
#[derive(Debug)]
pub struct Wal;

impl Wal {
    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates disk errors; on error the tail may be torn (recovery
    /// will discard it).
    pub fn append<D: Disk>(disk: &mut D, payload: &[u8]) -> io::Result<()> {
        Self::append_named(disk, WAL_FILE, payload)
    }

    /// Appends one record to a log under `name` — the same record
    /// format as [`Wal::append`], but on a caller-chosen file so
    /// several logs (e.g. the KV store's WAL and a consensus safety
    /// journal) can share one disk.
    ///
    /// # Errors
    ///
    /// Propagates disk errors; on error the tail may be torn (recovery
    /// will discard it).
    pub fn append_named<D: Disk + ?Sized>(
        disk: &mut D,
        name: &str,
        payload: &[u8],
    ) -> io::Result<()> {
        let mut rec = Vec::with_capacity(8 + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(payload).to_le_bytes());
        rec.extend_from_slice(payload);
        disk.append(name, &rec)
    }

    /// Replays all intact records, oldest first. A missing log yields an
    /// empty list; a corrupt/torn tail is silently discarded.
    ///
    /// # Errors
    ///
    /// Propagates disk read errors other than "not found".
    pub fn replay<D: Disk>(disk: &D) -> io::Result<Vec<Vec<u8>>> {
        Self::replay_named(disk, WAL_FILE)
    }

    /// Replays the log under `name` (see [`Wal::replay`]).
    ///
    /// # Errors
    ///
    /// Propagates disk read errors other than "not found".
    pub fn replay_named<D: Disk + ?Sized>(disk: &D, name: &str) -> io::Result<Vec<Vec<u8>>> {
        Ok(Self::replay_named_checked(disk, name)?.0)
    }

    /// Replays the log under `name`, additionally reporting whether the
    /// scan consumed the whole file. `false` means a torn or corrupt
    /// tail remains on disk *after* the intact prefix — anything
    /// appended to the raw file after that point would be invisible to
    /// replay, so callers that keep appending must first truncate or
    /// switch files.
    ///
    /// # Errors
    ///
    /// Propagates disk read errors other than "not found".
    pub fn replay_named_checked<D: Disk + ?Sized>(
        disk: &D,
        name: &str,
    ) -> io::Result<(Vec<Vec<u8>>, bool)> {
        let data = match disk.read_file(name) {
            Ok(d) => d,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), true)),
            Err(e) => return Err(e),
        };
        let mut records = Vec::new();
        let mut pos = 0usize;
        while pos + 8 <= data.len() {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
            let start = pos + 8;
            let end = match start.checked_add(len) {
                Some(e) if e <= data.len() => e,
                _ => break, // torn tail
            };
            let payload = &data[start..end];
            if crc32(payload) != crc {
                break; // corrupt tail
            }
            records.push(payload.to_vec());
            pos = end;
        }
        Ok((records, pos == data.len()))
    }

    /// Truncates the log (after a successful memtable flush).
    ///
    /// # Errors
    ///
    /// Propagates disk errors.
    pub fn reset<D: Disk>(disk: &mut D) -> io::Result<()> {
        disk.remove(WAL_FILE)
    }

    /// Truncates the log under `name`.
    ///
    /// # Errors
    ///
    /// Propagates disk errors.
    pub fn reset_named<D: Disk + ?Sized>(disk: &mut D, name: &str) -> io::Result<()> {
        disk.remove(name)
    }

    /// Current log size in bytes (0 if absent).
    pub fn size<D: Disk>(disk: &D) -> usize {
        disk.read_file(WAL_FILE).map(|d| d.len()).unwrap_or(0)
    }

    /// Size in bytes of the log under `name` (0 if absent).
    pub fn size_named<D: Disk + ?Sized>(disk: &D, name: &str) -> usize {
        disk.read_file(name).map(|d| d.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    #[test]
    fn append_replay_round_trip() {
        let mut d = MemDisk::new();
        Wal::append(&mut d, b"one").unwrap();
        Wal::append(&mut d, b"two").unwrap();
        Wal::append(&mut d, b"").unwrap();
        assert_eq!(
            Wal::replay(&d).unwrap(),
            vec![b"one".to_vec(), b"two".to_vec(), vec![]]
        );
    }

    #[test]
    fn replay_of_missing_log_is_empty() {
        assert!(Wal::replay(&MemDisk::new()).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_discarded() {
        let mut d = MemDisk::new();
        Wal::append(&mut d, b"intact").unwrap();
        d.tear_next_write_after(5); // header is 8 bytes: record torn
        let _ = Wal::append(&mut d, b"lost");
        assert_eq!(Wal::replay(&d).unwrap(), vec![b"intact".to_vec()]);
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let mut d = MemDisk::new();
        Wal::append(&mut d, b"first").unwrap();
        Wal::append(&mut d, b"second").unwrap();
        // Flip a payload byte of the second record.
        let mut raw = d.read_file(WAL_FILE).unwrap();
        let idx = raw.len() - 1;
        raw[idx] ^= 0xFF;
        d.write_file(WAL_FILE, &raw).unwrap();
        assert_eq!(Wal::replay(&d).unwrap(), vec![b"first".to_vec()]);
    }

    #[test]
    fn named_logs_are_independent() {
        let mut d = MemDisk::new();
        Wal::append(&mut d, b"kv").unwrap();
        Wal::append_named(&mut d, "safety", b"lock").unwrap();
        Wal::append_named(&mut d, "safety", b"vote").unwrap();
        assert_eq!(Wal::replay(&d).unwrap(), vec![b"kv".to_vec()]);
        assert_eq!(
            Wal::replay_named(&d, "safety").unwrap(),
            vec![b"lock".to_vec(), b"vote".to_vec()]
        );
        Wal::reset_named(&mut d, "safety").unwrap();
        assert_eq!(Wal::size_named(&d, "safety"), 0);
        assert!(Wal::size(&d) > 0);
    }

    #[test]
    fn reset_truncates() {
        let mut d = MemDisk::new();
        Wal::append(&mut d, b"x").unwrap();
        assert!(Wal::size(&d) > 0);
        Wal::reset(&mut d).unwrap();
        assert_eq!(Wal::size(&d), 0);
        assert!(Wal::replay(&d).unwrap().is_empty());
    }
}
