//! The key-value store tying WAL, memtable, and segments together.

use crate::cost::IoCostModel;
use crate::disk::Disk;
use crate::memtable::MemTable;
use crate::segment::Segment;
use crate::wal::Wal;
use std::fmt;
use std::io;

/// Store tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Flush the memtable to a segment once it exceeds this many bytes.
    pub memtable_flush_bytes: usize,
    /// Compact all segments into one once this many accumulate.
    pub max_segments: usize,
    /// Simulated I/O costs (tracked, never slept).
    pub cost: IoCostModel,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            memtable_flush_bytes: 4 << 20,
            max_segments: 8,
            cost: IoCostModel::ssd(),
        }
    }
}

/// Errors returned by the store.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying disk operation failed.
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage i/o error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

type Result<T> = std::result::Result<T, StoreError>;

/// WAL record tags.
const REC_PUT: u8 = 0;
const REC_DELETE: u8 = 1;

/// A log-structured key-value store over a [`Disk`].
///
/// See the crate docs for the architecture; see
/// [`KvStore::take_io_cost_ns`] for the simulated-time integration.
#[derive(Debug)]
pub struct KvStore<D: Disk> {
    disk: D,
    config: StoreConfig,
    memtable: MemTable,
    /// Segments, newest first, with their file names.
    segments: Vec<(String, Segment)>,
    next_segment_id: u64,
    io_cost_ns: u64,
    writes_since_checkpoint: u64,
}

impl<D: Disk> KvStore<D> {
    /// Opens a store, recovering segments and replaying the WAL.
    ///
    /// # Errors
    ///
    /// Propagates disk errors; corrupt segments are rejected (a corrupt
    /// WAL tail is silently truncated, as designed).
    pub fn open(disk: D, config: StoreConfig) -> Result<Self> {
        let mut names: Vec<String> = disk
            .list()?
            .into_iter()
            .filter(|n| n.starts_with("seg-"))
            .collect();
        // Names embed a monotone id: seg-<id:020>; newest = highest id.
        names.sort();
        names.reverse();
        let mut segments = Vec::with_capacity(names.len());
        let mut max_id = 0u64;
        for name in names {
            let seg = Segment::load(&disk, &name)?;
            if let Some(id) = name
                .strip_prefix("seg-")
                .and_then(|s| s.parse::<u64>().ok())
            {
                max_id = max_id.max(id);
            }
            segments.push((name, seg));
        }
        let mut store = KvStore {
            disk,
            config,
            memtable: MemTable::new(),
            segments,
            next_segment_id: max_id + 1,
            io_cost_ns: 0,
            writes_since_checkpoint: 0,
        };
        for record in Wal::replay(&store.disk)? {
            store.apply_wal_record(&record);
        }
        Ok(store)
    }

    fn apply_wal_record(&mut self, record: &[u8]) {
        if record.len() < 5 {
            return;
        }
        let tag = record[0];
        let klen = u32::from_le_bytes(record[1..5].try_into().expect("4 bytes")) as usize;
        if record.len() < 5 + klen {
            return;
        }
        let key = record[5..5 + klen].to_vec();
        match tag {
            REC_PUT => self.memtable.put(key, record[5 + klen..].to_vec()),
            REC_DELETE => self.memtable.delete(key),
            _ => {}
        }
    }

    /// Writes a key/value pair (durable once the call returns).
    ///
    /// # Errors
    ///
    /// Propagates disk errors.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) -> Result<()> {
        let mut record = Vec::with_capacity(5 + key.len() + value.len());
        record.push(REC_PUT);
        record.extend_from_slice(&(key.len() as u32).to_le_bytes());
        record.extend_from_slice(&key);
        record.extend_from_slice(&value);
        self.io_cost_ns += self.config.cost.wal_append(record.len());
        Wal::append(&mut self.disk, &record)?;
        self.memtable.put(key, value);
        self.writes_since_checkpoint += 1;
        self.maybe_flush()?;
        Ok(())
    }

    /// Deletes a key (tombstoned until compaction).
    ///
    /// # Errors
    ///
    /// Propagates disk errors.
    pub fn delete(&mut self, key: Vec<u8>) -> Result<()> {
        let mut record = Vec::with_capacity(5 + key.len());
        record.push(REC_DELETE);
        record.extend_from_slice(&(key.len() as u32).to_le_bytes());
        record.extend_from_slice(&key);
        self.io_cost_ns += self.config.cost.wal_append(record.len());
        Wal::append(&mut self.disk, &record)?;
        self.memtable.delete(key);
        self.writes_since_checkpoint += 1;
        self.maybe_flush()?;
        Ok(())
    }

    /// Looks up a key (memtable first, then segments newest-first).
    ///
    /// # Errors
    ///
    /// Propagates disk errors (none in the current in-memory-index
    /// design, kept for forward compatibility).
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        if let Some(hit) = self.memtable.get(key) {
            return Ok(hit.map(<[u8]>::to_vec));
        }
        for (_, seg) in &self.segments {
            if let Some(hit) = seg.get(key) {
                self.io_cost_ns += self
                    .config
                    .cost
                    .read(key.len() + hit.map_or(0, <[u8]>::len));
                return Ok(hit.map(<[u8]>::to_vec));
            }
        }
        Ok(None)
    }

    /// Flushes the memtable into a new segment and truncates the WAL.
    ///
    /// # Errors
    ///
    /// Propagates disk errors.
    pub fn flush(&mut self) -> Result<()> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let seg = Segment::from_sorted(self.memtable.drain_sorted());
        let name = format!("seg-{:020}", self.next_segment_id);
        self.next_segment_id += 1;
        self.io_cost_ns += self.config.cost.segment_write(seg.encoded_len());
        seg.write(&mut self.disk, &name)?;
        self.io_cost_ns += self.config.cost.sync_ns;
        self.disk.sync()?;
        Wal::reset(&mut self.disk)?;
        self.segments.insert(0, (name, seg));
        if self.segments.len() > self.config.max_segments {
            self.compact()?;
        }
        Ok(())
    }

    /// Merges all segments into one, dropping shadowed entries and
    /// tombstones.
    ///
    /// # Errors
    ///
    /// Propagates disk errors.
    pub fn compact(&mut self) -> Result<()> {
        if self.segments.len() <= 1 {
            return Ok(());
        }
        let refs: Vec<&Segment> = self.segments.iter().map(|(_, s)| s).collect();
        let merged = Segment::merge(&refs, true);
        let name = format!("seg-{:020}", self.next_segment_id);
        self.next_segment_id += 1;
        self.io_cost_ns += self.config.cost.segment_write(merged.encoded_len());
        merged.write(&mut self.disk, &name)?;
        self.io_cost_ns += self.config.cost.sync_ns;
        self.disk.sync()?;
        let old = std::mem::replace(&mut self.segments, vec![(name, merged)]);
        for (old_name, _) in old {
            self.disk.remove(&old_name)?;
        }
        Ok(())
    }

    /// A checkpoint (the paper's every-5000-blocks GC): flush, compact,
    /// reset the write counter.
    ///
    /// # Errors
    ///
    /// Propagates disk errors.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.flush()?;
        self.compact()?;
        self.writes_since_checkpoint = 0;
        Ok(())
    }

    /// Writes since the last checkpoint (drives checkpoint scheduling).
    pub fn writes_since_checkpoint(&self) -> u64 {
        self.writes_since_checkpoint
    }

    /// Returns all live `(key, value)` pairs whose key starts with
    /// `prefix`, in key order (merging the memtable over the segments).
    ///
    /// # Errors
    ///
    /// Reserved for disk errors (none in the in-memory-index design).
    pub fn scan_prefix(&mut self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        use std::collections::BTreeMap;
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        // Oldest segments first so newer entries overwrite.
        for (_, seg) in self.segments.iter().rev() {
            for (k, v) in seg.iter() {
                if k.starts_with(prefix) {
                    merged.insert(k.clone(), v.clone());
                }
            }
        }
        for (k, v) in self.memtable.iter() {
            if k.starts_with(prefix) {
                merged.insert(k.clone(), v.clone().map(|v| v.to_vec()));
            }
        }
        let out: Vec<(Vec<u8>, Vec<u8>)> = merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect();
        self.io_cost_ns += self
            .config
            .cost
            .read(out.iter().map(|(k, v)| k.len() + v.len()).sum());
        Ok(out)
    }

    /// Takes and resets the accumulated simulated I/O cost.
    pub fn take_io_cost_ns(&mut self) -> u64 {
        std::mem::take(&mut self.io_cost_ns)
    }

    /// Number of on-disk segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Entries currently buffered in the memtable.
    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    /// Consumes the store, returning its disk (for crash tests).
    pub fn into_disk(self) -> D {
        self.disk
    }

    fn maybe_flush(&mut self) -> Result<()> {
        if self.memtable.approx_bytes() >= self.config.memtable_flush_bytes {
            self.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn small_config() -> StoreConfig {
        StoreConfig {
            memtable_flush_bytes: 256,
            max_segments: 3,
            cost: IoCostModel::ssd(),
        }
    }

    fn open_mem(cfg: StoreConfig) -> KvStore<MemDisk> {
        KvStore::open(MemDisk::new(), cfg).unwrap()
    }

    #[test]
    fn put_get_delete_round_trip() {
        let mut db = open_mem(StoreConfig::default());
        db.put(b"k1".to_vec(), b"v1".to_vec()).unwrap();
        db.put(b"k2".to_vec(), b"v2".to_vec()).unwrap();
        assert_eq!(db.get(b"k1").unwrap(), Some(b"v1".to_vec()));
        db.delete(b"k1".to_vec()).unwrap();
        assert_eq!(db.get(b"k1").unwrap(), None);
        assert_eq!(db.get(b"k2").unwrap(), Some(b"v2".to_vec()));
        assert_eq!(db.get(b"missing").unwrap(), None);
    }

    #[test]
    fn reads_span_memtable_and_segments() {
        let mut db = open_mem(small_config());
        db.put(b"old".to_vec(), b"segment".to_vec()).unwrap();
        db.flush().unwrap();
        db.put(b"new".to_vec(), b"memtable".to_vec()).unwrap();
        assert_eq!(db.get(b"old").unwrap(), Some(b"segment".to_vec()));
        assert_eq!(db.get(b"new").unwrap(), Some(b"memtable".to_vec()));
        // Overwrite shadows the segment copy.
        db.put(b"old".to_vec(), b"newer".to_vec()).unwrap();
        assert_eq!(db.get(b"old").unwrap(), Some(b"newer".to_vec()));
    }

    #[test]
    fn automatic_flush_and_compaction() {
        let mut db = open_mem(small_config());
        for i in 0..200u32 {
            db.put(format!("key-{i:04}").into_bytes(), vec![7u8; 64])
                .unwrap();
        }
        assert!(db.segment_count() >= 1);
        assert!(db.segment_count() <= small_config().max_segments + 1);
        for i in 0..200u32 {
            assert_eq!(
                db.get(format!("key-{i:04}").as_bytes()).unwrap(),
                Some(vec![7u8; 64]),
                "key-{i}"
            );
        }
    }

    #[test]
    fn recovery_replays_wal() {
        let mut db = open_mem(StoreConfig::default());
        db.put(b"durable".to_vec(), b"yes".to_vec()).unwrap();
        db.put(b"gone".to_vec(), b"tmp".to_vec()).unwrap();
        db.delete(b"gone".to_vec()).unwrap();
        // No flush — everything lives in the WAL.
        let disk = db.into_disk();
        let mut db = KvStore::open(disk, StoreConfig::default()).unwrap();
        assert_eq!(db.get(b"durable").unwrap(), Some(b"yes".to_vec()));
        assert_eq!(db.get(b"gone").unwrap(), None);
    }

    #[test]
    fn recovery_after_crash_keeps_synced_segments() {
        let mut db = open_mem(small_config());
        db.put(b"flushed".to_vec(), b"safe".to_vec()).unwrap();
        db.flush().unwrap(); // segment + sync
        db.put(b"inflight".to_vec(), b"wal-only".to_vec()).unwrap();
        // Crash: unsynced WAL bytes are lost entirely.
        let disk = db.into_disk().crash();
        let mut db = KvStore::open(disk, small_config()).unwrap();
        assert_eq!(db.get(b"flushed").unwrap(), Some(b"safe".to_vec()));
        // The WAL record was not synced; after this crash model it is
        // gone — but recovery still works and the store is consistent.
        assert_eq!(db.get(b"inflight").unwrap(), None);
    }

    #[test]
    fn checkpoint_compacts_to_single_segment() {
        let mut db = open_mem(small_config());
        for i in 0..100u32 {
            db.put(format!("k{i}").into_bytes(), vec![1u8; 100])
                .unwrap();
        }
        for i in 0..50u32 {
            db.delete(format!("k{i}").into_bytes()).unwrap();
        }
        db.checkpoint().unwrap();
        assert_eq!(db.segment_count(), 1);
        assert_eq!(db.memtable_len(), 0);
        assert_eq!(db.writes_since_checkpoint(), 0);
        assert_eq!(db.get(b"k10").unwrap(), None);
        assert_eq!(db.get(b"k75").unwrap(), Some(vec![1u8; 100]));
    }

    #[test]
    fn io_cost_accumulates_and_resets() {
        let mut db = open_mem(StoreConfig::default());
        db.put(b"k".to_vec(), vec![0u8; 1000]).unwrap();
        let cost = db.take_io_cost_ns();
        assert!(cost > 0);
        assert_eq!(db.take_io_cost_ns(), 0);
        // Larger writes cost more.
        db.put(b"k2".to_vec(), vec![0u8; 100_000]).unwrap();
        assert!(db.take_io_cost_ns() > cost);
    }

    #[test]
    fn scan_prefix_merges_all_layers() {
        let mut db = open_mem(small_config());
        db.put(b"block/0001".to_vec(), b"a".to_vec()).unwrap();
        db.put(b"block/0002".to_vec(), b"b".to_vec()).unwrap();
        db.put(b"meta/view".to_vec(), b"7".to_vec()).unwrap();
        db.flush().unwrap();
        db.put(b"block/0003".to_vec(), b"c".to_vec()).unwrap();
        db.put(b"block/0002".to_vec(), b"b2".to_vec()).unwrap(); // shadowed
        db.delete(b"block/0001".to_vec()).unwrap(); // tombstoned
        let hits = db.scan_prefix(b"block/").unwrap();
        let keys: Vec<&[u8]> = hits.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![&b"block/0002"[..], &b"block/0003"[..]]);
        assert_eq!(hits[0].1, b"b2");
        assert!(db.scan_prefix(b"nope/").unwrap().is_empty());
        assert_eq!(db.scan_prefix(b"meta/").unwrap().len(), 1);
    }

    #[test]
    fn reopen_preserves_segment_order() {
        let mut db = open_mem(small_config());
        db.put(b"x".to_vec(), b"old".to_vec()).unwrap();
        db.flush().unwrap();
        db.put(b"x".to_vec(), b"new".to_vec()).unwrap();
        db.flush().unwrap();
        let disk = db.into_disk();
        let mut db = KvStore::open(disk, small_config()).unwrap();
        assert_eq!(db.get(b"x").unwrap(), Some(b"new".to_vec()));
    }
}
