//! The disk abstraction: named files with append/write/read/remove.

use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// A minimal filesystem interface for the store's files.
///
/// Implementations must make `sync` a durability point: data written
/// before a successful `sync` survives a crash; unsynced data may be
/// partially lost (see [`MemDisk::crash`]).
pub trait Disk {
    /// Creates or truncates `name` with `data`.
    fn write_file(&mut self, name: &str, data: &[u8]) -> io::Result<()>;
    /// Appends `data` to `name` (creating it if absent).
    fn append(&mut self, name: &str, data: &[u8]) -> io::Result<()>;
    /// Reads the full contents of `name`.
    fn read_file(&self, name: &str) -> io::Result<Vec<u8>>;
    /// Whether `name` exists.
    fn exists(&self, name: &str) -> bool;
    /// Removes `name` (idempotent).
    fn remove(&mut self, name: &str) -> io::Result<()>;
    /// Lists file names in unspecified order.
    fn list(&self) -> io::Result<Vec<String>>;
    /// Durability barrier.
    fn sync(&mut self) -> io::Result<()>;
}

/// An in-memory disk with crash-fault injection, for tests and for the
/// discrete-event simulation (where durability is modeled, not real).
#[derive(Clone, Debug, Default)]
pub struct MemDisk {
    /// Synced (durable) state.
    durable: BTreeMap<String, Vec<u8>>,
    /// Current (possibly unsynced) state.
    live: BTreeMap<String, Vec<u8>>,
    /// If set, the next write/appends tear after this many bytes and
    /// return an error (simulating a crash mid-write).
    tear_after: Option<usize>,
}

impl MemDisk {
    /// An empty in-memory disk.
    pub fn new() -> Self {
        MemDisk::default()
    }

    /// Arms fault injection: the next write tears after `bytes` bytes.
    pub fn tear_next_write_after(&mut self, bytes: usize) {
        self.tear_after = Some(bytes);
    }

    /// Simulates a crash: all state reverts to the last synced state.
    /// Returns the reverted disk (use with [`crate::KvStore::open`] to
    /// test recovery).
    pub fn crash(self) -> MemDisk {
        MemDisk {
            live: self.durable.clone(),
            durable: self.durable,
            tear_after: None,
        }
    }

    /// Total live bytes (for size assertions).
    pub fn total_bytes(&self) -> usize {
        self.live.values().map(Vec::len).sum()
    }

    fn take_tear(&mut self, len: usize) -> (usize, bool) {
        match self.tear_after.take() {
            Some(limit) if limit < len => (limit, true),
            Some(_) | None => (len, false),
        }
    }
}

impl Disk for MemDisk {
    fn write_file(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        let (keep, torn) = self.take_tear(data.len());
        self.live.insert(name.to_string(), data[..keep].to_vec());
        if torn {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "torn write"));
        }
        Ok(())
    }

    fn append(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        let (keep, torn) = self.take_tear(data.len());
        self.live
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(&data[..keep]);
        if torn {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "torn append"));
        }
        Ok(())
    }

    fn read_file(&self, name: &str) -> io::Result<Vec<u8>> {
        self.live
            .get(name)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))
    }

    fn exists(&self, name: &str) -> bool {
        self.live.contains_key(name)
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        self.live.remove(name);
        Ok(())
    }

    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self.live.keys().cloned().collect())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.durable = self.live.clone();
        Ok(())
    }
}

/// The storage behind a [`SharedDisk`] handle: the default in-memory
/// fault-injectable disk, or any boxed [`Disk`] (a [`FileDisk`], a
/// runtime journal-writer proxy, ...). Keeping the enum private lets
/// `SharedDisk` stay the one concrete type the safety journal needs
/// while the actual backend varies between simulation and deployment.
enum SharedBackend {
    Mem(MemDisk),
    Boxed(Box<dyn Disk + Send>),
}

impl SharedBackend {
    fn disk(&mut self) -> &mut (dyn Disk + Send) {
        match self {
            SharedBackend::Mem(d) => d,
            SharedBackend::Boxed(d) => d.as_mut(),
        }
    }

    fn disk_ref(&self) -> &dyn Disk {
        match self {
            SharedBackend::Mem(d) => d,
            SharedBackend::Boxed(d) => d.as_ref(),
        }
    }
}

impl std::fmt::Debug for SharedBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SharedBackend::Mem(d) => f.debug_tuple("Mem").field(d).finish(),
            SharedBackend::Boxed(_) => f.debug_tuple("Boxed").finish(),
        }
    }
}

impl Default for SharedBackend {
    fn default() -> Self {
        SharedBackend::Mem(MemDisk::new())
    }
}

/// A cloneable handle to one shared disk: every clone addresses the
/// same files. This lets a consensus replica (which owns a durable
/// journal on the disk) and a fault-injecting harness (which crashes
/// the disk and tears its writes) hold the *same* per-replica disk —
/// and, unlike [`MemDisk::crash`] which consumes the disk, crash it in
/// place so outstanding handles stay valid across the restart.
///
/// By default the backend is a [`MemDisk`]; [`SharedDisk::from_disk`]
/// wraps any other [`Disk`] (e.g. a [`FileDisk`]) behind the same
/// handle type, so code written against `SharedDisk` — notably the
/// safety journal — runs unchanged on real files. Fault injection
/// ([`crash`](SharedDisk::crash), [`wipe`](SharedDisk::wipe),
/// [`tear_next_write_after`](SharedDisk::tear_next_write_after)) only
/// applies to the in-memory backend and is a no-op on boxed backends:
/// for a real disk, "crash" means killing the process.
#[derive(Clone, Debug, Default)]
pub struct SharedDisk(Arc<Mutex<SharedBackend>>);

impl SharedDisk {
    /// A handle to a fresh empty in-memory disk.
    pub fn new() -> Self {
        SharedDisk::default()
    }

    /// Wraps an arbitrary disk (a [`FileDisk`], a writer-thread proxy,
    /// ...) behind a shared cloneable handle.
    pub fn from_disk(disk: Box<dyn Disk + Send>) -> Self {
        SharedDisk(Arc::new(Mutex::new(SharedBackend::Boxed(disk))))
    }

    /// Opens (creating if necessary) a directory as a shared
    /// [`FileDisk`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from directory creation.
    pub fn open_dir(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Ok(SharedDisk::from_disk(Box::new(FileDisk::open(dir)?)))
    }

    fn inner(&self) -> std::sync::MutexGuard<'_, SharedBackend> {
        self.0.lock().expect("disk lock")
    }

    /// Simulates a crash in place: all state reverts to the last synced
    /// state (see [`MemDisk::crash`]); armed torn writes are cleared.
    /// No-op on non-memory backends.
    pub fn crash(&self) {
        if let SharedBackend::Mem(disk) = &mut *self.inner() {
            *disk = std::mem::take(disk).crash();
        }
    }

    /// Discards *everything*, durable state included — the "replaced
    /// hardware" amnesia fault, as opposed to [`SharedDisk::crash`]'s
    /// power loss. No-op on non-memory backends.
    pub fn wipe(&self) {
        if let SharedBackend::Mem(disk) = &mut *self.inner() {
            *disk = MemDisk::new();
        }
    }

    /// Arms fault injection: the next write tears after `bytes` bytes.
    /// No-op on non-memory backends.
    pub fn tear_next_write_after(&self, bytes: usize) {
        if let SharedBackend::Mem(disk) = &mut *self.inner() {
            disk.tear_next_write_after(bytes);
        }
    }

    /// Total live bytes (for size assertions). For non-memory backends
    /// this sums the lengths of the listed files.
    pub fn total_bytes(&self) -> usize {
        match &*self.inner() {
            SharedBackend::Mem(disk) => disk.total_bytes(),
            SharedBackend::Boxed(disk) => disk
                .list()
                .unwrap_or_default()
                .iter()
                .map(|name| disk.read_file(name).map(|d| d.len()).unwrap_or(0))
                .sum(),
        }
    }
}

impl Disk for SharedDisk {
    fn write_file(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        self.inner().disk().write_file(name, data)
    }

    fn append(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        self.inner().disk().append(name, data)
    }

    fn read_file(&self, name: &str) -> io::Result<Vec<u8>> {
        self.inner().disk_ref().read_file(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.inner().disk_ref().exists(name)
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        self.inner().disk().remove(name)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        self.inner().disk_ref().list()
    }

    fn sync(&mut self) -> io::Result<()> {
        self.inner().disk().sync()
    }
}

/// A real directory-backed disk.
#[derive(Debug)]
pub struct FileDisk {
    dir: PathBuf,
}

impl FileDisk {
    /// Opens (creating if necessary) a directory as a disk.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from directory creation.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileDisk { dir })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

impl Disk for FileDisk {
    fn write_file(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        std::fs::write(self.path(name), data)
    }

    fn append(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        f.write_all(data)
    }

    fn read_file(&self, name: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.path(name))
    }

    fn exists(&self, name: &str) -> bool {
        self.path(name).exists()
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        match std::fs::remove_file(self.path(name)) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        Ok(names)
    }

    fn sync(&mut self) -> io::Result<()> {
        // Directory-level fsync is best-effort and platform-specific;
        // individual writes above already hit the page cache.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memdisk_basic_ops() {
        let mut d = MemDisk::new();
        d.write_file("a", b"one").unwrap();
        d.append("a", b"two").unwrap();
        assert_eq!(d.read_file("a").unwrap(), b"onetwo");
        assert!(d.exists("a"));
        assert_eq!(d.list().unwrap(), vec!["a".to_string()]);
        d.remove("a").unwrap();
        assert!(!d.exists("a"));
        assert!(d.read_file("a").is_err());
    }

    #[test]
    fn memdisk_crash_reverts_to_synced_state() {
        let mut d = MemDisk::new();
        d.write_file("a", b"durable").unwrap();
        d.sync().unwrap();
        d.write_file("a", b"volatile").unwrap();
        d.write_file("b", b"also volatile").unwrap();
        let d = d.crash();
        assert_eq!(d.read_file("a").unwrap(), b"durable");
        assert!(!d.exists("b"));
    }

    #[test]
    fn memdisk_torn_append_keeps_prefix() {
        let mut d = MemDisk::new();
        d.append("log", b"abcdef").unwrap();
        d.tear_next_write_after(2);
        assert!(d.append("log", b"ghijkl").is_err());
        assert_eq!(d.read_file("log").unwrap(), b"abcdefgh");
        // Fault injection is one-shot.
        d.append("log", b"!").unwrap();
        assert_eq!(d.read_file("log").unwrap(), b"abcdefgh!");
    }

    #[test]
    fn shared_disk_clones_alias_and_crash_in_place() {
        let a = SharedDisk::new();
        let mut b = a.clone();
        b.write_file("j", b"durable").unwrap();
        b.sync().unwrap();
        b.append("j", b" volatile").unwrap();
        assert_eq!(a.read_file("j").unwrap(), b"durable volatile");
        a.crash();
        // Both handles still work and see the reverted state.
        assert_eq!(b.read_file("j").unwrap(), b"durable");
        a.tear_next_write_after(2);
        assert!(b.append("j", b"abcd").is_err());
        assert_eq!(a.read_file("j").unwrap(), b"durableab");
        a.wipe();
        assert!(!b.exists("j"));
    }

    #[test]
    fn shared_disk_over_filedisk() {
        let dir = std::env::temp_dir().join(format!("marlin-shared-file-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = SharedDisk::open_dir(&dir).unwrap();
        let mut b = a.clone();
        b.write_file("j", b"on real files").unwrap();
        b.sync().unwrap();
        assert_eq!(a.read_file("j").unwrap(), b"on real files");
        assert!(a.total_bytes() >= b"on real files".len());
        // Fault injection is memory-only: these must not disturb files.
        a.crash();
        a.tear_next_write_after(1);
        b.append("j", b"!!").unwrap();
        assert_eq!(a.read_file("j").unwrap(), b"on real files!!");
        a.wipe();
        assert!(b.exists("j"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn filedisk_round_trip() {
        let dir = std::env::temp_dir().join(format!("marlin-storage-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut d = FileDisk::open(&dir).unwrap();
        d.write_file("seg-1", b"hello").unwrap();
        d.append("seg-1", b" world").unwrap();
        assert_eq!(d.read_file("seg-1").unwrap(), b"hello world");
        assert!(d.list().unwrap().contains(&"seg-1".to_string()));
        d.remove("seg-1").unwrap();
        d.remove("seg-1").unwrap(); // idempotent
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
