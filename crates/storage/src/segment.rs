//! Immutable sorted segments (the store's "SSTables").

use crate::crc::crc32;
use crate::disk::Disk;
use std::io;

/// An immutable sorted run of key/value entries loaded in memory.
///
/// On-disk format:
/// `count: u32 | entries | crc: u32` where each entry is
/// `klen: u32 | key | tomb: u8 | vlen: u32 | value`.
#[derive(Clone, Debug)]
pub struct Segment {
    /// Sorted `(key, value-or-tombstone)` pairs.
    entries: Vec<(Vec<u8>, Option<Vec<u8>>)>,
}

impl Segment {
    /// Builds a segment from sorted entries.
    ///
    /// # Panics
    ///
    /// Debug-asserts that keys are strictly increasing.
    pub fn from_sorted(entries: Vec<(Vec<u8>, Option<Vec<u8>>)>) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "unsorted segment"
        );
        Segment { entries }
    }

    /// Number of entries (including tombstones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the segment is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Binary-searches for `key`.
    pub fn get(&self, key: &[u8]) -> Option<Option<&[u8]>> {
        self.entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| self.entries[i].1.as_deref())
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = &(Vec<u8>, Option<Vec<u8>>)> {
        self.entries.iter()
    }

    /// Serialized byte size (what a write to disk costs).
    pub fn encoded_len(&self) -> usize {
        8 + self
            .entries
            .iter()
            .map(|(k, v)| 4 + k.len() + 1 + 4 + v.as_ref().map_or(0, Vec::len))
            .sum::<usize>()
    }

    /// Writes the segment to `disk` under `name`.
    ///
    /// # Errors
    ///
    /// Propagates disk errors.
    pub fn write<D: Disk>(&self, disk: &mut D, name: &str) -> io::Result<()> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        buf.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (k, v) in &self.entries {
            buf.extend_from_slice(&(k.len() as u32).to_le_bytes());
            buf.extend_from_slice(k);
            match v {
                Some(v) => {
                    buf.push(0);
                    buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
                    buf.extend_from_slice(v);
                }
                None => {
                    buf.push(1);
                    buf.extend_from_slice(&0u32.to_le_bytes());
                }
            }
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        disk.write_file(name, &buf)
    }

    /// Loads a segment from `disk`.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on truncation or checksum mismatch.
    pub fn load<D: Disk>(disk: &D, name: &str) -> io::Result<Self> {
        let data = disk.read_file(name)?;
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        if data.len() < 8 {
            return Err(bad("segment too short"));
        }
        let (body, crc_bytes) = data.split_at(data.len() - 4);
        let crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(body) != crc {
            return Err(bad("segment checksum mismatch"));
        }
        let count = u32::from_le_bytes(body[..4].try_into().expect("4 bytes")) as usize;
        let mut pos = 4usize;
        let mut entries = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            if pos + 4 > body.len() {
                return Err(bad("truncated key length"));
            }
            let klen = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            pos += 4;
            if pos + klen + 5 > body.len() {
                return Err(bad("truncated entry"));
            }
            let key = body[pos..pos + klen].to_vec();
            pos += klen;
            let tomb = body[pos] == 1;
            pos += 1;
            let vlen = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            pos += 4;
            if pos + vlen > body.len() {
                return Err(bad("truncated value"));
            }
            let value = (!tomb).then(|| body[pos..pos + vlen].to_vec());
            pos += vlen;
            entries.push((key, value));
        }
        Ok(Segment { entries })
    }

    /// Merges segments (newest first) into one, dropping shadowed
    /// entries; with `drop_tombstones` the result omits deletions (safe
    /// only for a full compaction).
    pub fn merge(newest_first: &[&Segment], drop_tombstones: bool) -> Segment {
        let mut merged: std::collections::BTreeMap<Vec<u8>, Option<Vec<u8>>> =
            std::collections::BTreeMap::new();
        // Iterate oldest→newest so newer entries overwrite older ones.
        for seg in newest_first.iter().rev() {
            for (k, v) in seg.iter() {
                merged.insert(k.clone(), v.clone());
            }
        }
        if drop_tombstones {
            merged.retain(|_, v| v.is_some());
        }
        Segment {
            entries: merged.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn seg(pairs: &[(&[u8], Option<&[u8]>)]) -> Segment {
        Segment::from_sorted(
            pairs
                .iter()
                .map(|(k, v)| (k.to_vec(), v.map(|v| v.to_vec())))
                .collect(),
        )
    }

    #[test]
    fn write_load_round_trip() {
        let mut d = MemDisk::new();
        let s = seg(&[(b"a", Some(b"1")), (b"b", None), (b"c", Some(b""))]);
        s.write(&mut d, "seg-1").unwrap();
        let loaded = Segment::load(&d, "seg-1").unwrap();
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded.get(b"a"), Some(Some(&b"1"[..])));
        assert_eq!(loaded.get(b"b"), Some(None));
        assert_eq!(loaded.get(b"c"), Some(Some(&b""[..])));
        assert_eq!(loaded.get(b"zz"), None);
    }

    #[test]
    fn corruption_is_detected() {
        let mut d = MemDisk::new();
        seg(&[(b"k", Some(b"v"))]).write(&mut d, "seg").unwrap();
        let mut raw = d.read_file("seg").unwrap();
        raw[6] ^= 0x55;
        d.write_file("seg", &raw).unwrap();
        assert!(Segment::load(&d, "seg").is_err());
    }

    #[test]
    fn truncation_is_detected() {
        let mut d = MemDisk::new();
        seg(&[(b"k", Some(b"v"))]).write(&mut d, "seg").unwrap();
        let raw = d.read_file("seg").unwrap();
        d.write_file("seg", &raw[..raw.len() - 6]).unwrap();
        assert!(Segment::load(&d, "seg").is_err());
    }

    #[test]
    fn merge_prefers_newest_and_drops_tombstones() {
        let old = seg(&[
            (b"a", Some(b"old")),
            (b"b", Some(b"keep")),
            (b"c", Some(b"dead")),
        ]);
        let new = seg(&[(b"a", Some(b"new")), (b"c", None)]);
        let merged = Segment::merge(&[&new, &old], false);
        assert_eq!(merged.get(b"a"), Some(Some(&b"new"[..])));
        assert_eq!(merged.get(b"b"), Some(Some(&b"keep"[..])));
        assert_eq!(merged.get(b"c"), Some(None));
        let compacted = Segment::merge(&[&new, &old], true);
        assert_eq!(compacted.get(b"c"), None);
        assert_eq!(compacted.len(), 2);
    }

    #[test]
    fn encoded_len_matches_bytes_written() {
        let mut d = MemDisk::new();
        let s = seg(&[(b"alpha", Some(b"beta")), (b"gamma", None)]);
        s.write(&mut d, "seg").unwrap();
        // encoded_len accounts for the count prefix and the CRC suffix.
        assert_eq!(d.read_file("seg").unwrap().len(), s.encoded_len());
    }
}
