//! Threaded replica runtime for the Marlin protocol family.
//!
//! `marlin-simnet` answers "is it correct?" with deterministic
//! single-threaded simulation; this crate answers "how fast is it,
//! really?" by running the *same* sans-io state machines from
//! `marlin-core` — byte-for-byte, no protocol logic duplicated — on
//! real threads, real clocks, and (optionally) real sockets and files.
//!
//! Each replica is a small constellation of threads over bounded
//! channels:
//!
//! - **ingress** pulls length-framed messages off the transport,
//! - **decode workers** verify framing and deserialize in parallel,
//! - **timer** arms view/heartbeat deadlines (latest-wins, like simnet),
//! - **consensus** owns the protocol state machine and steps it,
//! - **journal writer** (per replica, optional) owns the real disk;
//!   vote emission blocks on its ack, preserving write-before-vote.
//!
//! [`transport::Transport`] abstracts the wire: an in-process channel
//! mesh for soak tests and a localhost-TCP mesh whose streaming frame
//! reader tolerates arbitrarily split reads. [`cluster::RuntimeCluster`]
//! wires n replicas together, feeds load, kills and recovers nodes, and
//! checks committed-prefix agreement. Telemetry sinks plug in unchanged,
//! so the commit-latency decomposition works on wall-clock runs exactly
//! as it does on simulated ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod cluster;
pub mod journal;
pub mod node;
pub mod transport;

pub use channel::{metered_sync_channel, LaneMeter, MeteredReceiver, MeteredSender};
pub use cluster::{
    ClusterConfig, ClusterReport, JournalMode, ObservabilityConfig, RuntimeCluster, TransportKind,
};
pub use journal::JournalWriter;
pub use node::{
    spawn_node, Bootstrap, Clock, CommitObserverFn, NodeConfig, NodeHandle, NodeObservability,
    NodeStatus, DEFAULT_QUEUE_DEPTH,
};
pub use transport::{
    frame, ChannelMesh, ChannelTransport, FrameBuffer, TcpMesh, TcpTransport, Transport,
    TransportClosed, TransportEventFn, MAX_FRAME_LEN,
};
