//! Length-framed replica-to-replica transports.
//!
//! A [`Transport`] moves opaque frames — wire-codec bytes produced by
//! `marlin_types::codec::encode_message` — between replicas. Frames are
//! prefixed with a little-endian `u32` length on the wire; the
//! [`FrameBuffer`] reassembles them from an arbitrary byte stream,
//! tolerating short reads, split frames, and coalesced frames, and
//! rejecting frames over [`MAX_FRAME_LEN`] before buffering them.
//!
//! Two implementations:
//!
//! - [`ChannelMesh`]: in-process `std::sync::mpsc` channels. Zero
//!   syscalls, used by deterministic-ish soak tests and as the fastest
//!   baseline.
//! - [`TcpMesh`]: localhost TCP. Each node binds a listener; outbound
//!   connections are dialed lazily on first send (and re-dialed after
//!   errors, which is what lets a recovered replica rejoin), inbound
//!   connections are identified by a 4-byte hello carrying the peer's
//!   replica id and drained by per-connection reader threads.
//!
//! Delivery is best-effort: a frame to a dead or unreachable peer is
//! dropped, exactly like a lossy network. Consensus tolerates loss by
//! construction (timeouts, fetch/catch-up retries).

use marlin_types::ReplicaId;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Hard ceiling on one transport frame; re-exported from the codec so
/// the reader and the decoder enforce the same bound.
pub use marlin_types::codec::MAX_FRAME_LEN;

/// Per-node inbox depth. Senders block when a peer's inbox is full
/// (backpressure), so the bound caps memory, not correctness.
const INBOX_DEPTH: usize = 8192;

/// Observer for connection-lifecycle events (dials, accepts,
/// teardowns), fed to the node's flight recorder. Human-readable by
/// design: these are autopsy breadcrumbs, not metrics.
pub type TransportEventFn = Arc<dyn Fn(&str) + Send + Sync>;

/// A replica's endpoint in a message mesh.
///
/// `send` may be called concurrently from any thread; `recv` is
/// expected to be drained by one ingress thread. Both outlive the
/// consensus state machine they serve, which never sees this trait —
/// the runtime translates frames to events at the boundary.
pub trait Transport: Send + Sync {
    /// This endpoint's replica id.
    fn local_id(&self) -> ReplicaId;

    /// Number of replicas in the mesh.
    fn n(&self) -> usize;

    /// Sends one frame to `to`, best-effort. An `Err` means the frame
    /// was dropped (peer dead/unreachable); callers treat it as network
    /// loss, not a fatal condition.
    fn send(&self, to: ReplicaId, frame: &[u8]) -> io::Result<()>;

    /// Blocks for the next frame from any peer. Returns `Err` once the
    /// transport is closed and drained.
    fn recv(&self) -> Result<Vec<u8>, TransportClosed>;

    /// Unblocks receivers and tears down connections. Idempotent.
    fn close(&self);

    /// Peers this endpoint could deliver to right now. Meshes without
    /// per-peer connection state report full connectivity.
    fn peers_connected(&self) -> usize {
        self.n().saturating_sub(1)
    }

    /// Installs a connection-lifecycle observer. Default: dropped
    /// (meshes without connection state have nothing to report).
    fn set_event_hook(&self, _hook: TransportEventFn) {}
}

/// The transport has shut down; no more frames will arrive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransportClosed;

impl std::fmt::Display for TransportClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transport closed")
    }
}

impl std::error::Error for TransportClosed {}

// ------------------------------------------------------------ framing --

/// Encodes `payload` as one wire frame (`u32` LE length + bytes).
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Streaming frame reassembly over an untrusted byte stream.
///
/// Feed it whatever the socket returns — a partial header, half a
/// frame, three frames glued together — and pull complete payloads out.
/// A length prefix over [`MAX_FRAME_LEN`] poisons the stream (the peer
/// is malicious or corrupt; there is no way to resynchronize a
/// length-framed stream after a bad length).
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: VecDeque<u8>,
    poisoned: bool,
}

/// A frame length prefix exceeded [`MAX_FRAME_LEN`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameTooLarge {
    /// The claimed payload length.
    pub len: usize,
}

impl std::fmt::Display for FrameTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame length {} exceeds {}", self.len, MAX_FRAME_LEN)
    }
}

impl std::error::Error for FrameTooLarge {}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends freshly-read bytes.
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend(chunk);
    }

    /// Bytes currently buffered (for backpressure accounting).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete frame payload, if one is buffered.
    ///
    /// # Errors
    ///
    /// [`FrameTooLarge`] once a length prefix exceeds the ceiling; the
    /// stream is poisoned and every later call returns the same error.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameTooLarge> {
        if self.poisoned {
            return Err(FrameTooLarge { len: 0 });
        }
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let mut len_bytes = [0u8; 4];
        for (i, b) in self.buf.iter().take(4).enumerate() {
            len_bytes[i] = *b;
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_FRAME_LEN {
            self.poisoned = true;
            return Err(FrameTooLarge { len });
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.drain(..4);
        let payload: Vec<u8> = self.buf.drain(..len).collect();
        Ok(Some(payload))
    }
}

// ------------------------------------------------------- channel mesh --

/// Sender slots shared by a channel mesh: slot `i` holds the inbox
/// sender of replica `i` (`None` while that replica is down), so a
/// recovered replica can reinstall a fresh inbox and peers pick it up
/// on their next send.
type ChannelSlots = Arc<Vec<Mutex<Option<SyncSender<Vec<u8>>>>>>;

/// An in-process mesh endpoint (see [`ChannelMesh::new`]).
pub struct ChannelTransport {
    id: ReplicaId,
    slots: ChannelSlots,
    inbox: Mutex<Receiver<Vec<u8>>>,
    closed: AtomicBool,
}

/// Builder/control handle for an in-process channel mesh.
pub struct ChannelMesh {
    slots: ChannelSlots,
}

impl ChannelMesh {
    /// Creates an `n`-replica mesh, returning one endpoint per replica.
    pub fn new(n: usize) -> (ChannelMesh, Vec<ChannelTransport>) {
        let slots: ChannelSlots = Arc::new((0..n).map(|_| Mutex::new(None)).collect::<Vec<_>>());
        let mesh = ChannelMesh {
            slots: Arc::clone(&slots),
        };
        let transports = (0..n).map(|i| mesh.endpoint(ReplicaId(i as u32))).collect();
        (mesh, transports)
    }

    /// (Re)creates the endpoint for `id`, installing a fresh inbox in
    /// the mesh. Used at construction and when a killed replica
    /// rejoins.
    pub fn endpoint(&self, id: ReplicaId) -> ChannelTransport {
        let (tx, rx) = sync_channel(INBOX_DEPTH);
        *self.slots[id.index()].lock().expect("slot lock") = Some(tx);
        ChannelTransport {
            id,
            slots: Arc::clone(&self.slots),
            inbox: Mutex::new(rx),
            closed: AtomicBool::new(false),
        }
    }
}

impl Transport for ChannelTransport {
    fn local_id(&self) -> ReplicaId {
        self.id
    }

    fn n(&self) -> usize {
        self.slots.len()
    }

    fn send(&self, to: ReplicaId, frame: &[u8]) -> io::Result<()> {
        let sender = self.slots[to.index()]
            .lock()
            .expect("slot lock")
            .as_ref()
            .cloned();
        match sender {
            Some(tx) => tx
                .send(frame.to_vec())
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer inbox gone")),
            None => Err(io::Error::new(io::ErrorKind::NotConnected, "peer down")),
        }
    }

    fn recv(&self) -> Result<Vec<u8>, TransportClosed> {
        let frame = self
            .inbox
            .lock()
            .expect("inbox lock")
            .recv()
            .map_err(|_| TransportClosed)?;
        // Zero-length frames are the close sentinel (a real frame
        // always carries at least a message header).
        if self.closed.load(Ordering::Acquire) || frame.is_empty() {
            return Err(TransportClosed);
        }
        Ok(frame)
    }

    fn peers_connected(&self) -> usize {
        self.slots
            .iter()
            .enumerate()
            .filter(|(i, slot)| *i != self.id.index() && slot.lock().expect("slot lock").is_some())
            .count()
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        // Retire our slot so peers stop sending, then unblock our own
        // recv with a sentinel (best-effort: a full inbox already has
        // something for recv to wake on).
        let tx = self.slots[self.id.index()]
            .lock()
            .expect("slot lock")
            .take();
        if let Some(tx) = tx {
            match tx.try_send(Vec::new()) {
                Ok(()) | Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {}
            }
        }
    }
}

// ----------------------------------------------------------- TCP mesh --

/// Socket read granularity. Small enough that multi-frame bursts
/// regularly split across reads, exercising the reassembly path.
const READ_CHUNK: usize = 64 * 1024;

/// First re-dial delay after a failed dial; doubles per consecutive
/// failure up to [`DIAL_BACKOFF_CAP`], resets on a successful dial.
const DIAL_BACKOFF_BASE: Duration = Duration::from_millis(10);

/// Ceiling on the re-dial delay. Low enough that a rejoining peer is
/// picked up within one view timeout, high enough that a dead peer
/// costs at most a few connect attempts per second.
const DIAL_BACKOFF_CAP: Duration = Duration::from_millis(640);

/// One peer's outbound connection slot with reconnect state.
#[derive(Default)]
struct PeerConn {
    /// The live connection, if any.
    stream: Option<TcpStream>,
    /// Consecutive dial failures since the last successful dial.
    failures: u32,
    /// Earliest instant the next dial may be attempted; sends inside
    /// the window fail fast without touching the network.
    retry_at: Option<Instant>,
}

/// Shared state of one TCP endpoint.
struct TcpShared {
    id: ReplicaId,
    addrs: Vec<SocketAddr>,
    /// Outbound connection per peer, dialed lazily with capped
    /// exponential backoff after failures.
    conns: Vec<Mutex<PeerConn>>,
    inbox_tx: SyncSender<Vec<u8>>,
    closed: AtomicBool,
    /// Connection-lifecycle observer (flight recorder breadcrumbs).
    event_hook: Mutex<Option<TransportEventFn>>,
}

impl TcpShared {
    fn dial(&self, to: ReplicaId) -> io::Result<TcpStream> {
        let mut stream = TcpStream::connect(self.addrs[to.index()])?;
        stream.set_nodelay(true).ok();
        // Hello: identify ourselves so the acceptor can attribute the
        // inbound stream.
        stream.write_all(&self.id.0.to_le_bytes())?;
        Ok(stream)
    }

    fn emit(&self, detail: &str) {
        let hook = self.event_hook.lock().expect("hook lock").clone();
        if let Some(hook) = hook {
            hook(detail);
        }
    }
}

/// A localhost-TCP mesh endpoint (see [`TcpMesh::new`]).
pub struct TcpTransport {
    shared: Arc<TcpShared>,
    inbox: Mutex<Receiver<Vec<u8>>>,
    local_addr: SocketAddr,
}

/// Builder/control handle for a loopback TCP mesh: knows every
/// replica's listen address so killed replicas can rebind and rejoin.
pub struct TcpMesh {
    addrs: Vec<SocketAddr>,
}

impl TcpMesh {
    /// Binds `n` loopback listeners and returns one endpoint per
    /// replica.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn new(n: usize) -> io::Result<(TcpMesh, Vec<TcpTransport>)> {
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind(("127.0.0.1", 0)))
            .collect::<io::Result<_>>()?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(TcpListener::local_addr)
            .collect::<io::Result<_>>()?;
        let mesh = TcpMesh {
            addrs: addrs.clone(),
        };
        let transports = listeners
            .into_iter()
            .enumerate()
            .map(|(i, l)| TcpTransport::start(ReplicaId(i as u32), addrs.clone(), l))
            .collect();
        Ok((mesh, transports))
    }

    /// Rebinds `id`'s original address and returns a fresh endpoint for
    /// a rejoining replica. Peers re-dial it lazily on their next send.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from rebinding (the old endpoint must
    /// have been closed first).
    pub fn rejoin(&self, id: ReplicaId) -> io::Result<TcpTransport> {
        let listener = TcpListener::bind(self.addrs[id.index()])?;
        Ok(TcpTransport::start(id, self.addrs.clone(), listener))
    }
}

impl TcpTransport {
    fn start(id: ReplicaId, addrs: Vec<SocketAddr>, listener: TcpListener) -> TcpTransport {
        let (inbox_tx, inbox_rx) = sync_channel(INBOX_DEPTH);
        let local_addr = listener.local_addr().expect("listener addr");
        let shared = Arc::new(TcpShared {
            id,
            conns: (0..addrs.len())
                .map(|_| Mutex::new(PeerConn::default()))
                .collect(),
            addrs,
            inbox_tx,
            closed: AtomicBool::new(false),
            event_hook: Mutex::new(None),
        });
        let accept_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("accept-{}", id.0))
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        TcpTransport {
            shared,
            inbox: Mutex::new(inbox_rx),
            local_addr,
        }
    }

    /// The address this endpoint listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<TcpShared>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => return,
        };
        if shared.closed.load(Ordering::Acquire) {
            return;
        }
        stream.set_nodelay(true).ok();
        let reader_shared = Arc::clone(&shared);
        let name = format!("read-{}", shared.id.0);
        std::thread::Builder::new()
            .name(name)
            .spawn(move || reader_loop(stream, reader_shared))
            .expect("spawn reader thread");
    }
}

/// Drains one inbound connection: hello, then a frame stream fed
/// through [`FrameBuffer`]. Exits on EOF, socket error, poisoned
/// framing, or transport close.
fn reader_loop(mut stream: TcpStream, shared: Arc<TcpShared>) {
    let mut hello = [0u8; 4];
    if stream.read_exact(&mut hello).is_err() {
        return;
    }
    let peer = u32::from_le_bytes(hello);
    shared.emit(&format!("accepted inbound stream from replica {peer}"));
    // Report why the drain ends, whatever the exit path.
    struct ExitNote<'a>(&'a TcpShared, u32);
    impl Drop for ExitNote<'_> {
        fn drop(&mut self) {
            self.0
                .emit(&format!("inbound stream from replica {} ended", self.1));
        }
    }
    let _exit = ExitNote(&shared, peer);
    let mut frames = FrameBuffer::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => n,
        };
        frames.push(&chunk[..n]);
        loop {
            match frames.next_frame() {
                Ok(Some(payload)) => {
                    if shared.closed.load(Ordering::Acquire)
                        || shared.inbox_tx.send(payload).is_err()
                    {
                        return;
                    }
                }
                Ok(None) => break,
                // Oversized length prefix: drop the connection; the
                // peer can re-dial with a well-formed stream.
                Err(_) => return,
            }
        }
    }
}

impl Transport for TcpTransport {
    fn local_id(&self) -> ReplicaId {
        self.shared.id
    }

    fn n(&self) -> usize {
        self.shared.addrs.len()
    }

    fn send(&self, to: ReplicaId, frame_payload: &[u8]) -> io::Result<()> {
        if self.shared.closed.load(Ordering::Acquire) {
            return Err(io::Error::new(io::ErrorKind::NotConnected, "closed"));
        }
        let wire = frame(frame_payload);
        let mut slot = self.shared.conns[to.index()].lock().expect("conn lock");
        if let Some(conn) = slot.stream.as_mut() {
            if conn.write_all(&wire).is_ok() {
                return Ok(());
            }
            // Stale connection (peer died and maybe came back): fall
            // through to a fresh dial.
            slot.stream = None;
            self.shared
                .emit(&format!("outbound to replica {} went stale", to.0));
        }
        // Capped exponential backoff between dial attempts: a dead peer
        // costs one connect per window, not one per send.
        if slot.retry_at.is_some_and(|at| Instant::now() < at) {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "dial backoff"));
        }
        match self.shared.dial(to) {
            Ok(mut conn) => {
                slot.failures = 0;
                slot.retry_at = None;
                conn.write_all(&wire)?;
                slot.stream = Some(conn);
                self.shared.emit(&format!("dialed replica {}", to.0));
                Ok(())
            }
            Err(e) => {
                // Note only the first failure of a streak: a dead peer
                // would otherwise flood the flight ring at the backoff
                // cadence.
                if slot.failures == 0 {
                    self.shared
                        .emit(&format!("dial to replica {} failed: {e}", to.0));
                }
                slot.failures = slot.failures.saturating_add(1);
                let delay = DIAL_BACKOFF_BASE
                    .saturating_mul(1 << (slot.failures - 1).min(6))
                    .min(DIAL_BACKOFF_CAP);
                slot.retry_at = Some(Instant::now() + delay);
                Err(e)
            }
        }
    }

    fn recv(&self) -> Result<Vec<u8>, TransportClosed> {
        let frame = self
            .inbox
            .lock()
            .expect("inbox lock")
            .recv()
            .map_err(|_| TransportClosed)?;
        if self.shared.closed.load(Ordering::Acquire) || frame.is_empty() {
            return Err(TransportClosed);
        }
        Ok(frame)
    }

    fn peers_connected(&self) -> usize {
        self.shared
            .conns
            .iter()
            .filter(|slot| slot.lock().expect("conn lock").stream.is_some())
            .count()
    }

    fn set_event_hook(&self, hook: TransportEventFn) {
        *self.shared.event_hook.lock().expect("hook lock") = Some(hook);
    }

    fn close(&self) {
        if self.shared.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        self.shared.emit("transport closed");
        // Unblock the acceptor with a throwaway connection to ourselves
        // and the receiver with a sentinel frame; drop outbound conns.
        let _ = TcpStream::connect(self.local_addr);
        match self.shared.inbox_tx.try_send(Vec::new()) {
            Ok(()) | Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {}
        }
        for slot in self.shared.conns.iter() {
            if let Some(conn) = slot.lock().expect("conn lock").stream.take() {
                let _ = conn.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_buffer_reassembles_adversarial_chunking() {
        let payloads: Vec<Vec<u8>> = vec![
            b"first".to_vec(),
            Vec::new(),
            vec![0xAB; 3000],
            b"x".to_vec(),
        ];
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&frame(p));
        }
        // Feed the stream in pathological chunk sizes: 1 byte at a
        // time, then 3, then 7, ... covering splits inside the length
        // prefix, inside payloads, and across frame boundaries.
        for step in [1usize, 3, 7, 16, 1024, usize::MAX] {
            let mut fb = FrameBuffer::new();
            let mut got = Vec::new();
            let mut off = 0;
            while off < stream.len() {
                let end = off.saturating_add(step).min(stream.len());
                fb.push(&stream[off..end]);
                off = end;
                while let Some(p) = fb.next_frame().expect("well-formed stream") {
                    got.push(p);
                }
            }
            assert_eq!(got, payloads, "chunk step {step}");
            assert_eq!(fb.buffered(), 0);
        }
    }

    #[test]
    fn frame_buffer_rejects_oversized_length_and_poisons() {
        let mut fb = FrameBuffer::new();
        fb.push(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        fb.push(b"junk");
        assert!(fb.next_frame().is_err());
        // Poisoned: even a now-valid prefix cannot resynchronize.
        fb.push(&frame(b"valid"));
        assert!(fb.next_frame().is_err());
    }

    #[test]
    fn channel_mesh_round_trip_and_close() {
        let (_mesh, transports) = ChannelMesh::new(3);
        transports[0].send(ReplicaId(1), b"hello").unwrap();
        transports[2].send(ReplicaId(1), b"world").unwrap();
        let a = transports[1].recv().unwrap();
        let b = transports[1].recv().unwrap();
        assert_eq!(
            {
                let mut v = vec![a, b];
                v.sort();
                v
            },
            vec![b"hello".to_vec(), b"world".to_vec()]
        );
        transports[1].close();
        assert_eq!(transports[1].recv(), Err(TransportClosed));
        // Peers now see the slot as down.
        assert!(transports[0].send(ReplicaId(1), b"late").is_err());
    }

    #[test]
    fn tcp_mesh_round_trip() {
        let (_mesh, transports) = TcpMesh::new(2).unwrap();
        transports[0].send(ReplicaId(1), b"over tcp").unwrap();
        assert_eq!(transports[1].recv().unwrap(), b"over tcp");
        transports[1].send(ReplicaId(0), b"and back").unwrap();
        assert_eq!(transports[0].recv().unwrap(), b"and back");
        for t in &transports {
            t.close();
        }
        assert_eq!(transports[0].recv(), Err(TransportClosed));
    }

    #[test]
    fn tcp_send_backoff_suppresses_redials_and_recovers() {
        let (mesh, transports) = TcpMesh::new(2).unwrap();
        transports[1].close();
        std::thread::sleep(std::time::Duration::from_millis(20));
        // First send after the peer dies performs a real (failing)
        // dial and arms the backoff window.
        assert!(transports[0].send(ReplicaId(1), b"x").is_err());
        // Sends inside the window are rejected without dialing. The
        // burst can straddle one window boundary, so allow a couple of
        // real dial attempts.
        let mut would_block = 0;
        for _ in 0..10 {
            if let Err(e) = transports[0].send(ReplicaId(1), b"x") {
                if e.kind() == io::ErrorKind::WouldBlock {
                    would_block += 1;
                }
            }
        }
        assert!(
            would_block >= 5,
            "backoff never suppressed redials ({would_block}/10 fast-failed)"
        );
        // Once the peer rebinds, the next dial after the window lands.
        let revived = mesh.rejoin(ReplicaId(1)).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while transports[0].send(ReplicaId(1), b"back").is_err() {
            assert!(
                std::time::Instant::now() < deadline,
                "send never recovered after rejoin"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(revived.recv().unwrap(), b"back");
        transports[0].close();
        revived.close();
    }

    #[test]
    fn tcp_mesh_rejoin_rebinds_same_address() {
        let (mesh, transports) = TcpMesh::new(2).unwrap();
        transports[1].close();
        // Give the acceptor a moment to release the listener.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let revived = mesh.rejoin(ReplicaId(1)).unwrap();
        // The old outbound conn on node 0 is stale; send() re-dials.
        transports[0].send(ReplicaId(1), b"welcome back").unwrap();
        assert_eq!(revived.recv().unwrap(), b"welcome back");
        transports[0].close();
        revived.close();
    }
}
