//! One replica as a set of threads around an unchanged sans-io core.
//!
//! Thread topology per replica (all channels bounded):
//!
//! ```text
//!   transport.recv ──► ingress ──raw frames──► decode workers (×k)
//!                                                    │ Event::Message
//!   timer thread ──Timeout/Heartbeat──► event channel ┤
//!   NodeHandle::submit ──NewTransactions──────────────┘
//!                                                    ▼
//!                                             consensus driver
//!                      owns Box<dyn Protocol>, dispatches actions:
//!    Send/Broadcast → transport   SetTimer/SetHeartbeat → timer thread
//!    Commit → commit log + observer          Note → telemetry sink
//!
//!   journal writes leave the consensus thread synchronously through
//!   the SafetyJournal → SharedDisk(ProxyDisk) → journal-writer thread
//!   round trip, so vote emission still blocks on the journal ack.
//! ```
//!
//! The consensus state machine is exactly the one simnet drives: the
//! runtime only supplies real IO, real clocks, and real threads around
//! `Protocol::step`. Broadcast actions have already been applied
//! locally by `step`, so the egress path never loops a frame back to
//! its sender; the timer thread keeps simnet's latest-wins semantics by
//! holding a single slot per timer kind.

use crate::transport::Transport;
use marlin_core::chained::{ChainedHotStuff, ChainedMarlin};
use marlin_core::harness::build_protocol;
use marlin_core::marlin::Marlin;
use marlin_core::{
    Action, Config, CryptoCtx, Event, Protocol, ProtocolKind, SafetyJournal, StepOutput,
};
use marlin_storage::{SharedDisk, SnapshotStore};
use marlin_telemetry::TelemetrySink;
use marlin_types::codec::{decode_message, encode_message};
use marlin_types::{Block, BlockId, MsgClass, ReplicaId, Transaction, View};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Wall-clock time source shared by every thread of a run, so note
/// timestamps from different replicas land on one comparable axis.
#[derive(Clone, Copy, Debug)]
pub struct Clock {
    epoch: Instant,
}

impl Clock {
    /// A clock starting now.
    pub fn start() -> Self {
        Clock {
            epoch: Instant::now(),
        }
    }

    /// Monotonic nanoseconds since the clock started.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// How the consensus core comes up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bootstrap {
    /// Fresh state (journal created empty if journaling).
    Fresh,
    /// Rebuild from the journal on the given disk (`FromDisk`
    /// recovery): replay, then announce `Event::Recovered` so the core
    /// re-attests its view and catches up.
    Recovered,
}

/// Everything needed to launch one replica.
pub struct NodeConfig {
    /// Consensus configuration, already bound to this replica's id.
    pub config: Config,
    /// Which protocol to run.
    pub kind: ProtocolKind,
    /// Fresh start or journal recovery.
    pub bootstrap: Bootstrap,
    /// Disk to journal on (`None` = run without a safety journal; only
    /// Marlin and the chained variants support journaling).
    pub journal_disk: Option<SharedDisk>,
    /// Ingress decode worker threads.
    pub decode_workers: usize,
    /// Encode proposals with the shadow-block wire optimisation.
    pub shadow_blocks: bool,
    /// Call `maintain_crypto` (and report cache telemetry) every this
    /// many consensus events. The crypto cache self-bounds regardless;
    /// this only controls telemetry cadence.
    pub maintain_every: u64,
}

impl NodeConfig {
    /// Defaults around `config`/`kind`: fresh start, no journal, two
    /// decode workers, shadow blocks on.
    pub fn new(config: Config, kind: ProtocolKind) -> Self {
        NodeConfig {
            config,
            kind,
            bootstrap: Bootstrap::Fresh,
            journal_disk: None,
            decode_workers: 2,
            shadow_blocks: true,
            maintain_every: 4096,
        }
    }
}

/// Live counters exported by a running node, readable from any thread.
#[derive(Debug, Default)]
pub struct NodeStatus {
    view: AtomicU64,
    committed_blocks: AtomicU64,
    committed_txs: AtomicU64,
    decode_errors: AtomicU64,
    send_drops: AtomicU64,
    commit_log: Mutex<Vec<(u64, BlockId)>>,
}

impl NodeStatus {
    /// The replica's current view.
    pub fn view(&self) -> View {
        View(self.view.load(Ordering::Acquire))
    }

    /// Blocks committed so far.
    pub fn committed_blocks(&self) -> u64 {
        self.committed_blocks.load(Ordering::Acquire)
    }

    /// Transactions committed so far.
    pub fn committed_txs(&self) -> u64 {
        self.committed_txs.load(Ordering::Acquire)
    }

    /// Frames that failed to decode (malformed/oversized).
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors.load(Ordering::Acquire)
    }

    /// Frames dropped on send (peer down/unreachable).
    pub fn send_drops(&self) -> u64 {
        self.send_drops.load(Ordering::Acquire)
    }

    /// Snapshot of the committed chain as `(height, block id)` pairs,
    /// in commit order — the safety artifact cross-replica checks
    /// compare.
    pub fn commit_log(&self) -> Vec<(u64, BlockId)> {
        self.commit_log.lock().expect("commit log lock").clone()
    }
}

/// Inputs multiplexed into the consensus thread.
// Event's inline size (the Message payload is Arc-backed) is moved
// once into the bounded queue and once out; boxing would trade that
// memcpy for an allocation per message on the hot path.
#[allow(clippy::large_enum_variant)]
enum Input {
    Event(Event),
    Stop,
}

enum TimerCmd {
    ArmView { view: View, delay: Duration },
    ArmHeartbeat { delay: Duration },
    Stop,
}

/// A per-commit callback (reference-replica statistics, tests).
pub type CommitObserverFn = Box<dyn FnMut(ReplicaId, u64, &[Block]) + Send>;

/// A running replica: threads + channels around one consensus core.
pub struct NodeHandle {
    id: ReplicaId,
    status: Arc<NodeStatus>,
    event_tx: SyncSender<Input>,
    timer_tx: Sender<TimerCmd>,
    transport: Arc<dyn Transport>,
    threads: Vec<JoinHandle<()>>,
}

impl NodeHandle {
    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Live counters (cheap to clone the `Arc` and keep after stop).
    pub fn status(&self) -> Arc<NodeStatus> {
        Arc::clone(&self.status)
    }

    /// Submits transactions to this replica's mempool.
    pub fn submit(&self, txs: Vec<Transaction>) {
        let _ = self
            .event_tx
            .send(Input::Event(Event::NewTransactions(txs)));
    }

    /// Stops the node: closes the transport, halts timers, drains and
    /// joins every thread. Returns the status handle for post-mortem
    /// inspection. Abrupt by design — also used to "kill" a replica
    /// mid-run; durability must come from the journal, not the
    /// shutdown.
    pub fn stop(self) -> Arc<NodeStatus> {
        let NodeHandle {
            status,
            event_tx,
            timer_tx,
            transport,
            threads,
            ..
        } = self;
        transport.close();
        let _ = timer_tx.send(TimerCmd::Stop);
        let _ = event_tx.send(Input::Stop);
        // Drop our event sender so the consensus thread's final drain
        // terminates once the decode workers exit.
        drop(event_tx);
        for t in threads {
            let _ = t.join();
        }
        status
    }
}

/// Builds the consensus core a node drives — the same constructors the
/// simnet scenarios use, so runtime and simulation run byte-identical
/// state machines.
fn build_replica(
    kind: ProtocolKind,
    cfg: Config,
    journal_disk: Option<SharedDisk>,
    bootstrap: Bootstrap,
) -> Box<dyn Protocol> {
    // Block sync persists its snapshot anchors next to the journal on
    // the same disk.
    let snapshot_disk = journal_disk
        .clone()
        .filter(|_| cfg.sync_snapshot_interval > 0);
    let journal = journal_disk.map(|disk| SafetyJournal::open(disk).expect("journal opens"));
    match (kind, journal) {
        (ProtocolKind::Marlin, Some(j)) => {
            let core = match bootstrap {
                Bootstrap::Fresh => Marlin::with_journal(cfg, j),
                Bootstrap::Recovered => Marlin::recover(cfg, j),
            };
            match snapshot_disk {
                Some(disk) => Box::new(
                    core.with_snapshots(SnapshotStore::open(disk).expect("snapshot store opens")),
                ),
                None => Box::new(core),
            }
        }
        (ProtocolKind::ChainedMarlin, Some(j)) => match bootstrap {
            Bootstrap::Fresh => Box::new(ChainedMarlin::with_journal(cfg, j)),
            Bootstrap::Recovered => Box::new(ChainedMarlin::recover(cfg, j)),
        },
        (ProtocolKind::ChainedHotStuff, Some(j)) => match bootstrap {
            Bootstrap::Fresh => Box::new(ChainedHotStuff::with_journal(cfg, j)),
            Bootstrap::Recovered => Box::new(ChainedHotStuff::recover(cfg, j)),
        },
        // Protocols without journal support run stateless-restart.
        (kind, _) => build_protocol(kind, cfg),
    }
}

/// Spawns a replica's threads.
///
/// `transport` carries frames; `clock` stamps telemetry; `sink` (if
/// any) receives notes/charges/traffic exactly as simnet would emit
/// them, but with wall-clock timestamps; `observer` (if any) sees every
/// commit at this replica.
pub fn spawn_node(
    node_cfg: NodeConfig,
    transport: Arc<dyn Transport>,
    clock: Clock,
    sink: Option<Box<dyn TelemetrySink + Send>>,
    observer: Option<CommitObserverFn>,
) -> NodeHandle {
    let id = node_cfg.config.id;
    let status = Arc::new(NodeStatus::default());

    let (event_tx, event_rx) = sync_channel::<Input>(8192);
    let (timer_tx, timer_rx) = channel::<TimerCmd>();
    let (raw_tx, raw_rx) = sync_channel::<Vec<u8>>(8192);
    let raw_rx = Arc::new(Mutex::new(raw_rx));

    let mut threads = Vec::new();

    // Ingress: socket/channel frames → raw frame queue.
    {
        let transport = Arc::clone(&transport);
        threads.push(
            std::thread::Builder::new()
                .name(format!("ingress-{}", id.0))
                .spawn(move || {
                    while let Ok(frame) = transport.recv() {
                        if raw_tx.send(frame).is_err() {
                            return;
                        }
                    }
                })
                .expect("spawn ingress"),
        );
    }

    // Decode workers: raw frames → events. Decoding (which includes
    // signature-bearing structures) runs off the consensus thread.
    for w in 0..node_cfg.decode_workers.max(1) {
        let raw_rx = Arc::clone(&raw_rx);
        let event_tx = event_tx.clone();
        let status = Arc::clone(&status);
        threads.push(
            std::thread::Builder::new()
                .name(format!("decode-{}-{w}", id.0))
                .spawn(move || loop {
                    let frame = {
                        let guard = raw_rx.lock().expect("raw queue lock");
                        guard.recv()
                    };
                    let Ok(frame) = frame else { return };
                    match decode_message(&frame) {
                        Ok(msg) => {
                            if event_tx.send(Input::Event(Event::Message(msg))).is_err() {
                                return;
                            }
                        }
                        Err(_) => {
                            status.decode_errors.fetch_add(1, Ordering::AcqRel);
                        }
                    }
                })
                .expect("spawn decode worker"),
        );
    }

    // Timer thread: latest-wins view timer + heartbeat slots.
    {
        let event_tx = event_tx.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("timer-{}", id.0))
                .spawn(move || timer_loop(timer_rx, event_tx))
                .expect("spawn timer"),
        );
    }

    // Consensus driver.
    {
        let status = Arc::clone(&status);
        let transport = Arc::clone(&transport);
        let timer_tx = timer_tx.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("consensus-{}", id.0))
                .spawn(move || {
                    consensus_loop(
                        node_cfg, event_rx, timer_tx, transport, clock, sink, observer, status,
                    )
                })
                .expect("spawn consensus"),
        );
    }

    NodeHandle {
        id,
        status,
        event_tx,
        timer_tx,
        transport,
        threads,
    }
}

fn timer_loop(rx: Receiver<TimerCmd>, event_tx: SyncSender<Input>) {
    let mut view_slot: Option<(Instant, View)> = None;
    let mut hb_slot: Option<Instant> = None;
    loop {
        let now = Instant::now();
        // Fire whatever is due. Arming a timer replaced the slot, so a
        // stale early timer can never fire: exactly simnet's
        // latest-seq-wins rule, expressed as slot overwrite.
        if let Some((deadline, view)) = view_slot {
            if deadline <= now {
                view_slot = None;
                if event_tx
                    .send(Input::Event(Event::Timeout { view }))
                    .is_err()
                {
                    return;
                }
                continue;
            }
        }
        if let Some(deadline) = hb_slot {
            if deadline <= now {
                hb_slot = None;
                if event_tx.send(Input::Event(Event::Heartbeat)).is_err() {
                    return;
                }
                continue;
            }
        }
        let next = match (view_slot.map(|(d, _)| d), hb_slot) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };
        let cmd = match next {
            Some(deadline) => match rx.recv_timeout(deadline.saturating_duration_since(now)) {
                Ok(cmd) => Some(cmd),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return,
            },
            None => match rx.recv() {
                Ok(cmd) => Some(cmd),
                Err(_) => return,
            },
        };
        match cmd {
            Some(TimerCmd::ArmView { view, delay }) => {
                view_slot = Some((Instant::now() + delay, view));
            }
            Some(TimerCmd::ArmHeartbeat { delay }) => {
                hb_slot = Some(Instant::now() + delay);
            }
            Some(TimerCmd::Stop) | None => return,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn consensus_loop(
    node_cfg: NodeConfig,
    event_rx: Receiver<Input>,
    timer_tx: Sender<TimerCmd>,
    transport: Arc<dyn Transport>,
    clock: Clock,
    mut sink: Option<Box<dyn TelemetrySink + Send>>,
    mut observer: Option<CommitObserverFn>,
    status: Arc<NodeStatus>,
) {
    let NodeConfig {
        config,
        kind,
        bootstrap,
        journal_disk,
        shadow_blocks,
        maintain_every,
        ..
    } = node_cfg;
    // The protocol is built *on* the consensus thread and never leaves
    // it; only frames and events cross thread boundaries.
    let mut protocol = build_replica(kind, config, journal_disk, bootstrap);
    let mut ctx = DriverCtx {
        timer_tx,
        transport,
        clock,
        sink: sink.as_deref_mut(),
        observer: observer.as_mut(),
        status: &status,
        shadow_blocks,
    };

    let out = protocol.step(Event::Start);
    ctx.dispatch(protocol.as_ref(), out);
    if bootstrap == Bootstrap::Recovered {
        let out = protocol.step(Event::Recovered);
        ctx.dispatch(protocol.as_ref(), out);
    }

    let mut events: u64 = 0;
    let mut stopping = false;
    while let Ok(input) = event_rx.recv() {
        match input {
            Input::Stop => stopping = true,
            Input::Event(_) if stopping => {}
            Input::Event(event) => {
                let out = protocol.step(event);
                ctx.dispatch(protocol.as_ref(), out);
                events += 1;
                if maintain_every > 0 && events.is_multiple_of(maintain_every) {
                    let stats = protocol.maintain_crypto(CryptoCtx::VERIFIED_CACHE_TARGET);
                    if let Some(sink) = ctx.sink.as_deref_mut() {
                        sink.crypto_cache(
                            ctx.clock.now_ns(),
                            protocol.id(),
                            stats.seed_hits,
                            stats.seed_misses,
                            stats.verified_qcs as u64,
                        );
                    }
                }
            }
        }
        if stopping {
            // Keep draining so blocked producers can exit; the loop
            // ends when every sender is gone.
            continue;
        }
    }
}

/// Borrowed dispatch context: applies a `StepOutput` to the real world.
struct DriverCtx<'a> {
    timer_tx: Sender<TimerCmd>,
    transport: Arc<dyn Transport>,
    clock: Clock,
    sink: Option<&'a mut (dyn TelemetrySink + Send + 'static)>,
    observer: Option<&'a mut CommitObserverFn>,
    status: &'a Arc<NodeStatus>,
    shadow_blocks: bool,
}

impl DriverCtx<'_> {
    fn dispatch(&mut self, protocol: &dyn Protocol, out: StepOutput) {
        let id = protocol.id();
        let at_ns = self.clock.now_ns();
        if let Some(sink) = self.sink.as_deref_mut() {
            let consensus_ns = out.cpu_ns.saturating_sub(out.crypto_ns + out.journal_ns);
            sink.step_charged(at_ns, id, out.crypto_ns, out.journal_ns, consensus_ns);
        }
        for action in out.actions {
            match action {
                Action::Send { to, message } => {
                    debug_assert_ne!(to, id, "self-sends are resolved by step()");
                    let frame = encode_message(&message, self.shadow_blocks);
                    if let Some(sink) = self.sink.as_deref_mut() {
                        sink.message_sent(
                            at_ns,
                            id,
                            MsgClass::of(&message),
                            frame.len() as u64,
                            message.authenticator_count() as u64,
                        );
                    }
                    if self.transport.send(to, &frame).is_err() {
                        self.status.send_drops.fetch_add(1, Ordering::AcqRel);
                    }
                }
                Action::Broadcast { message } => {
                    // `step` already applied the broadcast locally:
                    // encode once, fan out to everyone else.
                    let frame = encode_message(&message, self.shadow_blocks);
                    let class = MsgClass::of(&message);
                    let auth = message.authenticator_count() as u64;
                    for i in 0..self.transport.n() {
                        let to = ReplicaId(i as u32);
                        if to == id {
                            continue;
                        }
                        if let Some(sink) = self.sink.as_deref_mut() {
                            sink.message_sent(at_ns, id, class, frame.len() as u64, auth);
                        }
                        if self.transport.send(to, &frame).is_err() {
                            self.status.send_drops.fetch_add(1, Ordering::AcqRel);
                        }
                    }
                }
                Action::Commit { blocks } => {
                    self.status
                        .committed_blocks
                        .fetch_add(blocks.len() as u64, Ordering::AcqRel);
                    let txs: u64 = blocks.iter().map(|b| b.payload().len() as u64).sum();
                    self.status.committed_txs.fetch_add(txs, Ordering::AcqRel);
                    {
                        let mut log = self.status.commit_log.lock().expect("commit log lock");
                        for b in &blocks {
                            log.push((b.height().0, b.id()));
                        }
                    }
                    if let Some(obs) = self.observer.as_mut() {
                        obs(id, at_ns, &blocks);
                    }
                }
                Action::SetTimer { view, delay_ns } => {
                    let _ = self.timer_tx.send(TimerCmd::ArmView {
                        view,
                        delay: Duration::from_nanos(delay_ns),
                    });
                }
                Action::SetHeartbeat { delay_ns } => {
                    let _ = self.timer_tx.send(TimerCmd::ArmHeartbeat {
                        delay: Duration::from_nanos(delay_ns),
                    });
                }
                Action::Note(note) => {
                    if let Some(sink) = self.sink.as_deref_mut() {
                        sink.note(at_ns, id, &note);
                    }
                }
            }
        }
        self.status
            .view
            .store(protocol.current_view().0, Ordering::Release);
    }
}
