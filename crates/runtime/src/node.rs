//! One replica as a set of threads around an unchanged sans-io core.
//!
//! Thread topology per replica (all channels bounded):
//!
//! ```text
//!   transport.recv ──► ingress ──raw frames──► decode workers (×k)
//!                                                    │ Event::Message
//!   timer thread ──Timeout/Heartbeat──► event channel ┤
//!   NodeHandle::submit ──NewTransactions──────────────┘
//!                                                    ▼
//!                                             consensus driver
//!                      owns Box<dyn Protocol>, dispatches actions:
//!    Send/Broadcast → transport   SetTimer/SetHeartbeat → timer thread
//!    Commit → commit log + observer          Note → telemetry sink
//!
//!   journal writes leave the consensus thread synchronously through
//!   the SafetyJournal → SharedDisk(ProxyDisk) → journal-writer thread
//!   round trip, so vote emission still blocks on the journal ack.
//! ```
//!
//! The consensus state machine is exactly the one simnet drives: the
//! runtime only supplies real IO, real clocks, and real threads around
//! `Protocol::step`. Broadcast actions have already been applied
//! locally by `step`, so the egress path never loops a frame back to
//! its sender; the timer thread keeps simnet's latest-wins semantics by
//! holding a single slot per timer kind.

use crate::channel::{metered_sync_channel, LaneMeter, MeteredReceiver, MeteredSender};
use crate::transport::Transport;
use marlin_core::chained::{ChainedHotStuff, ChainedMarlin};
use marlin_core::harness::build_protocol;
use marlin_core::marlin::Marlin;
use marlin_core::{
    Action, Config, CryptoCtx, Event, Protocol, ProtocolKind, SafetyJournal, StepOutput,
};
use marlin_storage::{SharedDisk, SnapshotStore};
use marlin_telemetry::{
    Counter, FlightKind, FlightRecorder, FlightSink, Gauge, Health, HealthFn, Registry,
    RegistryRecorder, ScrapeServer, TelemetrySink,
};
use marlin_types::codec::{decode_message, encode_message};
use marlin_types::{Block, BlockId, MsgClass, ReplicaId, Transaction, View};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default depth of the raw-frame and event queues.
pub const DEFAULT_QUEUE_DEPTH: usize = 8192;

/// Cadence at which the sampler thread copies lane depths into their
/// exported gauges.
const DEPTH_SAMPLE_EVERY: Duration = Duration::from_millis(20);

/// Wall-clock time source shared by every thread of a run, so note
/// timestamps from different replicas land on one comparable axis.
#[derive(Clone, Copy, Debug)]
pub struct Clock {
    epoch: Instant,
}

impl Clock {
    /// A clock starting now.
    pub fn start() -> Self {
        Clock {
            epoch: Instant::now(),
        }
    }

    /// Monotonic nanoseconds since the clock started.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// How the consensus core comes up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bootstrap {
    /// Fresh state (journal created empty if journaling).
    Fresh,
    /// Rebuild from the journal on the given disk (`FromDisk`
    /// recovery): replay, then announce `Event::Recovered` so the core
    /// re-attests its view and catches up.
    Recovered,
}

/// Everything needed to launch one replica.
pub struct NodeConfig {
    /// Consensus configuration, already bound to this replica's id.
    pub config: Config,
    /// Which protocol to run.
    pub kind: ProtocolKind,
    /// Fresh start or journal recovery.
    pub bootstrap: Bootstrap,
    /// Disk to journal on (`None` = run without a safety journal; only
    /// Marlin and the chained variants support journaling).
    pub journal_disk: Option<SharedDisk>,
    /// Ingress decode worker threads.
    pub decode_workers: usize,
    /// Encode proposals with the shadow-block wire optimisation.
    pub shadow_blocks: bool,
    /// Call `maintain_crypto` (and report cache telemetry) every this
    /// many consensus events. The crypto cache self-bounds regardless;
    /// this only controls telemetry cadence.
    pub maintain_every: u64,
    /// Depth of the decode → consensus event queue.
    pub event_queue_depth: usize,
    /// Depth of the ingress → decode raw-frame queue.
    pub raw_queue_depth: usize,
    /// Live-observability plane (registry, flight recorder, scrape
    /// endpoint); `None` runs bare.
    pub observability: Option<NodeObservability>,
}

impl NodeConfig {
    /// Defaults around `config`/`kind`: fresh start, no journal, two
    /// decode workers, shadow blocks on, no observability plane.
    pub fn new(config: Config, kind: ProtocolKind) -> Self {
        NodeConfig {
            config,
            kind,
            bootstrap: Bootstrap::Fresh,
            journal_disk: None,
            decode_workers: 2,
            shadow_blocks: true,
            maintain_every: 4096,
            event_queue_depth: DEFAULT_QUEUE_DEPTH,
            raw_queue_depth: DEFAULT_QUEUE_DEPTH,
            observability: None,
        }
    }
}

/// The per-node observability plane handed to [`spawn_node`].
///
/// With this attached, the node folds its telemetry into `registry`
/// (consensus notes via [`RegistryRecorder`], lane backpressure via
/// [`LaneMeter`], promoted error counters, view/commit gauges), mirrors
/// notes into `flight` for post-mortem dumps, and — with `scrape` on —
/// serves `/metrics`, `/metrics.json`, `/health`, and `/debug/flight`
/// over a loopback HTTP listener that never touches the consensus
/// thread.
#[derive(Clone, Debug)]
pub struct NodeObservability {
    /// The node's metrics registry.
    pub registry: Registry,
    /// Flight ring for crash autopsies (`None` disables recording and
    /// `/debug/flight`).
    pub flight: Option<FlightRecorder>,
    /// Serve the HTTP scrape endpoint.
    pub scrape: bool,
    /// Directory the flight ring is dumped to on [`NodeHandle::stop`]
    /// (and by the panic hook, if installed).
    pub flight_dir: Option<PathBuf>,
    /// Meter of the consensus → journal-writer lane, when the journal
    /// runs on a writer thread; its depth is the `/health` journal lag.
    pub journal_meter: Option<LaneMeter>,
}

impl NodeObservability {
    /// An observability plane on `registry`: scrape on, no flight
    /// recorder, no journal meter.
    pub fn new(registry: Registry) -> Self {
        NodeObservability {
            registry,
            flight: None,
            scrape: true,
            flight_dir: None,
            journal_meter: None,
        }
    }
}

/// Live counters exported by a running node, readable from any thread.
#[derive(Debug, Default)]
pub struct NodeStatus {
    view: AtomicU64,
    committed_blocks: AtomicU64,
    committed_txs: AtomicU64,
    decode_errors: AtomicU64,
    send_drops: AtomicU64,
    commit_log: Mutex<Vec<(u64, BlockId)>>,
}

impl NodeStatus {
    /// The replica's current view.
    pub fn view(&self) -> View {
        View(self.view.load(Ordering::Acquire))
    }

    /// Blocks committed so far.
    pub fn committed_blocks(&self) -> u64 {
        self.committed_blocks.load(Ordering::Acquire)
    }

    /// Transactions committed so far.
    pub fn committed_txs(&self) -> u64 {
        self.committed_txs.load(Ordering::Acquire)
    }

    /// Frames that failed to decode (malformed/oversized).
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors.load(Ordering::Acquire)
    }

    /// Frames dropped on send (peer down/unreachable).
    pub fn send_drops(&self) -> u64 {
        self.send_drops.load(Ordering::Acquire)
    }

    /// Snapshot of the committed chain as `(height, block id)` pairs,
    /// in commit order — the safety artifact cross-replica checks
    /// compare.
    pub fn commit_log(&self) -> Vec<(u64, BlockId)> {
        self.commit_log.lock().expect("commit log lock").clone()
    }
}

/// Inputs multiplexed into the consensus thread.
// Event's inline size (the Message payload is Arc-backed) is moved
// once into the bounded queue and once out; boxing would trade that
// memcpy for an allocation per message on the hot path.
#[allow(clippy::large_enum_variant)]
enum Input {
    Event(Event),
    Stop,
}

enum TimerCmd {
    ArmView { view: View, delay: Duration },
    ArmHeartbeat { delay: Duration },
    Stop,
}

/// A per-commit callback (reference-replica statistics, tests).
pub type CommitObserverFn = Box<dyn FnMut(ReplicaId, u64, &[Block]) + Send>;

/// A running replica: threads + channels around one consensus core.
pub struct NodeHandle {
    id: ReplicaId,
    status: Arc<NodeStatus>,
    event_tx: MeteredSender<Input>,
    timer_tx: Sender<TimerCmd>,
    timer_meter: LaneMeter,
    transport: Arc<dyn Transport>,
    threads: Vec<JoinHandle<()>>,
    sampler_stop: Arc<AtomicBool>,
    scrape: Option<ScrapeServer>,
    flight: Option<FlightRecorder>,
    flight_dir: Option<PathBuf>,
}

impl NodeHandle {
    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Live counters (cheap to clone the `Arc` and keep after stop).
    pub fn status(&self) -> Arc<NodeStatus> {
        Arc::clone(&self.status)
    }

    /// The node's scrape endpoint, if observability started one.
    pub fn scrape_addr(&self) -> Option<SocketAddr> {
        self.scrape.as_ref().map(ScrapeServer::addr)
    }

    /// The node's flight recorder, if observability attached one.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// Submits transactions to this replica's mempool.
    pub fn submit(&self, txs: Vec<Transaction>) {
        let _ = self
            .event_tx
            .send(Input::Event(Event::NewTransactions(txs)));
    }

    /// Stops the node: closes the transport, halts timers, drains and
    /// joins every thread. Returns the status handle for post-mortem
    /// inspection. Abrupt by design — also used to "kill" a replica
    /// mid-run; durability must come from the journal, not the
    /// shutdown. If a flight recorder (and dump directory) is attached,
    /// the ring — ending in a `FATAL node stopped` marker — is written
    /// out before the handle is released, so a "killed" node always
    /// leaves an autopsy.
    pub fn stop(self) -> Arc<NodeStatus> {
        let NodeHandle {
            id,
            status,
            event_tx,
            timer_tx,
            timer_meter,
            transport,
            threads,
            sampler_stop,
            mut scrape,
            flight,
            flight_dir,
        } = self;
        transport.close();
        if timer_tx.send(TimerCmd::Stop).is_ok() {
            timer_meter.note_enqueue();
        }
        let _ = event_tx.send(Input::Stop);
        // Drop our event sender so the consensus thread's final drain
        // terminates once the decode workers exit.
        drop(event_tx);
        sampler_stop.store(true, Ordering::Release);
        for t in threads {
            let _ = t.join();
        }
        if let Some(server) = scrape.as_mut() {
            server.stop();
        }
        if let Some(flight) = flight {
            flight.record_now(id, FlightKind::Fatal, "node stopped");
            if let Some(dir) = flight_dir {
                let _ = flight.dump_to_dir(&dir);
            }
        }
        status
    }
}

/// Builds the consensus core a node drives — the same constructors the
/// simnet scenarios use, so runtime and simulation run byte-identical
/// state machines.
fn build_replica(
    kind: ProtocolKind,
    cfg: Config,
    journal_disk: Option<SharedDisk>,
    bootstrap: Bootstrap,
) -> Box<dyn Protocol> {
    // Block sync persists its snapshot anchors next to the journal on
    // the same disk.
    let snapshot_disk = journal_disk
        .clone()
        .filter(|_| cfg.sync_snapshot_interval > 0);
    let journal = journal_disk.map(|disk| SafetyJournal::open(disk).expect("journal opens"));
    match (kind, journal) {
        (ProtocolKind::Marlin, Some(j)) => {
            let core = match bootstrap {
                Bootstrap::Fresh => Marlin::with_journal(cfg, j),
                Bootstrap::Recovered => Marlin::recover(cfg, j),
            };
            match snapshot_disk {
                Some(disk) => Box::new(
                    core.with_snapshots(SnapshotStore::open(disk).expect("snapshot store opens")),
                ),
                None => Box::new(core),
            }
        }
        (ProtocolKind::ChainedMarlin, Some(j)) => match bootstrap {
            Bootstrap::Fresh => Box::new(ChainedMarlin::with_journal(cfg, j)),
            Bootstrap::Recovered => Box::new(ChainedMarlin::recover(cfg, j)),
        },
        (ProtocolKind::ChainedHotStuff, Some(j)) => match bootstrap {
            Bootstrap::Fresh => Box::new(ChainedHotStuff::with_journal(cfg, j)),
            Bootstrap::Recovered => Box::new(ChainedHotStuff::recover(cfg, j)),
        },
        // Protocols without journal support run stateless-restart.
        (kind, _) => build_protocol(kind, cfg),
    }
}

/// Spawns a replica's threads.
///
/// `transport` carries frames; `clock` stamps telemetry; `sink` (if
/// any) receives notes/charges/traffic exactly as simnet would emit
/// them, but with wall-clock timestamps; `observer` (if any) sees every
/// commit at this replica.
pub fn spawn_node(
    mut node_cfg: NodeConfig,
    transport: Arc<dyn Transport>,
    clock: Clock,
    sink: Option<Box<dyn TelemetrySink + Send>>,
    observer: Option<CommitObserverFn>,
) -> NodeHandle {
    let id = node_cfg.config.id;
    let status = Arc::new(NodeStatus::default());
    let obs = node_cfg.observability.take();

    // One meter per inter-thread lane. Without a registry the meters
    // still count (detached handles), so the send paths stay uniform.
    let (ingress_meter, consensus_meter, timer_meter) = match &obs {
        Some(o) => (
            LaneMeter::new(&o.registry, "ingress"),
            LaneMeter::new(&o.registry, "consensus"),
            LaneMeter::new(&o.registry, "timer"),
        ),
        None => (
            LaneMeter::detached(),
            LaneMeter::detached(),
            LaneMeter::detached(),
        ),
    };

    let (event_tx, event_rx) =
        metered_sync_channel::<Input>(node_cfg.event_queue_depth.max(1), consensus_meter.clone());
    let (timer_tx, timer_rx) = channel::<TimerCmd>();
    let (raw_tx, raw_rx) =
        metered_sync_channel::<Vec<u8>>(node_cfg.raw_queue_depth.max(1), ingress_meter.clone());
    let raw_rx = Arc::new(Mutex::new(raw_rx));

    // Transport connection lifecycle lands in the flight ring.
    if let Some(flight) = obs.as_ref().and_then(|o| o.flight.clone()) {
        transport.set_event_hook(Arc::new(move |detail: &str| {
            flight.record_now(id, FlightKind::Transport, detail);
        }));
    }

    // Status counters promoted into the registry (detached and inert
    // without one), plus progress gauges for `/metrics`.
    let decode_errors_ctr = obs
        .as_ref()
        .map(|o| o.registry.counter("runtime_decode_errors_total"))
        .unwrap_or_default();
    let meters = DriverMeters {
        send_drops: obs
            .as_ref()
            .map(|o| o.registry.counter("runtime_send_drops_total"))
            .unwrap_or_default(),
        view: obs
            .as_ref()
            .map(|o| o.registry.gauge("consensus_current_view"))
            .unwrap_or_default(),
        commit_height: obs
            .as_ref()
            .map(|o| o.registry.gauge("consensus_commit_height"))
            .unwrap_or_default(),
        timer: timer_meter.clone(),
        journal: obs.as_ref().and_then(|o| o.journal_meter.clone()),
    };

    // Compose the telemetry fan-out: registry fold + flight mirror +
    // whatever the caller provided. Bare nodes keep the caller's sink
    // unwrapped.
    let sink: Option<Box<dyn TelemetrySink + Send>> = match &obs {
        Some(o) => Some(Box::new((
            RegistryRecorder::new(&o.registry),
            (o.flight.clone().map(FlightSink::new), sink),
        ))),
        None => sink,
    };

    let mut threads = Vec::new();

    // Ingress: socket/channel frames → raw frame queue.
    {
        let transport = Arc::clone(&transport);
        threads.push(
            std::thread::Builder::new()
                .name(format!("ingress-{}", id.0))
                .spawn(move || {
                    while let Ok(frame) = transport.recv() {
                        if raw_tx.send(frame).is_err() {
                            return;
                        }
                    }
                })
                .expect("spawn ingress"),
        );
    }

    // Decode workers: raw frames → events. Decoding (which includes
    // signature-bearing structures) runs off the consensus thread.
    for w in 0..node_cfg.decode_workers.max(1) {
        let raw_rx = Arc::clone(&raw_rx);
        let event_tx = event_tx.clone();
        let status = Arc::clone(&status);
        let decode_errors_ctr = decode_errors_ctr.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("decode-{}-{w}", id.0))
                .spawn(move || loop {
                    let frame = {
                        let guard = raw_rx.lock().expect("raw queue lock");
                        guard.recv()
                    };
                    let Ok(frame) = frame else { return };
                    match decode_message(&frame) {
                        Ok(msg) => {
                            if event_tx.send(Input::Event(Event::Message(msg))).is_err() {
                                return;
                            }
                        }
                        Err(_) => {
                            status.decode_errors.fetch_add(1, Ordering::AcqRel);
                            decode_errors_ctr.inc();
                        }
                    }
                })
                .expect("spawn decode worker"),
        );
    }

    // Timer thread: latest-wins view timer + heartbeat slots.
    {
        let event_tx = event_tx.clone();
        let timer_meter = timer_meter.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("timer-{}", id.0))
                .spawn(move || timer_loop(timer_rx, event_tx, timer_meter))
                .expect("spawn timer"),
        );
    }

    // Consensus driver.
    {
        let status = Arc::clone(&status);
        let transport = Arc::clone(&transport);
        let timer_tx = timer_tx.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("consensus-{}", id.0))
                .spawn(move || {
                    consensus_loop(
                        node_cfg, event_rx, timer_tx, transport, clock, sink, observer, status,
                        meters,
                    )
                })
                .expect("spawn consensus"),
        );
    }

    // Depth sampler: copies lane depths into their gauges on a fixed
    // tick, so scrapes see queue state without touching the hot paths.
    let sampler_stop = Arc::new(AtomicBool::new(false));
    if obs.is_some() {
        let stop = Arc::clone(&sampler_stop);
        let lanes: Vec<LaneMeter> = [
            Some(ingress_meter),
            Some(consensus_meter),
            Some(timer_meter.clone()),
            obs.as_ref().and_then(|o| o.journal_meter.clone()),
        ]
        .into_iter()
        .flatten()
        .collect();
        threads.push(
            std::thread::Builder::new()
                .name(format!("sample-{}", id.0))
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        for lane in &lanes {
                            lane.sample_depth();
                        }
                        std::thread::sleep(DEPTH_SAMPLE_EVERY);
                    }
                })
                .expect("spawn depth sampler"),
        );
    }

    // Scrape endpoint: serves registry snapshots and the health
    // document; assembly reads only atomics and short-lock copies, so
    // a hammering scraper never blocks the consensus driver.
    let scrape = obs.as_ref().filter(|o| o.scrape).map(|o| {
        let health = health_fn(
            id,
            Arc::clone(&status),
            Arc::clone(&transport),
            clock,
            &o.registry,
            o.journal_meter.clone(),
        );
        ScrapeServer::start(o.registry.clone(), health, o.flight.clone())
            .expect("bind scrape server")
    });

    NodeHandle {
        id,
        status,
        event_tx,
        timer_tx,
        timer_meter,
        transport,
        threads,
        sampler_stop,
        scrape,
        flight: obs.as_ref().and_then(|o| o.flight.clone()),
        flight_dir: obs.and_then(|o| o.flight_dir),
    }
}

/// Builds the `/health` assembler: a snapshot of the node's atomics,
/// sync counters, journal lag, and transport connectivity.
fn health_fn(
    id: ReplicaId,
    status: Arc<NodeStatus>,
    transport: Arc<dyn Transport>,
    clock: Clock,
    registry: &Registry,
    journal_meter: Option<LaneMeter>,
) -> HealthFn {
    // Pre-register the sync counters so reads are handle loads; a node
    // that never syncs legitimately reports them as zero.
    let sync_started = registry.counter("consensus_sync_started_total");
    let sync_completed = registry.counter("consensus_sync_completed_total");
    Arc::new(move || Health {
        replica: id.0,
        view: status.view().0,
        committed_blocks: status.committed_blocks(),
        committed_txs: status.committed_txs(),
        sync_state: if sync_started.get() > sync_completed.get() {
            "syncing"
        } else {
            "idle"
        },
        journal_lag: journal_meter.as_ref().map_or(0, LaneMeter::depth),
        peers_connected: transport.peers_connected() as u64,
        peers_total: transport.n().saturating_sub(1) as u64,
        decode_errors: status.decode_errors(),
        send_drops: status.send_drops(),
        uptime_ns: clock.now_ns(),
    })
}

fn timer_loop(rx: Receiver<TimerCmd>, event_tx: MeteredSender<Input>, meter: LaneMeter) {
    let mut view_slot: Option<(Instant, View)> = None;
    let mut hb_slot: Option<Instant> = None;
    loop {
        let now = Instant::now();
        // Fire whatever is due. Arming a timer replaced the slot, so a
        // stale early timer can never fire: exactly simnet's
        // latest-seq-wins rule, expressed as slot overwrite.
        if let Some((deadline, view)) = view_slot {
            if deadline <= now {
                view_slot = None;
                if event_tx
                    .send(Input::Event(Event::Timeout { view }))
                    .is_err()
                {
                    return;
                }
                continue;
            }
        }
        if let Some(deadline) = hb_slot {
            if deadline <= now {
                hb_slot = None;
                if event_tx.send(Input::Event(Event::Heartbeat)).is_err() {
                    return;
                }
                continue;
            }
        }
        let next = match (view_slot.map(|(d, _)| d), hb_slot) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };
        let cmd = match next {
            Some(deadline) => match rx.recv_timeout(deadline.saturating_duration_since(now)) {
                Ok(cmd) => Some(cmd),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return,
            },
            None => match rx.recv() {
                Ok(cmd) => Some(cmd),
                Err(_) => return,
            },
        };
        meter.note_dequeue();
        match cmd {
            Some(TimerCmd::ArmView { view, delay }) => {
                view_slot = Some((Instant::now() + delay, view));
            }
            Some(TimerCmd::ArmHeartbeat { delay }) => {
                hb_slot = Some(Instant::now() + delay);
            }
            Some(TimerCmd::Stop) | None => return,
        }
    }
}

/// Registry handles the consensus driver updates inline (all
/// `Arc`-backed atomics; detached and inert when the node runs without
/// a registry).
struct DriverMeters {
    send_drops: Counter,
    view: Gauge,
    commit_height: Gauge,
    timer: LaneMeter,
    /// The consensus → journal lane meter, when the journal runs behind
    /// a metered writer thread. Its cumulative stall time is read
    /// before/after each protocol step to attribute the step's
    /// durability-barrier wait to the journal lane.
    journal: Option<LaneMeter>,
}

impl DriverMeters {
    fn journal_wait_ns(&self) -> u64 {
        self.journal.as_ref().map_or(0, LaneMeter::stall_ns_total)
    }
}

/// Measured wall-clock cost of one protocol step, split between the
/// journal ack wait and everything that ran on the consensus thread.
#[derive(Clone, Copy)]
struct StepTiming {
    wall_ns: u64,
    journal_ns: u64,
}

/// Runs one step under the wall clock: total step time comes from a
/// monotonic stopwatch, and the journal share is the growth of the
/// journal lane's measured ack wait across the step (the proxy disk is
/// only ever called from inside `step` on this thread).
fn timed_step(
    protocol: &mut Box<dyn Protocol>,
    meters: &DriverMeters,
    event: Event,
) -> (StepOutput, StepTiming) {
    let journal_before = meters.journal_wait_ns();
    let started = Instant::now();
    let out = protocol.step(event);
    let wall_ns = started.elapsed().as_nanos() as u64;
    let journal_ns = meters
        .journal_wait_ns()
        .saturating_sub(journal_before)
        .min(wall_ns);
    (
        out,
        StepTiming {
            wall_ns,
            journal_ns,
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn consensus_loop(
    node_cfg: NodeConfig,
    event_rx: MeteredReceiver<Input>,
    timer_tx: Sender<TimerCmd>,
    transport: Arc<dyn Transport>,
    clock: Clock,
    mut sink: Option<Box<dyn TelemetrySink + Send>>,
    mut observer: Option<CommitObserverFn>,
    status: Arc<NodeStatus>,
    meters: DriverMeters,
) {
    let NodeConfig {
        config,
        kind,
        bootstrap,
        journal_disk,
        shadow_blocks,
        maintain_every,
        ..
    } = node_cfg;
    // The protocol is built *on* the consensus thread and never leaves
    // it; only frames and events cross thread boundaries.
    let mut protocol = build_replica(kind, config, journal_disk, bootstrap);
    let mut ctx = DriverCtx {
        timer_tx,
        transport,
        clock,
        sink: sink.as_deref_mut(),
        observer: observer.as_mut(),
        status: &status,
        shadow_blocks,
        meters: &meters,
    };

    let (out, timing) = timed_step(&mut protocol, &meters, Event::Start);
    ctx.dispatch(protocol.as_ref(), out, timing);
    if bootstrap == Bootstrap::Recovered {
        let (out, timing) = timed_step(&mut protocol, &meters, Event::Recovered);
        ctx.dispatch(protocol.as_ref(), out, timing);
    }

    let mut events: u64 = 0;
    let mut stopping = false;
    while let Ok(input) = event_rx.recv() {
        match input {
            Input::Stop => stopping = true,
            Input::Event(_) if stopping => {}
            Input::Event(event) => {
                let (out, timing) = timed_step(&mut protocol, &meters, event);
                ctx.dispatch(protocol.as_ref(), out, timing);
                events += 1;
                if maintain_every > 0 && events.is_multiple_of(maintain_every) {
                    let stats = protocol.maintain_crypto(CryptoCtx::VERIFIED_CACHE_TARGET);
                    if let Some(sink) = ctx.sink.as_deref_mut() {
                        sink.crypto_cache(
                            ctx.clock.now_ns(),
                            protocol.id(),
                            stats.seed_hits,
                            stats.seed_misses,
                            stats.verified_qcs as u64,
                        );
                    }
                }
            }
        }
        if stopping {
            // Keep draining so blocked producers can exit; the loop
            // ends when every sender is gone.
            continue;
        }
    }
}

/// Borrowed dispatch context: applies a `StepOutput` to the real world.
struct DriverCtx<'a> {
    timer_tx: Sender<TimerCmd>,
    transport: Arc<dyn Transport>,
    clock: Clock,
    sink: Option<&'a mut (dyn TelemetrySink + Send + 'static)>,
    observer: Option<&'a mut CommitObserverFn>,
    status: &'a Arc<NodeStatus>,
    shadow_blocks: bool,
    meters: &'a DriverMeters,
}

impl DriverCtx<'_> {
    fn dispatch(&mut self, protocol: &dyn Protocol, out: StepOutput, timing: StepTiming) {
        let id = protocol.id();
        let at_ns = self.clock.now_ns();
        if let Some(sink) = self.sink.as_deref_mut() {
            // Measured lane charges, unlike simnet's modeled ones: the
            // journal share is the durability-barrier wait the proxy
            // disk clocked inside this step, and the rest of the step's
            // wall time ran on the consensus thread (protocol logic
            // plus its inline crypto). The step's own modeled crypto
            // charge rides along for runs with a nonzero cost model.
            let consensus_ns = timing.wall_ns.saturating_sub(timing.journal_ns);
            sink.step_charged(at_ns, id, out.crypto_ns, timing.journal_ns, consensus_ns);
        }
        for action in out.actions {
            match action {
                Action::Send { to, message } => {
                    debug_assert_ne!(to, id, "self-sends are resolved by step()");
                    let frame = encode_message(&message, self.shadow_blocks);
                    if let Some(sink) = self.sink.as_deref_mut() {
                        sink.message_sent(
                            at_ns,
                            id,
                            MsgClass::of(&message),
                            frame.len() as u64,
                            message.authenticator_count() as u64,
                        );
                    }
                    if self.transport.send(to, &frame).is_err() {
                        self.status.send_drops.fetch_add(1, Ordering::AcqRel);
                        self.meters.send_drops.inc();
                    }
                }
                Action::Broadcast { message } => {
                    // `step` already applied the broadcast locally:
                    // encode once, fan out to everyone else.
                    let frame = encode_message(&message, self.shadow_blocks);
                    let class = MsgClass::of(&message);
                    let auth = message.authenticator_count() as u64;
                    for i in 0..self.transport.n() {
                        let to = ReplicaId(i as u32);
                        if to == id {
                            continue;
                        }
                        if let Some(sink) = self.sink.as_deref_mut() {
                            sink.message_sent(at_ns, id, class, frame.len() as u64, auth);
                        }
                        if self.transport.send(to, &frame).is_err() {
                            self.status.send_drops.fetch_add(1, Ordering::AcqRel);
                            self.meters.send_drops.inc();
                        }
                    }
                }
                Action::Commit { blocks } => {
                    self.status
                        .committed_blocks
                        .fetch_add(blocks.len() as u64, Ordering::AcqRel);
                    let txs: u64 = blocks.iter().map(|b| b.payload().len() as u64).sum();
                    self.status.committed_txs.fetch_add(txs, Ordering::AcqRel);
                    {
                        let mut log = self.status.commit_log.lock().expect("commit log lock");
                        for b in &blocks {
                            log.push((b.height().0, b.id()));
                        }
                    }
                    if let Some(b) = blocks.last() {
                        self.meters.commit_height.set(b.height().0 as i64);
                    }
                    if let Some(obs) = self.observer.as_mut() {
                        obs(id, at_ns, &blocks);
                    }
                }
                Action::SetTimer { view, delay_ns } => {
                    let sent = self.timer_tx.send(TimerCmd::ArmView {
                        view,
                        delay: Duration::from_nanos(delay_ns),
                    });
                    if sent.is_ok() {
                        self.meters.timer.note_enqueue();
                    }
                }
                Action::SetHeartbeat { delay_ns } => {
                    let sent = self.timer_tx.send(TimerCmd::ArmHeartbeat {
                        delay: Duration::from_nanos(delay_ns),
                    });
                    if sent.is_ok() {
                        self.meters.timer.note_enqueue();
                    }
                }
                Action::Note(note) => {
                    if let Some(sink) = self.sink.as_deref_mut() {
                        sink.note(at_ns, id, &note);
                    }
                }
            }
        }
        let view = protocol.current_view().0;
        self.status.view.store(view, Ordering::Release);
        self.meters.view.set(view as i64);
    }
}
