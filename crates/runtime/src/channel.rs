//! Metered bounded channels: backpressure accounting for the runtime's
//! inter-thread lanes.
//!
//! Every queue between two replica threads (ingress → decode, decode →
//! consensus, consensus → timer, consensus → journal) is a potential
//! backpressure point, and `std::sync::mpsc` exposes no queue
//! introspection at all. A [`LaneMeter`] reconstructs the observable
//! state from the outside: enqueue/dequeue counters (their difference
//! is the live depth), a blocked-send stall counter, and a
//! stall-duration histogram. [`MeteredSender`] implements the
//! *try-then-block* protocol: a `try_send` that hits a full queue falls
//! back to the blocking send and charges the entire wait to the lane's
//! stall metrics — so a saturated consensus thread shows up as
//! `runtime_channel_stalls_total{lane="consensus"}` rather than as an
//! unattributable throughput dip.
//!
//! Depth gauges are *sampled* (by the node's telemetry tick), not
//! updated inline, so the hot path stays two relaxed atomic increments
//! per message.

use marlin_telemetry::{Counter, Gauge, HistogramHandle, Registry};
use std::sync::mpsc::{sync_channel, Receiver, RecvError, SendError, SyncSender, TrySendError};
use std::time::Instant;

/// Shared instrumentation for one channel lane.
///
/// Clones share state (the handles are `Arc`-backed), so the sender,
/// receiver, sampler, and health endpoint can all hold one.
#[derive(Clone, Debug)]
pub struct LaneMeter {
    enqueued: Counter,
    dequeued: Counter,
    depth: Gauge,
    stalls: Counter,
    stall_ns: HistogramHandle,
}

impl LaneMeter {
    /// A meter registered in `registry` under the `lane` label:
    /// `runtime_channel_{enqueued,dequeued,stalls}_total{lane=..}`,
    /// `runtime_channel_depth{lane=..}` (gauge, sampled), and
    /// `runtime_channel_stall_ns{lane=..}` (histogram).
    pub fn new(registry: &Registry, lane: &str) -> Self {
        let labels = &[("lane", lane)];
        LaneMeter {
            enqueued: registry.counter_with("runtime_channel_enqueued_total", labels),
            dequeued: registry.counter_with("runtime_channel_dequeued_total", labels),
            depth: registry.gauge_with("runtime_channel_depth", labels),
            stalls: registry.counter_with("runtime_channel_stalls_total", labels),
            stall_ns: registry.histogram_with("runtime_channel_stall_ns", labels),
        }
    }

    /// A meter backed by free-standing handles — counts, but exports
    /// nowhere. Used when a node runs without a registry so the send
    /// paths need no `Option` branching.
    pub fn detached() -> Self {
        LaneMeter {
            enqueued: Counter::default(),
            dequeued: Counter::default(),
            depth: Gauge::default(),
            stalls: Counter::default(),
            stall_ns: HistogramHandle::default(),
        }
    }

    /// Notes one accepted enqueue.
    pub fn note_enqueue(&self) {
        self.enqueued.inc();
    }

    /// Notes one dequeue.
    pub fn note_dequeue(&self) {
        self.dequeued.inc();
    }

    /// Notes one blocked send that waited `ns` nanoseconds.
    pub fn note_stall(&self, ns: u64) {
        self.stalls.inc();
        self.stall_ns.record(ns);
    }

    /// Messages enqueued but not yet dequeued right now.
    ///
    /// The two counters are read independently, so under concurrent
    /// traffic the value may be momentarily off by the in-flight
    /// handful — fine for a gauge, meaningless as an invariant.
    pub fn depth(&self) -> u64 {
        self.enqueued.get().saturating_sub(self.dequeued.get())
    }

    /// Blocked sends so far.
    pub fn stalls(&self) -> u64 {
        self.stalls.get()
    }

    /// Cumulative nanoseconds spent in blocked sends so far. On the
    /// journal lane this is the total durability-barrier wait; deltas
    /// around a protocol step attribute that wait to the step.
    pub fn stall_ns_total(&self) -> u64 {
        self.stall_ns.snapshot().sum_ns() as u64
    }

    /// Copies the current depth into the exported gauge (called by the
    /// node's sampler thread on its telemetry tick).
    pub fn sample_depth(&self) {
        self.depth.set(self.depth() as i64);
    }
}

/// A bounded channel whose endpoints feed `meter`.
pub fn metered_sync_channel<T>(
    bound: usize,
    meter: LaneMeter,
) -> (MeteredSender<T>, MeteredReceiver<T>) {
    let (tx, rx) = sync_channel(bound);
    (
        MeteredSender {
            tx,
            meter: meter.clone(),
        },
        MeteredReceiver { rx, meter },
    )
}

/// Sending half of a metered lane (see [`metered_sync_channel`]).
pub struct MeteredSender<T> {
    tx: SyncSender<T>,
    meter: LaneMeter,
}

// Manual impl: `#[derive(Clone)]` would demand `T: Clone` although only
// the sender handle is cloned.
impl<T> Clone for MeteredSender<T> {
    fn clone(&self) -> Self {
        MeteredSender {
            tx: self.tx.clone(),
            meter: self.meter.clone(),
        }
    }
}

impl<T> MeteredSender<T> {
    /// Sends `value`, blocking if the queue is full; a blocked send is
    /// timed and charged to the lane's stall metrics.
    ///
    /// # Errors
    ///
    /// [`SendError`] once the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match self.tx.try_send(value) {
            Ok(()) => {
                self.meter.note_enqueue();
                Ok(())
            }
            Err(TrySendError::Disconnected(v)) => Err(SendError(v)),
            Err(TrySendError::Full(v)) => {
                let blocked_at = Instant::now();
                let result = self.tx.send(v);
                self.meter
                    .note_stall(blocked_at.elapsed().as_nanos() as u64);
                if result.is_ok() {
                    self.meter.note_enqueue();
                }
                result
            }
        }
    }

    /// The lane's meter.
    pub fn meter(&self) -> &LaneMeter {
        &self.meter
    }
}

/// Receiving half of a metered lane (see [`metered_sync_channel`]).
pub struct MeteredReceiver<T> {
    rx: Receiver<T>,
    meter: LaneMeter,
}

impl<T> MeteredReceiver<T> {
    /// Blocks for the next message.
    ///
    /// # Errors
    ///
    /// [`RecvError`] once every sender is gone and the queue drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        let value = self.rx.recv()?;
        self.meter.note_dequeue();
        Ok(value)
    }

    /// The lane's meter.
    pub fn meter(&self) -> &LaneMeter {
        &self.meter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fast_path_counts_without_stalling() {
        let meter = LaneMeter::detached();
        let (tx, rx) = metered_sync_channel::<u32>(4, meter.clone());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(meter.depth(), 2);
        assert_eq!(meter.stalls(), 0);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(meter.depth(), 0);
    }

    #[test]
    fn full_queue_send_is_counted_and_timed_as_a_stall() {
        let reg = Registry::new();
        let meter = LaneMeter::new(&reg, "consensus");
        let (tx, rx) = metered_sync_channel::<u32>(1, meter.clone());
        tx.send(1).unwrap();
        // The queue is full: the next send blocks until the drainer
        // makes room ~30 ms later.
        let drainer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        });
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(drainer.join().unwrap(), vec![1, 2]);
        assert_eq!(meter.stalls(), 1);
        assert_eq!(
            reg.counter_with("runtime_channel_stalls_total", &[("lane", "consensus")])
                .get(),
            1
        );
        let stall = reg
            .histogram_with("runtime_channel_stall_ns", &[("lane", "consensus")])
            .snapshot();
        assert_eq!(stall.count(), 1);
        assert!(
            stall.mean_ns() >= 10_000_000,
            "blocked ~30ms but recorded {}ns",
            stall.mean_ns()
        );
    }

    #[test]
    fn send_to_dropped_receiver_errors_on_both_paths() {
        let (tx, rx) = metered_sync_channel::<u32>(1, LaneMeter::detached());
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn sampled_depth_lands_in_the_gauge() {
        let reg = Registry::new();
        let meter = LaneMeter::new(&reg, "ingress");
        let (tx, _rx) = metered_sync_channel::<u32>(8, meter.clone());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        tx.send(3).unwrap();
        meter.sample_depth();
        assert_eq!(
            reg.gauge_with("runtime_channel_depth", &[("lane", "ingress")])
                .get(),
            3
        );
    }
}
