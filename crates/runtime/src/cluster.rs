//! A whole-cluster driver over real threads: launch n replicas on a
//! mesh, feed load, watch commits, kill and recover nodes, and check
//! that every replica commits the same chain.
//!
//! This is the wall-clock twin of `marlin_simnet::SimNet`: same state
//! machines, same telemetry vocabulary, but actual concurrency — so it
//! measures, where simnet models.

use crate::channel::LaneMeter;
use crate::journal::JournalWriter;
use crate::node::{
    spawn_node, Bootstrap, Clock, CommitObserverFn, NodeConfig, NodeHandle, NodeObservability,
    NodeStatus, DEFAULT_QUEUE_DEPTH,
};
use crate::transport::{ChannelMesh, TcpMesh, Transport};
use bytes::Bytes;
use marlin_core::{Config, ProtocolKind};
use marlin_storage::{FileDisk, SharedDisk};
use marlin_telemetry::{
    install_panic_dump, register_panic_dump, FlightKind, FlightRecorder, Registry, SharedSink,
    TelemetrySink, Trace, DEFAULT_FLIGHT_CAPACITY,
};
use marlin_types::{BlockId, ReplicaId, Transaction, View};
use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which mesh carries frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process bounded channels.
    Channel,
    /// Localhost TCP with streaming frame reassembly.
    Tcp,
}

/// Where safety journals live.
#[derive(Clone, Debug)]
pub enum JournalMode {
    /// No journaling (protocols without journal support, throughput
    /// ceilings).
    None,
    /// Shared in-memory disks (fast, survives kill/recover within the
    /// process).
    Memory,
    /// Real files under `<dir>/node-<i>/`, written by a dedicated
    /// journal-writer thread per replica.
    Files(PathBuf),
}

/// Cluster-wide launch parameters.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Protocol to run on every replica.
    pub kind: ProtocolKind,
    /// Replica count.
    pub n: usize,
    /// Fault tolerance.
    pub f: usize,
    /// Mesh implementation.
    pub transport: TransportKind,
    /// Journal placement.
    pub journal: JournalMode,
    /// Max transactions per block.
    pub batch_size: usize,
    /// Base view timeout (real time).
    pub base_timeout: Duration,
    /// Decode worker threads per replica.
    pub decode_workers: usize,
    /// Shadow-block wire optimisation.
    pub shadow_blocks: bool,
    /// Snapshot anchor cadence in blocks; `0` disables block sync,
    /// snapshots, and committed-prefix pruning (Marlin only).
    pub sync_snapshot_interval: u64,
    /// Committed-height gap that triggers a ranged sync run.
    pub sync_lag_threshold: u64,
    /// Depth of each node's decode → consensus event queue.
    pub event_queue_depth: usize,
    /// Depth of each node's ingress → decode raw-frame queue.
    pub raw_queue_depth: usize,
    /// Per-replica mempool capacity; `0` = legacy unbounded queue.
    pub mempool_capacity: usize,
    /// Fee threshold of the mempool priority lane; `0` = off.
    pub priority_fee_threshold: u8,
    /// Decoupled digest dissemination: batches pushed ahead of
    /// proposals, proposals carry digests (Marlin only).
    pub dissemination: bool,
    /// Live-observability plane (per-node registries, scrape endpoints,
    /// flight recorders); `None` runs bare.
    pub observability: Option<ObservabilityConfig>,
}

/// Cluster-wide observability settings (see [`NodeObservability`] for
/// what each node does with them).
#[derive(Clone, Debug)]
pub struct ObservabilityConfig {
    /// Serve a loopback HTTP scrape endpoint per node.
    pub scrape: bool,
    /// Flight-ring capacity per node (`0` disables flight recording).
    pub flight_capacity: usize,
    /// Directory flight rings are dumped to on node stop, invariant
    /// violation, and panic. `None` keeps rings in memory only
    /// (`/debug/flight` still serves them).
    pub flight_dir: Option<PathBuf>,
}

impl Default for ObservabilityConfig {
    fn default() -> Self {
        ObservabilityConfig {
            scrape: true,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
            flight_dir: None,
        }
    }
}

impl ClusterConfig {
    /// Defaults: channel transport, in-memory journals, batch 64, 1 s
    /// base timeout (loopback rounds are microseconds; a healthy run
    /// should never time out).
    pub fn new(kind: ProtocolKind, n: usize, f: usize) -> Self {
        ClusterConfig {
            kind,
            n,
            f,
            transport: TransportKind::Channel,
            journal: JournalMode::Memory,
            batch_size: 64,
            base_timeout: Duration::from_secs(1),
            decode_workers: 2,
            shadow_blocks: true,
            sync_snapshot_interval: 0,
            sync_lag_threshold: 64,
            event_queue_depth: DEFAULT_QUEUE_DEPTH,
            raw_queue_depth: DEFAULT_QUEUE_DEPTH,
            mempool_capacity: 0,
            priority_fee_threshold: 0,
            dissemination: false,
            observability: None,
        }
    }
}

enum MeshControl {
    Channel(ChannelMesh),
    Tcp(TcpMesh),
}

/// A running cluster.
pub struct RuntimeCluster {
    cfg: ClusterConfig,
    base: Config,
    clock: Clock,
    trace: SharedSink<Trace>,
    mesh: MeshControl,
    nodes: Vec<Option<NodeHandle>>,
    statuses: Vec<Arc<NodeStatus>>,
    disks: Vec<Option<SharedDisk>>,
    writers: Vec<Option<JournalWriter>>,
    registries: Vec<Registry>,
    flights: Vec<Option<FlightRecorder>>,
    journal_meters: Vec<Option<LaneMeter>>,
    next_tx_id: u64,
}

impl RuntimeCluster {
    /// Launches `cfg.n` replicas; `observer` (if any) sees commits at
    /// replica 0, the measurement reference.
    ///
    /// # Errors
    ///
    /// Propagates socket/filesystem errors from mesh and journal setup.
    pub fn launch(cfg: ClusterConfig, observer: Option<CommitObserverFn>) -> io::Result<Self> {
        let clock = Clock::start();
        let trace = SharedSink::new(Trace::new());
        let base = {
            let mut c = Config::for_test(cfg.n, cfg.f);
            c.batch_size = cfg.batch_size;
            c.base_timeout_ns = cfg.base_timeout.as_nanos() as u64;
            c.sync_snapshot_interval = cfg.sync_snapshot_interval;
            c.sync_lag_threshold = cfg.sync_lag_threshold;
            c.mempool_capacity = cfg.mempool_capacity;
            c.priority_fee_threshold = cfg.priority_fee_threshold;
            c.dissemination = cfg.dissemination;
            c
        };

        // Per-node observability state comes first: the journal-writer
        // lane meters below register into these registries.
        let registries: Vec<Registry> = match &cfg.observability {
            Some(_) => (0..cfg.n).map(|_| Registry::new()).collect(),
            None => Vec::new(),
        };
        let flights: Vec<Option<FlightRecorder>> = (0..cfg.n)
            .map(|i| {
                let o = cfg.observability.as_ref()?;
                if o.flight_capacity == 0 {
                    return None;
                }
                Some(FlightRecorder::new(
                    format!("node-{i}"),
                    o.flight_capacity,
                    Arc::new(move || clock.now_ns()),
                ))
            })
            .collect();
        if let Some(dir) = cfg
            .observability
            .as_ref()
            .and_then(|o| o.flight_dir.clone())
        {
            install_panic_dump(dir);
            for flight in flights.iter().flatten() {
                register_panic_dump(flight);
            }
        }

        let mut disks: Vec<Option<SharedDisk>> = Vec::with_capacity(cfg.n);
        let mut writers: Vec<Option<JournalWriter>> = Vec::with_capacity(cfg.n);
        let mut journal_meters: Vec<Option<LaneMeter>> = Vec::with_capacity(cfg.n);
        for i in 0..cfg.n {
            match &cfg.journal {
                JournalMode::None => {
                    disks.push(None);
                    writers.push(None);
                    journal_meters.push(None);
                }
                JournalMode::Memory => {
                    disks.push(Some(SharedDisk::new()));
                    writers.push(None);
                    journal_meters.push(None);
                }
                JournalMode::Files(dir) => {
                    let disk = FileDisk::open(dir.join(format!("node-{i}")))?;
                    let meter = registries.get(i).map(|r| LaneMeter::new(r, "journal"));
                    let (proxy, writer) = match meter.clone() {
                        Some(m) => JournalWriter::spawn_metered(Box::new(disk), &format!("{i}"), m),
                        None => JournalWriter::spawn(Box::new(disk), &format!("{i}")),
                    };
                    disks.push(Some(proxy));
                    writers.push(Some(writer));
                    journal_meters.push(meter);
                }
            }
        }

        let (mesh, transports): (MeshControl, Vec<Arc<dyn Transport>>) = match cfg.transport {
            TransportKind::Channel => {
                let (mesh, ts) = ChannelMesh::new(cfg.n);
                (
                    MeshControl::Channel(mesh),
                    ts.into_iter().map(|t| Arc::new(t) as _).collect(),
                )
            }
            TransportKind::Tcp => {
                let (mesh, ts) = TcpMesh::new(cfg.n)?;
                (
                    MeshControl::Tcp(mesh),
                    ts.into_iter().map(|t| Arc::new(t) as _).collect(),
                )
            }
        };

        let mut cluster = RuntimeCluster {
            base,
            clock,
            trace,
            mesh,
            nodes: Vec::with_capacity(cfg.n),
            statuses: Vec::with_capacity(cfg.n),
            disks,
            writers,
            registries,
            flights,
            journal_meters,
            next_tx_id: 0,
            cfg,
        };
        let mut observer = observer;
        for (i, transport) in transports.into_iter().enumerate() {
            let handle = cluster.spawn_one(
                ReplicaId(i as u32),
                transport,
                Bootstrap::Fresh,
                if i == 0 { observer.take() } else { None },
            );
            cluster.statuses.push(handle.status());
            cluster.nodes.push(Some(handle));
        }
        Ok(cluster)
    }

    fn spawn_one(
        &self,
        id: ReplicaId,
        transport: Arc<dyn Transport>,
        bootstrap: Bootstrap,
        observer: Option<CommitObserverFn>,
    ) -> NodeHandle {
        let mut node_cfg = NodeConfig::new(self.base.with_id(id), self.cfg.kind);
        node_cfg.bootstrap = bootstrap;
        node_cfg.journal_disk = self.disks[id.index()].clone();
        node_cfg.decode_workers = self.cfg.decode_workers;
        node_cfg.shadow_blocks = self.cfg.shadow_blocks;
        node_cfg.event_queue_depth = self.cfg.event_queue_depth;
        node_cfg.raw_queue_depth = self.cfg.raw_queue_depth;
        if let Some(o) = &self.cfg.observability {
            // Registries and flight rings persist per slot, so a
            // recovered replica keeps its pre-kill metrics and autopsy
            // history.
            node_cfg.observability = Some(NodeObservability {
                registry: self.registries[id.index()].clone(),
                flight: self.flights[id.index()].clone(),
                scrape: o.scrape,
                flight_dir: o.flight_dir.clone(),
                journal_meter: self.journal_meters[id.index()].clone(),
            });
        }
        let sink: Box<dyn TelemetrySink + Send> = Box::new(self.trace.clone());
        spawn_node(node_cfg, transport, self.clock, Some(sink), observer)
    }

    /// Replica `i`'s metrics registry, when observability is on.
    pub fn registry(&self, i: usize) -> Option<&Registry> {
        self.registries.get(i)
    }

    /// Replica `i`'s scrape endpoint, when observability started one
    /// and the replica is alive.
    pub fn scrape_addr(&self, i: usize) -> Option<SocketAddr> {
        self.nodes[i].as_ref()?.scrape_addr()
    }

    /// Replica `i`'s flight recorder, when observability attached one.
    pub fn flight(&self, i: usize) -> Option<&FlightRecorder> {
        self.flights[i].as_ref()
    }

    /// The shared run clock.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Live counters of replica `i` (valid even after kill/stop).
    pub fn status(&self, i: usize) -> &NodeStatus {
        &self.statuses[i]
    }

    /// Submits `count` locally-originated transactions of `payload_len`
    /// bytes to the current leader's mempool (falling back to the first
    /// live replica if the leader is down).
    pub fn submit(&mut self, count: usize, payload_len: usize) {
        let view = self.max_view();
        let leader = self.base.leader_of(view);
        let target = if self.nodes[leader.index()].is_some() {
            leader.index()
        } else {
            match self.nodes.iter().position(Option::is_some) {
                Some(i) => i,
                None => return,
            }
        };
        let now = self.clock.now_ns();
        let txs: Vec<Transaction> = (0..count)
            .map(|_| {
                let id = self.next_tx_id;
                self.next_tx_id += 1;
                Transaction::new(
                    id,
                    Transaction::LOCAL_CLIENT,
                    Bytes::from(vec![0u8; payload_len]),
                    now,
                )
            })
            .collect();
        if let Some(node) = &self.nodes[target] {
            node.submit(txs);
        }
    }

    /// Highest view any live replica has reached.
    pub fn max_view(&self) -> View {
        View(
            self.nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.is_some())
                .map(|(i, _)| self.statuses[i].view().0)
                .max()
                .unwrap_or(0),
        )
    }

    /// Polls until every live replica has committed at least
    /// `min_blocks` blocks, or `timeout` elapses. Returns whether the
    /// target was reached.
    pub fn wait_for_blocks(&self, min_blocks: u64, timeout: Duration) -> bool {
        self.wait(timeout, |c| {
            c.nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.is_some())
                .all(|(i, _)| c.statuses[i].committed_blocks() >= min_blocks)
        })
    }

    /// Polls `pred` every few milliseconds until it holds or `timeout`
    /// elapses.
    pub fn wait(&self, timeout: Duration, pred: impl Fn(&Self) -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if pred(self) {
                return true;
            }
            std::thread::sleep(Duration::from_millis(3));
        }
        pred(self)
    }

    /// Abruptly stops replica `i` (threads joined, transport torn
    /// down). Its journal disk survives for recovery.
    pub fn kill(&mut self, i: usize) {
        if let Some(node) = self.nodes[i].take() {
            node.stop();
        }
    }

    /// Restarts replica `i` from its on-disk journal (`FromDisk`): a
    /// fresh endpoint rejoins the mesh and the core replays its journal
    /// before announcing recovery.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from rebinding the replica's address.
    pub fn recover_from_disk(&mut self, i: usize) -> io::Result<()> {
        assert!(self.nodes[i].is_none(), "kill replica {i} before recovery");
        let id = ReplicaId(i as u32);
        let transport: Arc<dyn Transport> = match &self.mesh {
            MeshControl::Channel(mesh) => Arc::new(mesh.endpoint(id)),
            MeshControl::Tcp(mesh) => {
                // The dead endpoint's acceptor releases its listener
                // asynchronously; retry the rebind briefly.
                let deadline = Instant::now() + Duration::from_secs(2);
                loop {
                    match mesh.rejoin(id) {
                        Ok(t) => break Arc::new(t) as _,
                        Err(e) if Instant::now() >= deadline => return Err(e),
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
            }
        };
        let handle = self.spawn_one(id, transport, Bootstrap::Recovered, None);
        self.statuses[i] = handle.status();
        self.nodes[i] = Some(handle);
        Ok(())
    }

    /// Checks cross-replica safety: within each commit log heights must
    /// be strictly increasing (no double commits), and any height
    /// committed by two replicas must carry the same block id. For
    /// replicas started fresh this is exactly the identical-committed-
    /// prefix property; for a `FromDisk`-recovered replica (whose new
    /// log begins mid-chain) it checks agreement over the overlap.
    /// Returns the shortest log length on success.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first divergence or
    /// ordering violation found. A violation is also stamped as a
    /// `FATAL` event into every flight ring (and the rings are dumped,
    /// when a dump directory is configured): a broken safety invariant
    /// is precisely the autopsy the recorder exists for.
    pub fn check_prefix_consistency(&self) -> Result<usize, String> {
        let result = self.prefix_consistency_inner();
        if let Err(why) = &result {
            let dump_dir = self
                .cfg
                .observability
                .as_ref()
                .and_then(|o| o.flight_dir.as_ref());
            for (i, flight) in self.flights.iter().enumerate() {
                let Some(flight) = flight else { continue };
                flight.record_now(
                    ReplicaId(i as u32),
                    FlightKind::Fatal,
                    format!("invariant violated: {why}"),
                );
                if let Some(dir) = dump_dir {
                    let _ = flight.dump_to_dir(dir);
                }
            }
        }
        result
    }

    fn prefix_consistency_inner(&self) -> Result<usize, String> {
        let logs: Vec<Vec<(u64, BlockId)>> = self.statuses.iter().map(|s| s.commit_log()).collect();
        let mut by_height: Vec<std::collections::HashMap<u64, BlockId>> = Vec::new();
        for (i, log) in logs.iter().enumerate() {
            let mut map = std::collections::HashMap::with_capacity(log.len());
            let mut last = None;
            for &(h, id) in log {
                if last.is_some_and(|prev| h <= prev) {
                    return Err(format!(
                        "replica {i} committed height {h} out of order (after {last:?})"
                    ));
                }
                last = Some(h);
                map.insert(h, id);
            }
            by_height.push(map);
        }
        for i in 0..by_height.len() {
            for j in i + 1..by_height.len() {
                for (h, id_i) in &by_height[i] {
                    if let Some(id_j) = by_height[j].get(h) {
                        if id_i != id_j {
                            return Err(format!(
                                "commit divergence at height {h}: replica {i} has {id_i:?}, replica {j} has {id_j:?}"
                            ));
                        }
                    }
                }
            }
        }
        Ok(logs.iter().map(Vec::len).min().unwrap_or(0))
    }

    /// Stops every replica and returns the final report.
    pub fn shutdown(mut self) -> ClusterReport {
        for node in self.nodes.iter_mut() {
            if let Some(node) = node.take() {
                node.stop();
            }
        }
        // Journal writers exit once their proxy disks drop.
        self.disks.clear();
        for writer in self.writers.drain(..).flatten() {
            writer.join();
        }
        let trace = self.trace.with(std::mem::take);
        ClusterReport {
            trace,
            statuses: self.statuses,
            duration_ns: self.clock.now_ns(),
        }
    }
}

/// What a finished cluster run leaves behind.
pub struct ClusterReport {
    /// Every telemetry note/charge/traffic record, wall-clock stamped.
    pub trace: Trace,
    /// Final per-replica counters.
    pub statuses: Vec<Arc<NodeStatus>>,
    /// Total run duration on the shared clock.
    pub duration_ns: u64,
}
