//! The persistence thread: a dedicated journal writer per replica.
//!
//! The consensus state machines call `SafetyJournal` synchronously and
//! rely on write-before-vote: a vote is only emitted after its journal
//! record is appended *and* synced. To keep that ordering while moving
//! file IO off no one's critical path but the voter's own, the runtime
//! gives each replica a writer thread owning the real disk, and hands
//! the journal a [`marlin_storage::SharedDisk`] wrapping a
//! [`ProxyDisk`]: every operation is shipped to the writer over a
//! channel and the caller blocks on the `io::Result` ack. The blocking
//! ack *is* the durability barrier — vote emission cannot outrun the
//! write — while other replica threads (ingress, decode, timers) keep
//! running.

use crate::channel::LaneMeter;
use marlin_storage::{Disk, SharedDisk};
use std::io;
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::thread::JoinHandle;
use std::time::Instant;

enum DiskOp {
    WriteFile { name: String, data: Vec<u8> },
    Append { name: String, data: Vec<u8> },
    ReadFile { name: String },
    Exists { name: String },
    Remove { name: String },
    List,
    Sync,
}

enum DiskReply {
    Unit(io::Result<()>),
    Bytes(io::Result<Vec<u8>>),
    Bool(bool),
    Names(io::Result<Vec<String>>),
}

type Request = (DiskOp, SyncSender<DiskReply>);

/// Forwards every [`Disk`] operation to the writer thread and blocks on
/// its acknowledgment.
struct ProxyDisk {
    tx: Sender<Request>,
    /// The consensus → journal lane meter. Depth is the journal lag
    /// (ops shipped but not yet applied); the "stall" histogram here is
    /// the full ack round trip — on this lane every send blocks by
    /// design (write-before-vote), so the stall metrics *are* the
    /// durability-barrier cost, not an anomaly counter.
    meter: LaneMeter,
}

impl ProxyDisk {
    fn call(&self, op: DiskOp) -> DiskReply {
        let (reply_tx, reply_rx) = sync_channel(1);
        if self.tx.send((op, reply_tx)).is_err() {
            return DiskReply::Unit(Err(writer_gone()));
        }
        self.meter.note_enqueue();
        let blocked_at = Instant::now();
        let reply = reply_rx
            .recv()
            .unwrap_or(DiskReply::Unit(Err(writer_gone())));
        self.meter
            .note_stall(blocked_at.elapsed().as_nanos() as u64);
        reply
    }
}

fn writer_gone() -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, "journal writer thread gone")
}

fn unit(reply: DiskReply) -> io::Result<()> {
    match reply {
        DiskReply::Unit(r) => r,
        _ => Err(writer_gone()),
    }
}

impl Disk for ProxyDisk {
    fn write_file(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        unit(self.call(DiskOp::WriteFile {
            name: name.to_string(),
            data: data.to_vec(),
        }))
    }

    fn append(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        unit(self.call(DiskOp::Append {
            name: name.to_string(),
            data: data.to_vec(),
        }))
    }

    fn read_file(&self, name: &str) -> io::Result<Vec<u8>> {
        match self.call(DiskOp::ReadFile {
            name: name.to_string(),
        }) {
            DiskReply::Bytes(r) => r,
            _ => Err(writer_gone()),
        }
    }

    fn exists(&self, name: &str) -> bool {
        matches!(
            self.call(DiskOp::Exists {
                name: name.to_string(),
            }),
            DiskReply::Bool(true)
        )
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        unit(self.call(DiskOp::Remove {
            name: name.to_string(),
        }))
    }

    fn list(&self) -> io::Result<Vec<String>> {
        match self.call(DiskOp::List) {
            DiskReply::Names(r) => r,
            _ => Err(writer_gone()),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        unit(self.call(DiskOp::Sync))
    }
}

/// Handle to a running journal-writer thread.
///
/// The thread exits when every clone of the proxy disk is dropped;
/// [`JournalWriter::join`] reaps it. Dropping the handle without
/// joining leaves the thread to drain and exit on its own — safe, just
/// unobserved.
pub struct JournalWriter {
    handle: Option<JoinHandle<()>>,
}

impl JournalWriter {
    /// Spawns a writer thread owning `inner` and returns the shared
    /// proxy disk to build a `SafetyJournal` on. The proxy (and every
    /// clone of it) funnels all operations through the writer in
    /// arrival order; each call blocks until the writer acks it.
    pub fn spawn(inner: Box<dyn Disk + Send>, label: &str) -> (SharedDisk, JournalWriter) {
        JournalWriter::spawn_metered(inner, label, LaneMeter::detached())
    }

    /// Like [`JournalWriter::spawn`], with the consensus → journal lane
    /// metered: `meter`'s depth is the journal lag, its stall histogram
    /// the per-op durability-barrier wait.
    pub fn spawn_metered(
        inner: Box<dyn Disk + Send>,
        label: &str,
        meter: LaneMeter,
    ) -> (SharedDisk, JournalWriter) {
        let (tx, rx) = channel::<Request>();
        let writer_meter = meter.clone();
        let handle = std::thread::Builder::new()
            .name(format!("journal-{label}"))
            .spawn(move || writer_loop(inner, rx, writer_meter))
            .expect("spawn journal writer");
        (
            SharedDisk::from_disk(Box::new(ProxyDisk { tx, meter })),
            JournalWriter {
                handle: Some(handle),
            },
        )
    }

    /// Waits for the writer to drain and exit (all proxy handles must
    /// have been dropped, or this blocks).
    pub fn join(mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn writer_loop(mut disk: Box<dyn Disk + Send>, rx: Receiver<Request>, meter: LaneMeter) {
    while let Ok((op, reply_tx)) = rx.recv() {
        let reply = match op {
            DiskOp::WriteFile { name, data } => DiskReply::Unit(disk.write_file(&name, &data)),
            DiskOp::Append { name, data } => DiskReply::Unit(disk.append(&name, &data)),
            DiskOp::ReadFile { name } => DiskReply::Bytes(disk.read_file(&name)),
            DiskOp::Exists { name } => DiskReply::Bool(disk.exists(&name)),
            DiskOp::Remove { name } => DiskReply::Unit(disk.remove(&name)),
            DiskOp::List => DiskReply::Names(disk.list()),
            DiskOp::Sync => DiskReply::Unit(disk.sync()),
        };
        meter.note_dequeue();
        // A vanished caller is fine (it was killed mid-call); the op
        // itself already applied.
        let _ = reply_tx.send(reply);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marlin_storage::MemDisk;

    #[test]
    fn proxy_round_trips_through_writer_thread() {
        let (mut disk, writer) = JournalWriter::spawn(Box::new(MemDisk::new()), "test");
        disk.append("wal", b"rec1").unwrap();
        disk.append("wal", b"rec2").unwrap();
        disk.sync().unwrap();
        assert_eq!(disk.read_file("wal").unwrap(), b"rec1rec2");
        assert!(disk.exists("wal"));
        assert!(!disk.exists("nope"));
        assert_eq!(disk.list().unwrap(), vec!["wal".to_string()]);
        disk.remove("wal").unwrap();
        assert!(!disk.exists("wal"));
        drop(disk);
        writer.join();
    }

    #[test]
    fn metered_writer_accounts_lag_and_ack_wait() {
        let reg = marlin_telemetry::Registry::new();
        let meter = LaneMeter::new(&reg, "journal");
        let (mut disk, writer) =
            JournalWriter::spawn_metered(Box::new(MemDisk::new()), "metered", meter.clone());
        disk.append("wal", b"rec").unwrap();
        disk.sync().unwrap();
        // Every op is acked before the proxy returns, so lag is back to
        // zero, and each op recorded one durability-barrier wait.
        assert_eq!(meter.depth(), 0);
        assert_eq!(meter.stalls(), 2);
        assert_eq!(
            reg.histogram_with("runtime_channel_stall_ns", &[("lane", "journal")])
                .snapshot()
                .count(),
            2
        );
        drop(disk);
        writer.join();
    }

    #[test]
    fn ack_orders_write_before_return() {
        // The proxy must not return before the writer applied the op:
        // read-your-writes from the calling thread proves the ack
        // ordering that write-before-vote relies on.
        let (mut disk, writer) = JournalWriter::spawn(Box::new(MemDisk::new()), "order");
        for i in 0..100u32 {
            disk.append("wal", &i.to_le_bytes()).unwrap();
            let data = disk.read_file("wal").unwrap();
            assert_eq!(data.len() as u32, (i + 1) * 4);
        }
        drop(disk);
        writer.join();
    }
}
