//! Live-observability integration: a cluster under real load with the
//! scrape plane on, hammered by concurrent scrapers; backpressure
//! attribution through the lane meters; and flight-recorder autopsies
//! from killed nodes — over HTTP and from on-disk dumps.

use marlin_core::ProtocolKind;
use marlin_runtime::{ClusterConfig, JournalMode, ObservabilityConfig, RuntimeCluster};
use marlin_telemetry::{check_prometheus_text, parse_dump, FlightKind};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Minimal scrape client: one GET, returns (status, body bytes).
fn http_get(addr: SocketAddr, path: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect scrape server");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
        .expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head");
    let head = String::from_utf8_lossy(&raw[..split]);
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, raw[split + 4..].to_vec())
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("marlin-observe-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn observed_config(kind: ProtocolKind) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(kind, 4, 1);
    cfg.observability = Some(ObservabilityConfig::default());
    cfg
}

/// Satellite (c): the cluster runs at saturation while scraper threads
/// hammer every node's endpoint. Every `/metrics` response must be
/// validator-clean (the server itself 500s on malformed exposition, so
/// status 200 *is* the validation), `/health` must parse, and the run
/// must still commit with agreeing prefixes.
#[test]
fn scrape_under_load_is_valid_and_consensus_agrees() {
    let mut cluster = RuntimeCluster::launch(observed_config(ProtocolKind::Marlin), None)
        .expect("launch observed cluster");
    let addrs: Vec<SocketAddr> = (0..4)
        .map(|i| cluster.scrape_addr(i).expect("scrape endpoint up"))
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let scrapes = Arc::new(AtomicU64::new(0));
    let scrapers: Vec<_> = addrs
        .iter()
        .map(|&addr| {
            let stop = Arc::clone(&stop);
            let scrapes = Arc::clone(&scrapes);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let (status, body) = http_get(addr, "/metrics");
                    assert_eq!(
                        status,
                        200,
                        "scrape failed: {}",
                        String::from_utf8_lossy(&body)
                    );
                    let text = String::from_utf8(body).expect("utf8 exposition");
                    check_prometheus_text(&text).expect("served text validates");
                    let (status, body) = http_get(addr, "/health");
                    assert_eq!(status, 200);
                    let health = String::from_utf8_lossy(&body).into_owned();
                    assert!(health.contains("\"view\":"), "{health}");
                    assert!(health.contains("\"sync_state\":\""), "{health}");
                    let (status, _) = http_get(addr, "/metrics.json");
                    assert_eq!(status, 200);
                    scrapes.fetch_add(1, Ordering::AcqRel);
                }
            })
        })
        .collect();

    // Saturate: keep the mempools full until every replica committed
    // 150 blocks while the scrapers run.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut reached = false;
    while Instant::now() < deadline {
        cluster.submit(200, 8);
        if cluster.wait_for_blocks(150, Duration::from_millis(20)) {
            reached = true;
            break;
        }
    }
    stop.store(true, Ordering::Release);
    for s in scrapers {
        s.join()
            .expect("scraper thread panicked (assertion failed)");
    }
    assert!(reached, "observed cluster failed to commit 150 blocks");
    assert!(
        scrapes.load(Ordering::Acquire) >= 20,
        "scrapers barely ran: {} rounds",
        scrapes.load(Ordering::Acquire)
    );

    let prefix = cluster.check_prefix_consistency().expect("no divergence");
    assert!(prefix >= 150, "shortest commit log only {prefix} blocks");

    // The registry carries the consensus fold and the lane meters.
    let snapshot = cluster.registry(0).expect("registry").snapshot();
    let text = snapshot.to_prometheus();
    for needle in [
        "runtime_channel_enqueued_total{lane=\"consensus\"}",
        "runtime_channel_depth{lane=\"ingress\"}",
        "consensus_current_view",
        "consensus_commit_height",
        "consensus_committed_txs_total",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    // QC formation is leader-side; it must show up on *some* replica.
    assert!(
        (0..4).any(|i| {
            cluster.registry(i).is_some_and(|r| {
                r.snapshot()
                    .to_prometheus()
                    .contains("consensus_qcs_formed_total")
            })
        }),
        "no replica exported consensus_qcs_formed_total"
    );
    cluster.shutdown();
}

/// Satellite (c), attribution half: with a deliberately tiny event
/// queue the decode→consensus lane must be the one reporting stalls —
/// the backpressure shows up *named*, not as a silent throughput dip.
#[test]
fn consensus_lane_stalls_attribute_backpressure() {
    let mut cfg = observed_config(ProtocolKind::Marlin);
    cfg.event_queue_depth = 2;
    let mut cluster = RuntimeCluster::launch(cfg, None).expect("launch");
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        cluster.submit(200, 8);
        if cluster.wait_for_blocks(60, Duration::from_millis(10)) {
            break;
        }
    }
    assert!(
        cluster.wait_for_blocks(60, Duration::from_secs(1)),
        "tiny-queue cluster failed to commit"
    );
    let stalled: u64 = (0..4)
        .map(|i| {
            cluster
                .registry(i)
                .expect("registry")
                .counter_with("runtime_channel_stalls_total", &[("lane", "consensus")])
                .get()
        })
        .sum();
    assert!(
        stalled > 0,
        "no consensus-lane stalls recorded despite a depth-2 event queue at saturation"
    );
    // The stall histogram must carry matching samples.
    let samples: u64 = (0..4)
        .map(|i| {
            cluster
                .registry(i)
                .expect("registry")
                .histogram_with("runtime_channel_stall_ns", &[("lane", "consensus")])
                .snapshot()
                .count()
        })
        .sum();
    assert_eq!(samples, stalled, "every stall records one duration sample");
    cluster.check_prefix_consistency().expect("no divergence");
    cluster.shutdown();
}

/// Tentpole (3): killing a node dumps its flight ring — CRC-framed,
/// parseable, ending in the FATAL stop marker with real history before
/// it — and `/debug/flight` serves the live ring of a running node.
#[test]
fn killed_node_leaves_a_parseable_flight_dump() {
    let dir = scratch_dir("flight");
    let mut cfg = observed_config(ProtocolKind::Marlin);
    cfg.journal = JournalMode::Files(dir.join("journals"));
    cfg.observability = Some(ObservabilityConfig {
        flight_dir: Some(dir.join("flight")),
        ..ObservabilityConfig::default()
    });
    let mut cluster = RuntimeCluster::launch(cfg, None).expect("launch");
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        cluster.submit(100, 8);
        if cluster.wait_for_blocks(40, Duration::from_millis(20)) {
            break;
        }
    }
    assert!(
        cluster.wait_for_blocks(40, Duration::from_secs(1)),
        "cluster failed to commit before the kill"
    );

    // A live node serves its ring over HTTP.
    let addr = cluster.scrape_addr(0).expect("scrape endpoint");
    let (status, body) = http_get(addr, "/debug/flight");
    assert_eq!(status, 200);
    let live_events = parse_dump(&body).expect("live ring parses");
    assert!(!live_events.is_empty(), "live ring is empty under load");

    // Kill replica 2: the stop path must leave an autopsy on disk.
    cluster.kill(2);
    let dump_path = dir.join("flight").join("node-2.flight");
    let bytes = std::fs::read(&dump_path).expect("flight dump written on kill");
    let events = parse_dump(&bytes).expect("dump parses");
    let last = events.last().expect("dump has events");
    assert_eq!(
        last.kind,
        FlightKind::Fatal,
        "dump ends in the fatal marker"
    );
    assert!(last.detail.contains("node stopped"), "{}", last.detail);
    assert!(
        events.len() > 1,
        "fatal marker has no preceding ring history"
    );
    assert!(
        events
            .iter()
            .any(|e| e.kind == FlightKind::Journal || e.kind == FlightKind::Note),
        "ring carries no consensus history"
    );
    // Journal lag was exported while the writer thread ran.
    let journal_ops = cluster
        .registry(2)
        .expect("registry")
        .counter_with("runtime_channel_enqueued_total", &[("lane", "journal")])
        .get();
    assert!(journal_ops > 0, "journal lane never metered");

    cluster.check_prefix_consistency().expect("no divergence");
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
