//! End-to-end soaks for the threaded runtime: real threads, real
//! clocks, channel and TCP meshes, kill/recover — all driving the
//! unchanged `marlin-core` state machines.

use marlin_core::ProtocolKind;
use marlin_runtime::{ClusterConfig, JournalMode, RuntimeCluster, TransportKind};
use marlin_telemetry::Note;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Keeps submitting load until `pred` holds or `deadline` elapses.
fn drive_until(
    cluster: &mut RuntimeCluster,
    deadline: Duration,
    pred: impl Fn(&RuntimeCluster) -> bool,
) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        cluster.submit(100, 8);
        if cluster.wait(Duration::from_millis(25), &pred) {
            return true;
        }
    }
    false
}

/// Keeps submitting load until every live replica has committed at
/// least `target_blocks` blocks or `deadline` elapses.
fn drive(cluster: &mut RuntimeCluster, target_blocks: u64, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        cluster.submit(100, 8);
        if cluster.wait_for_blocks(target_blocks, Duration::from_millis(25)) {
            return true;
        }
    }
    false
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("marlin-runtime-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn channel_soak_commits_and_agrees() {
    let cfg = ClusterConfig::new(ProtocolKind::Marlin, 4, 1);
    let mut cluster = RuntimeCluster::launch(cfg, None).expect("launch");
    assert!(
        drive(&mut cluster, 150, Duration::from_secs(30)),
        "cluster failed to commit 150 blocks in time"
    );
    let prefix = cluster.check_prefix_consistency().expect("no divergence");
    assert!(prefix >= 150, "shortest commit log only {prefix} blocks");
    for i in 0..4 {
        assert_eq!(cluster.status(i).decode_errors(), 0, "replica {i}");
        assert!(cluster.status(i).committed_txs() > 0, "replica {i}");
    }
    let report = cluster.shutdown();
    assert!(
        !report.trace.events.is_empty(),
        "telemetry sink saw no notes on a wall-clock run"
    );
}

#[test]
fn tcp_soak_five_hundred_blocks_identical_prefixes() {
    let mut cfg = ClusterConfig::new(ProtocolKind::ChainedMarlin, 4, 1);
    cfg.transport = TransportKind::Tcp;
    let mut cluster = RuntimeCluster::launch(cfg, None).expect("launch tcp cluster");
    assert!(
        drive(&mut cluster, 500, Duration::from_secs(55)),
        "tcp cluster failed to commit 500 blocks in time"
    );
    let prefix = cluster
        .check_prefix_consistency()
        .expect("no safety violation");
    assert!(prefix >= 500, "shortest commit log only {prefix} blocks");
    for i in 0..4 {
        assert_eq!(
            cluster.status(i).decode_errors(),
            0,
            "replica {i} saw undecodable frames over TCP"
        );
    }
    cluster.shutdown();
}

#[test]
fn kill_and_recover_from_disk_rejoins_via_catch_up() {
    let dir = scratch_dir("recovery");
    let mut cfg = ClusterConfig::new(ProtocolKind::Marlin, 4, 1);
    cfg.journal = JournalMode::Files(dir.clone());
    let mut cluster = RuntimeCluster::launch(cfg, None).expect("launch journaled cluster");

    assert!(
        drive(&mut cluster, 30, Duration::from_secs(20)),
        "no progress before the kill"
    );

    // Kill a follower mid-run; n=4 f=1 keeps quorum with 3 live nodes.
    cluster.kill(2);
    let before = cluster.status(0).committed_blocks();
    assert!(
        drive(&mut cluster, before + 30, Duration::from_secs(20)),
        "cluster stalled after losing one replica"
    );

    // FromDisk: the replica replays its journal, rejoins the mesh, and
    // catches up to the live chain.
    cluster.recover_from_disk(2).expect("recovery");
    let target = cluster.status(0).committed_blocks() + 30;
    assert!(
        drive_until(&mut cluster, Duration::from_secs(30), |c| {
            c.status(0).committed_blocks() >= target && c.status(2).committed_blocks() >= 10
        }),
        "recovered replica never caught up"
    );
    cluster
        .check_prefix_consistency()
        .expect("no divergence across recovery");
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The wall-clock twin of the simnet rejoin cells: a journaled Marlin
/// cluster over real TCP with block sync enabled, one replica killed
/// long enough to fall past the lag threshold, then recovered from
/// disk. The transport's dial backoff absorbs the dead peer, and the
/// recovered replica must rejoin through the sync engine (snapshot or
/// ranged fetch over real sockets), not just timeout-driven fetch.
#[test]
fn tcp_kill_and_reconnect_rejoins_via_sync() {
    let dir = scratch_dir("tcp-rejoin");
    let mut cfg = ClusterConfig::new(ProtocolKind::Marlin, 4, 1);
    cfg.transport = TransportKind::Tcp;
    cfg.journal = JournalMode::Files(dir.clone());
    cfg.sync_snapshot_interval = 16;
    cfg.sync_lag_threshold = 8;
    let mut cluster = RuntimeCluster::launch(cfg, None).expect("launch tcp sync cluster");

    assert!(
        drive(&mut cluster, 30, Duration::from_secs(20)),
        "no progress before the kill"
    );

    // Kill a follower and commit well past the lag threshold while it
    // is gone; peers' sends to it back off instead of redialing per
    // frame.
    cluster.kill(2);
    let before = cluster.status(0).committed_blocks();
    assert!(
        drive(&mut cluster, before + 60, Duration::from_secs(25)),
        "cluster stalled after losing one replica"
    );

    cluster.recover_from_disk(2).expect("recovery");
    let target = cluster.status(0).committed_blocks() + 30;
    assert!(
        drive_until(&mut cluster, Duration::from_secs(30), |c| {
            c.status(0).committed_blocks() >= target && c.status(2).committed_blocks() >= 10
        }),
        "recovered replica never caught back up over TCP"
    );
    cluster
        .check_prefix_consistency()
        .expect("no divergence across TCP recovery");
    let report = cluster.shutdown();
    assert!(
        report
            .trace
            .events
            .iter()
            .any(|e| matches!(e.note, Note::SyncCompleted { .. })),
        "rejoin never went through the sync engine"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hotstuff_runs_without_journal_support() {
    let mut cfg = ClusterConfig::new(ProtocolKind::HotStuff, 4, 1);
    cfg.journal = JournalMode::None;
    let mut cluster = RuntimeCluster::launch(cfg, None).expect("launch hotstuff");
    assert!(
        drive(&mut cluster, 50, Duration::from_secs(20)),
        "hotstuff cluster made no progress"
    );
    cluster.check_prefix_consistency().expect("no divergence");
    cluster.shutdown();
}

#[test]
fn dissemination_soak_commits_with_bounded_mempool() {
    // The client path end-to-end on real threads: bounded admission in
    // front of the core, batches pushed ahead of proposals as
    // digest-addressed payloads, digest proposals on the wire. The
    // cluster must commit and agree exactly as with inline batches,
    // and the observability plane must show the payload plane working
    // (pushes, ack quorums) and admission accounting for every
    // submitted transaction.
    use marlin_runtime::ObservabilityConfig;

    let mut cfg = ClusterConfig::new(ProtocolKind::Marlin, 4, 1);
    cfg.mempool_capacity = 4096;
    cfg.dissemination = true;
    cfg.observability = Some(ObservabilityConfig {
        scrape: false,
        flight_capacity: 0,
        ..ObservabilityConfig::default()
    });
    let mut cluster = RuntimeCluster::launch(cfg, None).expect("launch");
    assert!(
        drive(&mut cluster, 120, Duration::from_secs(30)),
        "dissemination cluster failed to commit 120 blocks in time"
    );
    let prefix = cluster.check_prefix_consistency().expect("no divergence");
    assert!(prefix >= 120, "shortest commit log only {prefix} blocks");
    for i in 0..4 {
        assert_eq!(cluster.status(i).decode_errors(), 0, "replica {i}");
        assert!(cluster.status(i).committed_txs() > 0, "replica {i}");
    }
    let count = |i: usize, name: &str| {
        cluster
            .registry(i)
            .expect("registry")
            .counter_with(name, &[])
            .get()
    };
    // Some leader pushed payloads and saw them reach an ack quorum.
    let pushed: u64 = (0..4)
        .map(|i| count(i, "consensus_payload_pushed_total"))
        .sum();
    let quorums: u64 = (0..4)
        .map(|i| count(i, "consensus_payload_quorum_total"))
        .sum();
    assert!(pushed > 0, "no payload batches were pushed");
    assert!(quorums > 0, "no payload batch reached an ack quorum");
    // Every submitted transaction went through admission accounting.
    let admitted: u64 = (0..4)
        .map(|i| count(i, "consensus_mempool_admitted_total"))
        .sum();
    assert!(admitted > 0, "admission counters never moved");
    cluster.shutdown();
}
