//! Figure-regeneration drivers (Fig. 10a–j and the ablations).

use crate::Effort;
use marlin_core::ProtocolKind;
use marlin_crypto::QcFormat;
use marlin_node::{run_experiment, ExperimentConfig, Metrics, SweepPoint};
use marlin_simnet::SimConfig;
use marlin_types::ReplicaId;

/// Builds the paper-testbed experiment configuration for one protocol
/// and fault level at the given effort.
pub fn paper_config(protocol: ProtocolKind, f: usize, effort: Effort) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper(protocol, f);
    cfg.duration_ns = effort.duration_ns();
    cfg.warmup_ns = effort.warmup_ns();
    cfg
}

/// The offered-load ladder used for the throughput/latency sweeps.
pub fn rate_ladder(f: usize, effort: Effort) -> Vec<u64> {
    // Larger systems saturate earlier (NIC egress pressure); the ladder
    // tops out modestly above the expected peak so the hockey stick is
    // visible without flooding the mempool.
    let top: u64 = match f {
        0..=1 => 64_000,
        2 => 52_000,
        3..=5 => 40_000,
        6..=10 => 24_000,
        11..=20 => 16_000,
        _ => 12_000,
    };
    let steps = match effort {
        Effort::Quick => 4,
        Effort::Full => 8,
    };
    (1..=steps).map(|i| top * i as u64 / steps as u64).collect()
}

/// Fig. 10a–f: the throughput-vs-latency curve for one protocol at one
/// fault level.
pub fn throughput_vs_latency(protocol: ProtocolKind, f: usize, effort: Effort) -> Vec<SweepPoint> {
    let cfg = paper_config(protocol, f, effort);
    marlin_node::sweep_peak_throughput(&cfg, &rate_ladder(f, effort))
}

/// Fig. 10g: peak throughput — the highest measured committed rate over
/// the sweep.
pub fn peak_throughput(protocol: ProtocolKind, f: usize, effort: Effort) -> Metrics {
    let points = throughput_vs_latency(protocol, f, effort);
    points
        .into_iter()
        .map(|p| p.metrics)
        .max_by(|a, b| a.throughput_tps.total_cmp(&b.throughput_tps))
        .expect("sweep is nonempty")
}

/// Fig. 10h: peak throughput with no-op requests (empty payloads).
pub fn peak_throughput_noop(protocol: ProtocolKind, f: usize, effort: Effort) -> Metrics {
    let mut cfg = paper_config(protocol, f, effort);
    cfg.payload_len = 0;
    rate_ladder(f, effort)
        .iter()
        .map(|&rate| {
            let mut c = cfg.clone();
            c.rate_tps = rate * 2; // no-ops go further
            run_experiment(&c)
        })
        .max_by(|a, b| a.throughput_tps.total_cmp(&b.throughput_tps))
        .expect("sweep is nonempty")
}

/// Fig. 10j: rotating-leader mode at `f = 3` with `crashes` replicas
/// crashed at the start (the paper crashes 0, 1, or 3).
pub fn rotating_under_failures(
    protocol: ProtocolKind,
    crashes: usize,
    rate_tps: u64,
    effort: Effort,
) -> Metrics {
    let f = 3;
    let mut cfg = paper_config(protocol, f, effort);
    cfg.rotation_interval_ns = Some(1_000_000_000); // the paper's 1 s timer
    cfg.base_timeout_ns = 1_000_000_000;
    cfg.rate_tps = rate_tps;
    // Smaller batches so several blocks fit into each 1 s leader slot
    // (less per-view quantization).
    cfg.batch_size = 4_000;
    // Make sure the run covers enough rotations that crashed leaders'
    // slots fall inside the measurement window.
    cfg.duration_ns = cfg.duration_ns.max(6_000_000_000);
    // Crash replicas whose leader turns come up early (but not the
    // view-1 leader), spread out so live views separate the failed
    // slots (consecutive failed views would compound the timeout
    // backoff) — the paper's "crash 1 or 3 replicas at the beginning".
    cfg.crashes = (0..crashes as u32)
        .map(|k| (ReplicaId(2 + 2 * k), 0u64))
        .collect();
    run_experiment(&cfg)
}

/// Ablation A1: bytes of an unhappy view change with and without the
/// shadow-block wire optimisation.
pub fn ablate_shadow_blocks(f: usize) -> (u64, u64) {
    let run = |shadow: bool| {
        let mut net = SimConfig::paper_testbed();
        net.shadow_blocks = shadow;
        let m = crate::vc::measure_view_change_with_preload(
            ProtocolKind::Marlin,
            f,
            true,
            QcFormat::Threshold,
            net,
            4_000,
        );
        assert!(
            !m.took_happy_path,
            "shadow ablation requires the unhappy path"
        );
        m.window.protocol_total().bytes
    };
    (run(true), run(false))
}

/// Ablation A3: the paper's Section IV-D argument for virtual blocks,
/// measured: view-change latency of Marlin's happy path (2 phases),
/// Marlin's unhappy path (3 phases, thanks to virtual blocks), HotStuff
/// (3 phases), and the "half-baked" four-phase design (pre-prepare
/// without virtual blocks + a three-phase commit).
pub fn ablate_four_phase(f: usize) -> [(String, u64); 4] {
    let m = |protocol, unhappy| {
        crate::vc::measure_view_change(
            protocol,
            f,
            unhappy,
            QcFormat::SigGroup,
            SimConfig::paper_testbed(),
        )
        .latency_ns
    };
    [
        ("marlin (happy)".to_string(), m(ProtocolKind::Marlin, false)),
        (
            "marlin (unhappy)".to_string(),
            m(ProtocolKind::Marlin, true),
        ),
        ("hotstuff".to_string(), m(ProtocolKind::HotStuff, false)),
        (
            "four-phase (no virtual blocks)".to_string(),
            m(ProtocolKind::MarlinFourPhase, false),
        ),
    ]
}

/// Ablation A2: the signature-group vs threshold-signature trade the
/// paper discusses (Section I): groups of conventional signatures avoid
/// pairings (cheap CPU) but cost `n × 64` wire bytes per certificate;
/// threshold signatures are constant-size but pairing-heavy. Returns
/// the measured view-change windows under each format.
pub fn ablate_qc_format(f: usize) -> (crate::vc::VcMeasurement, crate::vc::VcMeasurement) {
    let run = |format: QcFormat| {
        crate::vc::measure_view_change(
            ProtocolKind::Marlin,
            f,
            true,
            format,
            SimConfig::paper_testbed(),
        )
    };
    (run(QcFormat::SigGroup), run(QcFormat::Threshold))
}

/// Ablation A4: the verification stack. The paper testbed's 40 ms WAN
/// links hide CPU — verification is never the bottleneck there — so
/// this ablation measures where it is: LAN links, small (32-tx)
/// blocks, ECDSA-like costs. Contrasts the legacy serial stack
/// (per-share verification on one inline worker) against staged batch
/// verification on a 4-worker pool; returns `(serial, batched)` peak
/// metrics over the same offered-load ladder.
pub fn ablate_batch_crypto(f: usize, effort: Effort) -> (Metrics, Metrics) {
    let mut cfg = ExperimentConfig::paper(ProtocolKind::Marlin, f);
    cfg.net = SimConfig::lan();
    cfg.batch_size = 32;
    cfg.duration_ns = effort.duration_ns();
    cfg.warmup_ns = effort.warmup_ns();
    let rates: Vec<u64> = match effort {
        Effort::Quick => vec![24_000, 48_000, 72_000, 96_000],
        Effort::Full => vec![
            16_000, 32_000, 48_000, 64_000, 80_000, 96_000, 112_000, 128_000,
        ],
    };
    let peak = |cfg: &ExperimentConfig| {
        marlin_node::sweep_peak_throughput(cfg, &rates)
            .into_iter()
            .map(|p| p.metrics)
            .max_by(|a, b| a.throughput_tps.total_cmp(&b.throughput_tps))
            .expect("sweep is nonempty")
    };
    let mut serial = cfg.clone();
    serial.batch_verify = false;
    serial.crypto_workers = 1;
    let mut batched = cfg;
    batched.batch_verify = true;
    batched.crypto_workers = 4;
    (peak(&serial), peak(&batched))
}

/// One side of the saturation contrast: the peak of the offered-load
/// sweep and a run at twice the peak's offered rate.
pub struct OverloadPoint {
    /// Offered rate at which the sweep peaked.
    pub peak_rate: u64,
    /// Metrics at the peak.
    pub peak: Metrics,
    /// Offered rate of the overload run (2× the peak rate).
    pub overload_rate: u64,
    /// Metrics at 2× the peak rate.
    pub overload: Metrics,
}

impl OverloadPoint {
    /// Overload goodput as a fraction of peak goodput.
    pub fn retention(&self) -> f64 {
        if self.peak.throughput_tps == 0.0 {
            return 0.0;
        }
        self.overload.throughput_tps / self.peak.throughput_tps
    }
}

/// Applies the client-path knobs: bounded admission (capacity = one
/// batch) and digest dissemination. The legacy configuration keeps the
/// unbounded queue and inline payloads.
pub fn client_path_config(f: usize, effort: Effort) -> ExperimentConfig {
    let mut cfg = paper_config(ProtocolKind::Marlin, f, effort);
    cfg.mempool_capacity = cfg.batch_size;
    cfg.dissemination = true;
    cfg
}

/// The saturation experiment behind the mempool section: sweep the
/// offered-load ladder for the peak, then offer twice the peak rate and
/// measure what survives. The legacy inline path collapses past
/// saturation (its unbounded mempool accumulates a backlog that
/// displaces fresh transactions); bounded admission plus digest
/// dissemination holds goodput at the plateau.
pub fn overload_contrast(f: usize, effort: Effort, bounded: bool) -> OverloadPoint {
    let cfg = if bounded {
        client_path_config(f, effort)
    } else {
        paper_config(ProtocolKind::Marlin, f, effort)
    };
    let points = marlin_node::sweep_peak_throughput(&cfg, &rate_ladder(f, effort));
    let best = points
        .into_iter()
        .max_by(|a, b| {
            a.metrics
                .throughput_tps
                .total_cmp(&b.metrics.throughput_tps)
        })
        .expect("sweep is nonempty");
    let overload_rate = best.rate_tps * 2;
    let mut over_cfg = cfg;
    over_cfg.rate_tps = overload_rate;
    OverloadPoint {
        peak_rate: best.rate_tps,
        peak: best.metrics,
        overload_rate,
        overload: run_experiment(&over_cfg),
    }
}
