//! View-change measurement: latency (Fig. 10i) and communication /
//! authenticator complexity (Table I) from one instrumented run.

use marlin_core::{Config, Note, ProtocolKind};
use marlin_crypto::{CostModel, KeyStore, QcFormat};
use marlin_simnet::{Accounting, SimConfig, SimNet};
use marlin_types::{Message, MsgBody, Phase, ReplicaId, View};
use std::sync::Arc;

/// Counter triple re-exported for reports.
pub use marlin_simnet::MsgClass;

/// The result of one instrumented view change.
#[derive(Clone, Debug)]
pub struct VcMeasurement {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Replica count.
    pub n: usize,
    /// Whether the snapshot was forced non-unanimous (Marlin's unhappy
    /// path; irrelevant for HotStuff/Jolteon).
    pub forced_unhappy: bool,
    /// Time from the measuring replica's `ViewChangeStarted` to its
    /// first commit in the new view (the paper's Fig. 10i metric).
    pub latency_ns: u64,
    /// All traffic from the crash until that first commit.
    pub window: Accounting,
    /// Whether the new leader took Marlin's happy path.
    pub took_happy_path: bool,
}

/// Crashes the view-1 leader and measures the resulting view change.
///
/// With `force_unhappy`, the PREPARE for the final pre-crash block is
/// hidden from `f` replicas so their last-voted block differs and the
/// happy path is impossible (the Fig. 2 situation).
///
/// # Panics
///
/// Panics if the protocol fails to commit before or after the view
/// change within the simulation horizon (a liveness bug).
pub fn measure_view_change(
    protocol: ProtocolKind,
    f: usize,
    force_unhappy: bool,
    qc_format: QcFormat,
    net: SimConfig,
) -> VcMeasurement {
    measure_view_change_with_preload(protocol, f, force_unhappy, qc_format, net, 0)
}

/// Like [`measure_view_change`], additionally preloading the next
/// leader's mempool with `preload` transactions so its view-change
/// proposal carries a real batch (used by the shadow-block ablation).
pub fn measure_view_change_with_preload(
    protocol: ProtocolKind,
    f: usize,
    force_unhappy: bool,
    qc_format: QcFormat,
    net: SimConfig,
    preload: usize,
) -> VcMeasurement {
    let n = 3 * f + 1;
    let mut cfg = Config::for_test(n, f);
    cfg.keys = Arc::new(KeyStore::generate(n, f, 0x7AB1E1));
    cfg.cost = CostModel::ecdsa_like();
    cfg.qc_format = qc_format;
    cfg.base_timeout_ns = 400_000_000;
    let mut sim = SimNet::new(protocol, cfg, net);

    let leader = ReplicaId(1); // leader of view 1
                               // Phase 1: commit a first batch so every replica has state.
    sim.schedule_client_batch(leader, 0, 50, 150);
    let horizon = 30_000_000_000u64;
    let mut t = 0u64;
    while sim.committed_txs(ReplicaId(0)) < 50 {
        t += 100_000_000;
        assert!(
            t < horizon,
            "{protocol:?} n={n}: first batch never committed"
        );
        sim.run_until(t);
    }

    // Phase 2 (optionally): create divergent last-voted blocks by hiding
    // the next block's PREPARE from the f highest-id replicas.
    if force_unhappy {
        let hidden: Vec<ReplicaId> = ((n - f) as u32..n as u32).map(ReplicaId).collect();
        let contested_after = sim.committed_txs(ReplicaId(0));
        let _ = contested_after;
        sim.set_filter(Box::new(move |_from, to, msg: &Message| match &msg.body {
            MsgBody::Proposal(p) if p.phase == Phase::Prepare && !p.blocks.is_empty() => {
                !hidden.contains(&to)
            }
            MsgBody::Proposal(p) if p.phase == Phase::Commit => false,
            MsgBody::Decide(_) => false,
            _ => true,
        }));
        sim.schedule_client_batch(leader, t, 50, 150);
        // Give the partial proposal time to reach the visible replicas.
        t += 300_000_000;
        sim.run_until(t);
        sim.clear_filter();
    }
    if preload > 0 {
        // Preload the next leader's mempool so its view-change proposal
        // carries a real batch (this is what the shadow-block
        // optimisation deduplicates across the two proposals).
        let next_leader = ReplicaId::leader_of(View(2), n);
        sim.schedule_client_batch(next_leader, t, preload, 150);
        t += 50_000_000;
        sim.run_until(t);
    }

    // Phase 3: crash the leader and measure.
    let crash_at = t + 1_000_000;
    sim.schedule_crash(leader, crash_at);
    sim.run_until(crash_at);
    sim.reset_accounting();
    let commits_before = sim.committed_blocks(ReplicaId(0));

    let mut deadline = crash_at;
    while sim.committed_blocks(ReplicaId(0)) == commits_before {
        deadline += 100_000_000;
        assert!(
            deadline < crash_at + horizon,
            "{protocol:?} n={n} forced_unhappy={force_unhappy}: no commit after view change"
        );
        sim.run_until(deadline);
    }

    // Extract the timeline from the notes.
    let mut vc_started = None;
    let mut committed_at = None;
    let mut took_happy_path = false;
    for (at, id, note) in sim.notes() {
        if *at < crash_at {
            continue;
        }
        match note {
            Note::ViewChangeStarted { .. } if *id == ReplicaId(0) && vc_started.is_none() => {
                vc_started = Some(*at)
            }
            Note::HappyPathVc { .. } => took_happy_path = true,
            Note::Committed { .. } if *id == ReplicaId(0) && committed_at.is_none() => {
                committed_at = Some(*at)
            }
            _ => {}
        }
    }
    let t0 = vc_started.expect("a view change must have started");
    let t1 = committed_at.expect("a commit was observed");

    VcMeasurement {
        protocol,
        n,
        forced_unhappy: force_unhappy,
        latency_ns: t1.saturating_sub(t0),
        window: sim.accounting().clone(),
        took_happy_path,
    }
}

/// Returns the highest view reached in a measurement's simulation notes
/// — helper kept for diagnostics.
pub fn max_view(notes: &[(u64, ReplicaId, Note)]) -> View {
    notes
        .iter()
        .filter_map(|(_, _, n)| match n {
            Note::EnteredView { view, .. } => Some(*view),
            _ => None,
        })
        .max()
        .unwrap_or(View(1))
}
